#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/schema.hpp"

namespace ftsort::campaign {

namespace {

/// %.17g — round-trip exact for doubles, matching the bench/metrics
/// exporters so every emitted number re-parses to the same bits.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Nearest-rank quantile of an ascending-sorted vector (no
/// interpolation: deterministic and insensitive to fp rounding).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

const char* root_name(std::size_t i) {
  return sim::diagnosis_root_kind_name(
      static_cast<sim::Diagnosis::RootKind>(i));
}

}  // namespace

bool CampaignReport::conserves_trials() const {
  std::uint64_t total = 0;
  for (const BucketStats& b : buckets) {
    if (static_cast<std::uint64_t>(b.completed) + b.recovered + b.degraded +
            b.deadlocked + b.corrupt + b.failed !=
        b.trials)
      return false;
    total += b.trials;
  }
  return total == trials.size();
}

bool CampaignReport::completion_monotone() const {
  for (std::size_t i = 1; i < buckets.size(); ++i)
    if (buckets[i].completion_probability >
        buckets[i - 1].completion_probability)
      return false;
  return true;
}

CampaignReport aggregate_campaign(CampaignMeta meta,
                                  std::vector<TrialResult> trials) {
  CampaignReport rep;
  rep.meta = std::move(meta);
  rep.buckets.resize(rep.meta.r_max + 1);
  for (std::size_t r = 0; r <= rep.meta.r_max; ++r)
    rep.buckets[r].r = static_cast<std::uint32_t>(r);

  // One pass in index order: counts and ordered sums.
  std::vector<std::vector<double>> hotspots(rep.buckets.size());
  // Recovery-latency stage samples, recovered trials only (clean runs
  // have no episodes and would drag the percentiles to zero).
  struct StageSamples {
    std::vector<double> detect, rollcall, salvage, restart;
  };
  std::vector<StageSamples> stages(rep.buckets.size());
  for (const TrialResult& t : trials) {
    FTSORT_REQUIRE(t.r < rep.buckets.size());
    BucketStats& b = rep.buckets[t.r];
    ++b.trials;
    ++rep.outcomes[static_cast<std::size_t>(t.outcome)];
    switch (t.outcome) {
      case core::RunOutcome::CompletedClean: ++b.completed; break;
      case core::RunOutcome::CompletedRecovered: ++b.recovered; break;
      case core::RunOutcome::Degraded: ++b.degraded; break;
      case core::RunOutcome::Deadlocked: ++b.deadlocked; break;
      case core::RunOutcome::Corrupt: ++b.corrupt; break;
      case core::RunOutcome::Failed: ++b.failed; break;
    }
    if (t.outcome != core::RunOutcome::CompletedClean)
      ++b.roots[static_cast<std::size_t>(t.diagnosis.root_kind)];
    if (core::outcome_completed(t.outcome)) {
      const std::uint32_t done = b.completed + b.recovered;
      b.mean_makespan += t.makespan;  // divided after the pass
      b.mean_detect += t.detect;
      b.min_makespan =
          done == 1 ? t.makespan : std::min(b.min_makespan, t.makespan);
      b.max_makespan = std::max(b.max_makespan, t.makespan);
      hotspots[t.r].push_back(t.hotspot_share);
    }
    if (t.lineage_checked) {
      ++rep.lineage_audited;
      if (t.lineage_ok) ++rep.lineage_ok;
    }
    rep.watchdog_trips += t.watchdog_trips;
    rep.watchdog_near_misses += t.watchdog_near_misses;
    if (t.outcome == core::RunOutcome::CompletedRecovered) {
      StageSamples& s = stages[t.r];
      s.detect.push_back(t.detect_latency);
      s.rollcall.push_back(t.rollcall_latency);
      s.salvage.push_back(t.salvage_latency);
      s.restart.push_back(t.restart_latency);
    }
  }

  for (std::size_t r = 0; r < rep.buckets.size(); ++r) {
    BucketStats& b = rep.buckets[r];
    const std::uint32_t done = b.completed + b.recovered;
    if (b.trials > 0)
      b.completion_probability =
          static_cast<double>(done) / static_cast<double>(b.trials);
    if (done > 0) {
      b.mean_makespan /= static_cast<double>(done);
      b.mean_detect /= static_cast<double>(done);
    }
    std::sort(hotspots[r].begin(), hotspots[r].end());
    b.hotspot_p50 = quantile(hotspots[r], 0.5);
    b.hotspot_p90 = quantile(hotspots[r], 0.9);
    b.hotspot_max = hotspots[r].empty() ? 0.0 : hotspots[r].back();
    StageSamples& s = stages[r];
    const auto pcts = [](std::vector<double>& v, double& p50, double& p90) {
      std::sort(v.begin(), v.end());
      p50 = quantile(v, 0.5);
      p90 = quantile(v, 0.9);
    };
    pcts(s.detect, b.detect_latency_p50, b.detect_latency_p90);
    pcts(s.rollcall, b.rollcall_latency_p50, b.rollcall_latency_p90);
    pcts(s.salvage, b.salvage_latency_p50, b.salvage_latency_p90);
    pcts(s.restart, b.restart_latency_p50, b.restart_latency_p90);
  }
  const double base = rep.buckets[0].mean_makespan;
  for (BucketStats& b : rep.buckets)
    b.mean_slowdown = (base > 0.0 && b.completed + b.recovered > 0)
                          ? b.mean_makespan / base
                          : 0.0;

  rep.trials = std::move(trials);
  return rep;
}

void write_campaign_json(std::ostream& os, const CampaignReport& rep) {
  os << "{\n"
     << "  \"campaign\": \"fault_mc\",\n"
     << "  \"schema_version\": " << util::kCampaignSchemaVersion << ",\n"
     << "  \"n\": " << rep.meta.n << ",\n"
     << "  \"r_max\": " << rep.meta.r_max << ",\n"
     << "  \"scenarios\": " << rep.meta.scenarios << ",\n"
     << "  \"trials\": " << rep.trials.size() << ",\n"
     << "  \"seed\": " << rep.meta.seed << ",\n"
     << "  \"num_keys\": " << rep.meta.num_keys << ",\n"
     << "  \"executor\": \"" << rep.meta.executor << "\",\n"
     << "  \"link_cut_probability\": " << num(rep.meta.link_cut_probability)
     << ",\n"
     << "  \"envelope\": " << num(rep.meta.envelope) << ",\n"
     << "  \"outcomes\": {";
  for (std::size_t i = 0; i < core::kRunOutcomeCount; ++i)
    os << (i ? ", " : "") << "\""
       << core::run_outcome_name(static_cast<core::RunOutcome>(i))
       << "\": " << rep.outcomes[i];
  os << "},\n  \"lineage\": {\"audited\": " << rep.lineage_audited
     << ", \"ok\": " << rep.lineage_ok << "},\n  \"watchdog\": {\"trips\": "
     << rep.watchdog_trips
     << ", \"near_misses\": " << rep.watchdog_near_misses
     << "},\n  \"partial\": " << (rep.partial ? "true" : "false")
     << ",\n  \"buckets\": [\n";
  for (std::size_t i = 0; i < rep.buckets.size(); ++i) {
    const BucketStats& b = rep.buckets[i];
    os << "    {\"r\": " << b.r << ", \"trials\": " << b.trials
       << ", \"completed\": " << b.completed
       << ", \"recovered\": " << b.recovered
       << ", \"degraded\": " << b.degraded
       << ", \"deadlocked\": " << b.deadlocked
       << ", \"corrupt\": " << b.corrupt << ", \"failed\": " << b.failed
       << ",\n     \"completion_probability\": "
       << num(b.completion_probability)
       << ", \"mean_makespan\": " << num(b.mean_makespan)
       << ", \"min_makespan\": " << num(b.min_makespan)
       << ", \"max_makespan\": " << num(b.max_makespan)
       << ",\n     \"mean_detect\": " << num(b.mean_detect)
       << ", \"mean_slowdown\": " << num(b.mean_slowdown)
       << ",\n     \"hotspot_p50\": " << num(b.hotspot_p50)
       << ", \"hotspot_p90\": " << num(b.hotspot_p90)
       << ", \"hotspot_max\": " << num(b.hotspot_max)
       << ",\n     \"detect_latency_p50\": " << num(b.detect_latency_p50)
       << ", \"detect_latency_p90\": " << num(b.detect_latency_p90)
       << ",\n     \"rollcall_latency_p50\": " << num(b.rollcall_latency_p50)
       << ", \"rollcall_latency_p90\": " << num(b.rollcall_latency_p90)
       << ",\n     \"salvage_latency_p50\": " << num(b.salvage_latency_p50)
       << ", \"salvage_latency_p90\": " << num(b.salvage_latency_p90)
       << ",\n     \"restart_latency_p50\": " << num(b.restart_latency_p50)
       << ", \"restart_latency_p90\": " << num(b.restart_latency_p90)
       << ",\n     \"roots\": {";
    for (std::size_t k = 0; k < kRootKindCount; ++k)
      os << (k ? ", " : "") << "\"" << root_name(k) << "\": " << b.roots[k];
    os << "}}" << (i + 1 < rep.buckets.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"trials_detail\": [\n";
  for (std::size_t i = 0; i < rep.trials.size(); ++i) {
    const TrialResult& t = rep.trials[i];
    os << "    {\"index\": " << t.index << ", \"scenario\": " << t.scenario
       << ", \"r\": " << t.r << ", \"outcome\": \""
       << core::run_outcome_name(t.outcome) << "\", \"root\": \""
       << sim::diagnosis_root_kind_name(t.diagnosis.root_kind)
       << "\", \"makespan\": " << num(t.makespan)
       << ", \"detect\": " << num(t.detect) << ", \"deaths\": " << t.deaths
       << ", \"timeouts\": " << t.timeouts
       << ", \"comparisons\": " << t.comparisons
       << ", \"messages\": " << t.messages
       << ", \"key_hops\": " << t.key_hops
       << ", \"hotspot_share\": " << num(t.hotspot_share)
       << ", \"detect_latency\": " << num(t.detect_latency)
       << ", \"rollcall_latency\": " << num(t.rollcall_latency)
       << ", \"salvage_latency\": " << num(t.salvage_latency)
       << ", \"restart_latency\": " << num(t.restart_latency)
       << ", \"lineage_checked\": " << (t.lineage_checked ? "true" : "false")
       << ", \"lineage_ok\": " << (t.lineage_ok ? "true" : "false")
       << ", \"lineage_lost\": " << t.lineage_lost
       << ", \"lineage_duplicated\": " << t.lineage_duplicated
       << ", \"watchdog_trips\": " << t.watchdog_trips
       << ", \"watchdog_near_misses\": " << t.watchdog_near_misses << "}"
       << (i + 1 < rep.trials.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string campaign_summary(const CampaignReport& rep) {
  std::ostringstream os;
  os << "campaign fault_mc: Q_" << rep.meta.n << ", r <= " << rep.meta.r_max
     << ", " << rep.trials.size() << " trials (" << rep.meta.scenarios
     << " scenarios x " << rep.meta.r_max + 1 << " buckets), seed "
     << rep.meta.seed << ", " << rep.meta.executor << " executor\n";
  char line[224];
  std::snprintf(line, sizeof line,
                "%-4s %7s %10s %10s %9s %11s %12s %10s %12s %11s %12s %12s\n",
                "r", "trials", "completed", "recovered", "degraded",
                "P(complete)", "mean_slowdown", "det_share", "hotspot_p90",
                "detect_p50", "salvage_p50", "restart_p50");
  os << line;
  for (const BucketStats& b : rep.buckets) {
    const double det_share =
        b.mean_makespan > 0.0 ? b.mean_detect / b.mean_makespan : 0.0;
    std::snprintf(line, sizeof line,
                  "%-4u %7u %10u %10u %9u %11.3f %12.3f %10.3f %12.3f "
                  "%11.0f %12.0f %12.0f\n",
                  b.r, b.trials, b.completed, b.recovered, b.degraded,
                  b.completion_probability, b.mean_slowdown, det_share,
                  b.hotspot_p90, b.detect_latency_p50, b.salvage_latency_p50,
                  b.restart_latency_p50);
    os << line;
  }
  return os.str();
}

}  // namespace ftsort::campaign
