#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "sim/link_stats.hpp"
#include "sort/distribution.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ftsort::campaign {

namespace {

std::vector<sort::Key> trial_keys(std::uint64_t keys_seed,
                                  std::size_t count) {
  util::Rng rng(keys_seed);
  return sort::gen_uniform(count, rng);
}

core::SortConfig trial_config(const CampaignConfig& cfg,
                              core::Executor executor,
                              const core::RecoveryConfig& recovery) {
  core::SortConfig sc;
  sc.online_recovery = true;
  sc.executor = executor;
  sc.recovery = recovery;
  // Degraded-trial diagnoses are reconstructed from flight-recorder
  // evidence after the nodes are torn down, so the trace must be on;
  // the bounded ring keeps campaign memory flat.
  sc.record_trace = true;
  sc.trace_capacity = cfg.trace_capacity;
  sc.record_link_stats = cfg.record_link_stats;
  sc.record_lineage = cfg.record_lineage;
  return sc;
}

std::uint32_t scheduled_kills(const TrialSpec& spec) {
  return static_cast<std::uint32_t>(
      std::count_if(spec.events.begin(), spec.events.end(),
                    [](const FaultEvent& ev) {
                      return ev.kind == FaultEvent::Kind::NodeKill;
                    }));
}

}  // namespace

core::RecoveryConfig calibrated_recovery(const CampaignConfig& cfg,
                                         sim::SimTime envelope) {
  const core::RecoveryConfig defaults;
  const bool customized =
      cfg.recovery.detect_patience != defaults.detect_patience ||
      cfg.recovery.collect_patience != defaults.collect_patience ||
      cfg.recovery.verdict_patience != defaults.verdict_patience ||
      cfg.recovery.max_attempts != defaults.max_attempts;
  if (customized) return cfg.recovery;
  core::RecoveryConfig tuned;
  // Soundness separations (recovery.hpp): collect dominates
  // makespan + detect (envelope >= makespan, so 8x clears it), verdict
  // dominates max_deaths x collect (max_deaths <= r_max here).
  tuned.detect_patience = envelope;
  tuned.collect_patience = 8.0 * envelope;
  tuned.verdict_patience =
      64.0 * static_cast<double>(cfg.universe.r_max + 1) * envelope;
  return tuned;
}

sim::SimTime calibrate_envelope(const CampaignConfig& cfg) {
  // Always sequential and fault-free: one calibration per campaign,
  // deterministic in the campaign seed alone. Patience tiers are
  // irrelevant here (no faults), so the library defaults are fine.
  const auto keys =
      trial_keys(scenario_seed(cfg.seed, 0, 0) ^ 0xca11b8a7ed000000ull,
                 cfg.universe.num_keys);
  core::FaultTolerantSorter sorter(
      cfg.universe.n, fault::FaultSet(cfg.universe.n),
      trial_config(cfg, core::Executor::Sequential, cfg.recovery));
  const sim::SimTime makespan = sorter.sort(keys).report.makespan;
  FTSORT_ENSURE(makespan > 0.0);
  return makespan * cfg.universe.envelope_scale;
}

TrialResult run_trial(const CampaignConfig& cfg, sim::SimTime envelope,
                      std::uint32_t index, core::Executor executor) {
  const TrialSpec spec = sample_trial(cfg.universe, cfg.seed, index, envelope);
  TrialResult res;
  res.index = spec.index;
  res.scenario = spec.scenario;
  res.r = spec.r;

  const auto keys = trial_keys(spec.keys_seed, cfg.universe.num_keys);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  core::SortConfig sc =
      trial_config(cfg, executor, calibrated_recovery(cfg, envelope));
  sc.injector = spec.injector();

  try {
    const core::FaultTolerantSorter sorter(
        cfg.universe.n, fault::FaultSet(cfg.universe.n), sc);
    const core::SortOutcome out = sorter.sort(keys);
    const sim::RunReport& rep = out.report;
    // A trial only counts as completing when the value-level comparison
    // AND the custody audit agree — lineage can flag a loss+duplication
    // pair that happens to re-sort to the expected multiset of values
    // but shuffled provenance (it cannot here, values are compared too;
    // the audit is the independent witness that names the ids).
    res.lineage_checked = rep.lineage.enabled && rep.lineage.audit.checked;
    res.lineage_ok = rep.lineage.audit.ok;
    res.lineage_lost = rep.lineage.audit.lost.size();
    res.lineage_duplicated = rep.lineage.audit.duplicated.size();
    const bool sorted_ok = out.sorted == expected &&
                           (!res.lineage_checked || res.lineage_ok);
    res.outcome = core::classify_completed(rep, sorted_ok);
    res.diagnosis = rep.diagnosis;
    res.makespan = rep.makespan;
    res.detect = core::detect_time(rep);
    res.comparisons = rep.comparisons;
    res.messages = rep.messages;
    res.key_hops = rep.key_hops;
    res.timeouts = rep.timeouts;
    res.deaths = static_cast<std::uint32_t>(rep.killed_nodes.size());
    if (cfg.record_link_stats)
      res.hotspot_share = sim::hottest_dimension_share(rep.links);
    for (const sim::RecoveryEpisode& ep : rep.recovery_latency.episodes) {
      res.detect_latency += ep.detection();
      res.rollcall_latency += ep.roll_call();
      res.salvage_latency += ep.salvage();
      res.restart_latency += ep.restart();
    }
  } catch (const core::DegradationError& e) {
    res.outcome = core::RunOutcome::Degraded;
    res.diagnosis = e.diagnosis();
    res.deaths = scheduled_kills(spec);
  } catch (const sim::DeadlockError&) {
    res.outcome = core::RunOutcome::Deadlocked;
    res.deaths = scheduled_kills(spec);
  } catch (const std::exception&) {
    res.outcome = core::RunOutcome::Failed;
    res.deaths = scheduled_kills(spec);
  }
  return res;
}

CampaignReport run_campaign(const CampaignConfig& cfg) {
  FTSORT_REQUIRE(cfg.workers >= 1);
  const sim::SimTime envelope = calibrate_envelope(cfg);
  const std::uint32_t trials = cfg.universe.trials();

  // Pre-sized slot array + shared index counter: workers race only for
  // *which* trial to run next, never over where a result lands, so any
  // worker count produces the identical vector to reduce in index order.
  std::vector<TrialResult> results(trials);
  std::atomic<std::uint32_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= trials) return;
      results[idx] = run_trial(cfg, envelope, idx, cfg.executor);
    }
  };
  if (cfg.workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(cfg.workers);
    for (unsigned w = 0; w < cfg.workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  CampaignMeta meta;
  meta.n = cfg.universe.n;
  meta.r_max = cfg.universe.r_max;
  meta.scenarios = cfg.universe.scenarios;
  meta.seed = cfg.seed;
  meta.num_keys = cfg.universe.num_keys;
  meta.link_cut_probability = cfg.universe.link_cut_probability;
  meta.executor =
      cfg.executor == core::Executor::Sequential ? "sequential" : "threaded";
  meta.envelope = envelope;
  return aggregate_campaign(std::move(meta), std::move(results));
}

}  // namespace ftsort::campaign
