#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/link_stats.hpp"
#include "sort/distribution.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ftsort::campaign {

namespace {

std::vector<sort::Key> trial_keys(std::uint64_t keys_seed,
                                  std::size_t count) {
  util::Rng rng(keys_seed);
  return sort::gen_uniform(count, rng);
}

core::SortConfig trial_config(const CampaignConfig& cfg,
                              core::Executor executor,
                              const core::RecoveryConfig& recovery) {
  core::SortConfig sc;
  sc.online_recovery = true;
  sc.executor = executor;
  sc.recovery = recovery;
  // Degraded-trial diagnoses are reconstructed from flight-recorder
  // evidence after the nodes are torn down, so the trace must be on;
  // the bounded ring keeps campaign memory flat.
  sc.record_trace = true;
  sc.trace_capacity = cfg.trace_capacity;
  sc.record_link_stats = cfg.record_link_stats;
  sc.record_lineage = cfg.record_lineage;
  // Each trial's Machine monitors itself; the dump file stays a
  // pool-level concern (per-trial dumps from N workers would race over
  // one path, and the trial's verdict lands in the report anyway).
  sc.watchdog = cfg.watchdog;
  sc.watchdog.dump_path.clear();
  return sc;
}

std::uint32_t scheduled_kills(const TrialSpec& spec) {
  return static_cast<std::uint32_t>(
      std::count_if(spec.events.begin(), spec.events.end(),
                    [](const FaultEvent& ev) {
                      return ev.kind == FaultEvent::Kind::NodeKill;
                    }));
}

}  // namespace

core::RecoveryConfig calibrated_recovery(const CampaignConfig& cfg,
                                         sim::SimTime envelope) {
  const core::RecoveryConfig defaults;
  const bool customized =
      cfg.recovery.detect_patience != defaults.detect_patience ||
      cfg.recovery.collect_patience != defaults.collect_patience ||
      cfg.recovery.verdict_patience != defaults.verdict_patience ||
      cfg.recovery.max_attempts != defaults.max_attempts;
  if (customized) return cfg.recovery;
  core::RecoveryConfig tuned;
  // Soundness separations (recovery.hpp): collect dominates
  // makespan + detect (envelope >= makespan, so 8x clears it), verdict
  // dominates max_deaths x collect (max_deaths <= r_max here).
  tuned.detect_patience = envelope;
  tuned.collect_patience = 8.0 * envelope;
  tuned.verdict_patience =
      64.0 * static_cast<double>(cfg.universe.r_max + 1) * envelope;
  return tuned;
}

sim::SimTime calibrate_envelope(const CampaignConfig& cfg) {
  // Always sequential and fault-free: one calibration per campaign,
  // deterministic in the campaign seed alone. Patience tiers are
  // irrelevant here (no faults), so the library defaults are fine.
  const auto keys =
      trial_keys(scenario_seed(cfg.seed, 0, 0) ^ 0xca11b8a7ed000000ull,
                 cfg.universe.num_keys);
  core::FaultTolerantSorter sorter(
      cfg.universe.n, fault::FaultSet(cfg.universe.n),
      trial_config(cfg, core::Executor::Sequential, cfg.recovery));
  const sim::SimTime makespan = sorter.sort(keys).report.makespan;
  FTSORT_ENSURE(makespan > 0.0);
  return makespan * cfg.universe.envelope_scale;
}

TrialResult run_trial(const CampaignConfig& cfg, sim::SimTime envelope,
                      std::uint32_t index, core::Executor executor) {
  const TrialSpec spec = sample_trial(cfg.universe, cfg.seed, index, envelope);
  TrialResult res;
  res.index = spec.index;
  res.scenario = spec.scenario;
  res.r = spec.r;

  const auto keys = trial_keys(spec.keys_seed, cfg.universe.num_keys);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  core::SortConfig sc =
      trial_config(cfg, executor, calibrated_recovery(cfg, envelope));
  sc.injector = spec.injector();

  try {
    const core::FaultTolerantSorter sorter(
        cfg.universe.n, fault::FaultSet(cfg.universe.n), sc);
    const core::SortOutcome out = sorter.sort(keys);
    const sim::RunReport& rep = out.report;
    // A trial only counts as completing when the value-level comparison
    // AND the custody audit agree — lineage can flag a loss+duplication
    // pair that happens to re-sort to the expected multiset of values
    // but shuffled provenance (it cannot here, values are compared too;
    // the audit is the independent witness that names the ids).
    res.lineage_checked = rep.lineage.enabled && rep.lineage.audit.checked;
    res.lineage_ok = rep.lineage.audit.ok;
    res.lineage_lost = rep.lineage.audit.lost.size();
    res.lineage_duplicated = rep.lineage.audit.duplicated.size();
    const bool sorted_ok = out.sorted == expected &&
                           (!res.lineage_checked || res.lineage_ok);
    res.outcome = core::classify_completed(rep, sorted_ok);
    res.diagnosis = rep.diagnosis;
    res.makespan = rep.makespan;
    res.detect = core::detect_time(rep);
    res.comparisons = rep.comparisons;
    res.messages = rep.messages;
    res.key_hops = rep.key_hops;
    res.timeouts = rep.timeouts;
    res.deaths = static_cast<std::uint32_t>(rep.killed_nodes.size());
    if (cfg.record_link_stats)
      res.hotspot_share = sim::hottest_dimension_share(rep.links);
    for (const sim::RecoveryEpisode& ep : rep.recovery_latency.episodes) {
      res.detect_latency += ep.detection();
      res.rollcall_latency += ep.roll_call();
      res.salvage_latency += ep.salvage();
      res.restart_latency += ep.restart();
    }
    res.watchdog_near_misses = rep.watchdog.near_misses;
  } catch (const core::DegradationError& e) {
    res.outcome = core::RunOutcome::Degraded;
    res.diagnosis = e.diagnosis();
    res.deaths = scheduled_kills(spec);
  } catch (const sim::WatchdogError& e) {
    // A host-level stall the trial's own watchdog aborted: classify with
    // the deadlocks (the sim-time analogue of "nothing can progress") and
    // keep the trip count as the distinguishing evidence.
    res.outcome = core::RunOutcome::Deadlocked;
    res.deaths = scheduled_kills(spec);
    res.watchdog_trips = e.report().trips;
    res.watchdog_near_misses = e.report().near_misses;
  } catch (const sim::DeadlockError&) {
    res.outcome = core::RunOutcome::Deadlocked;
    res.deaths = scheduled_kills(spec);
  } catch (const std::exception&) {
    res.outcome = core::RunOutcome::Failed;
    res.deaths = scheduled_kills(spec);
  }
  return res;
}

CampaignReport run_campaign(const CampaignConfig& cfg) {
  FTSORT_REQUIRE(cfg.workers >= 1);
  const sim::SimTime envelope = calibrate_envelope(cfg);
  const std::uint32_t trials = cfg.universe.trials();
  const std::uint32_t buckets = cfg.universe.buckets();

  // Pre-sized slot array + shared index counter: workers race only for
  // *which* trial to run next, never over where a result lands, so any
  // worker count produces the identical vector to reduce in index order.
  std::vector<TrialResult> results(trials);
  std::atomic<std::uint32_t> next{0};
  // Wall-clock telemetry: a done flag per slot (which results are safe to
  // aggregate after a cancel), completion counters for the progress line,
  // and an abort flag the pool-level watchdog sets on trip.
  std::vector<std::atomic<bool>> done(trials);
  std::vector<std::atomic<std::uint32_t>> bucket_done(buckets);
  std::atomic<std::uint32_t> done_total{0};
  std::atomic<bool> abort_pool{false};

  // Pool-level watchdog: one heartbeat slot per worker, beat per finished
  // trial (activity = the trial index). Catches a wedged worker even when
  // the trial-level watchdog is itself the wedged part.
  std::unique_ptr<sim::Watchdog> wd;
  std::vector<std::size_t> worker_slot(std::max(1u, cfg.workers), 0);
  if (cfg.watchdog.enabled) {
    wd = std::make_unique<sim::Watchdog>(cfg.watchdog);
    for (unsigned w = 0; w < std::max(1u, cfg.workers); ++w)
      worker_slot[w] = wd->add_slot("worker " + std::to_string(w));
    wd->on_trip([&abort_pool] { abort_pool.store(true); });
    wd->start();
  }

  const auto cancelled = [&cfg, &abort_pool] {
    return abort_pool.load(std::memory_order_relaxed) ||
           (cfg.cancel != nullptr &&
            cfg.cancel->load(std::memory_order_relaxed));
  };
  const auto worker = [&](unsigned w) {
    for (;;) {
      if (cancelled()) return;
      const std::uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= trials) return;
      results[idx] = run_trial(cfg, envelope, idx, cfg.executor);
      done[idx].store(true, std::memory_order_release);
      bucket_done[results[idx].r].fetch_add(1, std::memory_order_relaxed);
      done_total.fetch_add(1, std::memory_order_acq_rel);
      if (wd != nullptr) wd->beat(worker_slot[w], idx);
    }
  };

  // Progress monitor: samples the counters at a human cadence and hands
  // the snapshot to the caller (the campaign_demo stderr line).
  std::atomic<bool> sweep_done{false};
  std::thread progress;
  if (cfg.on_progress) {
    progress = std::thread([&] {
      const auto t0 = std::chrono::steady_clock::now();
      auto last_change = t0;
      std::uint32_t last_done = 0;
      const auto sample = [&] {
        const auto now = std::chrono::steady_clock::now();
        const std::uint32_t d = done_total.load(std::memory_order_acquire);
        if (d != last_done) {
          last_done = d;
          last_change = now;
        }
        CampaignProgress p;
        p.done = d;
        p.total = trials;
        p.elapsed_s =
            std::chrono::duration<double>(now - t0).count();
        p.trials_per_sec = p.elapsed_s > 0.0 ? d / p.elapsed_s : 0.0;
        p.eta_s = p.trials_per_sec > 0.0 ? (trials - d) / p.trials_per_sec
                                         : 0.0;
        p.heartbeat_age_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - last_change)
                .count());
        p.bucket_total = cfg.universe.scenarios;
        p.bucket_done.resize(buckets);
        for (std::uint32_t r = 0; r < buckets; ++r)
          p.bucket_done[r] = bucket_done[r].load(std::memory_order_relaxed);
        cfg.on_progress(p);
      };
      while (!sweep_done.load(std::memory_order_acquire)) {
        sample();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg.progress_interval_ms));
      }
      sample();  // final snapshot: done == total on a full sweep
    });
  }

  if (cfg.workers <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(cfg.workers);
    for (unsigned w = 0; w < cfg.workers; ++w)
      pool.emplace_back([&worker, w] { worker(w); });
    for (std::thread& t : pool) t.join();
  }
  sweep_done.store(true, std::memory_order_release);
  if (progress.joinable()) progress.join();

  sim::WatchdogReport wd_report;
  if (wd != nullptr) {
    wd->stop();
    wd_report = wd->report();
    sim::WatchdogDumpContext ctx;
    ctx.origin = "campaign";
    if (wd->tripped()) {
      if (!cfg.watchdog.dump_path.empty())
        sim::write_watchdog_dump(cfg.watchdog.dump_path, wd_report, ctx);
      throw sim::WatchdogError(
          "campaign watchdog tripped: no trial completed for " +
              std::to_string(wd_report.stall_ms) + " ms (deadline " +
              std::to_string(wd_report.effective_deadline_ms) + " ms), " +
              std::to_string(done_total.load()) + "/" +
              std::to_string(trials) + " trials done" +
              (cfg.watchdog.dump_path.empty()
                   ? ""
                   : "; dump: " + cfg.watchdog.dump_path),
          wd_report);
    }
    // Cancelled with a dump path configured: flush the heartbeat table
    // alongside the partial results (the SIGINT black box).
    if (cancelled() && !cfg.watchdog.dump_path.empty())
      sim::write_watchdog_dump(cfg.watchdog.dump_path, wd_report, ctx);
  }

  // A cancelled sweep aggregates only the completed prefix of slots; the
  // done flags (not the index counter) are the truth about which rows
  // hold a real TrialResult.
  const bool was_cancelled = cancelled();
  if (was_cancelled) {
    std::vector<TrialResult> completed;
    completed.reserve(done_total.load());
    for (std::uint32_t i = 0; i < trials; ++i)
      if (done[i].load(std::memory_order_acquire))
        completed.push_back(results[i]);
    results = std::move(completed);
  }

  CampaignMeta meta;
  meta.n = cfg.universe.n;
  meta.r_max = cfg.universe.r_max;
  meta.scenarios = cfg.universe.scenarios;
  meta.seed = cfg.seed;
  meta.num_keys = cfg.universe.num_keys;
  meta.link_cut_probability = cfg.universe.link_cut_probability;
  meta.executor =
      cfg.executor == core::Executor::Sequential ? "sequential" : "threaded";
  meta.envelope = envelope;
  CampaignReport report =
      aggregate_campaign(std::move(meta), std::move(results));
  report.partial = was_cancelled && report.trials.size() < trials;
  return report;
}

}  // namespace ftsort::campaign
