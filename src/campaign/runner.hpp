// Campaign driver: run every trial of a fault universe on its own
// `Machine` across a worker pool, producing one `TrialResult` per trial.
//
// Determinism contract (the campaign's headline test target):
//   * Every trial is replayable from (campaign seed, trial index) alone —
//     `run_trial` is a pure function of the config plus those two values,
//     and reproduces the trial's outcome, counters, and full structured
//     Diagnosis on either executor.
//   * The worker count is a throughput knob, never a semantics knob:
//     workers pull trial indices from a shared counter and write results
//     into a pre-sized slot array, and aggregation reads that array in
//     index order after the pool joins. The resulting CampaignReport —
//     and its serialized JSON — is byte-identical for 1 worker and N.
//
// Trial isolation: each trial builds a fresh FaultTolerantSorter (its own
// Machine, pools, trace ring, metrics and link registries), so trials
// share no mutable state and the pool needs no locks beyond the index
// counter. A trial never throws out of the pool: every protocol-level
// failure is classified (core/outcome.hpp) and unexpected exceptions
// land in RunOutcome::Failed rather than tearing the campaign down.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/universe.hpp"
#include "core/ft_sorter.hpp"
#include "core/outcome.hpp"
#include "sim/watchdog.hpp"

namespace ftsort::campaign {

/// One sample of the campaign's live progress, handed to
/// CampaignConfig::on_progress from a monitor thread at a human cadence.
/// Pure wall-clock telemetry: nothing here feeds the report.
struct CampaignProgress {
  std::uint32_t done = 0;          ///< trials completed so far
  std::uint32_t total = 0;         ///< universe trial count
  double elapsed_s = 0.0;          ///< wall seconds since the sweep began
  double trials_per_sec = 0.0;     ///< done / elapsed
  double eta_s = 0.0;              ///< remaining / rate (0 until a rate exists)
  std::uint64_t heartbeat_age_ms = 0;  ///< wall ms since `done` last advanced
  std::vector<std::uint32_t> bucket_done;  ///< completed trials per r
  std::uint32_t bucket_total = 0;  ///< trials per bucket (= scenarios)
};

/// Everything a campaign needs beyond the universe shape.
struct CampaignConfig {
  UniverseConfig universe;
  std::uint64_t seed = 1;  ///< campaign seed; trials derive from (seed, index)
  /// Executor every trial runs under. The logical results are
  /// executor-independent (the equivalence suite pins this), so this is
  /// a wall-clock/coverage knob, not a semantics one.
  core::Executor executor = core::Executor::Sequential;
  /// Worker pool width; results are byte-identical for any value >= 1.
  unsigned workers = 1;
  /// Patience tiers handed to every trial's recovery engine. When left at
  /// the RecoveryConfig defaults, the campaign rescales them from the
  /// calibration envelope (calibrated_recovery below): the library
  /// defaults leave orders of magnitude between tiers for soundness, but
  /// a recovered trial would then spend ~1e6 logical units detecting a
  /// fault inside a ~1e3-unit sort and the slowdown curve would measure
  /// nothing except patience. Explicitly-set tiers pass through untouched.
  core::RecoveryConfig recovery;
  /// Per-node flight-recorder ring of each trial (events). Bounded so a
  /// thousand-trial campaign's memory stays flat; big enough that the
  /// diagnosis of a single-fault trial never sees an eviction.
  std::size_t trace_capacity = 4096;
  /// Record each trial's per-link traffic matrix and reduce it to the
  /// hotspot-share scalar (sim/link_stats.hpp) before discarding it.
  bool record_link_stats = true;
  /// Run every trial with key-lineage provenance (sim/lineage.hpp) and
  /// keep the audit verdict: a completing trial is only classified clean
  /// when the exact no-loss/no-dup audit passes too, and a Corrupt trial
  /// carries the lost/duplicated counts instead of a bare value mismatch.
  bool record_lineage = true;
  /// Wall-clock watchdog (sim/watchdog.hpp). When enabled it is armed
  /// twice: once per trial (each trial's Machine monitors its own
  /// executor; a tripped trial lands in RunOutcome::Deadlocked with its
  /// trip count in TrialResult::watchdog_trips) and once over the worker
  /// pool itself (one heartbeat slot per worker, beat per finished trial).
  /// A pool-level abort trip stops the sweep, writes the black-box dump
  /// to `watchdog.dump_path`, and throws WatchdogError. Heartbeats are
  /// wall-clock-only, so the report bytes are identical with it on.
  sim::WatchdogConfig watchdog;
  /// Cooperative cancellation (the SIGINT/SIGTERM flush): when non-null
  /// and set, workers stop pulling new trials; run_campaign aggregates
  /// the completed prefix and marks the report partial.
  const std::atomic<bool>* cancel = nullptr;
  /// Live progress callback, invoked from a monitor thread every
  /// `progress_interval_ms` while the sweep runs (and once at the end).
  /// Callers own thread safety of whatever the callback touches.
  std::function<void(const CampaignProgress&)> on_progress;
  std::uint32_t progress_interval_ms = 250;
};

/// The patience tiers a trial actually runs with: cfg.recovery when any
/// field differs from the RecoveryConfig defaults, else tiers derived
/// from the envelope (detect = envelope, collect = 8×, verdict = 64 ×
/// (r_max + 1) ×) that keep the soundness separations recovery.hpp
/// documents while staying on the sort's own time scale. Deterministic
/// in (cfg, envelope), so replay sees identical tiers.
core::RecoveryConfig calibrated_recovery(const CampaignConfig& cfg,
                                         sim::SimTime envelope);

/// Fault-free calibration makespan × envelope headroom: the injection
/// window every trial of this campaign samples its fault times from.
/// One sequential fault-free run of the recovery engine on the
/// campaign's key count; deterministic in the campaign seed.
sim::SimTime calibrate_envelope(const CampaignConfig& cfg);

/// Run one trial, replayable in isolation. `executor` overrides the
/// config's executor (the replay tests drive both from one campaign).
TrialResult run_trial(const CampaignConfig& cfg, sim::SimTime envelope,
                      std::uint32_t index, core::Executor executor);

/// The full campaign: calibrate, sweep every trial over the worker pool,
/// aggregate. The returned report (and its JSON) depends only on
/// (cfg.universe, cfg.seed, cfg.executor, cfg.recovery, trial knobs) —
/// never on cfg.workers, the watchdog, cancel, or the progress callback
/// (a cancelled sweep is the one exception: it aggregates the completed
/// prefix and sets CampaignReport::partial). Throws sim::WatchdogError
/// when the pool-level watchdog trips under the abort policy.
CampaignReport run_campaign(const CampaignConfig& cfg);

}  // namespace ftsort::campaign
