// Campaign aggregation: per-trial rows -> per-r reliability buckets ->
// one serializable CampaignReport.
//
// Everything in a report is derived from deterministic logical counters
// (or fixed-order reductions of them), so the same campaign spec always
// serializes to the same bytes — the property the worker-count
// determinism tests compare with string equality. Floating-point
// reductions honour that by accumulating in trial-index order; quantiles
// use the nearest-rank rule on a sorted copy (no interpolation).
//
// The JSON layout is schema version util::kCampaignSchemaVersion: a flat
// header, an "outcomes" rollup, a "lineage" audit rollup, one "buckets"
// row per r with the reliability/slowdown curves, the recovery-latency
// stage percentiles, and the Diagnosis root-cause histogram, and a
// "trials_detail" array with one row per trial (including its lineage
// audit verdict) for replay cross-checks. bench/campaign_schema.json
// lists the required keys; `ftdiag campaign` is the reference reader.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "sim/diagnosis.hpp"

namespace ftsort::campaign {

inline constexpr std::size_t kRootKindCount = 5;  ///< Diagnosis::RootKind

/// Outcome and logical counters of one trial. Fully deterministic in
/// (campaign seed, trial index, executor-independent); `diagnosis` is
/// kept whole so replay tests can compare it structurally.
struct TrialResult {
  std::uint32_t index = 0;
  std::uint32_t scenario = 0;
  std::uint32_t r = 0;
  core::RunOutcome outcome = core::RunOutcome::Failed;
  sim::Diagnosis diagnosis;
  sim::SimTime makespan = 0.0;  ///< 0 when the run threw (degraded/deadlock)
  sim::SimTime detect = 0.0;    ///< fault-detection share of the makespan
  std::uint64_t comparisons = 0;
  std::uint64_t messages = 0;
  std::uint64_t key_hops = 0;
  std::uint64_t timeouts = 0;
  std::uint32_t deaths = 0;        ///< injector victims observed by the run
  double hotspot_share = 0.0;      ///< sim::hottest_dimension_share
  /// Recovery-latency decomposition summed over the run's episodes
  /// (RunReport::recovery_latency); all zero for trials that never
  /// entered recovery or did not commit.
  sim::SimTime detect_latency = 0.0;    ///< injection -> first detection
  sim::SimTime rollcall_latency = 0.0;  ///< detection -> roll-call done
  sim::SimTime salvage_latency = 0.0;   ///< roll-call -> salvage done
  sim::SimTime restart_latency = 0.0;   ///< salvage -> re-sort finished
  /// Key-lineage audit verdict (CampaignConfig::record_lineage): checked
  /// is true for trials whose gather completed with lineage on; ok, and
  /// the lost/duplicated counts, come from the exact custody audit.
  bool lineage_checked = false;
  bool lineage_ok = false;
  std::uint64_t lineage_lost = 0;
  std::uint64_t lineage_duplicated = 0;
  /// Wall-clock watchdog verdict of the trial's own run
  /// (CampaignConfig::watchdog): trips is nonzero exactly when the trial
  /// was aborted by its watchdog (outcome Deadlocked), near_misses counts
  /// record-policy breaches. Both zero on every healthy trial, so the
  /// serialized bytes stay deterministic with the watchdog armed.
  std::uint32_t watchdog_trips = 0;
  std::uint32_t watchdog_near_misses = 0;
  bool operator==(const TrialResult&) const = default;
};

/// Reliability statistics of one r bucket.
struct BucketStats {
  std::uint32_t r = 0;
  std::uint32_t trials = 0;
  std::uint32_t completed = 0;   ///< CompletedClean
  std::uint32_t recovered = 0;   ///< CompletedRecovered
  std::uint32_t degraded = 0;
  std::uint32_t deadlocked = 0;
  std::uint32_t corrupt = 0;
  std::uint32_t failed = 0;
  /// (completed + recovered) / trials — P(sort completes | r faults).
  double completion_probability = 0.0;
  /// Over trials that produced a result (completed + recovered):
  sim::SimTime mean_makespan = 0.0;
  sim::SimTime min_makespan = 0.0;
  sim::SimTime max_makespan = 0.0;
  sim::SimTime mean_detect = 0.0;
  /// mean_makespan / bucket-0 mean_makespan: the expected-slowdown curve
  /// (1.0 for r = 0; 0.0 when either bucket has no completions).
  double mean_slowdown = 0.0;
  /// Nearest-rank quantiles of hotspot_share over completing trials.
  double hotspot_p50 = 0.0;
  double hotspot_p90 = 0.0;
  double hotspot_max = 0.0;
  /// Nearest-rank quantiles of the recovery-latency stages over the
  /// bucket's *recovered* trials (CompletedRecovered only — clean runs
  /// have no episodes and would drag every percentile to zero).
  sim::SimTime detect_latency_p50 = 0.0;
  sim::SimTime detect_latency_p90 = 0.0;
  sim::SimTime rollcall_latency_p50 = 0.0;
  sim::SimTime rollcall_latency_p90 = 0.0;
  sim::SimTime salvage_latency_p50 = 0.0;
  sim::SimTime salvage_latency_p90 = 0.0;
  sim::SimTime restart_latency_p50 = 0.0;
  sim::SimTime restart_latency_p90 = 0.0;
  /// Diagnosis root causes over the bucket's non-clean trials, indexed by
  /// sim::Diagnosis::RootKind (None counts runs that lacked evidence).
  std::array<std::uint32_t, kRootKindCount> roots{};
  bool operator==(const BucketStats&) const = default;
};

/// Campaign identity echoed into the report header — everything needed
/// to re-run it, minus the worker count (a non-semantic knob that must
/// not influence the serialized bytes).
struct CampaignMeta {
  cube::Dim n = 0;
  std::size_t r_max = 0;
  std::uint32_t scenarios = 0;
  std::uint64_t seed = 0;
  std::size_t num_keys = 0;
  double link_cut_probability = 0.0;
  std::string executor;  ///< "sequential" | "threaded"
  sim::SimTime envelope = 0.0;
  bool operator==(const CampaignMeta&) const = default;
};

struct CampaignReport {
  CampaignMeta meta;
  std::vector<TrialResult> trials;   ///< index order
  std::vector<BucketStats> buckets;  ///< r = 0 .. r_max
  /// Campaign-wide outcome rollup, indexed by core::RunOutcome.
  std::array<std::uint32_t, core::kRunOutcomeCount> outcomes{};
  /// Key-lineage audit rollup: trials whose custody audit ran / passed.
  std::uint64_t lineage_audited = 0;
  std::uint64_t lineage_ok = 0;
  /// Watchdog rollup over all trials (zeros when no watchdog was armed).
  std::uint64_t watchdog_trips = 0;
  std::uint64_t watchdog_near_misses = 0;
  /// True when the campaign was cancelled (SIGINT flush, campaign-level
  /// watchdog trip under record policy) and only the completed trials
  /// were aggregated: `trials` then holds fewer rows than the universe.
  bool partial = false;

  /// Exact conservation: every bucket's class counts sum to its trial
  /// count and the bucket trial counts sum to trials.size().
  bool conserves_trials() const;
  /// The reliability curve is monotone non-increasing in r.
  bool completion_monotone() const;

  bool operator==(const CampaignReport&) const = default;
};

/// Reduce per-trial rows (in index order) to the full report.
CampaignReport aggregate_campaign(CampaignMeta meta,
                                  std::vector<TrialResult> trials);

/// Serialize as the util::kCampaignSchemaVersion campaign JSON block.
/// Byte-stable: fixed key order, %.17g doubles, no locale dependence.
void write_campaign_json(std::ostream& os, const CampaignReport& report);

/// Human-readable per-r summary table (the `ftdiag campaign` rendering
/// builds on the same layout).
std::string campaign_summary(const CampaignReport& report);

}  // namespace ftsort::campaign
