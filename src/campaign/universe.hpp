// The Monte Carlo fault universe: a deterministic, seeded enumeration of
// the fault configurations a reliability campaign sweeps.
//
// The paper validates recovery against single hand-picked scenarios
// (Example 2, Fig. 7); a campaign instead samples thousands of random
// fault sets × injection times and reports coverage over that universe —
// P(sort completes | r faults) and expected slowdown curves. The sampling
// discipline here is what makes the curves trustworthy:
//
//   * Determinism / replay. Every trial is a pure function of
//     (campaign seed, trial index): `sample_trial` derives the trial's
//     fault events, injection times, and key-generation seed from the
//     seed pair alone, with no shared RNG stream between trials. Any
//     trial of any finished campaign can therefore be replayed in
//     isolation — same spec, same Machine, same Diagnosis — which is the
//     contract the campaign determinism tests pin.
//
//   * Nested fault prefixes (common random numbers). Trials are grouped
//     into *scenarios* of r_max fault events each; the trial for bucket r
//     of scenario s injects exactly the first r events of s's sequence.
//     Comparing buckets therefore compares the same random draws with
//     more or fewer faults applied — the classic coupling that makes the
//     empirical completion-probability curve monotone non-increasing in r
//     in practice, instead of jittering on independent-sample noise.
//
//   * Coordinator-witness guard. The online-recovery coordinator is the
//     lowest statically-healthy address (node 0 here — campaign trials
//     start fault-free). Its *witness set* is its n cube neighbours: the
//     nodes whose links carry every roll-call, verdict, and salvage
//     message in and out of the root. A scenario whose full fault
//     sequence kills every witness or cuts every root link would wall
//     the coordinator off and make every bucket of the scenario
//     degenerate, so the sampler rejects and redraws it. For r_max < n
//     the guard is vacuous (r_max faults cannot cover n witnesses) —
//     the property tests assert exactly that — but it keeps r_max >= n
//     configurations meaningful.
//
//   * Injection-time envelope. Fault times are drawn uniformly from
//     [0, envelope], where the envelope is the campaign's fault-free
//     calibration makespan times a headroom factor (runner.hpp) — i.e.
//     inside the run's phase envelope, so every paper phase is exposed
//     to faults, including "the fault lands after the sort finished"
//     near the upper edge (which must classify as a clean completion).
#pragma once

#include <cstdint>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault_injector.hpp"

namespace ftsort::campaign {

/// Shape of the fault universe. `trials()` = scenarios × (r_max + 1):
/// bucket r of scenario s is trial index s × (r_max + 1) + r.
struct UniverseConfig {
  cube::Dim n = 6;               ///< cube dimension of every trial
  std::size_t r_max = 2;         ///< faults in a scenario's full sequence
  std::uint32_t scenarios = 25;  ///< independent fault sequences
  std::size_t num_keys = 256;    ///< keys sorted per trial
  /// Each fault event is a link cut with this probability, else a node
  /// kill. 0 gives the paper's pure fail-stop processor universe.
  double link_cut_probability = 0.25;
  /// Injection window headroom over the calibration makespan; > 1 so the
  /// tail of the window lands after a fault-free run would have finished.
  double envelope_scale = 1.25;

  std::uint32_t buckets() const {
    return static_cast<std::uint32_t>(r_max) + 1u;
  }
  std::uint32_t trials() const { return scenarios * buckets(); }
};

/// One scheduled fault: a processor death or a direct-link cut at a
/// logical injection time.
struct FaultEvent {
  enum class Kind : std::uint8_t { NodeKill, LinkCut };
  Kind kind = Kind::NodeKill;
  cube::NodeId a = 0;  ///< victim (kill) or lower endpoint (cut)
  cube::NodeId b = 0;  ///< other endpoint (cut); == a for kills
  sim::SimTime when = 0.0;
  bool operator==(const FaultEvent&) const = default;
};

/// Fully-resolved spec of one trial, replayable in isolation.
struct TrialSpec {
  std::uint32_t index = 0;     ///< campaign-wide trial index
  std::uint32_t scenario = 0;  ///< index / (r_max + 1)
  std::uint32_t r = 0;         ///< index % (r_max + 1) — faults injected
  std::uint64_t keys_seed = 0;  ///< per-scenario input-key stream
  sim::SimTime envelope = 0.0;  ///< injection window this spec was drawn in
  /// The first `r` events of the scenario's sequence, in draw order.
  std::vector<FaultEvent> events;

  /// The machine-ready injector for this trial's events.
  sim::FaultInjector injector() const;

  bool operator==(const TrialSpec&) const = default;
};

/// Deterministic per-scenario seed stream (SplitMix64-based); exposed so
/// tests can pin its stability — changing it silently would invalidate
/// every recorded campaign's replay contract.
std::uint64_t scenario_seed(std::uint64_t campaign_seed,
                            std::uint32_t scenario, std::uint32_t nonce);

/// Draw scenario `s`'s full fault sequence (r_max events): distinct kill
/// victims, distinct cut pairs, times uniform in [0, envelope], redrawn
/// (nonce bump) until the coordinator-witness guard passes.
std::vector<FaultEvent> sample_scenario(const UniverseConfig& cfg,
                                        std::uint64_t campaign_seed,
                                        std::uint32_t scenario,
                                        sim::SimTime envelope);

/// Resolve trial `index` of the campaign: scenario prefix + key seed.
/// Pure in (cfg, campaign_seed, index, envelope).
TrialSpec sample_trial(const UniverseConfig& cfg, std::uint64_t campaign_seed,
                       std::uint32_t index, sim::SimTime envelope);

/// The guard predicate, exposed for the property tests: true when the
/// event sequence leaves the coordinator (node 0) at least one live
/// witness — a neighbour that is not killed and whose link to the root
/// is not cut.
bool root_witness_survives(cube::Dim n,
                           const std::vector<FaultEvent>& events);

}  // namespace ftsort::campaign
