#include "campaign/universe.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ftsort::campaign {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  util::SplitMix64 sm(x);
  return sm.next();
}

}  // namespace

sim::FaultInjector TrialSpec::injector() const {
  sim::FaultInjector inj;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultEvent::Kind::NodeKill)
      inj.kill_node_at(ev.a, ev.when);
    else
      inj.cut_link_at(ev.a, ev.b, ev.when);
  }
  return inj;
}

std::uint64_t scenario_seed(std::uint64_t campaign_seed,
                            std::uint32_t scenario, std::uint32_t nonce) {
  // Two SplitMix64 hops keep the per-scenario streams pairwise
  // independent of each other and of the campaign seed's raw bits; the
  // nonce shifts the whole stream when the witness guard rejects a draw.
  return mix64(mix64(campaign_seed + 0x5ca1ab1e00000000ull +
                     (static_cast<std::uint64_t>(scenario) << 20)) +
               nonce);
}

bool root_witness_survives(cube::Dim n,
                           const std::vector<FaultEvent>& events) {
  // A witness (neighbour 1 << d of node 0) is lost when it is killed or
  // its direct link to the root is cut; a kill only silences the
  // computation (partial fault), but a silent witness can no longer
  // check in, witness an exchange, or salvage keys for the coordinator.
  std::uint32_t lost = 0;
  for (cube::Dim d = 0; d < n; ++d) {
    const cube::NodeId w = cube::NodeId{1} << d;
    for (const FaultEvent& ev : events) {
      const bool kills_witness =
          ev.kind == FaultEvent::Kind::NodeKill && ev.a == w;
      const bool cuts_root_link = ev.kind == FaultEvent::Kind::LinkCut &&
                                  ((ev.a == 0 && ev.b == w) ||
                                   (ev.a == w && ev.b == 0));
      if (kills_witness || cuts_root_link) {
        ++lost;
        break;
      }
    }
  }
  return lost < static_cast<std::uint32_t>(n);
}

std::vector<FaultEvent> sample_scenario(const UniverseConfig& cfg,
                                        std::uint64_t campaign_seed,
                                        std::uint32_t scenario,
                                        sim::SimTime envelope) {
  FTSORT_REQUIRE(cfg.n >= 1 && envelope > 0.0);
  const std::uint32_t num_nodes = cube::num_nodes(cfg.n);
  std::vector<FaultEvent> events;
  for (std::uint32_t nonce = 0;; ++nonce) {
    util::Rng rng(scenario_seed(campaign_seed, scenario, nonce));
    events.clear();
    events.reserve(cfg.r_max);
    while (events.size() < cfg.r_max) {
      FaultEvent ev;
      ev.when = rng.uniform01() * envelope;
      if (rng.chance(cfg.link_cut_probability)) {
        ev.kind = FaultEvent::Kind::LinkCut;
        // Distinct unordered pairs; endpoints stored low address first.
        for (;;) {
          const auto u = static_cast<cube::NodeId>(rng.below(num_nodes));
          const auto d = static_cast<cube::Dim>(
              rng.below(static_cast<std::uint64_t>(cfg.n)));
          ev.a = std::min<cube::NodeId>(u, u ^ (cube::NodeId{1} << d));
          ev.b = std::max<cube::NodeId>(u, u ^ (cube::NodeId{1} << d));
          const bool dup = std::any_of(
              events.begin(), events.end(), [&](const FaultEvent& e) {
                return e.kind == FaultEvent::Kind::LinkCut && e.a == ev.a &&
                       e.b == ev.b;
              });
          if (!dup) break;
        }
      } else {
        ev.kind = FaultEvent::Kind::NodeKill;
        // Distinct victims (an injector keeps the earliest of duplicate
        // kills anyway; distinctness keeps r an honest fault count).
        for (;;) {
          ev.a = static_cast<cube::NodeId>(rng.below(num_nodes));
          ev.b = ev.a;
          const bool dup = std::any_of(
              events.begin(), events.end(), [&](const FaultEvent& e) {
                return e.kind == FaultEvent::Kind::NodeKill && e.a == ev.a;
              });
          if (!dup) break;
        }
      }
      events.push_back(ev);
    }
    if (root_witness_survives(cfg.n, events)) return events;
    // Structurally unreachable for r_max < n (fewer faults than
    // witnesses); keeps r_max >= n universes non-degenerate.
  }
}

TrialSpec sample_trial(const UniverseConfig& cfg, std::uint64_t campaign_seed,
                       std::uint32_t index, sim::SimTime envelope) {
  FTSORT_REQUIRE(index < cfg.trials());
  TrialSpec spec;
  spec.index = index;
  spec.scenario = index / cfg.buckets();
  spec.r = index % cfg.buckets();
  spec.envelope = envelope;
  // Keys are shared by every bucket of a scenario (common random
  // numbers): bucket r and bucket r+1 sort the same input, so their
  // outcomes differ only by the extra fault.
  spec.keys_seed = mix64(scenario_seed(campaign_seed, spec.scenario, 0) +
                         0x4b455953ull /* "KEYS" */);
  std::vector<FaultEvent> full =
      sample_scenario(cfg, campaign_seed, spec.scenario, envelope);
  full.resize(spec.r);
  spec.events = std::move(full);
  return spec;
}

}  // namespace ftsort::campaign
