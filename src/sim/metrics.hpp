// Per-node, per-phase metrics registry of a simulation run.
//
// When enabled, every cost-charging site of the Machine (sends, receives,
// comparisons, drops, timeouts) also bumps the counters of the node's
// *ambient phase* (see sim/phase.hpp). The registry is a fixed-size
// per-node table sized once at enable time, and each node program writes
// only its own row, so the hot path takes no lock and performs no
// allocation — the same sharding discipline as the threaded scheduler.
// Everything recorded is logical (derived from message causality, never
// from host scheduling), so per-phase totals are byte-identical across the
// sequential and threaded executors.
//
// Off by default, gated exactly like `Trace::enabled_`: a disabled registry
// costs one predictable branch per charge site.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

/// Log2 message-size histogram buckets: bucket b counts payloads with
/// floor(log2(keys)) == b (empty payloads land in bucket 0), clamped above.
inline constexpr std::size_t kMsgSizeBuckets = 16;

/// Counters of one (node, phase) cell, or an aggregate over cells. All time
/// fields are logical SimTime (µs), deterministic across executors.
struct PhaseCounters {
  std::uint64_t messages = 0;        ///< sends issued in this phase
  std::uint64_t keys_sent = 0;       ///< Σ sent payload sizes
  std::uint64_t key_hops = 0;        ///< Σ payload size × hops
  std::uint64_t comparisons = 0;     ///< charged key comparisons
  std::uint64_t recvs = 0;           ///< messages received
  std::uint64_t keys_received = 0;   ///< Σ received payload sizes
  std::uint64_t messages_dropped = 0;  ///< sends lost to dead nodes/links
  std::uint64_t timeouts = 0;        ///< recv_or_timeout expirations
  std::uint64_t pool_checkouts = 0;  ///< payload buffers checked out
  SimTime send_busy = 0.0;     ///< link-injection time charged to senders
  SimTime compute_time = 0.0;  ///< compare + charge_time work
  SimTime recv_wait = 0.0;     ///< queue wait: arrival (or deadline) − clock
  std::array<std::uint32_t, kMsgSizeBuckets> msg_size_hist{};

  PhaseCounters& operator+=(const PhaseCounters& o);
  bool operator==(const PhaseCounters&) const = default;

  static std::size_t size_bucket(std::uint64_t keys);
};

/// One node's row: a fixed array indexed by Phase.
using NodePhaseCounters = std::array<PhaseCounters, kPhaseCount>;

/// Copyable point-in-time copy of the registry, carried in RunReport.
struct MetricsSnapshot {
  std::vector<NodePhaseCounters> nodes;  ///< index = machine address

  bool empty() const { return nodes.empty(); }
  /// Aggregate of one phase over all nodes.
  PhaseCounters total(Phase p) const;
  /// Aggregate of everything (all phases, all nodes).
  PhaseCounters grand_total() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

class Metrics {
 public:
  /// Size the table for `num_nodes` and start recording. Zeroes any
  /// previous contents. The only allocation the registry ever performs.
  void enable(std::uint32_t num_nodes) {
    nodes_.assign(num_nodes, NodePhaseCounters{});
    enabled_ = true;
  }
  void disable() {
    enabled_ = false;
    nodes_.clear();
  }
  bool enabled() const { return enabled_; }

  /// Zero every counter, keeping the table allocation (run-to-run reuse).
  void reset() {
    for (NodePhaseCounters& row : nodes_) row.fill(PhaseCounters{});
  }

  /// The (node, phase) cell. Callers must write only from the node's own
  /// execution context (its thread on the MIMD executor) — that is what
  /// makes the lock-free sharding sound.
  PhaseCounters& at(cube::NodeId u, Phase p) {
    return nodes_[u][static_cast<std::size_t>(p)];
  }

  MetricsSnapshot snapshot() const { return MetricsSnapshot{nodes_}; }

 private:
  bool enabled_ = false;
  std::vector<NodePhaseCounters> nodes_;
};

// ---------------------------------------------------------------------------
// Phase breakdown: where the makespan went.

struct TraceEvent;  // sim/trace.hpp

/// Per-phase slice of a run: aggregate counters plus — when an event trace
/// was recorded — this phase's contribution to the makespan along the
/// critical path, split into communication (recv waits and message flight)
/// and computation.
struct PhaseBreakdown {
  struct Slice {
    Phase phase = Phase::Unattributed;
    PhaseCounters counters;         ///< totals over all nodes
    SimTime critical_time = 0.0;    ///< share of the makespan
    SimTime critical_comm = 0.0;
    SimTime critical_compute = 0.0;
    bool operator==(const Slice&) const = default;
  };
  /// One slice per Phase, in enum order (zero slices included so the
  /// exporters emit a stable shape).
  std::vector<Slice> slices;
  /// True when a trace was available and the critical-path walk ran; the
  /// per-slice critical_* fields are zero otherwise.
  bool has_critical_path = false;
  /// Σ critical_time over slices; equals the makespan (up to the walk's
  /// final segment landing at time 0) when has_critical_path.
  SimTime critical_total = 0.0;

  bool empty() const { return slices.empty(); }
  const Slice& of(Phase p) const {
    return slices[static_cast<std::size_t>(p)];
  }

  bool operator==(const PhaseBreakdown&) const = default;
};

/// Build the breakdown from a metrics snapshot and (optionally) the run's
/// trace events. The critical-path walk starts at the node that achieved
/// the makespan and follows time backwards: within a node it attributes
/// elapsed time to the phase of the event that closed each gap; at a
/// receive that had to wait it hops to the matching send on the peer, so
/// message flight is charged as communication on the receiver's phase.
/// `events` may be empty (counters only); deterministic across executors
/// because it uses only per-node event order and logical times.
PhaseBreakdown build_phase_breakdown(const MetricsSnapshot& metrics,
                                     const std::vector<TraceEvent>& events,
                                     SimTime makespan,
                                     const std::vector<SimTime>& node_clocks);

}  // namespace ftsort::sim
