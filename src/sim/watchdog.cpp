#include "sim/watchdog.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/machine.hpp"
#include "sim/phase.hpp"
#include "util/contracts.hpp"
#include "util/schema.hpp"

namespace ftsort::sim {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::Compute: return "compute";
    case EventKind::Drop: return "drop";
    case EventKind::Timeout: return "timeout";
    case EventKind::Kill: return "kill";
    case EventKind::SpanBegin: return "span_begin";
    case EventKind::SpanEnd: return "span_end";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::size_t Watchdog::add_slot(std::string label) {
  FTSORT_REQUIRE(!started_);
  slots_.push_back(std::make_unique<Slot>(std::move(label)));
  return slots_.size() - 1;
}

void Watchdog::set_activity_namer(
    std::function<std::string(std::uint64_t)> namer) {
  FTSORT_REQUIRE(!started_);
  namer_ = std::move(namer);
}

void Watchdog::on_trip(std::function<void()> fn) {
  FTSORT_REQUIRE(!started_);
  on_trip_ = std::move(fn);
}

void Watchdog::start() {
  if (!cfg_.enabled) return;
  const std::lock_guard<std::mutex> guard(mu_);
  FTSORT_REQUIRE(!started_);
  started_ = true;
  stop_ = false;
  monitor_ = std::thread([this] { run_monitor(); });
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> guard(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
  const std::lock_guard<std::mutex> guard(mu_);
  started_ = false;
}

void Watchdog::run_monitor() {
  const auto start = Clock::now();
  auto last_change = start;
  std::vector<std::uint64_t> last_beats(slots_.size(), 0);
  std::vector<Clock::time_point> slot_change(slots_.size(), start);
  std::uint64_t last_sum = 0;
  std::uint64_t max_gap_ms = 0;

  // The freshest heartbeat table, rebuilt every poll under mu_ so report()
  // (the progress line, the end-of-run stats) always has current ages.
  const auto capture = [&](Clock::time_point now) {
    capture_.clear();
    capture_.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = *slots_[i];
      WatchdogSlotView view;
      view.label = s.label;
      view.beats = s.beats.load(std::memory_order_relaxed);
      view.age_ms = ms_between(slot_change[i], now);
      const std::uint64_t act = s.activity.load(std::memory_order_relaxed);
      if (act == kActivityTerminal) {
        view.terminal = true;
        view.activity = "terminal";
      } else if (act == kActivityNone) {
        view.activity = "-";
      } else {
        view.activity = namer_ ? namer_(act) : std::to_string(act);
      }
      capture_.push_back(std::move(view));
    }
  };

  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(cfg_.interval_ms),
                 [&] { return stop_; });
    if (stop_) break;
    ++polls_;
    const auto now = Clock::now();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::uint64_t b =
          slots_[i]->beats.load(std::memory_order_relaxed);
      if (b != last_beats[i]) {
        last_beats[i] = b;
        slot_change[i] = now;
      }
      sum += b;
    }
    capture(now);
    if (sum != last_sum) {
      // Healthy progress: remember the longest gap we have ever waited
      // between observations — the measured-progress scale for the gate.
      max_gap_ms = std::max(max_gap_ms, ms_between(last_change, now));
      last_sum = sum;
      last_change = now;
      continue;
    }
    const std::uint64_t silent_ms = ms_between(last_change, now);
    effective_deadline_ms_ =
        std::max<std::uint64_t>(cfg_.deadline_ms, kGapHeadroom * max_gap_ms);
    if (silent_ms < effective_deadline_ms_) continue;
    // Breach: global silence past the effective deadline.
    stall_ms_ = silent_ms;
    if (!cfg_.abort_on_trip) {
      ++near_misses_;
      last_change = now;  // re-baseline; keep monitoring
      continue;
    }
    ++trips_;
    const auto fn = on_trip_;
    lk.unlock();
    // Latch *before* the callback: the owner's unwedged threads may check
    // tripped() as soon as they wake.
    tripped_.store(true, std::memory_order_release);
    if (fn) fn();
    return;
  }
  capture(Clock::now());
}

WatchdogReport Watchdog::report_locked() const {
  WatchdogReport rep;
  rep.enabled = cfg_.enabled;
  rep.abort_on_trip = cfg_.abort_on_trip;
  rep.deadline_ms = cfg_.deadline_ms;
  rep.interval_ms = cfg_.interval_ms;
  rep.trips = trips_;
  rep.near_misses = near_misses_;
  rep.polls = polls_;
  rep.effective_deadline_ms = effective_deadline_ms_;
  rep.stall_ms = stall_ms_;
  rep.slots = capture_;
  return rep;
}

WatchdogReport Watchdog::report() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return report_locked();
}

std::string render_watchdog_dump(const WatchdogReport& rep,
                                 const WatchdogDumpContext& ctx) {
  std::string os;
  os += "{\n";
  os += "  \"watchdog_dump\": true,\n";
  os += "  \"schema_version\": " +
        std::to_string(util::kWatchdogDumpSchemaVersion) + ",\n";
  os += "  \"origin\": \"" + json_escape(ctx.origin) + "\",\n";
  os += std::string("  \"policy\": \"") +
        (rep.abort_on_trip ? "abort" : "record") + "\",\n";
  os += "  \"deadline_ms\": " + std::to_string(rep.deadline_ms) + ",\n";
  os += "  \"effective_deadline_ms\": " +
        std::to_string(rep.effective_deadline_ms) + ",\n";
  os += "  \"interval_ms\": " + std::to_string(rep.interval_ms) + ",\n";
  os += "  \"trips\": " + std::to_string(rep.trips) + ",\n";
  os += "  \"near_misses\": " + std::to_string(rep.near_misses) + ",\n";
  os += "  \"stall_ms\": " + std::to_string(rep.stall_ms) + ",\n";
  os += "  \"heartbeats\": [\n";
  for (std::size_t i = 0; i < rep.slots.size(); ++i) {
    const WatchdogSlotView& s = rep.slots[i];
    os += "    {\"slot\": \"" + json_escape(s.label) +
          "\", \"beats\": " + std::to_string(s.beats) +
          ", \"age_ms\": " + std::to_string(s.age_ms) + ", \"activity\": \"" +
          json_escape(s.activity) + "\", \"terminal\": " +
          (s.terminal ? "true" : "false") + "}";
    os += i + 1 < rep.slots.size() ? ",\n" : "\n";
  }
  os += "  ]";
  if (ctx.diagnosis != nullptr) {
    const Diagnosis& d = *ctx.diagnosis;
    os += ",\n  \"diagnosis\": {\"triggered\": ";
    os += d.triggered() ? "true" : "false";
    os += std::string(", \"kind\": \"") + diagnosis_kind_name(d.kind) +
          "\", \"root_kind\": \"" + diagnosis_root_kind_name(d.root_kind) +
          "\", \"root_node\": " + std::to_string(d.root_node) +
          ", \"root_phase\": \"" + phase_name(d.root_phase) +
          "\", \"stalled\": [";
    for (std::size_t i = 0; i < d.stalled.size(); ++i)
      os += (i ? ", " : "") + std::to_string(d.stalled[i]);
    os += "], \"summary\": \"" + json_escape(d.to_string()) + "\"}";
  }
  if (ctx.host != nullptr && ctx.host->enabled) {
    const SchedShardProfile total = ctx.host->total();
    os += ",\n  \"host_profile\": {\"shards\": " +
          std::to_string(ctx.host->shards.size()) +
          ", \"tasks_resumed\": " + std::to_string(total.tasks_resumed) +
          ", \"cv_waits\": " + std::to_string(total.cv_waits) +
          ", \"mutex_waits\": " + std::to_string(total.mutex_waits) +
          ", \"quiescence_checks\": " +
          std::to_string(ctx.host->quiescence_checks) +
          ", \"quiescence_events\": " +
          std::to_string(ctx.host->quiescence_events) + "}";
  }
  if (ctx.trace_tail != nullptr) {
    os += ",\n  \"trace_tail\": [\n";
    for (std::size_t i = 0; i < ctx.trace_tail->size(); ++i) {
      const TraceEvent& ev = (*ctx.trace_tail)[i];
      os += "    {\"seq\": " + std::to_string(ev.seq) +
            ", \"time\": " + num(ev.time) +
            ", \"node\": " + std::to_string(ev.node) + ", \"kind\": \"" +
            event_kind_name(ev.kind) + "\", \"phase\": \"" +
            phase_name(ev.phase) + "\"}";
      os += i + 1 < ctx.trace_tail->size() ? ",\n" : "\n";
    }
    os += "  ]";
  }
  os += "\n}\n";
  return os;
}

bool write_watchdog_dump(const std::string& path, const WatchdogReport& rep,
                         const WatchdogDumpContext& ctx) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << render_watchdog_dump(rep, ctx);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace ftsort::sim
