// Failure explainers: turn the low-level evidence a failed or degraded run
// leaves behind (blocked waits, expired recv_or_timeout deadlines, observed
// node deaths, configured link cuts) into a structured `Diagnosis` — the
// root event, the paper phase it interrupted, the wait-for edges, and the
// set of nodes transitively stalled by the root.
//
// The same builder serves three producers so their answers agree:
//   - Machine::diagnose() feeds it live node state plus the current run's
//     flight-recorder slice (deadlock messages, RunReport::diagnosis),
//   - core::recovery_sort() calls it when annotating a DegradationError,
//   - the `ftdiag explain` CLI reconstructs a DiagnosisInput from an
//     exported Chrome-trace JSON and gets the identical analysis offline.
//
// Everything here is derived from logical (simulated-time) evidence only,
// so a diagnosis is deterministic and identical across executors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"
#include "sim/phase.hpp"
#include "sim/trace.hpp"

namespace ftsort::sim {

struct Diagnosis {
  enum class Kind : std::uint8_t {
    None,          ///< nothing to explain
    Deadlock,      ///< every live node blocked with no event pending
    TimeoutBurst,  ///< run completed but recv_or_timeout deadlines expired
    NodeLoss,      ///< nodes died but no timeout fired (offline-style kill)
    Degradation,   ///< recovery gave up (DegradationError path)
  };
  enum class RootKind : std::uint8_t {
    None,
    NodeKill,        ///< an injected processor death
    LinkCut,         ///< an injected link cut
    MissingPartner,  ///< the awaited peer finished (or never sends)
    Evicted,         ///< bounded flight recorder dropped the root evidence
  };

  /// One wait-for edge: `node` waits (or waited, if the deadline expired)
  /// for a message from `src` on `tag`.
  struct Wait {
    cube::NodeId node = 0;
    cube::NodeId src = 0;
    Tag tag = 0;
    SimTime time = 0.0;  ///< block time, or deadline expiry for `expired`
    Phase phase = Phase::Unattributed;  ///< waiter's ambient phase
    bool expired = false;  ///< true when this was a recv_or_timeout expiry
    bool operator==(const Wait&) const = default;
  };

  Kind kind = Kind::None;
  RootKind root_kind = RootKind::None;
  cube::NodeId root_node = 0;  ///< killed node / cut endpoint / silent peer
  cube::NodeId root_peer = 0;  ///< other cut endpoint (LinkCut only)
  SimTime root_time = 0.0;
  Phase root_phase = Phase::Unattributed;  ///< phase the root interrupted
  std::vector<Wait> waits;  ///< all wait-for edges, sorted (time, node, src)
  std::vector<cube::NodeId> stalled;  ///< transitive closure, ascending
  /// Events this run's bounded flight recorder evicted before diagnosis.
  /// Nonzero + no surviving kill/cut evidence degrades the root to
  /// `Evicted` instead of confidently blaming a silent peer.
  std::uint64_t trace_dropped = 0;

  bool triggered() const { return kind != Kind::None; }

  /// Deterministic human-readable rendering (single line groups separated
  /// by "; "), used by Machine::deadlock_message(), DegradationError
  /// annotations, and `ftdiag explain`.
  std::string to_string() const;

  bool operator==(const Diagnosis&) const = default;
};

const char* diagnosis_kind_name(Diagnosis::Kind k);
const char* diagnosis_root_kind_name(Diagnosis::RootKind k);

/// Raw evidence for diagnose(). Producers fill what they can see; the
/// builder sorts and deduplicates.
struct DiagnosisInput {
  struct Kill {
    cube::NodeId node = 0;
    SimTime time = 0.0;
    Phase phase = Phase::Unattributed;  ///< victim's phase at death
  };
  struct Cut {
    cube::NodeId a = 0;
    cube::NodeId b = 0;
    SimTime time = 0.0;
  };
  std::vector<Diagnosis::Wait> waits;
  std::vector<Kill> kills;
  std::vector<Cut> cuts;
  /// Flight-recorder evictions during the diagnosed run (ring overflow).
  std::uint64_t trace_dropped = 0;
};

/// Build a Diagnosis: pick the root event (earliest kill, else earliest
/// cut, else the silent peer the earliest unanswered wait points at), then
/// close the wait-for graph over it to find the transitively stalled set.
Diagnosis diagnose(DiagnosisInput in, Diagnosis::Kind kind);

/// Extract the evidence a recorded event stream holds: Timeout events
/// become expired waits, Kill events become kills. Blocked-but-undelivered
/// waits and link cuts are invisible to the trace; callers with machine
/// access merge those in themselves.
DiagnosisInput diagnosis_input_from_events(const std::vector<TraceEvent>& events);

}  // namespace ftsort::sim
