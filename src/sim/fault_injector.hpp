// Runtime fault injection: scheduled mid-run deaths of processors and
// direct links, in *logical* simulation time.
//
// A `FaultInjector` is an immutable schedule handed to a `Machine` before a
// run. Semantics (identical on both executors, see DESIGN.md):
//   * a node scheduled to die at logical time T halts at its first NodeCtx
//     interaction whose clock is >= T (the interaction itself is cancelled);
//     a node blocked in recv when T passes halts at the next global
//     quiescence point, ordered against pending recv timeouts by logical
//     event time;
//   * a message is delivered iff its arrival time precedes the
//     destination's death; later arrivals are dropped (and traced);
//   * a cut link (a, b) severs the direct channel between its endpoints:
//     messages between a and b sent at or after the cut time are dropped.
//     Multi-hop traffic is assumed to be re-routed by the fault-avoiding
//     router and is not affected.
// Deaths are *partial* faults in the paper's sense: the computation stops
// but the routing hardware keeps forwarding, so the static router stays
// valid.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"

namespace ftsort::sim {

/// Internal signal thrown out of a node program when its processor dies.
/// Not an error: the machine treats the program as halted, never failed.
struct KilledSignal {};

inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

class FaultInjector {
 public:
  struct NodeKill {
    cube::NodeId node = 0;
    SimTime when = 0.0;
  };
  struct LinkCut {
    cube::NodeId a = 0;
    cube::NodeId b = 0;
    SimTime when = 0.0;
  };

  FaultInjector() = default;

  /// Schedule processor `u` to die at logical time `t` (earliest wins if
  /// scheduled twice).
  FaultInjector& kill_node_at(cube::NodeId u, SimTime t);
  /// Schedule the direct link {a, b} to be cut at logical time `t`.
  FaultInjector& cut_link_at(cube::NodeId a, cube::NodeId b, SimTime t);

  bool empty() const { return kills_.empty() && cuts_.empty(); }
  const std::vector<NodeKill>& kills() const { return kills_; }
  const std::vector<LinkCut>& cuts() const { return cuts_; }

  /// Scheduled death time of `u`, or kNever.
  SimTime node_kill_time(cube::NodeId u) const;
  /// Cut time of the (unordered) link {a, b}, or kNever.
  SimTime link_cut_time(cube::NodeId a, cube::NodeId b) const;

  std::string to_string() const;

 private:
  std::vector<NodeKill> kills_;  // at most one entry per node
  std::vector<LinkCut> cuts_;    // at most one entry per unordered pair
};

}  // namespace ftsort::sim
