// Phase taxonomy for observability: every message, comparison, and charged
// microsecond of a run can be attributed to one phase of the paper's
// algorithm (Steps 1-8 of §3) or of the online-recovery protocol. The
// ambient phase of a node is set by RAII `PhaseSpan`s (sim/machine.hpp)
// opened by the algorithm layer; library kernels (spmd_bitonic,
// collectives) tag themselves only when the caller left the phase
// unattributed, so the algorithm's step-level tags always win.
#pragma once

#include <cstdint>
#include <string_view>

namespace ftsort::sim {

enum class Phase : std::uint8_t {
  Unattributed = 0,  ///< outside any span
  Scatter,           ///< Step 2: host scatter over the entry node
  LocalSort,         ///< Step 3a: per-node heapsort
  SubcubeSort,       ///< Step 3b: single-fault bitonic sort of a subcube
  MergeExchange,     ///< Steps 4-7: inter-subcube merge-split exchanges
  Resort,            ///< Step 8: intra-subcube re-sort after each exchange
  Gather,            ///< final gather back through the entry node
  Collective,        ///< generic collective (broadcast/scatter/gather/...)
  RecoverySort,      ///< recovery: the resilient sort attempt itself
  RecoveryCheckin,   ///< recovery: roll-call check-in
  RecoveryVerdict,   ///< recovery: verdict distribution / wait
  RecoverySalvage,   ///< recovery: witness collection and key salvage
  RecoveryRescatter, ///< recovery: re-partition and block re-scatter
};

inline constexpr std::size_t kPhaseCount = 13;

/// Stable machine-readable name (used by the JSON exporters and as the
/// Perfetto slice name). Maps spans back to the paper's step numbers.
constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Unattributed: return "unattributed";
    case Phase::Scatter: return "step2_scatter";
    case Phase::LocalSort: return "step3_local_sort";
    case Phase::SubcubeSort: return "step3_subcube_bitonic";
    case Phase::MergeExchange: return "step5_merge_exchange";
    case Phase::Resort: return "step8_resort";
    case Phase::Gather: return "gather";
    case Phase::Collective: return "collective";
    case Phase::RecoverySort: return "recovery_sort";
    case Phase::RecoveryCheckin: return "recovery_checkin";
    case Phase::RecoveryVerdict: return "recovery_verdict";
    case Phase::RecoverySalvage: return "recovery_salvage";
    case Phase::RecoveryRescatter: return "recovery_rescatter";
  }
  return "?";
}

/// Inverse of phase_name(), for parsers (ftdiag, trace re-import).
/// Unknown names map to Phase::Unattributed.
constexpr Phase phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    if (name == phase_name(p)) return p;
  }
  return Phase::Unattributed;
}

}  // namespace ftsort::sim
