// Key-lineage provenance: per-key custody tracking and the exact
// no-loss/no-dup audit.
//
// `Lineage` is an opt-in registry (sibling of Metrics/LinkStats/Timeline)
// that assigns every input key — dummies included — a stable integer id at
// scatter and follows it through the run: which node holds it, how many
// links it crossed per cube dimension, and the custody chain of events
// (assignment, merge-split moves, witness capture, salvage, re-scatter,
// retirement). At gather the host replays the output against the id table
// and produces an exact audit: every real key present exactly once, with
// the lost/duplicated ids, their last custodians, and the interrupted
// phase named on violation.
//
// Custody model (DESIGN.md §7): the simulator's exchanges are *copy*
// transports — a merge-split sends a copy of the block and commits its new
// content only at the local merge, so an aborted step loses nothing.
// Lineage mirrors that: custody transfers commit at the merge points (the
// `note_retain` hook), never at send or receive, which makes a dropped or
// orphaned message a non-event for custody (the sender still holds the
// keys) and leaves the keys of a dead node parked at the corpse until
// salvage reassigns them.
//
// Determinism: both partners of an exchange call `note_retain` for the
// same (min, max, tag) pair-step; whichever arrives first resolves the
// *complete* partition for both sides with a canonical rule — the pool of
// ids held by the pair is split by popping the smallest ids per value for
// the lower-numbered node's retained multiset, the complement going to the
// higher — so the resolution is independent of call order and therefore
// byte-identical across the sequential and threaded executors. Hop charges
// and untracked counters are integer sums, order-independent by
// construction. Charging never touches a node clock: zero simulated time.
//
// Conservation: Σ over ids of per-dimension hop counts, plus the
// per-dimension `untracked` counters (payload words the sender does not
// hold: control words, witness copies, host-I/O fan-out), equals the
// LinkStats per-dimension key_hops exactly — both are charged at the same
// site (NodeCtx::send) from the same router path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/message.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

/// Custody-chain cap per key: events past it are counted in
/// `dropped_events` instead of growing without bound (a many-episode
/// recovery run can retain a key dozens of times).
inline constexpr std::size_t kLineageMaxEventsPerKey = 64;

/// Sentinel for "no witness recorded".
inline constexpr cube::NodeId kLineageNoWitness =
    static_cast<cube::NodeId>(-1);

enum class LineageEventKind : std::uint8_t {
  Assign = 0,    ///< id created at (re-)scatter; `node` is the first holder
  Move,          ///< custody committed at a merge point; `peer` = old holder
  Salvage,       ///< reassigned off a corpse; `peer` = the winning witness
  Rescatter,     ///< reassigned from a live node at re-scatter
  Retire,        ///< dummy id left circulation at re-scatter
  Lost,          ///< id unaccounted for at re-scatter (salvage failure)
};

/// Stable single-letter code used by the metrics-JSON trail strings and
/// decoded by `ftdiag lineage` — keep the two ends in sync.
constexpr char lineage_event_code(LineageEventKind k) {
  switch (k) {
    case LineageEventKind::Assign: return 'A';
    case LineageEventKind::Move: return 'M';
    case LineageEventKind::Salvage: return 'S';
    case LineageEventKind::Rescatter: return 'R';
    case LineageEventKind::Retire: return 'T';
    case LineageEventKind::Lost: return 'L';
  }
  return '?';
}

struct LineageEvent {
  LineageEventKind kind = LineageEventKind::Assign;
  Phase phase = Phase::Unattributed;
  cube::NodeId node = 0;  ///< holder after the event
  cube::NodeId peer = 0;  ///< previous holder, or the witness for Salvage
  std::int32_t step = -1; ///< wire tag / protocol step; -1 when n/a
  bool operator==(const LineageEvent&) const = default;
};

/// One key's full provenance record, indexed by id in the snapshot.
struct LineageKeyRecord {
  Key value = 0;
  cube::NodeId origin = 0;   ///< first holder at assignment
  cube::NodeId holder = 0;   ///< current/final holder
  bool dummy = false;        ///< scatter padding (kDummyKey)
  bool retired = false;      ///< dummy that left circulation at re-scatter
  bool lost = false;         ///< dropped out of custody (salvage failure)
  bool salvaged = false;     ///< chain passes through a Salvage event
  cube::NodeId witness = kLineageNoWitness;  ///< freshest witness holder
  std::int32_t witness_step = -1;
  std::uint32_t moves = 0;   ///< custody transfers committed
  std::vector<std::uint64_t> hops;  ///< [dim] link crossings charged
  std::vector<LineageEvent> chain;

  std::uint64_t hops_total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t h : hops) sum += h;
    return sum;
  }
  bool operator==(const LineageKeyRecord&) const = default;
};

/// Host-side audit verdict, computed from the snapshot and the gathered
/// output by `audit_lineage` (so tests and tools can re-run it against a
/// tampered output to exercise the violation paths).
struct LineageAudit {
  struct LostKey {
    std::uint64_t id = 0;
    Key value = 0;
    cube::NodeId last_holder = 0;
    Phase phase = Phase::Unattributed;  ///< phase of the last chain event
    bool operator==(const LostKey&) const = default;
  };
  struct DuplicatedValue {
    Key value = 0;
    std::uint64_t extra = 0;  ///< output copies beyond the assigned ids
    bool operator==(const DuplicatedValue&) const = default;
  };

  bool checked = false;  ///< audit ran (gather completed)
  bool ok = false;       ///< no losses, no duplicates
  std::vector<LostKey> lost;
  std::vector<DuplicatedValue> duplicated;
  std::uint64_t salvaged = 0;            ///< keys with a Salvage event
  std::uint64_t witnessed_salvaged = 0;  ///< …whose salvage names a witness
  bool operator==(const LineageAudit&) const = default;
};

/// Immutable result of one tracked run, carried in RunReport::lineage.
struct LineageSnapshot {
  bool enabled = false;
  cube::Dim dim = 0;
  std::uint64_t assigned = 0;  ///< ids created (real + dummy, all attempts)
  std::uint64_t dummies = 0;
  std::uint64_t dropped_events = 0;     ///< chain appends past the cap
  std::uint64_t resolve_mismatches = 0; ///< retained values absent from pool
  std::vector<std::uint64_t> untracked; ///< [dim] hops with no custodian id
  std::vector<LineageKeyRecord> keys;   ///< index = id
  LineageAudit audit;

  bool empty() const { return !enabled; }
  std::uint64_t hops_by_dim(cube::Dim d) const {
    std::uint64_t sum = 0;
    for (const LineageKeyRecord& k : keys)
      sum += k.hops[static_cast<std::size_t>(d)];
    return sum;
  }
  std::uint64_t untracked_total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t u : untracked) sum += u;
    return sum;
  }
  bool operator==(const LineageSnapshot&) const = default;
};

/// Exact no-loss/no-dup audit: replay `output` (the gathered, dummy-free
/// result) against the snapshot's id table, popping the smallest live id
/// per value; output values with no id left are duplicates, unpopped real
/// ids are losses (named with last custodian and phase). Fills
/// `snap.audit`; idempotent.
void audit_lineage(LineageSnapshot& snap, std::span<const Key> output);

/// The provenance registry. Enable + assign before a run
/// (Machine::lineage()); Machine snapshots it into RunReport::lineage.
/// Unlike the other registries it is NOT reset by instantiate_programs —
/// scatter assignment happens host-side before the run starts.
///
/// All mutation funnels through one mutex: lineage is a diagnostic layer,
/// not a hot path, and a single lock keeps the pair-resolution protocol
/// trivially atomic on the threaded executor.
class Lineage {
 public:
  struct SalvageInfo {
    cube::NodeId dead = 0;
    cube::NodeId witness = kLineageNoWitness;
    std::int32_t step = -1;
  };

  void enable(std::uint32_t num_nodes, cube::Dim dim);
  void disable();
  bool enabled() const { return enabled_; }

  /// Drop every record and holding for a fresh run. Not thread-safe.
  void reset();

  /// Host-side scatter: create one id per value of `block` (in block
  /// order), held by `node`. Ids are sequential in call order, so calling
  /// in the partition's (subcube, logical) slot order gives both executors
  /// and both sorter paths the same id universe.
  void assign_block(cube::NodeId node, std::span<const Key> block);

  /// Charge one send's link crossings. For each payload word, the k-th
  /// occurrence of a value is charged to the k-th smallest id of that
  /// value in the *sender's* holding; words the sender does not hold
  /// (control words, witness copies, fan-out of another node's block) are
  /// counted per dimension in `untracked`. `path` is the router walk
  /// (path[0] = src), the same walk LinkStats charges.
  void charge_send(cube::NodeId src, std::span<const cube::NodeId> path,
                   std::span<const Key> payload);

  /// Commit custody for pair-step (me, partner, tag): `kept` is the
  /// caller's post-merge block. First caller resolves the complete
  /// canonical partition for both sides (see file header); the partner's
  /// later call is an idempotent no-op. When `witness_step >= 0` the
  /// resolution also stamps every id in the pair's pool with the opposite
  /// node as its freshest witness at that step (recovery's witness
  /// capture) — stamping at resolution time, under the same lock as the
  /// partition, is what keeps the stamp executor-order independent.
  void note_retain(cube::NodeId me, cube::NodeId partner, std::uint32_t tag,
                   std::span<const Key> kept, Phase phase,
                   std::int32_t witness_step = -1);

  /// Recovery re-scatter: `blocks[u]` is node u's new block. Retires the
  /// old dummy ids, mints new ones for the new padding, and reassigns
  /// every real id to its new holder — ids parked on a node in `salvage`
  /// get a Salvage event naming the winning witness; the rest a Rescatter
  /// event. Real ids left unmatched are marked Lost.
  void note_rescatter(const std::vector<std::vector<Key>>& blocks,
                      std::span<const SalvageInfo> salvage, Phase phase);

  /// Materialise the records (index = id). Call after the run completes.
  LineageSnapshot snapshot() const;

 private:
  struct Rec {
    Key value = 0;
    cube::NodeId origin = 0;
    cube::NodeId holder = 0;
    bool dummy = false;
    bool retired = false;
    bool lost = false;
    bool salvaged = false;
    cube::NodeId witness = kLineageNoWitness;
    std::int32_t witness_step = -1;
    std::uint32_t moves = 0;
    std::vector<std::uint64_t> hops;
    std::vector<LineageEvent> chain;
  };

  using PairStep = std::tuple<cube::NodeId, cube::NodeId, std::uint32_t>;
  static PairStep pair_key(cube::NodeId a, cube::NodeId b,
                           std::uint32_t tag) {
    return {a < b ? a : b, a < b ? b : a, tag};
  }

  std::uint64_t mint(cube::NodeId node, Key value, Phase phase);
  void append_event(Rec& rec, LineageEvent ev);
  /// Insert `id` into node's value→ids holding, keeping the list sorted.
  void hold(cube::NodeId node, Key value, std::uint64_t id);

  bool enabled_ = false;
  cube::Dim dim_ = 0;
  mutable std::mutex mutex_;
  std::vector<Rec> recs_;  ///< index = id
  /// Per node: value → ascending ids currently held.
  std::vector<std::map<Key, std::vector<std::uint64_t>>> holding_;
  std::set<PairStep> resolved_;  ///< pair-steps already partitioned
  std::vector<std::uint64_t> untracked_;  ///< [dim]
  std::uint64_t dummies_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t resolve_mismatches_ = 0;
};

}  // namespace ftsort::sim
