#include "sim/link_stats.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace ftsort::sim {

LinkCell& LinkCell::operator+=(const LinkCell& o) {
  traversals += o.traversals;
  key_hops += o.key_hops;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    phase_traversals[p] += o.phase_traversals[p];
    phase_key_hops[p] += o.phase_key_hops[p];
  }
  return *this;
}

SimTime link_busy_time(const LinkCell& cell, const CostModel& cost) {
  return cost.link_busy(cell.traversals, cell.key_hops);
}

LinkCell LinkStatsSnapshot::dim_total(cube::Dim d) const {
  LinkCell total;
  for (cube::NodeId u = 0; u < num_nodes; ++u) total += at(u, d);
  return total;
}

LinkCell LinkStatsSnapshot::grand_total() const {
  LinkCell total;
  for (const LinkCell& cell : cells) total += cell;
  return total;
}

double hottest_dimension_share(const LinkStatsSnapshot& snap) {
  if (snap.empty()) return 0.0;
  const std::uint64_t total = snap.grand_total().key_hops;
  if (total == 0) return 0.0;
  std::uint64_t hottest = 0;
  for (cube::Dim d = 0; d < snap.dim; ++d)
    hottest = std::max(hottest, snap.dim_total(d).key_hops);
  return static_cast<double>(hottest) / static_cast<double>(total);
}

std::vector<double> dimension_utilization(const LinkStatsSnapshot& snap,
                                          const CostModel& cost,
                                          SimTime makespan) {
  std::vector<double> util(static_cast<std::size_t>(snap.dim), 0.0);
  if (makespan <= 0.0 || snap.num_nodes == 0) return util;
  for (cube::Dim d = 0; d < snap.dim; ++d)
    util[static_cast<std::size_t>(d)] =
        link_busy_time(snap.dim_total(d), cost) /
        (static_cast<double>(snap.num_nodes) * makespan);
  return util;
}

std::vector<int> measured_reindex_by_dim(
    const std::vector<std::vector<int>>& table, cube::Dim m) {
  std::vector<int> by_dim(static_cast<std::size_t>(m), 0);
  for (const std::vector<int>& row : table)
    for (cube::Dim j = 0; j < m && j < static_cast<cube::Dim>(row.size());
         ++j)
      by_dim[static_cast<std::size_t>(j)] =
          std::max(by_dim[static_cast<std::size_t>(j)],
                   row[static_cast<std::size_t>(j)]);
  return by_dim;
}

void LinkStats::enable(std::uint32_t num_nodes, cube::Dim n) {
  n_ = n;
  num_nodes_ = num_nodes;
  cells_.assign(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(n),
                LinkCell{});
  reindex_extra_.assign(num_nodes,
                        std::vector<int>(static_cast<std::size_t>(n), 0));
  reindex_fault_extra_.assign(
      num_nodes, std::vector<int>(static_cast<std::size_t>(n), 0));
  if (shard_mutex_.size() != num_nodes) {
    shard_mutex_.clear();
    shard_mutex_.reserve(num_nodes);
    for (std::uint32_t u = 0; u < num_nodes; ++u)
      shard_mutex_.push_back(std::make_unique<std::mutex>());
  }
  enabled_ = true;
}

void LinkStats::disable() {
  enabled_ = false;
  cells_.clear();
  reindex_extra_.clear();
  reindex_fault_extra_.clear();
}

void LinkStats::reset() {
  std::fill(cells_.begin(), cells_.end(), LinkCell{});
  for (std::vector<int>& row : reindex_extra_)
    std::fill(row.begin(), row.end(), 0);
  for (std::vector<int>& row : reindex_fault_extra_)
    std::fill(row.begin(), row.end(), 0);
}

void LinkStats::charge_path(std::span<const cube::NodeId> path,
                            std::uint64_t keys, Phase p) {
  const auto phase = static_cast<std::size_t>(p);
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    const cube::NodeId from = path[k];
    const std::uint32_t diff = path[k] ^ path[k + 1];
    FTSORT_INVARIANT(std::popcount(diff) == 1);
    const auto d = static_cast<std::size_t>(std::countr_zero(diff));
    LinkCell& cell =
        cells_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
               d];
    const std::lock_guard<std::mutex> guard(*shard_mutex_[from]);
    ++cell.traversals;
    cell.key_hops += keys;
    ++cell.phase_traversals[phase];
    cell.phase_key_hops[phase] += keys;
  }
}

void LinkStats::note_reindex(cube::NodeId u, cube::Dim logical_dim,
                             int extra_hops, bool fault_pair) {
  FTSORT_REQUIRE(extra_hops >= 0);
  const auto j = static_cast<std::size_t>(logical_dim);
  int& slot = reindex_extra_[u][j];
  slot = std::max(slot, extra_hops);
  if (fault_pair) {
    int& fslot = reindex_fault_extra_[u][j];
    fslot = std::max(fslot, extra_hops);
  }
}

LinkStatsSnapshot LinkStats::snapshot() const {
  LinkStatsSnapshot snap;
  snap.dim = n_;
  snap.num_nodes = num_nodes_;
  snap.cells.resize(cells_.size());
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    const std::lock_guard<std::mutex> guard(*shard_mutex_[u]);
    for (cube::Dim d = 0; d < n_; ++d) {
      const std::size_t idx =
          static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(d);
      snap.cells[idx] = cells_[idx];
    }
  }
  snap.reindex_extra = reindex_extra_;
  snap.reindex_fault_extra = reindex_fault_extra_;
  return snap;
}

}  // namespace ftsort::sim
