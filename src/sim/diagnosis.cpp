#include "sim/diagnosis.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>
#include <tuple>

namespace ftsort::sim {

const char* diagnosis_kind_name(Diagnosis::Kind k) {
  switch (k) {
    case Diagnosis::Kind::None: return "none";
    case Diagnosis::Kind::Deadlock: return "deadlock";
    case Diagnosis::Kind::TimeoutBurst: return "timeout_burst";
    case Diagnosis::Kind::NodeLoss: return "node_loss";
    case Diagnosis::Kind::Degradation: return "degradation";
  }
  return "?";
}

const char* diagnosis_root_kind_name(Diagnosis::RootKind k) {
  switch (k) {
    case Diagnosis::RootKind::None: return "none";
    case Diagnosis::RootKind::NodeKill: return "node_kill";
    case Diagnosis::RootKind::LinkCut: return "link_cut";
    case Diagnosis::RootKind::MissingPartner: return "missing_partner";
    case Diagnosis::RootKind::Evicted: return "evicted";
  }
  return "?";
}

std::string Diagnosis::to_string() const {
  if (!triggered()) return "diagnosis: none";
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "diagnosis[" << diagnosis_kind_name(kind) << "]: root cause: ";
  switch (root_kind) {
    case RootKind::NodeKill:
      os << "injected kill of node " << root_node << " at t=" << root_time
         << "us during phase " << phase_name(root_phase);
      break;
    case RootKind::LinkCut:
      os << "injected cut of link " << root_node << "<->" << root_peer
         << " at t=" << root_time << "us during phase "
         << phase_name(root_phase);
      break;
    case RootKind::MissingPartner:
      // Deliberately "peer", not "node": deadlock-message tests assert that
      // finished nodes are never rendered as "node N".
      os << "peer " << root_node
         << " never sent (finished or idle); first unanswered wait at t="
         << root_time << "us during phase " << phase_name(root_phase);
      break;
    case RootKind::Evicted:
      // Honest degradation: the ring overwrote the evidence that would
      // name the real root, so do not blame the surviving silent peer.
      os << "root evicted (trace_dropped=" << trace_dropped
         << "); first surviving unanswered wait points at peer " << root_node
         << " at t=" << root_time << "us during phase "
         << phase_name(root_phase)
         << " -- raise trace_capacity to recover the true root";
      break;
    case RootKind::None:
      os << "unknown";
      break;
  }
  os << "; stalled (transitively): [";
  for (std::size_t i = 0; i < stalled.size(); ++i)
    os << (i ? ", " : "") << stalled[i];
  os << "]";
  if (!waits.empty()) {
    os << "; wait-for:";
    constexpr std::size_t kMaxWaits = 16;
    const std::size_t shown = std::min(waits.size(), kMaxWaits);
    for (std::size_t i = 0; i < shown; ++i) {
      const Wait& w = waits[i];
      os << (i ? " |" : "") << " node " << w.node << ' '
         << (w.expired ? "timed out waiting for" : "waits for")
         << " src=" << w.src << " tag=" << w.tag << " at t=" << w.time
         << "us [" << phase_name(w.phase) << "]";
    }
    if (waits.size() > kMaxWaits)
      os << " | ... (+" << waits.size() - kMaxWaits << " more)";
  }
  return os.str();
}

Diagnosis diagnose(DiagnosisInput in, Diagnosis::Kind kind) {
  Diagnosis d;
  if (in.waits.empty() && in.kills.empty() && in.cuts.empty()) return d;
  d.kind = kind;

  std::sort(in.waits.begin(), in.waits.end(),
            [](const Diagnosis::Wait& a, const Diagnosis::Wait& b) {
              return std::tie(a.time, a.node, a.src, a.tag, a.expired) <
                     std::tie(b.time, b.node, b.src, b.tag, b.expired);
            });
  in.waits.erase(std::unique(in.waits.begin(), in.waits.end()),
                 in.waits.end());
  d.waits = std::move(in.waits);

  // Earliest observation per killed node (a victim can appear both in live
  // node state and in the trace). On a time tie, an observation that knows
  // the phase beats one that does not: the victim's PhaseSpan unwinds before
  // post-mortem node state is read, so live state reports Unattributed while
  // the trace event captured the phase at kill time.
  std::sort(in.kills.begin(), in.kills.end(),
            [](const DiagnosisInput::Kill& a, const DiagnosisInput::Kill& b) {
              const bool a_unattr = a.phase == Phase::Unattributed;
              const bool b_unattr = b.phase == Phase::Unattributed;
              return std::tie(a.time, a.node, a_unattr, a.phase) <
                     std::tie(b.time, b.node, b_unattr, b.phase);
            });
  std::vector<DiagnosisInput::Kill> kills;
  {
    std::set<cube::NodeId> seen;
    for (const auto& k : in.kills)
      if (seen.insert(k.node).second) kills.push_back(k);
  }
  std::sort(in.cuts.begin(), in.cuts.end(),
            [](const DiagnosisInput::Cut& a, const DiagnosisInput::Cut& b) {
              return std::tie(a.time, a.a, a.b) < std::tie(b.time, b.a, b.b);
            });

  // Root selection: the earliest injected event; kills beat cuts on ties;
  // with no injected event, the silent peer the earliest unanswered wait
  // points at.
  const DiagnosisInput::Kill* kill = kills.empty() ? nullptr : &kills.front();
  const DiagnosisInput::Cut* cut = in.cuts.empty() ? nullptr : &in.cuts.front();
  if (kill != nullptr && (cut == nullptr || kill->time <= cut->time)) {
    d.root_kind = Diagnosis::RootKind::NodeKill;
    d.root_node = kill->node;
    d.root_time = kill->time;
    d.root_phase = kill->phase;
  } else if (cut != nullptr) {
    d.root_kind = Diagnosis::RootKind::LinkCut;
    d.root_node = cut->a;
    d.root_peer = cut->b;
    d.root_time = cut->time;
    for (const auto& w : d.waits)
      if (w.src == cut->a || w.src == cut->b) {
        d.root_phase = w.phase;
        break;
      }
  } else {
    std::set<cube::NodeId> waiting;
    for (const auto& w : d.waits) waiting.insert(w.node);
    const Diagnosis::Wait* pick = nullptr;
    for (const auto& w : d.waits)
      if (waiting.count(w.src) == 0) {
        pick = &w;
        break;
      }
    if (pick == nullptr) pick = &d.waits.front();  // pure wait cycle
    // A silent-peer verdict is only trustworthy when the flight recorder
    // kept the whole run: an evicted Kill/Timeout event would have named a
    // different root. Degrade to an explicit "evidence lost" diagnosis.
    d.root_kind = in.trace_dropped > 0 ? Diagnosis::RootKind::Evicted
                                       : Diagnosis::RootKind::MissingPartner;
    d.root_node = pick->src;
    d.root_time = pick->time;
    d.root_phase = pick->phase;
  }
  d.trace_dropped = in.trace_dropped;

  // Transitive closure of the wait-for graph over the root. The stalled
  // set keeps only actual waiters, so the dead/finished root itself (and a
  // cut endpoint that kept running) is never listed as stalled.
  std::set<cube::NodeId> closure{d.root_node};
  if (d.root_kind == Diagnosis::RootKind::LinkCut) closure.insert(d.root_peer);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& w : d.waits)
      if (closure.count(w.src) != 0 && closure.insert(w.node).second)
        changed = true;
  }
  std::set<cube::NodeId> waiters;
  for (const auto& w : d.waits) waiters.insert(w.node);
  for (const cube::NodeId u : closure)
    if (waiters.count(u) != 0) d.stalled.push_back(u);
  return d;
}

DiagnosisInput diagnosis_input_from_events(
    const std::vector<TraceEvent>& events) {
  DiagnosisInput in;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::Timeout) {
      in.waits.push_back({ev.node, ev.peer, ev.tag, ev.time, ev.phase,
                          /*expired=*/true});
    } else if (ev.kind == EventKind::Kill) {
      in.kills.push_back({ev.node, ev.time, ev.phase});
    }
  }
  return in;
}

}  // namespace ftsort::sim
