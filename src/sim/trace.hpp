// Flight recorder for a simulation run: a per-node-sharded, optionally
// bounded ring of trace events, used by debugging dumps, the demo examples,
// the observability exporters (sim/exporters.hpp), and the failure
// explainers (sim/diagnosis.hpp). Disabled by default; recording is O(1)
// per event when enabled.
//
// Besides the raw message/compute events, the trace records *span* events
// (SpanBegin/SpanEnd) emitted by PhaseSpan (sim/machine.hpp): every event
// carries the node's ambient Phase at the time it happened, which is what
// the Perfetto exporter turns into one labelled track per node and the
// PhaseBreakdown critical-path walk uses for attribution.
//
// Sharding: events land in the shard of the node they describe, under that
// shard's own mutex — Drop events are recorded by the *sender's* thread
// onto the destination node's stream, so shards cannot rely on thread
// ownership the way sim::Metrics does. A global atomic sequence number is
// stamped on every event inside record(); snapshot() merges the shards
// back into one stream ordered by that sequence. On the sequential
// executor the sequence order is exactly the historical append order; on
// the threaded executor each node's own events keep program order, and a
// Send is always sequenced before the matching Recv (the send is recorded
// before the message is posted, and the receive after), which is what the
// exporter's flow pairing and the PhaseBreakdown walk rely on.
//
// Bounding: set_capacity(N) caps each node's ring at N events; once full,
// the oldest retained event is overwritten and counted in dropped(). The
// default capacity 0 means unbounded, which preserves the exact historical
// behaviour. Eviction never costs simulated time, so golden reports are
// byte-identical with the recorder enabled, disabled, or bounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

enum class EventKind {
  Send,
  Recv,
  Compute,
  Drop,
  Timeout,
  Kill,
  SpanBegin,  ///< a PhaseSpan opened; `phase` is the span's phase
  SpanEnd,    ///< the matching close
};

struct TraceEvent {
  SimTime time = 0.0;
  cube::NodeId node = 0;
  EventKind kind = EventKind::Compute;
  cube::NodeId peer = 0;   ///< other endpoint for Send/Recv
  Tag tag = 0;
  std::uint64_t keys = 0;  ///< payload size or comparison count
  int hops = 0;
  Phase phase = Phase::Unattributed;  ///< node's ambient phase
  std::uint64_t seq = 0;  ///< global record order, stamped by record()
};

class Trace {
 public:
  Trace() { reshard(1); }

  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Size the shard array, one shard per node. Events for out-of-range
  /// node ids fall back to shard 0. Drops all retained events and resets
  /// the dropped counter; not safe against a concurrent record().
  void reshard(std::uint32_t num_shards);

  /// Bound each node's ring to `per_node_events` retained events
  /// (0 = unbounded). Applies lazily from the next record(); shrinking
  /// below a shard's current size evicts its oldest events on the next
  /// record() into that shard. Not safe against a concurrent record().
  void set_capacity(std::size_t per_node_events) { capacity_ = per_node_events; }
  std::size_t capacity() const { return capacity_; }

  void record(TraceEvent ev);

  /// Drop all retained events and zero the dropped counter. The global
  /// sequence keeps counting (run-start watermarks stay monotonic).
  void clear();

  /// Retained events across all shards.
  std::size_t size() const;

  /// Total events evicted by ring overflow since the last clear().
  std::uint64_t dropped() const;

  /// Sequence number the next record() will stamp; also the count of
  /// events ever recorded. Use as a run-start watermark to slice
  /// snapshot() by `ev.seq >= mark`.
  std::uint64_t next_seq() const { return next_seq_.load(std::memory_order_relaxed); }

  /// Consistent copy of the retained events merged across shards in
  /// global record order (ascending seq), safe against concurrent
  /// record().
  std::vector<TraceEvent> snapshot() const;

  /// Human-readable dump (one line per event), truncated to `max_lines`.
  std::string to_string(std::size_t max_lines = 200) const;

 private:
  // One ring per node. `ring` grows up to the capacity; once full `head`
  // is the index of the oldest retained event and new events overwrite it.
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> ring;
    std::size_t head = 0;
    std::uint64_t dropped = 0;
  };

  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ftsort::sim
