// Optional event trace of a simulation run, for debugging, the demo
// examples, and the observability exporters (sim/exporters.hpp). Disabled
// by default; recording is O(1) per event when enabled.
//
// Besides the raw message/compute events, the trace records *span* events
// (SpanBegin/SpanEnd) emitted by PhaseSpan (sim/machine.hpp): every event
// carries the node's ambient Phase at the time it happened, which is what
// the Perfetto exporter turns into one labelled track per node and the
// PhaseBreakdown critical-path walk uses for attribution.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

enum class EventKind {
  Send,
  Recv,
  Compute,
  Drop,
  Timeout,
  Kill,
  SpanBegin,  ///< a PhaseSpan opened; `phase` is the span's phase
  SpanEnd,    ///< the matching close
};

struct TraceEvent {
  SimTime time = 0.0;
  cube::NodeId node = 0;
  EventKind kind = EventKind::Compute;
  cube::NodeId peer = 0;   ///< other endpoint for Send/Recv
  Tag tag = 0;
  std::uint64_t keys = 0;  ///< payload size or comparison count
  int hops = 0;
  Phase phase = Phase::Unattributed;  ///< node's ambient phase
};

class Trace {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TraceEvent ev) {
    if (!enabled_) return;
    // Serialised so the threaded executor can trace too.
    const std::lock_guard<std::mutex> guard(mutex_);
    events_.push_back(ev);
  }
  void clear() {
    const std::lock_guard<std::mutex> guard(mutex_);
    events_.clear();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> guard(mutex_);
    return events_.size();
  }

  /// Consistent copy of the events, safe against concurrent record().
  std::vector<TraceEvent> snapshot() const {
    const std::lock_guard<std::mutex> guard(mutex_);
    return events_;
  }

  /// Zero-copy view of the events. Only valid while no run is in progress
  /// (no concurrent record()); use snapshot() otherwise.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Human-readable dump (one line per event), truncated to `max_lines`.
  std::string to_string(std::size_t max_lines = 200) const;

 private:
  bool enabled_ = false;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace ftsort::sim
