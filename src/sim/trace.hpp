// Optional event trace of a simulation run, for debugging and the demo
// examples. Disabled by default; recording is O(1) per event when enabled.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"

namespace ftsort::sim {

enum class EventKind { Send, Recv, Compute, Drop, Timeout, Kill };

struct TraceEvent {
  SimTime time = 0.0;
  cube::NodeId node = 0;
  EventKind kind = EventKind::Compute;
  cube::NodeId peer = 0;   ///< other endpoint for Send/Recv
  Tag tag = 0;
  std::uint64_t keys = 0;  ///< payload size or comparison count
  int hops = 0;
};

class Trace {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TraceEvent ev) {
    if (!enabled_) return;
    // Serialised so the threaded executor can trace too.
    const std::lock_guard<std::mutex> guard(mutex_);
    events_.push_back(ev);
  }
  void clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Human-readable dump (one line per event), truncated to `max_lines`.
  std::string to_string(std::size_t max_lines = 200) const;

 private:
  bool enabled_ = false;
  std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace ftsort::sim
