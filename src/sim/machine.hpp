// The simulated hypercube multicomputer.
//
// A `Machine` is an n-cube of processors with a fault set, a routing policy
// derived from the fault model, and the paper's cost model. Each healthy
// processor executes one coroutine program against its `NodeCtx`, which
// provides message passing (`send` / `co_await recv`) and logical-clock
// accounting. Execution is driven by a deterministic run-to-completion
// scheduler: identical inputs produce identical message orders, logical
// times, and results on every host.
//
// Time model (matches the paper's cost algebra, §3):
//   * local comparisons advance the node clock by t_c each;
//   * a send of k keys over h hops advances the sender by one link-injection
//     time and arrives at sender_clock + h * (t_startup + k * t_transfer);
//   * recv waits for the message, then sets clock = max(clock, arrival).
// The run's makespan is the maximum final clock over all participating
// nodes.
//
// Dynamic faults (sim/fault_injector.hpp): a `FaultInjector` kills nodes
// and cuts links at scheduled logical times mid-run. Dead nodes halt at
// their next NodeCtx interaction; messages arriving after the destination's
// death are dropped. Survivors observe a loss through the bounded-wait
// `recv_or_timeout` awaitable, which resolves as a *perfect failure
// detector*: it returns nullopt exactly when the simulation reaches global
// quiescence (no node runnable) with the awaited channel still empty — i.e.
// when no matching send can ever occur — charging the caller its logical
// patience. Quiescence events (recv timeouts, deaths of blocked nodes) are
// resolved in logical-event-time order, so both executors observe the same
// histories.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "fault/fault_set.hpp"
#include "hypercube/routing.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault_injector.hpp"
#include "sim/message.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ftsort::sim {

class Machine;

/// Thrown when every live program is blocked in recv and no message can
/// ever arrive. The message lists each blocked node and what it waits for.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-node interface handed to node programs.
class NodeCtx {
 public:
  cube::NodeId id() const { return id_; }
  cube::Dim dim() const;
  SimTime now() const { return clock_; }

  const fault::FaultSet& faults() const;
  bool is_faulty(cube::NodeId u) const;

  /// Account `k` key comparisons of local work.
  void charge_compares(std::uint64_t k);
  /// Account arbitrary local work (e.g. data movement) in µs.
  void charge_time(SimTime t);

  /// Post a message. Never blocks (links are buffered); the sender's clock
  /// advances by the link-injection time. A message addressed to a node
  /// that is dead on arrival is silently dropped (the injector's model).
  void send(cube::NodeId dst, Tag tag, std::vector<Key> payload);

  /// Awaitable receive of the next message from (src, tag). FIFO per
  /// channel. `co_await ctx.recv(...)` yields the Message.
  struct RecvAwaiter {
    NodeCtx& ctx;
    cube::NodeId src;
    Tag tag;
    bool await_ready() const noexcept;
    /// Returns false (resume immediately) if a message raced in between
    /// await_ready and suspension — only possible on the threaded executor.
    bool await_suspend(std::coroutine_handle<> h);
    Message await_resume();
  };
  RecvAwaiter recv(cube::NodeId src, Tag tag) {
    return RecvAwaiter{*this, src, tag};
  }

  /// Bounded-wait receive: like recv, but resolves to nullopt when no
  /// message on (src, tag) can ever arrive (perfect failure detection; see
  /// file header). On timeout the caller's clock advances by `patience`.
  struct RecvTimeoutAwaiter {
    NodeCtx& ctx;
    cube::NodeId src;
    Tag tag;
    SimTime patience;
    bool await_ready() const noexcept;
    bool await_suspend(std::coroutine_handle<> h);
    std::optional<Message> await_resume();
  };
  RecvTimeoutAwaiter recv_or_timeout(cube::NodeId src, Tag tag,
                                     SimTime patience) {
    return RecvTimeoutAwaiter{*this, src, tag, patience};
  }

 private:
  friend class Machine;
  NodeCtx(Machine& machine, cube::NodeId id) : machine_(&machine), id_(id) {}

  Machine* machine_;
  cube::NodeId id_;
  SimTime clock_ = 0.0;
};

/// Aggregate results of one simulation run.
struct RunReport {
  SimTime makespan = 0.0;            ///< max final clock over surviving nodes
  std::uint64_t messages = 0;        ///< messages posted
  std::uint64_t keys_sent = 0;       ///< Σ payload sizes
  std::uint64_t key_hops = 0;        ///< Σ payload size × hops
  std::uint64_t comparisons = 0;     ///< Σ charged comparisons
  std::uint64_t messages_dropped = 0;  ///< posts lost to dead nodes/links
  std::uint64_t timeouts = 0;          ///< recv_or_timeout expirations
  std::vector<SimTime> node_clocks;  ///< final clock per node (0 if idle)
  std::vector<cube::NodeId> killed_nodes;  ///< injector victims, ascending
};

class Machine {
 public:
  /// A node program factory: invoked once per healthy node.
  using Program = std::function<Task<void>(NodeCtx&)>;

  Machine(cube::Dim n, fault::FaultSet faults,
          fault::FaultModel model = fault::FaultModel::Partial,
          CostModel cost = CostModel::ncube7(),
          cube::LinkSet dead_links = {});

  cube::Dim dim() const { return n_; }
  std::uint32_t size() const { return cube::num_nodes(n_); }
  const fault::FaultSet& faults() const { return faults_; }
  fault::FaultModel fault_model() const { return model_; }
  const CostModel& cost() const { return cost_; }
  const cube::Router& router() const { return router_; }
  Trace& trace() { return trace_; }

  /// Install a mid-run fault schedule; applies to every subsequent run on
  /// either executor. Pass a default-constructed injector to clear.
  void set_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }
  const FaultInjector& injector() const { return injector_; }

  /// Instantiate `program` on every healthy node and run the whole system
  /// to completion. Throws DeadlockError on global blocking, and rethrows
  /// the first node-program exception (annotated with the node id).
  RunReport run(const Program& program);

  /// MIMD execution: one std::thread per healthy node, blocking mailboxes.
  /// Results, statistics, and logical times are identical to `run` — the
  /// logical clocks depend only on the message causality, not on host
  /// scheduling — so this mainly demonstrates that node programs are
  /// executor-agnostic. Genuine deadlocks are detected at quiescence and
  /// report the same blocked set as the sequential executor; `timeout` is a
  /// wall-clock backstop against non-blocking livelock.
  RunReport run_threaded(const Program& program,
                         std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(30'000));

 private:
  friend class NodeCtx;

  struct NodeState {
    explicit NodeState(NodeCtx c) : ctx(std::move(c)) {}
    NodeCtx ctx;
    Task<void> task;
    // Channel key = (src << 32) | tag. Guarded by `mutex` when threaded.
    std::unordered_map<std::uint64_t, std::deque<Message>> inbox;
    // Scheduler state: plain on the sequential executor, guarded by the
    // machine's sched_mutex_ on the threaded one.
    bool waiting = false;
    std::uint64_t want_channel = 0;
    std::coroutine_handle<> waiter;
    bool has_deadline = false;  ///< waiting via recv_or_timeout
    SimTime deadline = 0.0;     ///< clock + patience at suspension
    bool timed_out = false;     ///< set when the waiter is resumed empty
    // Dynamic-fault state.
    SimTime kill_time = kNever;
    bool killed = false;  ///< died mid-run (thrown or abandoned)
    // Threaded-executor state: the mailbox lock, the wakeup channel, and
    // the once-only terminal latch.
    std::mutex mutex;
    std::condition_variable cv;
    std::coroutine_handle<> ready;
    bool terminal = false;
  };

  static std::uint64_t channel_key(cube::NodeId src, Tag tag) {
    return (static_cast<std::uint64_t>(src) << 32) | tag;
  }

  NodeState& state_of(cube::NodeId id);
  /// Throws KilledSignal (and records the death) once the node's clock has
  /// reached its scheduled kill time.
  void check_alive(cube::NodeId id);
  void post(Message msg);
  bool has_message(cube::NodeId node, cube::NodeId src, Tag tag);
  bool register_waiter(cube::NodeId node, cube::NodeId src, Tag tag,
                       std::coroutine_handle<> h, bool has_deadline,
                       SimTime deadline);
  Message pop_message(cube::NodeId node, cube::NodeId src, Tag tag);
  std::optional<Message> finish_recv_or_timeout(cube::NodeId node,
                                                cube::NodeId src, Tag tag);
  std::string deadlock_message() const;
  /// At global quiescence, fire the earliest logical event among pending
  /// recv timeouts and deaths of blocked nodes. Returns false if none
  /// exists (a genuine deadlock). Threaded callers hold sched_mutex_.
  bool fire_quiescence_event();
  /// Threaded bookkeeping (sched_mutex_ held): resolve quiescence if no
  /// node is runnable; on genuine deadlock, records the message and begins
  /// shutdown.
  void maybe_resolve_quiescence_locked();
  void instantiate_programs(const Program& program);
  void drain_ready();
  RunReport collect_report();

  cube::Dim n_;
  fault::FaultSet faults_;
  fault::FaultModel model_;
  CostModel cost_;
  cube::Router router_;
  Trace trace_;
  FaultInjector injector_;

  std::vector<std::unique_ptr<NodeState>> nodes_;  // index = address
  std::deque<std::coroutine_handle<>> ready_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> keys_sent_{0};
  std::atomic<std::uint64_t> key_hops_{0};
  std::atomic<std::uint64_t> comparisons_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> deliveries_{0};  // progress epoch (threaded)
  bool running_ = false;
  bool threaded_ = false;

  // Threaded-executor coordination (all guarded by sched_mutex_).
  std::mutex sched_mutex_;
  std::size_t total_programs_ = 0;
  std::size_t blocked_count_ = 0;
  std::size_t terminal_count_ = 0;
  bool shutdown_ = false;
  bool deadlocked_ = false;
  std::string deadlock_msg_;
};

}  // namespace ftsort::sim
