// The simulated hypercube multicomputer.
//
// A `Machine` is an n-cube of processors with a fault set, a routing policy
// derived from the fault model, and the paper's cost model. Each healthy
// processor executes one coroutine program against its `NodeCtx`, which
// provides message passing (`send` / `co_await recv`) and logical-clock
// accounting. Execution is driven by a deterministic run-to-completion
// scheduler: identical inputs produce identical message orders, logical
// times, and results on every host.
//
// Time model (matches the paper's cost algebra, §3):
//   * local comparisons advance the node clock by t_c each;
//   * a send of k keys over h hops advances the sender by one link-injection
//     time and arrives at sender_clock + h * (t_startup + k * t_transfer);
//   * recv waits for the message, then sets clock = max(clock, arrival).
// The run's makespan is the maximum final clock over all participating
// nodes.
//
// Performance architecture (see DESIGN.md §6): message payloads live in
// per-node BufferPools, so steady-state message traffic performs no heap
// allocation; each node's pending messages sit in a flat arrival-ordered
// vector (per-channel FIFO is preserved because arrival order restricted to
// one (src, tag) channel is FIFO); and the MIMD executor's scheduler state
// is sharded per node — the only global rendezvous is quiescence
// resolution, which runs exactly when no node is runnable.
//
// Dynamic faults (sim/fault_injector.hpp): a `FaultInjector` kills nodes
// and cuts links at scheduled logical times mid-run. Dead nodes halt at
// their next NodeCtx interaction; messages arriving after the destination's
// death are dropped. Survivors observe a loss through the bounded-wait
// `recv_or_timeout` awaitable, which resolves as a *perfect failure
// detector*: it returns nullopt exactly when the simulation reaches global
// quiescence (no node runnable) with the awaited channel still empty — i.e.
// when no matching send can ever occur — charging the caller its logical
// patience. Quiescence events (recv timeouts, deaths of blocked nodes) are
// resolved in logical-event-time order, so both executors observe the same
// histories.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "fault/fault_set.hpp"
#include "hypercube/routing.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/cost_model.hpp"
#include "sim/diagnosis.hpp"
#include "sim/fault_injector.hpp"
#include "sim/lineage.hpp"
#include "sim/link_stats.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/task.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"
#include "sim/watchdog.hpp"

namespace ftsort::sim {

class Machine;
class PhaseSpan;

/// Thrown when every live program is blocked in recv and no message can
/// ever arrive. The message lists each blocked node and what it waits for.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-node interface handed to node programs.
class NodeCtx {
 public:
  cube::NodeId id() const { return id_; }
  cube::Dim dim() const;
  SimTime now() const { return clock_; }

  const fault::FaultSet& faults() const;
  bool is_faulty(cube::NodeId u) const;

  /// Account `k` key comparisons of local work.
  void charge_compares(std::uint64_t k);
  /// Account arbitrary local work (e.g. data movement) in µs.
  void charge_time(SimTime t);

  /// Post a message. Never blocks (links are buffered); the sender's clock
  /// advances by the link-injection time. A message addressed to a node
  /// that is dead on arrival is silently dropped (the injector's model).
  ///
  /// Three forms: a span copies into a buffer checked out of this node's
  /// pool (the steady-state zero-allocation path); a moved-in vector is
  /// adopted into the pool; a PooledBuffer (e.g. a received payload being
  /// forwarded) travels as-is.
  void send(cube::NodeId dst, Tag tag, std::span<const Key> payload);
  void send(cube::NodeId dst, Tag tag, std::vector<Key>&& payload);
  void send(cube::NodeId dst, Tag tag, PooledBuffer&& payload);

  /// Awaitable receive of the next message from (src, tag). FIFO per
  /// channel. `co_await ctx.recv(...)` yields the Message.
  struct RecvAwaiter {
    NodeCtx& ctx;
    cube::NodeId src;
    Tag tag;
    bool await_ready() const noexcept;
    /// Returns false (resume immediately) if a message raced in between
    /// await_ready and suspension — only possible on the threaded executor.
    bool await_suspend(std::coroutine_handle<> h);
    Message await_resume();
  };
  RecvAwaiter recv(cube::NodeId src, Tag tag) {
    return RecvAwaiter{*this, src, tag};
  }

  /// Bounded-wait receive: like recv, but resolves to nullopt when no
  /// message on (src, tag) can ever arrive (perfect failure detection; see
  /// file header). On timeout the caller's clock advances by `patience`.
  struct RecvTimeoutAwaiter {
    NodeCtx& ctx;
    cube::NodeId src;
    Tag tag;
    SimTime patience;
    bool await_ready() const noexcept;
    bool await_suspend(std::coroutine_handle<> h);
    std::optional<Message> await_resume();
  };
  RecvTimeoutAwaiter recv_or_timeout(cube::NodeId src, Tag tag,
                                     SimTime patience) {
    return RecvTimeoutAwaiter{*this, src, tag, patience};
  }

  /// Number of link traversals a message from this node to `dst` costs
  /// under the machine's routing policy.
  int hops_to(cube::NodeId dst) const;

  /// True when the machine's per-link traffic registry is recording; use
  /// to gate calls to note_reindex_hops (and the hops_to it needs).
  bool link_stats_enabled() const;
  /// Heuristic-audit hook (sim/link_stats.hpp): record that this node's
  /// Step-7 exchange along logical dimension `logical_dim` crossed
  /// `extra_hops` links beyond the healthy-neighbour single hop;
  /// `fault_pair` marks exchanges between two fault-carrying subcubes (the
  /// §3 formula's scope). No-op when link stats are disabled.
  void note_reindex_hops(cube::Dim logical_dim, int extra_hops,
                         bool fault_pair);

  /// True when the machine's key-lineage registry is recording; use to
  /// gate the custody hooks below (they are no-ops when disabled, but the
  /// caller usually wants to skip building their arguments too).
  bool lineage_enabled() const;
  /// Custody commit for the exchange pair-step (this node, partner, tag):
  /// `kept` is this node's post-merge block. Call exactly once per side,
  /// at the point the new block content is committed (sim/lineage.hpp).
  /// `witness_step >= 0` marks a recovery witness-capture step: both sides
  /// of the pair get stamped with their partner as freshest witness.
  void note_lineage_retain(cube::NodeId partner, Tag tag,
                           std::span<const Key> kept,
                           std::int32_t witness_step = -1);
  /// Recovery re-scatter (coordinator only): reassign every id to the new
  /// blocks; ids parked on a dead node get a Salvage event naming its
  /// winning witness.
  void note_lineage_rescatter(
      const std::vector<std::vector<Key>>& blocks,
      std::span<const Lineage::SalvageInfo> salvage);

  /// The node's ambient phase: every cost charged and message sent while a
  /// PhaseSpan is open is attributed to its phase (sim/metrics.hpp).
  Phase phase() const { return phase_; }
  /// Open a phase span: sets the ambient phase for the span's lifetime and
  /// records SpanBegin/SpanEnd trace events. Spans nest; the destructor
  /// restores the enclosing phase. Charges no time.
  PhaseSpan span(Phase p);
  /// Like span(), but a no-op when an enclosing span already set a phase —
  /// used by library kernels (sort/, collectives) so that a caller's
  /// step-level tag wins over the kernel's generic one.
  PhaseSpan span_if_unattributed(Phase p);

 private:
  friend class Machine;
  friend class PhaseSpan;
  NodeCtx(Machine& machine, cube::NodeId id) : machine_(&machine), id_(id) {}

  Machine* machine_;
  cube::NodeId id_;
  SimTime clock_ = 0.0;
  Phase phase_ = Phase::Unattributed;
};

/// RAII scope for a node's ambient phase (see NodeCtx::span). Must be kept
/// on the coroutine frame of the owning node program; non-copyable and
/// non-movable so a span can never outlive its scope unnoticed.
class PhaseSpan {
 public:
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan();

 private:
  friend class NodeCtx;
  PhaseSpan(NodeCtx& ctx, Phase p, bool engage);

  NodeCtx& ctx_;
  Phase prev_ = Phase::Unattributed;
  bool engaged_ = false;
};

/// Wall-clock scheduler counters for one shard (= one node thread) of the
/// threaded executor. Everything here is host time, never simulated time:
/// enabling the profile cannot change logical results, and none of these
/// fields participate in golden-report or executor-equivalence comparisons.
struct SchedShardProfile {
  std::uint64_t mutex_waits = 0;     ///< contended shard-mutex acquisitions
  std::uint64_t mutex_wait_ns = 0;   ///< wall ns blocked on the shard mutex
  std::uint64_t cv_waits = 0;        ///< scheduler cv sleeps entered
  std::uint64_t cv_wakeups = 0;      ///< sleeps that woke to runnable work
  std::uint64_t spurious_wakeups = 0;  ///< sleeps that woke to nothing
  std::uint64_t tasks_resumed = 0;   ///< coroutine resumes on this shard

  SchedShardProfile& operator+=(const SchedShardProfile& o) {
    mutex_waits += o.mutex_waits;
    mutex_wait_ns += o.mutex_wait_ns;
    cv_waits += o.cv_waits;
    cv_wakeups += o.cv_wakeups;
    spurious_wakeups += o.spurious_wakeups;
    tasks_resumed += o.tasks_resumed;
    return *this;
  }
};

/// Host-side execution profile of a run (see Machine::profile_host). The
/// data that explains wall-clock behaviour the logical metrics cannot see —
/// e.g. why the threaded executor is ≤1× sequential on a single-core box.
struct HostProfile {
  bool enabled = false;  ///< false ⇒ all counters are zero
  std::vector<SchedShardProfile> shards;  ///< index = node id
  std::uint64_t quiescence_checks = 0;  ///< sched_mutex_ barrier crossings
  std::uint64_t quiescence_events = 0;  ///< timeouts/kills fired at barriers
  std::uint64_t pool_contended = 0;     ///< contended BufferPool acquisitions
  std::uint64_t pool_contended_wait_ns = 0;  ///< wall ns blocked on pools

  SchedShardProfile total() const {
    SchedShardProfile sum;
    for (const auto& s : shards) sum += s;
    return sum;
  }
};

/// Aggregate results of one simulation run.
struct RunReport {
  /// The machine's cost model, copied at collection time so downstream
  /// readers (exporters, ftdiag) can derive wire times from the integer
  /// link counters without a handle on the Machine.
  CostModel cost;
  SimTime makespan = 0.0;            ///< max final clock over surviving nodes
  std::uint64_t messages = 0;        ///< messages posted
  std::uint64_t keys_sent = 0;       ///< Σ payload sizes
  std::uint64_t key_hops = 0;        ///< Σ payload size × hops
  std::uint64_t comparisons = 0;     ///< Σ charged comparisons
  std::uint64_t messages_dropped = 0;  ///< posts lost to dead nodes/links
  std::uint64_t timeouts = 0;          ///< recv_or_timeout expirations
  std::vector<SimTime> node_clocks;  ///< final clock per node (0 if idle)
  std::vector<cube::NodeId> killed_nodes;  ///< injector victims, ascending
  /// Payload buffer-pool ledger at collection time. NOTE: cumulative over
  /// the machine's *lifetime* (pools stay warm between runs), so repeated
  /// runs on one machine show `heap_allocations()` approaching a plateau —
  /// comparing `pool` across two reports of the same machine double-counts.
  /// Use `pool_delta` for this run's traffic.
  PoolStats pool;
  /// Pool ledger of this run only (collection-time stats minus the mark
  /// taken when the run started).
  PoolStats pool_delta;
  /// Per-node, per-phase counters. Empty unless `Machine::metrics()` was
  /// enabled for the run.
  MetricsSnapshot metrics;
  /// Per-link traffic matrix (sim/link_stats.hpp). Empty unless
  /// `Machine::link_stats()` was enabled for the run. Conservation: the
  /// snapshot's grand_total().key_hops equals `key_hops` exactly.
  LinkStatsSnapshot links;
  /// §3 heuristic audit — predicted vs measured re-index routing overhead.
  /// Filled by the algorithm layer (core/ft_sorter) when link stats were
  /// recorded; enabled == false otherwise.
  ReindexAudit reindex_audit;
  /// Where the makespan went, per phase. Empty unless metrics were enabled;
  /// the critical-path fields additionally need the trace enabled.
  PhaseBreakdown phases;
  /// Flight-recorder evictions during this run (0 when the trace is
  /// unbounded or disabled). Nonzero means snapshot()/phases saw a
  /// truncated event stream.
  std::uint64_t trace_dropped = 0;
  /// Failure explainer: populated when the run saw timeouts or node
  /// deaths (kind None otherwise). Derived from logical evidence only, so
  /// identical across executors.
  Diagnosis diagnosis;
  /// Recovery-latency decomposition (sim/timeline.hpp): where the time
  /// between fault injection and restart went, per recovery episode.
  /// Filled by core::recovery_sort on committed runs; enabled == false
  /// otherwise.
  RecoveryLatency recovery_latency;
  /// Sim-time sampler series (sim/timeline.hpp). Empty unless
  /// `Machine::timeline()` was enabled for the run.
  TimelineSnapshot timeline;
  /// Key-lineage provenance (sim/lineage.hpp): per-key custody chains, hop
  /// counts, and — once the algorithm layer ran audit_lineage against the
  /// gathered output — the exact no-loss/no-dup audit. Empty unless
  /// `Machine::lineage()` was enabled and assigned before the run.
  LineageSnapshot lineage;
  /// Host-side scheduler/pool profile; enabled==false (all zeros) unless
  /// Machine::profile_host(true) was set before the run.
  HostProfile host;
  /// Wall-clock watchdog stats (sim/watchdog.hpp); enabled==false unless
  /// Machine::set_watchdog armed one for the run. Only the config echo and
  /// the trip/near-miss counts are serialized — both zero on every healthy
  /// run — so logical results stay byte-identical with the watchdog on.
  WatchdogReport watchdog;
};

class Machine {
 public:
  /// A node program factory: invoked once per healthy node.
  using Program = std::function<Task<void>(NodeCtx&)>;

  Machine(cube::Dim n, fault::FaultSet faults,
          fault::FaultModel model = fault::FaultModel::Partial,
          CostModel cost = CostModel::ncube7(),
          cube::LinkSet dead_links = {});

  cube::Dim dim() const { return n_; }
  std::uint32_t size() const { return cube::num_nodes(n_); }
  const fault::FaultSet& faults() const { return faults_; }
  fault::FaultModel fault_model() const { return model_; }
  const CostModel& cost() const { return cost_; }
  const cube::Router& router() const { return router_; }
  Trace& trace() { return trace_; }
  /// Per-node, per-phase metrics registry. `metrics().enable(size())`
  /// before a run to populate `RunReport::metrics` / `RunReport::phases`.
  Metrics& metrics() { return metrics_; }
  /// Per-link traffic registry. `link_stats().enable(size(), dim())`
  /// before a run to populate `RunReport::links`.
  LinkStats& link_stats() { return link_stats_; }
  /// Sim-time sampler. `timeline().enable(size(), dim(), tick)` before a
  /// run to populate `RunReport::timeline`.
  Timeline& timeline() { return timeline_; }
  /// Key-lineage registry. `lineage().enable(size(), dim())` then
  /// `assign_block` per node *before* a run to populate
  /// `RunReport::lineage`. Unlike the other registries it is not reset by
  /// the run itself: scatter assignment is host-side, pre-run state.
  Lineage& lineage() { return lineage_; }

  /// Aggregate payload-allocation ledger over all node pools. Cumulative
  /// across runs on this machine (pools stay warm); callers interested in a
  /// single run take a delta.
  PoolStats pool_stats() const;

  /// Pool ledger accumulated since the current (or most recent) run
  /// started — the per-run view of `pool_stats()`.
  PoolStats pool_stats_delta() const;

  /// Install a mid-run fault schedule; applies to every subsequent run on
  /// either executor. Pass a default-constructed injector to clear.
  void set_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }
  const FaultInjector& injector() const { return injector_; }

  /// Toggle host-side (wall-clock) scheduler and buffer-pool profiling for
  /// subsequent runs; populates RunReport::host. Charged entirely outside
  /// simulated time — cannot change logical results.
  void profile_host(bool on);
  bool profiling_host() const { return profile_host_; }

  /// Arm a wall-clock watchdog for subsequent runs (sim/watchdog.hpp). The
  /// threaded executor publishes one heartbeat slot per node thread (beat
  /// per task resume, activity = the node's ambient phase); the sequential
  /// executor a single "scheduler" slot. On an abort-policy trip the run
  /// is shut down, the black-box dump written to cfg.dump_path, and
  /// WatchdogError thrown; a record-policy breach only counts a near-miss
  /// in RunReport::watchdog. Pass a default (disabled) config to disarm.
  void set_watchdog(WatchdogConfig cfg) { watchdog_cfg_ = std::move(cfg); }
  const WatchdogConfig& watchdog_config() const { return watchdog_cfg_; }

  /// Build a failure explanation from the current run's evidence: blocked
  /// node states, observed deaths, configured link cuts, and (when the
  /// trace is enabled) the run's recorded timeout expiries. Deterministic
  /// and identical across executors. Feeds deadlock messages,
  /// RunReport::diagnosis, and recovery's DegradationError annotation.
  Diagnosis diagnose(Diagnosis::Kind kind) const;

  /// Instantiate `program` on every healthy node and run the whole system
  /// to completion. Throws DeadlockError on global blocking, and rethrows
  /// the first node-program exception (annotated with the node id).
  RunReport run(const Program& program);

  /// MIMD execution: one std::thread per healthy node, blocking mailboxes.
  /// Results, statistics, and logical times are identical to `run` — the
  /// logical clocks depend only on the message causality, not on host
  /// scheduling — so this mainly demonstrates that node programs are
  /// executor-agnostic. Genuine deadlocks are detected at quiescence and
  /// report the same blocked set as the sequential executor; `timeout` is a
  /// wall-clock backstop against non-blocking livelock.
  RunReport run_threaded(const Program& program,
                         std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(30'000));

 private:
  friend class NodeCtx;

  struct NodeState {
    explicit NodeState(NodeCtx c) : ctx(std::move(c)) {}
    NodeCtx ctx;
    Task<void> task;
    // Pending messages in arrival order. Matching a (src, tag) channel
    // scans front-to-back, which preserves per-channel FIFO; the vector's
    // capacity persists across steps, so steady-state delivery allocates
    // nothing. Guarded by `mutex` when threaded.
    std::vector<Message> inbox;
    // Scheduler state: plain on the sequential executor, guarded by this
    // node's `mutex` on the threaded one (sharded scheduling — the global
    // sched_mutex_ is only taken at quiescence).
    bool waiting = false;
    std::uint64_t want_channel = 0;
    std::coroutine_handle<> waiter;
    bool has_deadline = false;  ///< waiting via recv_or_timeout
    SimTime deadline = 0.0;     ///< clock + patience at suspension
    bool timed_out = false;     ///< set when the waiter is resumed empty
    // Dynamic-fault state.
    SimTime kill_time = kNever;
    bool killed = false;  ///< died mid-run (thrown or abandoned)
    // Threaded-executor state: the mailbox/scheduler lock, the wakeup
    // channel, and the once-only terminal latch.
    std::mutex mutex;
    std::condition_variable cv;
    std::coroutine_handle<> ready;
    bool terminal = false;
  };

  static std::uint64_t channel_key(cube::NodeId src, Tag tag) {
    return (static_cast<std::uint64_t>(src) << 32) | tag;
  }
  /// First pending message on `channel`, or npos.
  static std::size_t inbox_find(const NodeState& st, std::uint64_t channel);
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  NodeState& state_of(cube::NodeId id);
  /// Throws KilledSignal (and records the death) once the node's clock has
  /// reached its scheduled kill time.
  void check_alive(cube::NodeId id);
  void post(Message msg);
  bool has_message(cube::NodeId node, cube::NodeId src, Tag tag);
  bool register_waiter(cube::NodeId node, cube::NodeId src, Tag tag,
                       std::coroutine_handle<> h, bool has_deadline,
                       SimTime deadline);
  Message pop_message(cube::NodeId node, cube::NodeId src, Tag tag);
  std::optional<Message> finish_recv_or_timeout(cube::NodeId node,
                                                cube::NodeId src, Tag tag);
  std::string deadlock_message() const;
  /// At global quiescence, fire the earliest logical event among pending
  /// recv timeouts and deaths of blocked nodes. Returns false if none
  /// exists (a genuine deadlock). Threaded callers hold sched_mutex_; the
  /// scan takes each node's own lock.
  bool fire_quiescence_event();
  /// Threaded bookkeeping: when the packed progress counter shows every
  /// program blocked or terminal, take sched_mutex_, re-verify, and resolve
  /// quiescence; on genuine deadlock, record the message and shut down.
  void maybe_resolve_quiescence();
  /// Set the shutdown flag and wake every node thread.
  void begin_shutdown();
  void instantiate_programs(const Program& program);
  void drain_ready();
  RunReport collect_report();
  /// Build the armed watchdog for a run, or nullptr when disabled. The
  /// threaded executor gets one slot per healthy node (wd_slot_[u]) and a
  /// begin_shutdown on_trip hook; the sequential one a single slot 0.
  std::unique_ptr<Watchdog> arm_watchdog(bool threaded);
  /// Copy the live shard profile atomics into a plain HostProfile
  /// (enabled==false when profiling is off). Used by collect_report and
  /// by the watchdog dump, which fires before a report exists.
  HostProfile snapshot_host_profile() const;
  /// Abort path after a watchdog trip: capture the dump (diagnosis of the
  /// stalled set, host profile, flight-recorder tail, heartbeat table),
  /// write it to the configured path, tear the run down, and throw
  /// WatchdogError. Requires all node threads joined / quiescent.
  [[noreturn]] void throw_watchdog_trip();

  cube::Dim n_;
  fault::FaultSet faults_;
  fault::FaultModel model_;
  CostModel cost_;
  cube::Router router_;
  Trace trace_;
  Metrics metrics_;
  LinkStats link_stats_;
  Timeline timeline_;
  Lineage lineage_;
  FaultInjector injector_;
  PoolStats pool_mark_;            ///< pool_stats() at run start
  std::uint64_t trace_run_start_ = 0;   ///< trace_.next_seq() at run start
  std::uint64_t trace_dropped_mark_ = 0;  ///< trace_.dropped() at run start

  // Declared before nodes_ so in-flight payload handles (inside inboxes)
  // are destroyed before the pools they return to.
  std::vector<BufferPool> pools_;  // index = address; persists across runs
  std::vector<std::unique_ptr<NodeState>> nodes_;  // index = address
  std::deque<std::coroutine_handle<>> ready_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> keys_sent_{0};
  std::atomic<std::uint64_t> key_hops_{0};
  std::atomic<std::uint64_t> comparisons_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> deliveries_{0};  // progress epoch (threaded)
  bool running_ = false;
  bool threaded_ = false;

  // Threaded-executor coordination. `progress_` packs the number of
  // blocked programs (low 32 bits) and terminal programs (high 32 bits) so
  // one atomic read yields a consistent pair; every transition into
  // blocked/terminal checks it against total_programs_ and, on global
  // quiescence, serialises through sched_mutex_ — the only global lock,
  // held only when nothing is runnable.
  std::atomic<std::uint64_t> progress_{0};
  static constexpr std::uint64_t kTerminalOne = std::uint64_t{1} << 32;
  std::atomic<bool> shutdown_{false};
  std::mutex sched_mutex_;
  std::size_t total_programs_ = 0;
  bool deadlocked_ = false;     // guarded by sched_mutex_
  std::string deadlock_msg_;    // guarded by sched_mutex_

  // Host profiling (see profile_host). Per-shard counters are atomics so
  // any thread can charge contention to the shard it blocked on; they are
  // copied into the plain SchedShardProfile in collect_report.
  struct ShardProfile {
    std::atomic<std::uint64_t> mutex_waits{0};
    std::atomic<std::uint64_t> mutex_wait_ns{0};
    std::atomic<std::uint64_t> cv_waits{0};
    std::atomic<std::uint64_t> cv_wakeups{0};
    std::atomic<std::uint64_t> spurious_wakeups{0};
    std::atomic<std::uint64_t> tasks_resumed{0};
  };
  /// Lock a node's shard mutex, charging contended acquisitions to the
  /// shard's profile when profiling is on (try-lock first, timed fallback).
  std::unique_lock<std::mutex> lock_shard(NodeState& st, cube::NodeId id);
  bool profile_host_ = false;
  std::vector<std::unique_ptr<ShardProfile>> prof_shards_;  // index = node
  std::atomic<std::uint64_t> prof_quiescence_checks_{0};
  std::atomic<std::uint64_t> prof_quiescence_events_{0};

  // Wall-clock watchdog (see set_watchdog). `active_watchdog_` is only
  // non-null while a run holds an armed watchdog; the sequential executor
  // reads it between resumes (drain_ready), never from node programs.
  WatchdogConfig watchdog_cfg_;
  Watchdog* active_watchdog_ = nullptr;
  std::vector<std::size_t> wd_slot_;  ///< node id -> heartbeat slot
  WatchdogReport watchdog_stats_;     ///< captured at wd->stop()
};

}  // namespace ftsort::sim
