#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ftsort::sim {

namespace {
const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::Compute: return "compute";
    case EventKind::Drop: return "drop";
    case EventKind::Timeout: return "timeout";
    case EventKind::Kill: return "kill";
    case EventKind::SpanBegin: return "begin";
    case EventKind::SpanEnd: return "end";
  }
  return "?";
}
}  // namespace

void Trace::reshard(std::uint32_t num_shards) {
  shards_.clear();
  shards_.reserve(num_shards == 0 ? 1 : num_shards);
  for (std::uint32_t i = 0; i < std::max<std::uint32_t>(num_shards, 1); ++i)
    shards_.push_back(std::make_unique<Shard>());
}

void Trace::record(TraceEvent ev) {
  if (!enabled_) return;
  Shard& shard =
      *shards_[ev.node < shards_.size() ? static_cast<std::size_t>(ev.node) : 0];
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> guard(shard.mutex);
  if (capacity_ == 0 || shard.ring.size() < capacity_) {
    shard.ring.push_back(ev);
    return;
  }
  // Ring full: overwrite the oldest retained event (append order, which on
  // each shard tracks seq order up to cross-thread Drop interleaving).
  if (shard.head >= shard.ring.size()) shard.head = 0;  // after a shrink
  shard.ring[shard.head] = ev;
  shard.head = (shard.head + 1) % shard.ring.size();
  ++shard.dropped;
}

void Trace::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> guard(shard->mutex);
    shard->ring.clear();
    shard->head = 0;
    shard->dropped = 0;
  }
}

std::size_t Trace::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> guard(shard->mutex);
    total += shard->ring.size();
  }
  return total;
}

std::uint64_t Trace::dropped() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> guard(shard->mutex);
    total += shard->dropped;
  }
  return total;
}

std::vector<TraceEvent> Trace::snapshot() const {
  std::vector<TraceEvent> events;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> guard(shard->mutex);
    events.insert(events.end(), shard->ring.begin(), shard->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return events;
}

std::string Trace::to_string(std::size_t max_lines) const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& ev : events) {
    if (shown++ >= max_lines) {
      os << "... (" << events.size() - max_lines << " more events)\n";
      break;
    }
    os << std::fixed << std::setprecision(1) << std::setw(12) << ev.time
       << "us  node " << std::setw(3) << ev.node << "  "
       << kind_name(ev.kind);
    if (ev.kind == EventKind::Compute)
      os << " comparisons=" << ev.keys;
    else if (ev.kind == EventKind::Kill)
      os << " (processor dies)";
    else if (ev.kind == EventKind::SpanBegin ||
             ev.kind == EventKind::SpanEnd)
      os << " phase=" << phase_name(ev.phase);
    else
      os << (ev.kind == EventKind::Send ? " -> " : " <- ") << ev.peer
         << " tag=" << ev.tag << " keys=" << ev.keys
         << " hops=" << ev.hops;
    os << '\n';
  }
  return os.str();
}

}  // namespace ftsort::sim
