#include "sim/trace.hpp"

#include <iomanip>
#include <sstream>

namespace ftsort::sim {

namespace {
const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::Compute: return "compute";
    case EventKind::Drop: return "drop";
    case EventKind::Timeout: return "timeout";
    case EventKind::Kill: return "kill";
    case EventKind::SpanBegin: return "begin";
    case EventKind::SpanEnd: return "end";
  }
  return "?";
}
}  // namespace

std::string Trace::to_string(std::size_t max_lines) const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& ev : events) {
    if (shown++ >= max_lines) {
      os << "... (" << events.size() - max_lines << " more events)\n";
      break;
    }
    os << std::fixed << std::setprecision(1) << std::setw(12) << ev.time
       << "us  node " << std::setw(3) << ev.node << "  "
       << kind_name(ev.kind);
    if (ev.kind == EventKind::Compute)
      os << " comparisons=" << ev.keys;
    else if (ev.kind == EventKind::Kill)
      os << " (processor dies)";
    else if (ev.kind == EventKind::SpanBegin ||
             ev.kind == EventKind::SpanEnd)
      os << " phase=" << phase_name(ev.phase);
    else
      os << (ev.kind == EventKind::Send ? " -> " : " <- ") << ev.peer
         << " tag=" << ev.tag << " keys=" << ev.keys
         << " hops=" << ev.hops;
    os << '\n';
  }
  return os.str();
}

}  // namespace ftsort::sim
