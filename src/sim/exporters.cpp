#include "sim/exporters.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cctype>
#include <cstdio>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_map>

#include "sim/link_stats.hpp"
#include "util/schema.hpp"

namespace ftsort::sim {

namespace {

/// Shortest round-trip decimal form, locale-independent.
void put_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_counters(std::ostream& os, const PhaseCounters& pc) {
  os << "\"messages\": " << pc.messages
     << ", \"keys_sent\": " << pc.keys_sent
     << ", \"key_hops\": " << pc.key_hops
     << ", \"comparisons\": " << pc.comparisons
     << ", \"recvs\": " << pc.recvs
     << ", \"keys_received\": " << pc.keys_received
     << ", \"messages_dropped\": " << pc.messages_dropped
     << ", \"timeouts\": " << pc.timeouts
     << ", \"pool_checkouts\": " << pc.pool_checkouts
     << ", \"send_busy\": ";
  put_double(os, pc.send_busy);
  os << ", \"compute_time\": ";
  put_double(os, pc.compute_time);
  os << ", \"recv_wait\": ";
  put_double(os, pc.recv_wait);
  os << ", \"msg_size_hist\": [";
  for (std::size_t b = 0; b < kMsgSizeBuckets; ++b)
    os << (b != 0 ? ", " : "") << pc.msg_size_hist[b];
  os << "]";
}

/// (src, dst, tag) key for pairing sends with their receives (per-channel
/// delivery is FIFO, so a queue of pending flow ids per channel suffices).
std::uint64_t flow_channel(cube::NodeId src, cube::NodeId dst, Tag tag) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) |
         static_cast<std::uint64_t>(tag);
}

void put_event_common(std::ostream& os, const char* name, const char* cat,
                      const char* ph, SimTime ts, cube::NodeId tid) {
  os << "{\"name\": \"" << name << "\", \"cat\": \"" << cat
     << "\", \"ph\": \"" << ph << "\", \"ts\": ";
  put_double(os, ts);
  os << ", \"pid\": 0, \"tid\": " << tid;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::uint32_t num_nodes) {
  write_chrome_trace(os, events, num_nodes, ChromeTraceOptions{});
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::uint32_t num_nodes,
                        const ChromeTraceOptions& opts) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << u << ", \"args\": {\"name\": \"node " << u << "\"}}";
  }
  sep();
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"hypercube\"}}";
  sep();
  os << "{\"name\": \"trace_dropped\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"count\": "
     << opts.trace_dropped << "}}";
  if (opts.lineage != nullptr && opts.lineage->enabled) {
    const LineageSnapshot& lin = *opts.lineage;
    sep();
    os << "{\"name\": \"lineage_summary\", \"ph\": \"M\", \"pid\": 0, "
          "\"args\": {\"assigned\": "
       << lin.assigned << ", \"dummies\": " << lin.dummies
       << ", \"audit_checked\": " << (lin.audit.checked ? "true" : "false")
       << ", \"audit_ok\": " << (lin.audit.ok ? "true" : "false")
       << ", \"lost\": " << lin.audit.lost.size()
       << ", \"duplicated\": " << lin.audit.duplicated.size()
       << ", \"salvaged\": " << lin.audit.salvaged
       << ", \"witnessed_salvaged\": " << lin.audit.witnessed_salvaged
       << ", \"untracked_hops\": " << lin.untracked_total() << "}}";
  }

  // Sim-time sampler tracks (sim/timeline.hpp): one counter sample per
  // tick boundary. Emitted up front — Perfetto orders by ts, and the
  // sampler's series are complete even when the event stream below was
  // ring-truncated.
  if (opts.timeline != nullptr && opts.timeline->enabled) {
    const TimelineSnapshot& tl = *opts.timeline;
    for (std::size_t t = 0; t < tl.ticks; ++t) {
      const SimTime ts = static_cast<double>(t) * tl.tick;
      sep();
      put_event_common(os, "timeline_queue_depth", "timeline", "C", ts, 0);
      os << ", \"args\": {\"messages\": " << tl.total_queue_depth(t) << "}}";
      sep();
      put_event_common(os, "timeline_pool_in_use", "timeline", "C", ts, 0);
      os << ", \"args\": {\"buffers\": " << tl.total_pool_in_use(t) << "}}";
      sep();
      put_event_common(os, "timeline_keys_in_flight", "timeline", "C", ts,
                       0);
      os << ", \"args\": {";
      for (cube::Dim d = 0; d < tl.dim; ++d)
        os << (d != 0 ? ", " : "") << "\"dim" << static_cast<int>(d)
           << "\": " << tl.keys_in_flight[static_cast<std::size_t>(d)][t];
      os << "}}";
    }
  }

  // Counter ("C") tracks, one series per cube dimension: keys still in
  // flight (Send increments, the matching Recv or Drop decrements) and
  // cumulative wire busy time. A message's dimensions come from src^dst —
  // the minimal route — which matches the charged path except on adaptive
  // detours, where the track is an under-approximation.
  const cube::Dim track_dims =
      opts.cost != nullptr && num_nodes > 1
          ? static_cast<cube::Dim>(std::bit_width(num_nodes - 1))
          : 0;
  std::vector<std::uint64_t> in_flight(static_cast<std::size_t>(track_dims),
                                       0);
  std::vector<double> busy(static_cast<std::size_t>(track_dims), 0.0);
  const auto put_counter = [&](const char* name, SimTime ts, bool time_track) {
    sep();
    put_event_common(os, name, "link", "C", ts, 0);
    os << ", \"args\": {";
    for (cube::Dim d = 0; d < track_dims; ++d) {
      os << (d != 0 ? ", " : "") << "\"dim" << static_cast<int>(d) << "\": ";
      if (time_track)
        put_double(os, busy[static_cast<std::size_t>(d)]);
      else
        os << in_flight[static_cast<std::size_t>(d)];
    }
    os << "}}";
  };
  // Apply one message event to the counters; true when anything changed.
  const auto account = [&](const TraceEvent& ev, bool starting) {
    std::uint32_t diff = (ev.node ^ ev.peer) & (num_nodes - 1);
    bool busy_changed = false;
    bool flight_changed = false;
    while (diff != 0) {
      const auto d = static_cast<std::size_t>(std::countr_zero(diff));
      diff &= diff - 1;
      if (d >= static_cast<std::size_t>(track_dims)) continue;
      if (starting) {
        in_flight[d] += ev.keys;
        busy[d] += opts.cost->t_startup +
                   opts.cost->t_transfer * static_cast<double>(ev.keys);
        busy_changed = true;
      } else {
        in_flight[d] -= std::min<std::uint64_t>(in_flight[d], ev.keys);
      }
      flight_changed = true;
    }
    if (flight_changed) put_counter("keys_in_flight", ev.time, false);
    if (busy_changed) put_counter("link_busy_us", ev.time, true);
  };

  // Flow ids: sends enqueue, receives dequeue (per-channel FIFO matches the
  // simulator's delivery order). Dropped messages never produce a Recv, so
  // their pending ids are simply never bound — Perfetto ignores an
  // unterminated flow.
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> pending;
  std::uint64_t next_flow = 1;
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::SpanBegin:
        sep();
        put_event_common(os, phase_name(ev.phase), "phase", "B", ev.time,
                         ev.node);
        os << "}";
        break;
      case EventKind::SpanEnd:
        sep();
        put_event_common(os, phase_name(ev.phase), "phase", "E", ev.time,
                         ev.node);
        os << "}";
        break;
      case EventKind::Send: {
        const std::uint64_t id = next_flow++;
        pending[flow_channel(ev.node, ev.peer, ev.tag)].push_back(id);
        sep();
        put_event_common(os, "msg", "msg", "s", ev.time, ev.node);
        os << ", \"id\": " << id << ", \"args\": {\"tag\": " << ev.tag
           << ", \"keys\": " << ev.keys << ", \"hops\": " << ev.hops
           << ", \"dst\": " << ev.peer << "}}";
        if (track_dims != 0) account(ev, true);
        break;
      }
      case EventKind::Recv: {
        auto it = pending.find(flow_channel(ev.peer, ev.node, ev.tag));
        if (it != pending.end() && !it->second.empty()) {
          const std::uint64_t id = it->second.front();
          it->second.pop_front();
          sep();
          put_event_common(os, "msg", "msg", "f", ev.time, ev.node);
          os << ", \"id\": " << id << ", \"bp\": \"e\", \"args\": "
                "{\"tag\": "
             << ev.tag << ", \"keys\": " << ev.keys
             << ", \"src\": " << ev.peer << "}}";
        }
        if (track_dims != 0) account(ev, false);
        break;
      }
      case EventKind::Drop:
        sep();
        put_event_common(os, "drop", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\", \"args\": {\"src\": " << ev.peer
           << ", \"tag\": " << ev.tag << ", \"keys\": " << ev.keys << "}}";
        // The dropped payload leaves the wire at its would-be arrival.
        if (track_dims != 0) account(ev, false);
        break;
      case EventKind::Timeout:
        // The phase rides along so offline consumers (ftdiag explain) can
        // reconstruct which paper step the expiry interrupted.
        sep();
        put_event_common(os, "timeout", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\", \"args\": {\"src\": " << ev.peer
           << ", \"tag\": " << ev.tag << ", \"phase\": \""
           << phase_name(ev.phase) << "\"}}";
        break;
      case EventKind::Kill:
        sep();
        put_event_common(os, "kill", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\", \"args\": {\"phase\": \""
           << phase_name(ev.phase) << "\"}}";
        break;
      case EventKind::Compute:
        // Folded into the enclosing phase slice; a per-comparison-batch
        // event would dwarf the interesting structure.
        break;
    }
  }
  os << "\n]}\n";
}

namespace {

/// Index one past the matching '}' for the '{' at `start`; npos on
/// imbalance. String-aware (quotes may in principle contain braces).
std::size_t match_brace(const std::string& text, std::size_t start) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Value of a `"key": "string"` field inside one event object, or empty.
std::string object_string_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = obj.find('"', begin);
  if (end == std::string::npos) return {};
  return obj.substr(begin, end - begin);
}

/// Numeric field as text (enough for id/tid comparisons), or empty.
std::string object_num_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  while (end < obj.size() &&
         (std::isdigit(static_cast<unsigned char>(obj[end])) != 0 ||
          obj[end] == '-' || obj[end] == '+' || obj[end] == '.' ||
          obj[end] == 'e' || obj[end] == 'E'))
    ++end;
  return obj.substr(begin, end - begin);
}

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (json.find("\"displayTimeUnit\"") == std::string::npos)
    return fail("missing displayTimeUnit");
  const std::size_t events_key = json.find("\"traceEvents\"");
  if (events_key == std::string::npos) return fail("missing traceEvents");

  // Global nesting balance, string-aware.
  {
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (in_string) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_string = false;
        continue;
      }
      switch (c) {
        case '"': in_string = true; break;
        case '{': ++braces; break;
        case '}': --braces; break;
        case '[': ++brackets; break;
        case ']': --brackets; break;
        default: break;
      }
      if (braces < 0 || brackets < 0) return fail("unbalanced nesting");
    }
    if (braces != 0 || brackets != 0 || in_string)
      return fail("unbalanced nesting");
  }

  const std::size_t array_start = json.find('[', events_key);
  if (array_start == std::string::npos)
    return fail("traceEvents is not an array");

  std::unordered_map<std::string, long> span_balance;  // tid -> open B spans
  std::unordered_map<std::string, bool> open_flows;    // id -> started
  std::size_t cursor = array_start + 1;
  std::size_t count = 0;
  while (true) {
    const std::size_t obj_start = json.find('{', cursor);
    if (obj_start == std::string::npos) break;
    const std::size_t obj_end = match_brace(json, obj_start);
    if (obj_end == std::string::npos)
      return fail("unterminated event object");
    const std::string obj = json.substr(obj_start, obj_end - obj_start);
    cursor = obj_end;
    ++count;

    const std::string name = object_string_field(obj, "name");
    const std::string ph = object_string_field(obj, "ph");
    if (name.empty()) return fail("event without name: " + obj);
    if (ph != "M" && ph != "B" && ph != "E" && ph != "s" && ph != "f" &&
        ph != "i" && ph != "C")
      return fail("unknown ph in event: " + obj);
    if (obj.find("\"pid\"") == std::string::npos)
      return fail("event without pid: " + obj);
    if (ph == "M") continue;  // metadata carries no timestamp
    if (ph == "C") {
      // Counter samples are process-scoped: ts plus an args payload, no
      // thread binding required.
      if (object_num_field(obj, "ts").empty())
        return fail("counter without ts: " + obj);
      if (obj.find("\"args\"") == std::string::npos)
        return fail("counter without args: " + obj);
      continue;
    }
    const std::string tid = object_num_field(obj, "tid");
    if (tid.empty()) return fail("event without tid: " + obj);
    if (object_num_field(obj, "ts").empty())
      return fail("event without ts: " + obj);
    if (ph == "B") {
      ++span_balance[tid];
    } else if (ph == "E") {
      if (--span_balance[tid] < 0)
        return fail("span end without begin on tid " + tid);
    } else if (ph == "s") {
      const std::string id = object_num_field(obj, "id");
      if (id.empty()) return fail("flow start without id: " + obj);
      open_flows[id] = true;
    } else if (ph == "f") {
      const std::string id = object_num_field(obj, "id");
      if (id.empty() || !open_flows[id])
        return fail("flow end without matching start: " + obj);
    } else if (ph == "i") {
      if ((name == "timeout" || name == "kill") &&
          obj.find("\"phase\"") == std::string::npos)
        return fail("fault instant without phase: " + obj);
    }
  }
  if (count == 0) return fail("no events");
  for (const auto& [tid, balance] : span_balance)
    if (balance != 0)
      return fail("unclosed span on tid " + tid);
  return true;
}

void write_metrics_json(std::ostream& os, const RunReport& report) {
  // Schema history: v1 = PR 3 (totals/pool_delta/critical_path/phases);
  // v2 adds the detect/post-recovery makespan split, the flight-recorder
  // eviction count, the failure diagnosis, and the host profile; v3 adds
  // the per-dimension link-traffic rollup and the §3 re-index audit; v4
  // adds the cost-model block (name, routing mode, constants) so diffs can
  // refuse to compare runs charged under different models; v5 adds the
  // recovery-latency decomposition and the sim-time sampler timeline
  // (both `"enabled": false` stubs when not recorded); v6 adds the
  // key-lineage provenance block (custody audit, per-dimension hop
  // conservation, top travelers, capped per-key custody trails — an
  // `"enabled": false` stub when not recorded); v7 adds the wall-clock
  // watchdog block (policy, deadline/interval echo, trip and near-miss
  // counts — an `"enabled": false` stub when not armed).
  os << "{\n  \"schema_version\": " << util::kMetricsSchemaVersion
     << ",\n  \"cost_model\": {\"name\": \""
     << report.cost.name() << "\", \"routing\": \"" << report.cost.mode_name()
     << "\", \"t_compare\": ";
  put_double(os, report.cost.t_compare);
  os << ", \"t_transfer\": ";
  put_double(os, report.cost.t_transfer);
  os << ", \"t_startup\": ";
  put_double(os, report.cost.t_startup);
  os << "},\n  \"makespan\": ";
  put_double(os, report.makespan);
  // Detection watermark: the last recv_or_timeout expiry. Everything before
  // it is fault detection (timeout-constant dominated); everything after is
  // real post-recovery sort work.
  SimTime detect = 0.0;
  for (const Diagnosis::Wait& w : report.diagnosis.waits)
    if (w.expired && w.time > detect) detect = w.time;
  detect = std::min(detect, report.makespan);
  os << ",\n  \"makespan_detect\": ";
  put_double(os, detect);
  os << ",\n  \"makespan_post_recovery\": ";
  put_double(os, report.makespan - detect);
  os << ",\n  \"totals\": {\"messages\": " << report.messages
     << ", \"keys_sent\": " << report.keys_sent
     << ", \"key_hops\": " << report.key_hops
     << ", \"comparisons\": " << report.comparisons
     << ", \"messages_dropped\": " << report.messages_dropped
     << ", \"timeouts\": " << report.timeouts << "},\n";
  os << "  \"pool_delta\": {\"checkouts\": " << report.pool_delta.checkouts
     << ", \"heap_allocations\": " << report.pool_delta.heap_allocations()
     << ", \"returns\": " << report.pool_delta.returns << "},\n";
  os << "  \"trace_dropped\": " << report.trace_dropped << ",\n";
  const RecoveryLatency& rl = report.recovery_latency;
  if (!rl.enabled) {
    os << "  \"recovery_latency\": {\"enabled\": false},\n";
  } else {
    os << "  \"recovery_latency\": {\"enabled\": true, \"detection_total\": ";
    put_double(os, rl.detection_total());
    os << ", \"roll_call_total\": ";
    put_double(os, rl.roll_call_total());
    os << ", \"salvage_total\": ";
    put_double(os, rl.salvage_total());
    os << ", \"restart_total\": ";
    put_double(os, rl.restart_total());
    os << ",\n    \"episodes\": [";
    for (std::size_t i = 0; i < rl.episodes.size(); ++i) {
      const RecoveryEpisode& ep = rl.episodes[i];
      os << (i != 0 ? ",\n" : "\n") << "      {\"attempt\": " << ep.attempt
         << ", \"dead\": [";
      for (std::size_t j = 0; j < ep.dead.size(); ++j)
        os << (j != 0 ? ", " : "") << ep.dead[j];
      os << "], \"inject\": ";
      put_double(os, ep.inject);
      os << ", \"detect_first\": ";
      put_double(os, ep.detect_first);
      os << ", \"detect_confirm\": ";
      put_double(os, ep.detect_confirm);
      os << ", \"rollcall_end\": ";
      put_double(os, ep.rollcall_end);
      os << ", \"salvage_end\": ";
      put_double(os, ep.salvage_end);
      os << ", \"restart_end\": ";
      put_double(os, ep.restart_end);
      os << "}";
    }
    os << "\n    ]},\n";
  }
  const TimelineSnapshot& tl = report.timeline;
  if (!tl.enabled) {
    os << "  \"timeline\": {\"enabled\": false},\n";
  } else {
    os << "  \"timeline\": {\"enabled\": true, \"tick\": ";
    put_double(os, tl.tick);
    os << ", \"ticks\": " << tl.ticks << ", \"dropped\": " << tl.dropped
       << ",\n    \"samples\": [";
    for (std::size_t t = 0; t < tl.ticks; ++t) {
      os << (t != 0 ? ",\n" : "\n") << "      {\"t\": ";
      put_double(os, static_cast<double>(t) * tl.tick);
      os << ", \"queue_depth\": " << tl.total_queue_depth(t)
         << ", \"pool_in_use\": " << tl.total_pool_in_use(t)
         << ", \"keys_in_flight\": [";
      for (cube::Dim d = 0; d < tl.dim; ++d)
        os << (d != 0 ? ", " : "")
           << tl.keys_in_flight[static_cast<std::size_t>(d)][t];
      os << "], \"phase_mix\": {";
      // Nodes per phase at this tick, enum order, zero counts elided;
      // nodes outside their active interval count as "idle".
      std::size_t idle = 0;
      std::array<std::size_t, kPhaseCount> mix{};
      for (std::uint32_t u = 0; u < tl.num_nodes; ++u) {
        const std::uint8_t p = tl.phase[u][t];
        if (p == TimelineSnapshot::kIdle)
          ++idle;
        else
          ++mix[p];
      }
      bool first_phase = true;
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        if (mix[p] == 0) continue;
        os << (first_phase ? "" : ", ") << "\""
           << phase_name(static_cast<Phase>(p)) << "\": " << mix[p];
        first_phase = false;
      }
      if (idle != 0)
        os << (first_phase ? "" : ", ") << "\"idle\": " << idle;
      os << "}}";
    }
    os << "\n    ]},\n";
  }
  const LinkStatsSnapshot& links = report.links;
  if (links.empty()) {
    os << "  \"links\": {\"enabled\": false},\n";
  } else {
    const LinkCell total = links.grand_total();
    os << "  \"links\": {\"enabled\": true, \"dim\": "
       << static_cast<int>(links.dim) << ", \"num_nodes\": " << links.num_nodes
       << ", \"total\": {\"traversals\": " << total.traversals
       << ", \"key_hops\": " << total.key_hops << ", \"busy\": ";
    put_double(os, link_busy_time(total, report.cost));
    os << "},\n    \"per_dimension\": [";
    const std::vector<double> util =
        dimension_utilization(links, report.cost, report.makespan);
    for (cube::Dim d = 0; d < links.dim; ++d) {
      const LinkCell cell = links.dim_total(d);
      os << (d != 0 ? ",\n" : "\n") << "      {\"dim\": "
         << static_cast<int>(d) << ", \"traversals\": " << cell.traversals
         << ", \"key_hops\": " << cell.key_hops << ", \"busy\": ";
      put_double(os, link_busy_time(cell, report.cost));
      os << ", \"utilization\": ";
      put_double(os, util[static_cast<std::size_t>(d)]);
      os << "}";
    }
    os << "\n    ]},\n";
  }
  const ReindexAudit& audit = report.reindex_audit;
  if (!audit.enabled) {
    os << "  \"reindex_audit\": {\"enabled\": false},\n";
  } else {
    const auto put_int_array = [&](const std::vector<int>& v) {
      os << "[";
      for (std::size_t i = 0; i < v.size(); ++i)
        os << (i != 0 ? ", " : "") << v[i];
      os << "]";
    };
    os << "  \"reindex_audit\": {\"enabled\": true, \"measured_h\": ";
    put_int_array(audit.measured_h);
    os << ", \"measured_total\": " << audit.measured_total
       << ", \"measured_all_h\": ";
    put_int_array(audit.measured_all_h);
    os << ", \"measured_all_total\": " << audit.measured_all_total
       << ",\n    \"candidates\": [";
    for (std::size_t i = 0; i < audit.candidates.size(); ++i) {
      const ReindexAudit::Candidate& c = audit.candidates[i];
      os << (i != 0 ? ",\n" : "\n") << "      {\"cuts\": [";
      for (std::size_t j = 0; j < c.cuts.size(); ++j)
        os << (j != 0 ? ", " : "") << static_cast<int>(c.cuts[j]);
      os << "], \"predicted_h\": ";
      put_int_array(c.predicted_h);
      os << ", \"predicted_total\": " << c.predicted_total << ", \"chosen\": "
         << (c.chosen ? "true" : "false") << "}";
    }
    os << "\n    ]},\n";
  }
  const LineageSnapshot& lin = report.lineage;
  if (!lin.enabled) {
    os << "  \"lineage\": {\"enabled\": false},\n";
  } else {
    os << "  \"lineage\": {\"enabled\": true, \"dim\": "
       << static_cast<int>(lin.dim) << ", \"assigned\": " << lin.assigned
       << ", \"dummies\": " << lin.dummies
       << ", \"dropped_events\": " << lin.dropped_events
       << ", \"resolve_mismatches\": " << lin.resolve_mismatches
       << ",\n    \"hops_by_dim\": [";
    for (cube::Dim d = 0; d < lin.dim; ++d)
      os << (d != 0 ? ", " : "") << lin.hops_by_dim(d);
    os << "], \"untracked\": [";
    for (cube::Dim d = 0; d < lin.dim; ++d)
      os << (d != 0 ? ", " : "")
         << lin.untracked[static_cast<std::size_t>(d)];
    os << "], \"untracked_total\": " << lin.untracked_total();
    const LineageAudit& la = lin.audit;
    os << ",\n    \"audit\": {\"checked\": " << (la.checked ? "true" : "false")
       << ", \"ok\": " << (la.ok ? "true" : "false")
       << ", \"salvaged\": " << la.salvaged
       << ", \"witnessed_salvaged\": " << la.witnessed_salvaged
       << ", \"lost\": [";
    for (std::size_t i = 0; i < la.lost.size(); ++i) {
      const LineageAudit::LostKey& lk = la.lost[i];
      os << (i != 0 ? ", " : "") << "{\"id\": " << lk.id << ", \"value\": "
         << lk.value << ", \"last_holder\": " << lk.last_holder
         << ", \"phase\": \"" << phase_name(lk.phase) << "\"}";
    }
    os << "], \"duplicated\": [";
    for (std::size_t i = 0; i < la.duplicated.size(); ++i)
      os << (i != 0 ? ", " : "") << "{\"value\": " << la.duplicated[i].value
         << ", \"extra\": " << la.duplicated[i].extra << "}";
    os << "]},\n    \"top_travelers\": [";
    // The kLineageTopTravelers ids with the most link crossings — the quick
    // skew read without parsing the full per-key detail. Ties break by id.
    std::vector<std::size_t> order(lin.keys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return lin.keys[a].hops_total() >
                              lin.keys[b].hops_total();
                     });
    const std::size_t top =
        std::min<std::size_t>(kLineageTopTravelers, order.size());
    for (std::size_t i = 0; i < top; ++i) {
      const LineageKeyRecord& k = lin.keys[order[i]];
      os << (i != 0 ? ", " : "") << "{\"id\": " << order[i] << ", \"value\": "
         << k.value << ", \"hops\": " << k.hops_total()
         << ", \"moves\": " << k.moves << ", \"holder\": " << k.holder << "}";
    }
    os << "],\n    \"keys_total\": " << lin.keys.size()
       << ", \"keys_emitted\": "
       << std::min<std::size_t>(lin.keys.size(), kLineageDetailCap)
       << ",\n    \"keys\": [";
    // Per-key detail, capped: custody chains as compact trail strings
    // ("<code>,node,peer,step,phase;…" — see lineage_event_code), which keeps
    // the document line-parsable without a JSON tree.
    const std::size_t emit =
        std::min<std::size_t>(lin.keys.size(), kLineageDetailCap);
    for (std::size_t id = 0; id < emit; ++id) {
      const LineageKeyRecord& k = lin.keys[id];
      os << (id != 0 ? ",\n" : "\n") << "      {\"id\": " << id
         << ", \"value\": " << k.value << ", \"origin\": " << k.origin
         << ", \"holder\": " << k.holder << ", \"dummy\": "
         << (k.dummy ? "true" : "false") << ", \"retired\": "
         << (k.retired ? "true" : "false") << ", \"lost\": "
         << (k.lost ? "true" : "false") << ", \"salvaged\": "
         << (k.salvaged ? "true" : "false") << ", \"witness\": ";
      if (k.witness == kLineageNoWitness)
        os << -1;
      else
        os << k.witness;
      os << ", \"witness_step\": " << k.witness_step
         << ", \"moves\": " << k.moves << ", \"hops\": " << k.hops_total()
         << ", \"trail\": \"";
      for (std::size_t e = 0; e < k.chain.size(); ++e) {
        const LineageEvent& ev = k.chain[e];
        os << (e != 0 ? ";" : "") << lineage_event_code(ev.kind) << ","
           << ev.node << "," << ev.peer << "," << ev.step << ","
           << phase_name(ev.phase);
      }
      os << "\"}";
    }
    os << "\n    ]},\n";
  }
  const Diagnosis& diag = report.diagnosis;
  os << "  \"diagnosis\": {\"triggered\": "
     << (diag.triggered() ? "true" : "false") << ", \"kind\": \""
     << diagnosis_kind_name(diag.kind) << "\", \"root_kind\": \""
     << diagnosis_root_kind_name(diag.root_kind)
     << "\", \"root_node\": " << diag.root_node
     << ", \"root_peer\": " << diag.root_peer << ", \"root_time\": ";
  put_double(os, diag.root_time);
  os << ", \"root_phase\": \"" << phase_name(diag.root_phase)
     << "\", \"waits\": " << diag.waits.size() << ", \"stalled\": [";
  for (std::size_t i = 0; i < diag.stalled.size(); ++i)
    os << (i != 0 ? ", " : "") << diag.stalled[i];
  os << "]},\n";
  const SchedShardProfile sched = report.host.total();
  os << "  \"host_profile\": {\"enabled\": "
     << (report.host.enabled ? "true" : "false")
     << ", \"mutex_waits\": " << sched.mutex_waits
     << ", \"mutex_wait_ns\": " << sched.mutex_wait_ns
     << ", \"cv_waits\": " << sched.cv_waits
     << ", \"cv_wakeups\": " << sched.cv_wakeups
     << ", \"spurious_wakeups\": " << sched.spurious_wakeups
     << ", \"tasks_resumed\": " << sched.tasks_resumed
     << ", \"quiescence_checks\": " << report.host.quiescence_checks
     << ", \"quiescence_events\": " << report.host.quiescence_events
     << ", \"pool_contended\": " << report.host.pool_contended
     << ", \"pool_contended_wait_ns\": "
     << report.host.pool_contended_wait_ns << "},\n";
  // Only the config echo and the trip counts: both are zero on every
  // healthy run, so the block stays byte-identical across executors and
  // never leaks wall-clock ages into comparable exports.
  const WatchdogReport& wd = report.watchdog;
  if (!wd.enabled) {
    os << "  \"watchdog\": {\"enabled\": false},\n";
  } else {
    os << "  \"watchdog\": {\"enabled\": true, \"policy\": \""
       << (wd.abort_on_trip ? "abort" : "record")
       << "\", \"deadline_ms\": " << wd.deadline_ms
       << ", \"interval_ms\": " << wd.interval_ms
       << ", \"trips\": " << wd.trips
       << ", \"near_misses\": " << wd.near_misses << "},\n";
  }
  os << "  \"critical_path\": {\"available\": "
     << (report.phases.has_critical_path ? "true" : "false")
     << ", \"total\": ";
  put_double(os, report.phases.critical_total);
  os << "},\n  \"phases\": [";
  bool first = true;
  for (const PhaseBreakdown::Slice& s : report.phases.slices) {
    os << (first ? "\n" : ",\n") << "    {\"phase\": \""
       << phase_name(s.phase) << "\", ";
    first = false;
    put_counters(os, s.counters);
    os << ", \"critical_time\": ";
    put_double(os, s.critical_time);
    os << ", \"critical_comm\": ";
    put_double(os, s.critical_comm);
    os << ", \"critical_compute\": ";
    put_double(os, s.critical_compute);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace ftsort::sim
