#include "sim/exporters.hpp"

#include <cstdio>
#include <deque>
#include <ostream>
#include <unordered_map>

namespace ftsort::sim {

namespace {

/// Shortest round-trip decimal form, locale-independent.
void put_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_counters(std::ostream& os, const PhaseCounters& pc) {
  os << "\"messages\": " << pc.messages
     << ", \"keys_sent\": " << pc.keys_sent
     << ", \"key_hops\": " << pc.key_hops
     << ", \"comparisons\": " << pc.comparisons
     << ", \"recvs\": " << pc.recvs
     << ", \"keys_received\": " << pc.keys_received
     << ", \"messages_dropped\": " << pc.messages_dropped
     << ", \"timeouts\": " << pc.timeouts
     << ", \"pool_checkouts\": " << pc.pool_checkouts
     << ", \"send_busy\": ";
  put_double(os, pc.send_busy);
  os << ", \"compute_time\": ";
  put_double(os, pc.compute_time);
  os << ", \"recv_wait\": ";
  put_double(os, pc.recv_wait);
  os << ", \"msg_size_hist\": [";
  for (std::size_t b = 0; b < kMsgSizeBuckets; ++b)
    os << (b != 0 ? ", " : "") << pc.msg_size_hist[b];
  os << "]";
}

/// (src, dst, tag) key for pairing sends with their receives (per-channel
/// delivery is FIFO, so a queue of pending flow ids per channel suffices).
std::uint64_t flow_channel(cube::NodeId src, cube::NodeId dst, Tag tag) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) |
         static_cast<std::uint64_t>(tag);
}

void put_event_common(std::ostream& os, const char* name, const char* cat,
                      const char* ph, SimTime ts, cube::NodeId tid) {
  os << "{\"name\": \"" << name << "\", \"cat\": \"" << cat
     << "\", \"ph\": \"" << ph << "\", \"ts\": ";
  put_double(os, ts);
  os << ", \"pid\": 0, \"tid\": " << tid;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::uint32_t num_nodes) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << u << ", \"args\": {\"name\": \"node " << u << "\"}}";
  }
  sep();
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"hypercube\"}}";

  // Flow ids: sends enqueue, receives dequeue (per-channel FIFO matches the
  // simulator's delivery order). Dropped messages never produce a Recv, so
  // their pending ids are simply never bound — Perfetto ignores an
  // unterminated flow.
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> pending;
  std::uint64_t next_flow = 1;
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::SpanBegin:
        sep();
        put_event_common(os, phase_name(ev.phase), "phase", "B", ev.time,
                         ev.node);
        os << "}";
        break;
      case EventKind::SpanEnd:
        sep();
        put_event_common(os, phase_name(ev.phase), "phase", "E", ev.time,
                         ev.node);
        os << "}";
        break;
      case EventKind::Send: {
        const std::uint64_t id = next_flow++;
        pending[flow_channel(ev.node, ev.peer, ev.tag)].push_back(id);
        sep();
        put_event_common(os, "msg", "msg", "s", ev.time, ev.node);
        os << ", \"id\": " << id << ", \"args\": {\"tag\": " << ev.tag
           << ", \"keys\": " << ev.keys << ", \"hops\": " << ev.hops
           << ", \"dst\": " << ev.peer << "}}";
        break;
      }
      case EventKind::Recv: {
        auto it = pending.find(flow_channel(ev.peer, ev.node, ev.tag));
        if (it != pending.end() && !it->second.empty()) {
          const std::uint64_t id = it->second.front();
          it->second.pop_front();
          sep();
          put_event_common(os, "msg", "msg", "f", ev.time, ev.node);
          os << ", \"id\": " << id << ", \"bp\": \"e\", \"args\": "
                "{\"tag\": "
             << ev.tag << ", \"keys\": " << ev.keys
             << ", \"src\": " << ev.peer << "}}";
        }
        break;
      }
      case EventKind::Drop:
        sep();
        put_event_common(os, "drop", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\", \"args\": {\"src\": " << ev.peer
           << ", \"tag\": " << ev.tag << ", \"keys\": " << ev.keys << "}}";
        break;
      case EventKind::Timeout:
        sep();
        put_event_common(os, "timeout", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\", \"args\": {\"src\": " << ev.peer
           << ", \"tag\": " << ev.tag << "}}";
        break;
      case EventKind::Kill:
        sep();
        put_event_common(os, "kill", "fault", "i", ev.time, ev.node);
        os << ", \"s\": \"t\"}";
        break;
      case EventKind::Compute:
        // Folded into the enclosing phase slice; a per-comparison-batch
        // event would dwarf the interesting structure.
        break;
    }
  }
  os << "\n]}\n";
}

void write_metrics_json(std::ostream& os, const RunReport& report) {
  os << "{\n  \"schema_version\": 1,\n  \"makespan\": ";
  put_double(os, report.makespan);
  os << ",\n  \"totals\": {\"messages\": " << report.messages
     << ", \"keys_sent\": " << report.keys_sent
     << ", \"key_hops\": " << report.key_hops
     << ", \"comparisons\": " << report.comparisons
     << ", \"messages_dropped\": " << report.messages_dropped
     << ", \"timeouts\": " << report.timeouts << "},\n";
  os << "  \"pool_delta\": {\"checkouts\": " << report.pool_delta.checkouts
     << ", \"heap_allocations\": " << report.pool_delta.heap_allocations()
     << ", \"returns\": " << report.pool_delta.returns << "},\n";
  os << "  \"critical_path\": {\"available\": "
     << (report.phases.has_critical_path ? "true" : "false")
     << ", \"total\": ";
  put_double(os, report.phases.critical_total);
  os << "},\n  \"phases\": [";
  bool first = true;
  for (const PhaseBreakdown::Slice& s : report.phases.slices) {
    os << (first ? "\n" : ",\n") << "    {\"phase\": \""
       << phase_name(s.phase) << "\", ";
    first = false;
    put_counters(os, s.counters);
    os << ", \"critical_time\": ";
    put_double(os, s.critical_time);
    os << ", \"critical_comm\": ";
    put_double(os, s.critical_comm);
    os << ", \"critical_compute\": ";
    put_double(os, s.critical_compute);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace ftsort::sim
