// Minimal coroutine task type for SPMD node programs.
//
// Every processor of the simulated multicomputer runs one `Task<void>`
// program; blocking operations (message receive) suspend the coroutine and
// hand control back to the deterministic scheduler. Sub-routines that
// communicate are themselves Task<T> and are composed with `co_await`, using
// symmetric transfer so deep call chains cost no stack.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/contracts.hpp"

namespace ftsort::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Resume whoever co_awaited us; top-level tasks fall back to a noop
      // handle, returning control to the scheduler.
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  // The noinline is load-bearing, not a pessimisation: GCC 12.2 at -O2
  // miscompiles the co_return hand-off when the emplace into the frame's
  // optional is inlined into the coroutine body — the stored value reads
  // back as garbage after the continuation resumes (reproduced with a
  // standalone 200-line test; suppressed by -fno-tree-pre or
  // -fno-tree-vectorize, i.e. an optimiser frame-layout bug, not UB).
  // Forcing a call boundary makes the frame address escape and pins the
  // stores. Costs one near call per value-returning co_return, which is
  // never on the exchange hot path (those are Task<void>). The reference
  // overloads also save a move versus the old by-value signature.
  [[gnu::noinline]] void return_value(T&& v) { value.emplace(std::move(v)); }
  [[gnu::noinline]] void return_value(const T& v) { value.emplace(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// An owning handle to a lazily-started coroutine. Move-only. Await it to
/// run it to completion; or `start()` it from a scheduler and poll `done()`.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  /// Kick off a top-level task (scheduler use). The task runs until its
  /// first suspension point or completion.
  void start() {
    FTSORT_REQUIRE(valid());
    handle_.resume();
  }

  /// Rethrow any exception the finished task captured; return its value.
  T take_result() {
    FTSORT_REQUIRE(done() && valid());
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
    if constexpr (!std::is_void_v<T>) {
      FTSORT_INVARIANT(handle_.promise().value.has_value());
      return std::move(*handle_.promise().value);
    }
  }

  /// Awaiter: suspends the caller, transfers control into this task, and
  /// resumes the caller when it finishes (symmetric transfer).
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> caller) noexcept {
        handle.promise().continuation = caller;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception)
          std::rethrow_exception(handle.promise().exception);
        if constexpr (!std::is_void_v<T>)
          return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ftsort::sim
