#include "sim/timeline.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace ftsort::sim {

void Timeline::enable(std::uint32_t num_nodes, cube::Dim dim, SimTime tick) {
  FTSORT_REQUIRE(num_nodes > 0);
  FTSORT_REQUIRE(tick > 0.0);
  enabled_ = true;
  tick_ = tick;
  dim_ = dim;
  if (nodes_.size() != num_nodes) {
    nodes_.clear();
    for (std::uint32_t u = 0; u < num_nodes; ++u)
      nodes_.push_back(std::make_unique<NodeShard>());
  }
  if (dims_.size() != static_cast<std::size_t>(dim)) {
    dims_.clear();
    for (cube::Dim d = 0; d < dim; ++d)
      dims_.push_back(std::make_unique<DimShard>());
  }
  reset();
}

void Timeline::disable() { enabled_ = false; }

void Timeline::reset() {
  for (auto& node : nodes_) {
    node->queue = Series{};
    node->pool = Series{};
    node->phase.clear();
    node->cursor = 0;
  }
  for (auto& d : dims_) d->keys = Series{};
  dropped_.store(0, std::memory_order_relaxed);
}

std::size_t Timeline::bucket(SimTime t) const {
  if (t < 0.0) return 0;
  const double idx = t / tick_;
  if (idx >= static_cast<double>(kTimelineMaxTicks)) return kTimelineMaxTicks;
  return static_cast<std::size_t>(idx);
}

void Timeline::add(Series& s, std::size_t idx, std::int64_t delta) {
  if (idx >= s.deltas.size())
    s.deltas.resize(std::max(idx + 1, s.deltas.size() * 2), 0);
  s.deltas[idx] += delta;
  s.max_tick = s.touched ? std::max(s.max_tick, idx) : idx;
  s.touched = true;
}

void Timeline::note_enqueue(cube::NodeId dst, SimTime arrival) {
  const std::size_t idx = bucket(arrival);
  if (idx == kTimelineMaxTicks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  NodeShard& shard = *nodes_[dst];
  const std::lock_guard<std::mutex> guard(shard.mutex);
  add(shard.queue, idx, +1);
}

void Timeline::note_dequeue(cube::NodeId dst, SimTime when) {
  const std::size_t idx = bucket(when);
  if (idx == kTimelineMaxTicks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  NodeShard& shard = *nodes_[dst];
  const std::lock_guard<std::mutex> guard(shard.mutex);
  add(shard.queue, idx, -1);
}

void Timeline::note_send(cube::NodeId src, cube::NodeId dst,
                         std::uint64_t keys, SimTime sent_at) {
  const std::size_t idx = bucket(sent_at);
  if (idx == kTimelineMaxTicks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    NodeShard& shard = *nodes_[src];
    const std::lock_guard<std::mutex> guard(shard.mutex);
    add(shard.pool, idx, +1);
  }
  const std::int64_t k = static_cast<std::int64_t>(keys);
  for (std::uint32_t diff = src ^ dst; diff != 0; diff &= diff - 1) {
    DimShard& shard = *dims_[static_cast<std::size_t>(std::countr_zero(diff))];
    const std::lock_guard<std::mutex> guard(shard.mutex);
    add(shard.keys, idx, +k);
  }
}

void Timeline::note_delivered(cube::NodeId src, cube::NodeId dst,
                              std::uint64_t keys, SimTime when) {
  const std::size_t idx = bucket(when);
  if (idx == kTimelineMaxTicks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    NodeShard& shard = *nodes_[src];
    const std::lock_guard<std::mutex> guard(shard.mutex);
    add(shard.pool, idx, -1);
  }
  const std::int64_t k = static_cast<std::int64_t>(keys);
  for (std::uint32_t diff = src ^ dst; diff != 0; diff &= diff - 1) {
    DimShard& shard = *dims_[static_cast<std::size_t>(std::countr_zero(diff))];
    const std::lock_guard<std::mutex> guard(shard.mutex);
    add(shard.keys, idx, -k);
  }
}

void Timeline::note_dropped(cube::NodeId src, cube::NodeId dst,
                            std::uint64_t keys, SimTime arrival) {
  // A dropped message leaves the wire (and frees its buffer) at its
  // would-be arrival; same deltas as a delivery.
  note_delivered(src, dst, keys, arrival);
}

void Timeline::note_phase(cube::NodeId u, SimTime now, Phase p) {
  NodeShard& shard = *nodes_[u];
  std::size_t upto = bucket(now);
  if (upto == kTimelineMaxTicks) upto = kTimelineMaxTicks - 1;
  if (shard.cursor > upto) return;
  if (upto >= shard.phase.size())
    shard.phase.resize(std::max(upto + 1, shard.phase.size() * 2),
                       TimelineSnapshot::kIdle);
  for (std::size_t t = shard.cursor; t <= upto; ++t)
    shard.phase[t] = static_cast<std::uint8_t>(p);
  shard.cursor = upto + 1;
}

TimelineSnapshot Timeline::snapshot() const {
  TimelineSnapshot out;
  out.enabled = enabled_;
  if (!enabled_) return out;
  out.tick = tick_;
  out.num_nodes = static_cast<std::uint32_t>(nodes_.size());
  out.dim = dim_;
  out.dropped = dropped_.load(std::memory_order_relaxed);

  // Common padded length: the latest tick any series or phase row touched.
  // Deterministic — high-water marks depend only on the (identical) event
  // set, never on vector growth order.
  std::size_t ticks = 0;
  const auto cover = [&ticks](const Series& s) {
    if (s.touched) ticks = std::max(ticks, s.max_tick + 1);
  };
  for (const auto& node : nodes_) {
    cover(node->queue);
    cover(node->pool);
    ticks = std::max(ticks, node->cursor);
  }
  for (const auto& d : dims_) cover(d->keys);
  out.ticks = ticks;

  const auto cumulate = [ticks](const Series& s) {
    std::vector<std::int64_t> row(ticks, 0);
    std::int64_t running = 0;
    for (std::size_t t = 0; t < ticks; ++t) {
      if (t < s.deltas.size()) running += s.deltas[t];
      row[t] = running;
    }
    return row;
  };
  for (const auto& node : nodes_) {
    out.queue_depth.push_back(cumulate(node->queue));
    out.pool_in_use.push_back(cumulate(node->pool));
    std::vector<std::uint8_t> row(ticks, TimelineSnapshot::kIdle);
    std::copy(node->phase.begin(),
              node->phase.begin() +
                  static_cast<std::ptrdiff_t>(
                      std::min(node->cursor, ticks)),
              row.begin());
    out.phase.push_back(std::move(row));
  }
  for (const auto& d : dims_) out.keys_in_flight.push_back(cumulate(d->keys));
  return out;
}

}  // namespace ftsort::sim
