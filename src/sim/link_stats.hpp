// Per-link traffic registry of a simulation run: the topology-aware
// counterpart of sim::Metrics. Where Metrics answers "what did each node
// spend per phase", LinkStats answers "what crossed each wire": every
// directed link (u, d) — node u's outgoing edge across cube dimension d —
// counts the messages that traversed it, the payload keys they carried,
// and a per-phase split of both, charged at the same site where the
// Machine charges CostModel time (NodeCtx::send walks the router's path).
//
// Conservation invariant: a message of k keys over a path of h links
// charges k to the key_hops counter of each of the h links it crosses, so
//     Σ over all links of key_hops  ==  Σ over all messages of k × h,
// which is exactly the Machine's aggregate `key_hops` scalar (dropped
// messages included — both sides charge at post/send time, before the
// drop check). Tests enforce this equality exactly, on both executors.
//
// Sharding: cells are guarded by one mutex per *source node* (the Trace
// discipline, not the Metrics one) because a multi-hop message charges
// intermediate nodes' outgoing links from the sender's thread — thread
// ownership of rows does not hold here. Determinism survives because every
// counter is an integer (sums are order-independent); derived times (link
// busy, utilisation) are computed from the integer counters and the
// CostModel at read time, never accumulated as floating point, so threaded
// runs stay byte-identical to sequential ones.
//
// The registry also hosts the §3 heuristic audit's measured side: a
// per-node, per-logical-dimension maximum of the extra hops Step-7
// exchanges actually paid over the one-hop healthy-neighbour baseline
// (NodeCtx::note_reindex_hops). `max` is order-independent, so this table
// is deterministic too; each node writes only its own row from its own
// execution context. The predicted side (per-candidate Σ max(h_i)) is
// filled by the algorithm layer into ReindexAudit.
//
// Off by default, like Metrics and Trace: a disabled registry costs one
// branch per send.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

/// Counters of one directed link (source node, dimension), or an aggregate
/// over links. Integers only — see the file header for why.
struct LinkCell {
  std::uint64_t traversals = 0;  ///< messages that crossed this link
  std::uint64_t key_hops = 0;    ///< Σ payload keys that crossed it
  std::array<std::uint64_t, kPhaseCount> phase_traversals{};
  std::array<std::uint64_t, kPhaseCount> phase_key_hops{};

  LinkCell& operator+=(const LinkCell& o);
  bool operator==(const LinkCell&) const = default;
};

/// Derived busy time of a link under the cost model: the wire time its
/// traffic occupies (CostModel::link_busy — traversals × t_startup + keys ×
/// t_transfer, in either routing mode). With the simulator's charging,
/// overlapping transfers are not serialised, so a hot link's busy time can
/// exceed the makespan — that excess is precisely the contention the §3
/// model ignores.
SimTime link_busy_time(const LinkCell& cell, const CostModel& cost);

/// Copyable point-in-time copy of the registry, carried in RunReport.
struct LinkStatsSnapshot {
  cube::Dim dim = 0;            ///< cube dimension n
  std::uint32_t num_nodes = 0;  ///< 2^n
  /// Row-major traffic matrix: cells[u * dim + d] is link (u, d).
  std::vector<LinkCell> cells;
  /// Measured §3 audit table: reindex_extra[u][j] is the maximum extra
  /// hops node u paid on a Step-7 exchange along logical dimension j
  /// (0 when u never noted one). Rows sized `dim`, j < m in practice.
  std::vector<std::vector<int>> reindex_extra;
  /// Same maximum restricted to exchanges between two *fault-carrying*
  /// subcubes — the exact scope of the §3 formula, which ignores the
  /// penalty dangling processors introduce. reindex_fault_extra ≤
  /// reindex_extra cell-wise; the gap is the formula's blind spot.
  std::vector<std::vector<int>> reindex_fault_extra;

  bool empty() const { return cells.empty(); }
  const LinkCell& at(cube::NodeId u, cube::Dim d) const {
    return cells[static_cast<std::size_t>(u) * static_cast<std::size_t>(dim) +
                 static_cast<std::size_t>(d)];
  }
  /// Aggregate of one dimension over all source nodes.
  LinkCell dim_total(cube::Dim d) const;
  /// Aggregate of every link. Its key_hops equals the Machine's scalar.
  LinkCell grand_total() const;

  bool operator==(const LinkStatsSnapshot&) const = default;
};

/// Share of a run's total key_hops carried by its hottest cube dimension:
/// max_d dim_total(d).key_hops / grand_total().key_hops, in [1/n, 1] for a
/// run with any traffic and 0.0 for an empty or disabled snapshot. A pure
/// ratio of integer counters, so it is deterministic across executors —
/// the per-trial "link hotspot" scalar the campaign engine aggregates
/// into quantiles without holding 2^n × n cells per trial.
double hottest_dimension_share(const LinkStatsSnapshot& snap);

/// Per-dimension mean link utilisation: Σ_u busy(u, d) / (num_nodes ×
/// makespan). Averaged over every directed link of the dimension (faulty
/// nodes' links included — they carry no traffic and dilute the mean like
/// any other idle wire). Can exceed 1.0; see link_busy_time.
std::vector<double> dimension_utilization(const LinkStatsSnapshot& snap,
                                          const CostModel& cost,
                                          SimTime makespan);

/// Column maxima of a measured audit table (either of the snapshot's two):
/// entry j is the largest extra-hop count any node recorded along logical
/// dimension j, restricted to the first `m` dimensions. Applied to
/// reindex_fault_extra the result is directly comparable to the §3
/// prediction h_j of the chosen cutting sequence.
std::vector<int> measured_reindex_by_dim(
    const std::vector<std::vector<int>>& table, cube::Dim m);

/// §3 heuristic audit: the predicted extra-routing profile of every
/// candidate cutting sequence in Ψ next to what the run actually measured.
/// Plain data, filled by the algorithm layer (core/ft_sorter) after the
/// run; `enabled` stays false unless link stats were recorded and the plan
/// had a non-trivial fault pattern.
struct ReindexAudit {
  struct Candidate {
    std::vector<cube::Dim> cuts;   ///< the candidate cutting sequence
    std::vector<int> predicted_h;  ///< §3 max(h_i) per logical dimension
    int predicted_total = 0;       ///< Σ predicted_h — the §3 objective
    bool chosen = false;           ///< the heuristic's pick (exactly one)
    bool operator==(const Candidate&) const = default;
  };
  bool enabled = false;
  std::vector<Candidate> candidates;  ///< Ψ in search (DFS) order
  /// Measured maxima over fault-carrying pairs only — the formula's own
  /// scope, so measured_h should equal the chosen candidate's predicted_h.
  std::vector<int> measured_h;
  int measured_total = 0;  ///< Σ measured_h
  /// Measured maxima over *every* Step-7 exchange, dangling subcubes
  /// included — the run's true worst-case re-index cost per dimension.
  /// measured_all_total − measured_total is overhead §3 does not model.
  std::vector<int> measured_all_h;
  int measured_all_total = 0;  ///< Σ measured_all_h

  bool operator==(const ReindexAudit&) const = default;
};

class LinkStats {
 public:
  /// Size the matrix for a 2^n-node cube and start recording. Zeroes any
  /// previous contents.
  void enable(std::uint32_t num_nodes, cube::Dim n);
  void disable();
  bool enabled() const { return enabled_; }

  /// Zero every counter, keeping the allocation (run-to-run reuse).
  void reset();

  /// Charge a message of `keys` payload keys along `path` (router node
  /// sequence, endpoints included): each consecutive pair (a, b) bumps
  /// directed link (a, dim of a^b). Callers may run on any thread; each
  /// touched source-node shard is locked for its hop.
  void charge_path(std::span<const cube::NodeId> path, std::uint64_t keys,
                   Phase p);

  /// Audit hook: record that node `u` paid `extra_hops` beyond one hop on
  /// a Step-7 exchange along logical dimension `logical_dim`. Keeps the
  /// per-(node, dimension) maximum; `fault_pair` additionally feeds the
  /// formula-scope table. Must be called from the node's own execution
  /// context (Metrics' ownership discipline — no lock needed).
  void note_reindex(cube::NodeId u, cube::Dim logical_dim, int extra_hops,
                    bool fault_pair);

  LinkStatsSnapshot snapshot() const;

 private:
  bool enabled_ = false;
  cube::Dim n_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::vector<LinkCell> cells_;  ///< row-major [node][dim]
  std::vector<std::unique_ptr<std::mutex>> shard_mutex_;  ///< per source node
  std::vector<std::vector<int>> reindex_extra_;        ///< [node][dim] max
  std::vector<std::vector<int>> reindex_fault_extra_;  ///< fault pairs only
};

}  // namespace ftsort::sim
