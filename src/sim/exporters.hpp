// Trace and metrics exporters.
//
// `write_chrome_trace` renders a run's TraceEvent stream in the Chrome
// trace_events JSON format (the "JSON Array Format" with a traceEvents
// wrapper), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one named track per node, phase spans as nested B/E slices, message
// deliveries as flow arrows from the send to the matching receive, and
// kills/timeouts/drops as instant markers. SimTime is already µs, which is
// exactly the unit trace_events expect in `ts`.
//
// `write_metrics_json` renders a RunReport (with metrics enabled) as a flat
// JSON document: run totals plus one object per phase with that phase's
// counters and its critical-path share of the makespan. The shape is stable
// — every phase appears, in enum order, even when all-zero — and is
// validated in CI against bench/metrics_schema.json.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace ftsort::sim {

/// Per-key detail cap of the metrics-JSON `lineage.keys` array: documents
/// past it keep the rollups and the audit but truncate the per-key trails
/// (`keys_emitted` < `keys_total` marks the cut — never silent).
inline constexpr std::size_t kLineageDetailCap = 4096;
/// Entries in the `lineage.top_travelers` rollup.
inline constexpr std::size_t kLineageTopTravelers = 8;

/// Optional extras for write_chrome_trace.
struct ChromeTraceOptions {
  /// When non-null, emit per-cube-dimension counter ("C") tracks derived
  /// from the message events: `keys_in_flight` (sent but not yet received
  /// or dropped, decomposed over the dimensions of src^dst) and
  /// `link_busy_us` (cumulative wire time charged per dimension under this
  /// cost model). The decomposition assumes minimal routing — exact for
  /// e-cube paths, an approximation for adaptive detours.
  const CostModel* cost = nullptr;
  /// Flight-recorder evictions for the exported run; recorded as a
  /// `trace_dropped` metadata event so offline consumers (ftdiag explain)
  /// can tell a complete export from a ring-truncated one.
  std::uint64_t trace_dropped = 0;
  /// When non-null and enabled, emit the sim-time sampler's series
  /// (RunReport::timeline) as counter ("C") tracks sampled at each tick
  /// boundary: `timeline_queue_depth` (messages arrived, not yet
  /// received), `timeline_pool_in_use` (payload buffers in flight), and
  /// `timeline_keys_in_flight` per cube dimension. Independent of the
  /// event-derived `keys_in_flight` track above: the sampler survives
  /// flight-recorder eviction, the event track does not.
  const TimelineSnapshot* timeline = nullptr;
  /// When non-null and enabled, emit a `lineage_summary` metadata ("M")
  /// event carrying the custody rollup (assigned ids, audit verdict,
  /// salvage counts, untracked hops). Deliberately *not* per-key flow
  /// arrows: custody commits have no deterministic timestamp — pair-step
  /// resolution order differs across executors — so a summary is the only
  /// annotation that keeps exports byte-comparable (DESIGN.md §7).
  const LineageSnapshot* lineage = nullptr;
};

/// Write the Chrome/Perfetto trace_events JSON for `events` (one run's
/// stream, e.g. Trace::snapshot()). `num_nodes` sizes the track metadata.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::uint32_t num_nodes);
/// As above, with counter tracks and eviction metadata (see
/// ChromeTraceOptions). The plain overload is equivalent to passing a
/// default-constructed options object.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::uint32_t num_nodes,
                        const ChromeTraceOptions& opts);

/// Structural validation of a trace_events JSON document as produced by
/// write_chrome_trace: well-formed nesting, the traceEvents wrapper, the
/// required keys per event (`name`/`ph`, plus `ts`/`pid`/`tid` outside
/// metadata), known `ph` codes, per-track span balance, flow ends bound to
/// an earlier flow start, and fault instants carrying their phase. Returns
/// false and fills `error` (when non-null) with the first problem found.
/// Intended for complete exports: a ring-truncated trace can legitimately
/// fail the span-balance and flow checks.
bool validate_chrome_trace(const std::string& json,
                           std::string* error = nullptr);

/// Write the flat metrics JSON for `report`. The per-phase array is filled
/// from `report.phases`; when metrics were disabled it is empty. The
/// `links` block carries the per-dimension traffic rollup (with busy time
/// and utilisation derived from `report.cost`) and `reindex_audit` the §3
/// predicted-vs-measured re-index overhead; both collapse to
/// `"enabled": false` stubs when link stats were not recorded.
void write_metrics_json(std::ostream& os, const RunReport& report);

}  // namespace ftsort::sim
