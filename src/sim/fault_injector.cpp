#include "sim/fault_injector.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace ftsort::sim {

FaultInjector& FaultInjector::kill_node_at(cube::NodeId u, SimTime t) {
  FTSORT_REQUIRE(t >= 0.0);
  for (NodeKill& k : kills_) {
    if (k.node == u) {
      k.when = std::min(k.when, t);
      return *this;
    }
  }
  kills_.push_back({u, t});
  return *this;
}

FaultInjector& FaultInjector::cut_link_at(cube::NodeId a, cube::NodeId b,
                                          SimTime t) {
  FTSORT_REQUIRE(t >= 0.0);
  FTSORT_REQUIRE(a != b);
  if (a > b) std::swap(a, b);
  for (LinkCut& c : cuts_) {
    if (c.a == a && c.b == b) {
      c.when = std::min(c.when, t);
      return *this;
    }
  }
  cuts_.push_back({a, b, t});
  return *this;
}

SimTime FaultInjector::node_kill_time(cube::NodeId u) const {
  for (const NodeKill& k : kills_)
    if (k.node == u) return k.when;
  return kNever;
}

SimTime FaultInjector::link_cut_time(cube::NodeId a, cube::NodeId b) const {
  if (a > b) std::swap(a, b);
  for (const LinkCut& c : cuts_)
    if (c.a == a && c.b == b) return c.when;
  return kNever;
}

std::string FaultInjector::to_string() const {
  std::ostringstream os;
  os << "injector{";
  for (const NodeKill& k : kills_)
    os << " kill node " << k.node << " @" << k.when;
  for (const LinkCut& c : cuts_)
    os << " cut link {" << c.a << "," << c.b << "} @" << c.when;
  os << " }";
  return os.str();
}

}  // namespace ftsort::sim
