// Time-resolved telemetry: the sim-time sampler and the recovery-latency
// decomposition.
//
// `Timeline` is an opt-in registry (sibling of Metrics/LinkStats/Trace)
// that buckets instrumentation deltas by *logical* tick, so a finished run
// can be replayed as a time series: per-node pending-queue depth, in-flight
// keys per cube dimension, payload buffers in flight per node, and each
// node's active phase. Charging a delta never touches a node clock, so
// sampling has zero simulated-time cost and cannot change results.
//
// Determinism: sampling "current global state at tick boundaries" would be
// racy on the threaded executor (no global instant exists between
// quiescence points). Instead each hook adds an integer delta to the bucket
// of the *logical* time it describes (a message's arrival, a receive's
// post-wait clock). Bucketed integer sums are order-independent, so the
// snapshot is byte-identical across the sequential and threaded executors,
// like every other RunReport field.
//
// Write sharding follows the registry conventions (DESIGN.md §7):
//   * queue-depth rows are guarded by the destination node's shard mutex
//     (post() runs on the sender's thread);
//   * pool/in-flight rows are guarded by the *source* node's shard mutex
//     (delivery runs on the receiver's thread);
//   * per-dimension key counters get their own mutexes (both endpoints
//     charge them);
//   * phase rows are written only from the owning node's thread and need
//     no lock (the Metrics discipline).
//
// The series length is bounded by `kTimelineMaxTicks`; deltas addressed
// past the cap are counted in `dropped` instead of growing without bound
// (a recovery run's logical makespan can be ~1e9 µs).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hypercube/address.hpp"
#include "sim/cost_model.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

/// Hard cap on the number of ticks a Timeline will materialise. Chosen so
/// a fully populated Q_10 snapshot stays in the tens of megabytes; pick a
/// coarser tick rather than raising it.
inline constexpr std::size_t kTimelineMaxTicks = 4096;

/// Immutable result of one sampled run, carried in RunReport::timeline.
/// All series are cumulative (prefix-summed) per tick and padded to a
/// common `ticks` length. With `dropped == 0`, the queue/pool/in-flight
/// series each return to zero in the final tick of a completed run: every
/// enqueue was matched by a dequeue or drop.
struct TimelineSnapshot {
  /// Phase ordinal used for ticks before a node's first charge and after
  /// its last: the node was idle (or dead), not in any phase.
  static constexpr std::uint8_t kIdle = 0xff;

  bool enabled = false;
  SimTime tick = 0.0;          ///< tick width in simulated µs
  std::uint32_t num_nodes = 0;
  cube::Dim dim = 0;
  std::size_t ticks = 0;       ///< common length of every series
  std::uint64_t dropped = 0;   ///< deltas past kTimelineMaxTicks, not recorded
  /// [node][tick]: messages arrived but not yet received at tick end.
  std::vector<std::vector<std::int64_t>> queue_depth;
  /// [node][tick]: payload buffers checked out of this node's pool and
  /// still travelling (sent, not yet delivered or dropped) at tick end.
  std::vector<std::vector<std::int64_t>> pool_in_use;
  /// [dim][tick]: keys on the wire crossing this cube dimension at tick
  /// end (multi-hop messages count on every dimension they traverse).
  std::vector<std::vector<std::int64_t>> keys_in_flight;
  /// [node][tick]: Phase ordinal the node was in when simulated time
  /// crossed the tick boundary; kIdle outside the node's active interval.
  std::vector<std::vector<std::uint8_t>> phase;

  bool empty() const { return !enabled; }
  std::int64_t total_queue_depth(std::size_t t) const {
    std::int64_t sum = 0;
    for (const auto& row : queue_depth) sum += row[t];
    return sum;
  }
  std::int64_t total_pool_in_use(std::size_t t) const {
    std::int64_t sum = 0;
    for (const auto& row : pool_in_use) sum += row[t];
    return sum;
  }
  bool operator==(const TimelineSnapshot&) const = default;
};

/// One recovery round that ended in a RESTART verdict: who was found dead
/// and where the simulated time between the fault and the next attempt
/// went. All boundaries are logical clocks read off the coordinator's
/// protocol path (core/recovery.cpp), so they are byte-identical across
/// executors. Stage accessors telescope: detection() + roll_call() +
/// salvage() + restart() == restart_end - inject for every episode.
struct RecoveryEpisode {
  std::uint32_t attempt = 0;            ///< attempt index that aborted
  std::vector<cube::NodeId> dead;       ///< nodes this roll call found dead
  SimTime inject = 0.0;         ///< earliest injector kill among `dead`
  SimTime detect_first = 0.0;   ///< coordinator's first timeout evidence
  SimTime detect_confirm = 0.0; ///< last roll-call timeout (the watermark)
  SimTime rollcall_end = 0.0;   ///< coordinator clock after the roll call
  SimTime salvage_end = 0.0;    ///< after witness salvage + verdict fan-out
  SimTime restart_end = 0.0;    ///< next episode's inject, or the makespan

  SimTime detection() const { return detect_first - inject; }
  SimTime roll_call() const { return rollcall_end - detect_first; }
  SimTime salvage() const { return salvage_end - rollcall_end; }
  SimTime restart() const { return restart_end - salvage_end; }
  SimTime total() const { return restart_end - inject; }
  bool operator==(const RecoveryEpisode&) const = default;
};

/// Per-run recovery-latency decomposition, carried in
/// RunReport::recovery_latency. `enabled` is true iff the run committed
/// through core::recovery_sort after at least one RESTART round. Summing
/// every stage over every episode telescopes exactly to
/// `makespan - episodes.front().inject` — and the final episode's
/// detect_confirm equals core::detect_time(report), so the salvage- and
/// restart-side stages partition `makespan_post_recovery` (see the pinned
/// RecoveryLatency tests). Stage values are raw clock differences; under
/// adversarial overlapping injections the restart stage of a non-final
/// episode can be negative (the next fault landed before salvage ended).
struct RecoveryLatency {
  bool enabled = false;
  std::vector<RecoveryEpisode> episodes;

  SimTime detection_total() const {
    SimTime s = 0.0;
    for (const auto& e : episodes) s += e.detection();
    return s;
  }
  SimTime roll_call_total() const {
    SimTime s = 0.0;
    for (const auto& e : episodes) s += e.roll_call();
    return s;
  }
  SimTime salvage_total() const {
    SimTime s = 0.0;
    for (const auto& e : episodes) s += e.salvage();
    return s;
  }
  SimTime restart_total() const {
    SimTime s = 0.0;
    for (const auto& e : episodes) s += e.restart();
    return s;
  }
  bool operator==(const RecoveryLatency&) const = default;
};

/// The sampler registry. Enable before a run (Machine::timeline());
/// Machine resets it per run and snapshots it into RunReport::timeline.
class Timeline {
 public:
  /// Arm the sampler for `num_nodes` nodes of a `dim`-cube with the given
  /// tick width (simulated µs, > 0). Idempotent per shape.
  void enable(std::uint32_t num_nodes, cube::Dim dim, SimTime tick);
  void disable();
  bool enabled() const { return enabled_; }
  SimTime tick() const { return tick_; }

  /// Clear all series for a new run. Not thread-safe; called between runs.
  void reset();

  // Delta hooks, called by Machine at charge sites. All take the logical
  // time of the event they describe and never advance any clock.
  void note_enqueue(cube::NodeId dst, SimTime arrival);
  void note_dequeue(cube::NodeId dst, SimTime when);
  void note_send(cube::NodeId src, cube::NodeId dst, std::uint64_t keys,
                 SimTime sent_at);
  void note_delivered(cube::NodeId src, cube::NodeId dst,
                      std::uint64_t keys, SimTime when);
  void note_dropped(cube::NodeId src, cube::NodeId dst, std::uint64_t keys,
                    SimTime arrival);
  /// Record that node `u` was in `p` when its clock reached `now`; fills
  /// every tick boundary crossed since the node's previous sample. Called
  /// only from the owning node's thread.
  void note_phase(cube::NodeId u, SimTime now, Phase p);

  /// Materialise the run's series (prefix sums, common padding). Call
  /// after the run completes (both executors have joined/drained).
  TimelineSnapshot snapshot() const;

 private:
  // One delta series: sparse per-tick sums plus its own high-water mark
  // (vector capacity growth is insertion-order dependent and must not
  // leak into the snapshot).
  struct Series {
    std::vector<std::int64_t> deltas;
    std::size_t max_tick = 0;
    bool touched = false;
  };
  struct NodeShard {
    std::mutex mutex;           // guards queue + pool
    Series queue;
    Series pool;
    // Own-thread only: no lock.
    std::vector<std::uint8_t> phase;
    std::size_t cursor = 0;
  };
  struct DimShard {
    std::mutex mutex;
    Series keys;
  };

  /// Bucket index for a logical time, or kTimelineMaxTicks when past the
  /// cap (caller counts it as dropped).
  std::size_t bucket(SimTime t) const;
  static void add(Series& s, std::size_t idx, std::int64_t delta);

  bool enabled_ = false;
  SimTime tick_ = 0.0;
  cube::Dim dim_ = 0;
  std::vector<std::unique_ptr<NodeShard>> nodes_;
  std::vector<std::unique_ptr<DimShard>> dims_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ftsort::sim
