// Message and key types exchanged by simulated processors.
#pragma once

#include <cstdint>
#include <limits>

#include "hypercube/address.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/cost_model.hpp"
#include "sim/phase.hpp"

namespace ftsort::sim {

// Sort key (64-bit signed so workload generators can use the full range)
// — defined in buffer_pool.hpp alongside the payload storage type.

/// Padding sentinel (the paper's "dummy key (∞)"): compares greater than
/// every real key, so dummies collect at the top of the sorted order and are
/// stripped on gather.
inline constexpr Key kDummyKey = std::numeric_limits<Key>::max();

/// Message tag; algorithms use distinct tags per protocol phase so that
/// unrelated exchanges can never be confused.
using Tag = std::uint32_t;

struct Message {
  cube::NodeId src = 0;
  cube::NodeId dst = 0;
  Tag tag = 0;
  /// Pooled payload storage: checked out of the sender's BufferPool and
  /// returned there when the receiver drops (or `release_into`s) it.
  PooledBuffer payload;
  SimTime sent_at = 0.0;   ///< sender clock when the send was issued
  SimTime arrival = 0.0;   ///< store-and-forward arrival time at dst
  int hops = 0;            ///< link traversals the router charged
  /// Sender's ambient phase at the send — attribution target for drops.
  Phase phase = Phase::Unattributed;
};

}  // namespace ftsort::sim
