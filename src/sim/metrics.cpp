#include "sim/metrics.hpp"

#include <bit>
#include <cstddef>
#include <unordered_map>

#include "sim/trace.hpp"
#include "util/contracts.hpp"

namespace ftsort::sim {

PhaseCounters& PhaseCounters::operator+=(const PhaseCounters& o) {
  messages += o.messages;
  keys_sent += o.keys_sent;
  key_hops += o.key_hops;
  comparisons += o.comparisons;
  recvs += o.recvs;
  keys_received += o.keys_received;
  messages_dropped += o.messages_dropped;
  timeouts += o.timeouts;
  pool_checkouts += o.pool_checkouts;
  send_busy += o.send_busy;
  compute_time += o.compute_time;
  recv_wait += o.recv_wait;
  for (std::size_t b = 0; b < kMsgSizeBuckets; ++b)
    msg_size_hist[b] += o.msg_size_hist[b];
  return *this;
}

std::size_t PhaseCounters::size_bucket(std::uint64_t keys) {
  const std::size_t b =
      keys == 0 ? 0 : static_cast<std::size_t>(std::bit_width(keys) - 1);
  return b < kMsgSizeBuckets ? b : kMsgSizeBuckets - 1;
}

PhaseCounters MetricsSnapshot::total(Phase p) const {
  PhaseCounters sum;
  for (const NodePhaseCounters& row : nodes)
    sum += row[static_cast<std::size_t>(p)];
  return sum;
}

PhaseCounters MetricsSnapshot::grand_total() const {
  PhaseCounters sum;
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    sum += total(static_cast<Phase>(p));
  return sum;
}

namespace {

/// (src, dst, tag) channel key for matching a Recv back to its Send.
std::uint64_t channel_key(cube::NodeId src, cube::NodeId dst, Tag tag) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) |
         static_cast<std::uint64_t>(tag);
}

}  // namespace

PhaseBreakdown build_phase_breakdown(
    const MetricsSnapshot& metrics, const std::vector<TraceEvent>& events,
    SimTime makespan, const std::vector<SimTime>& node_clocks) {
  PhaseBreakdown out;
  if (metrics.empty()) return out;
  out.slices.resize(kPhaseCount);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    out.slices[p].phase = static_cast<Phase>(p);
    out.slices[p].counters = metrics.total(static_cast<Phase>(p));
  }
  if (events.empty() || makespan <= 0.0) return out;

  // Group event indices by node, preserving per-node record order — each
  // node's own events are recorded in its program order on both executors,
  // so the walk below is executor-independent. Drop events are recorded
  // from the *sender's* thread onto the destination's stream (their
  // interleaving is executor-dependent) and never lie on the destination's
  // execution path, so they are excluded.
  const std::size_t num_nodes = metrics.nodes.size();
  std::vector<std::vector<std::uint32_t>> per_node(num_nodes);
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> sends;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.kind == EventKind::Drop) continue;
    if (ev.node >= num_nodes) continue;
    per_node[ev.node].push_back(i);
    if (ev.kind == EventKind::Send)
      sends[channel_key(ev.node, ev.peer, ev.tag)].push_back(i);
  }

  const auto attribute = [&out](Phase p, SimTime dt, bool comm) {
    if (dt <= 0.0) return;
    PhaseBreakdown::Slice& s = out.slices[static_cast<std::size_t>(p)];
    s.critical_time += dt;
    (comm ? s.critical_comm : s.critical_compute) += dt;
    out.critical_total += dt;
  };

  // Start at the node that achieved the makespan and walk time backwards.
  cube::NodeId cur_node = 0;
  for (cube::NodeId u = 0; u < node_clocks.size(); ++u)
    if (node_clocks[u] == makespan) {
      cur_node = u;
      break;
    }
  SimTime cur_time = makespan;
  std::vector<std::ptrdiff_t> cursor(num_nodes);
  for (std::size_t u = 0; u < num_nodes; ++u)
    cursor[u] = static_cast<std::ptrdiff_t>(per_node[u].size()) - 1;

  // Every iteration consumes an event or closes a gap; the hop consumes
  // the Recv before moving, so the walk terminates within O(events).
  std::size_t budget = events.size() + num_nodes + 8;
  while (cur_time > 0.0 && budget-- > 0) {
    const std::vector<std::uint32_t>& seq = per_node[cur_node];
    std::ptrdiff_t& c = cursor[cur_node];
    while (c >= 0 && events[seq[static_cast<std::size_t>(c)]].time > cur_time)
      --c;
    if (c < 0) {
      // No event precedes cur_time on this node (e.g. the path reached a
      // node's pre-first-event setup); close the walk here.
      attribute(Phase::Unattributed, cur_time, /*comm=*/false);
      break;
    }
    const TraceEvent& ev = events[seq[static_cast<std::size_t>(c)]];
    if (cur_time > ev.time) {
      // Post-event activity with no closing event of its own (e.g. send
      // injection time, charge_time): attribute to the ambient phase.
      attribute(ev.phase, cur_time - ev.time, /*comm=*/false);
      cur_time = ev.time;
      continue;
    }
    const SimTime prev_time =
        c > 0 ? events[seq[static_cast<std::size_t>(c - 1)]].time : 0.0;
    if (ev.kind == EventKind::Recv && ev.time > prev_time) {
      // The receive moved the clock: the message (wait + flight) is on the
      // critical path. Hop to the matching send on the peer; per-channel
      // FIFO makes "latest send at or before the receive" the right match.
      const auto it = sends.find(channel_key(ev.peer, ev.node, ev.tag));
      const std::uint32_t* match = nullptr;
      if (it != sends.end()) {
        for (auto rit = it->second.rbegin(); rit != it->second.rend();
             ++rit) {
          if (events[*rit].time <= ev.time) {
            match = &*rit;
            break;
          }
        }
      }
      if (match != nullptr) {
        const TraceEvent& send = events[*match];
        attribute(ev.phase, ev.time - send.time, /*comm=*/true);
        --c;  // the Recv is consumed
        cur_node = send.node;
        cur_time = send.time;
        continue;
      }
    }
    const bool comm =
        ev.kind == EventKind::Recv || ev.kind == EventKind::Timeout;
    attribute(ev.phase, ev.time - prev_time, comm);
    cur_time = prev_time;
    --c;
  }
  out.has_critical_path = true;
  return out;
}

}  // namespace ftsort::sim
