#include "sim/lineage.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ftsort::sim {

void Lineage::enable(std::uint32_t num_nodes, cube::Dim dim) {
  FTSORT_REQUIRE(dim > 0);
  enabled_ = true;
  dim_ = dim;
  holding_.assign(num_nodes, {});
  untracked_.assign(static_cast<std::size_t>(dim), 0);
  recs_.clear();
  resolved_.clear();
  dummies_ = dropped_events_ = resolve_mismatches_ = 0;
}

void Lineage::disable() {
  enabled_ = false;
  reset();
  holding_.clear();
  untracked_.clear();
}

void Lineage::reset() {
  recs_.clear();
  resolved_.clear();
  for (auto& h : holding_) h.clear();
  std::fill(untracked_.begin(), untracked_.end(), 0);
  dummies_ = dropped_events_ = resolve_mismatches_ = 0;
}

void Lineage::append_event(Rec& rec, LineageEvent ev) {
  if (rec.chain.size() >= kLineageMaxEventsPerKey) {
    ++dropped_events_;
    return;
  }
  rec.chain.push_back(ev);
}

void Lineage::hold(cube::NodeId node, Key value, std::uint64_t id) {
  std::vector<std::uint64_t>& ids = holding_[node][value];
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

std::uint64_t Lineage::mint(cube::NodeId node, Key value, Phase phase) {
  const std::uint64_t id = recs_.size();
  Rec rec;
  rec.value = value;
  rec.origin = node;
  rec.holder = node;
  rec.dummy = value == kDummyKey;
  rec.hops.assign(static_cast<std::size_t>(dim_), 0);
  if (rec.dummy) ++dummies_;
  recs_.push_back(std::move(rec));
  append_event(recs_.back(), {LineageEventKind::Assign, phase, node, node,
                              -1});
  hold(node, value, id);
  return id;
}

void Lineage::assign_block(cube::NodeId node, std::span<const Key> block) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> guard(mutex_);
  for (const Key v : block) mint(node, v, Phase::Scatter);
}

void Lineage::charge_send(cube::NodeId src,
                          std::span<const cube::NodeId> path,
                          std::span<const Key> payload) {
  if (!enabled_ || path.size() < 2) return;
  const std::lock_guard<std::mutex> guard(mutex_);
  const auto& hold_map = holding_[src];
  // Resolve each payload word to an id once (k-th occurrence of a value →
  // k-th smallest held id), then charge every link of the walk.
  std::map<Key, std::size_t> occurrence;
  for (const Key v : payload) {
    const std::size_t k = occurrence[v]++;
    const auto it = hold_map.find(v);
    Rec* rec = nullptr;
    if (it != hold_map.end() && k < it->second.size())
      rec = &recs_[it->second[k]];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto d = static_cast<std::size_t>(
          cube::lowest_set_dim(path[i] ^ path[i + 1]));
      if (rec != nullptr)
        ++rec->hops[d];
      else
        ++untracked_[d];
    }
  }
}

void Lineage::note_retain(cube::NodeId me, cube::NodeId partner,
                          std::uint32_t tag, std::span<const Key> kept,
                          Phase phase, std::int32_t witness_step) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> guard(mutex_);
  if (!resolved_.insert(pair_key(me, partner, tag)).second)
    return;  // the partner already resolved this pair-step
  const cube::NodeId lower = std::min(me, partner);
  const cube::NodeId higher = std::max(me, partner);

  // Pool: every id the pair holds, per value, ids ascending (merge of two
  // sorted lists).
  std::map<Key, std::vector<std::uint64_t>> pool = std::move(holding_[lower]);
  holding_[lower].clear();
  for (auto& [v, ids] : holding_[higher]) {
    std::vector<std::uint64_t>& dst = pool[v];
    const std::size_t mid = dst.size();
    dst.insert(dst.end(), ids.begin(), ids.end());
    std::inplace_merge(dst.begin(),
                       dst.begin() + static_cast<std::ptrdiff_t>(mid),
                       dst.end());
  }
  holding_[higher].clear();

  // Canonical partition: the lower node's retained multiset takes the
  // smallest ids per value. When the higher node resolved first, its kept
  // multiset determines the lower's as the pool complement.
  std::map<Key, std::size_t> kept_count;
  for (const Key v : kept) ++kept_count[v];
  const std::int32_t step = static_cast<std::int32_t>(tag);
  for (auto& [v, ids] : pool) {
    std::size_t lower_n;
    const auto it = kept_count.find(v);
    const std::size_t mine = it == kept_count.end() ? 0 : it->second;
    if (me == lower) {
      lower_n = std::min(mine, ids.size());
      if (mine > ids.size()) resolve_mismatches_ += mine - ids.size();
    } else {
      lower_n = ids.size() - std::min(mine, ids.size());
      if (mine > ids.size()) resolve_mismatches_ += mine - ids.size();
    }
    if (it != kept_count.end()) kept_count.erase(it);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const cube::NodeId to = k < lower_n ? lower : higher;
      Rec& rec = recs_[ids[k]];
      if (rec.holder != to) {
        append_event(rec,
                     {LineageEventKind::Move, phase, to, rec.holder, step});
        rec.holder = to;
        ++rec.moves;
      }
      if (witness_step >= 0) {
        rec.witness = to == lower ? higher : lower;
        rec.witness_step = witness_step;
      }
      hold(to, v, ids[k]);
    }
  }
  // Retained values with no id in the pair's pool at all.
  for (const auto& [v, count] : kept_count) resolve_mismatches_ += count;
}

void Lineage::note_rescatter(const std::vector<std::vector<Key>>& blocks,
                             std::span<const SalvageInfo> salvage,
                             Phase phase) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> guard(mutex_);
  std::map<cube::NodeId, const SalvageInfo*> dead;
  for (const SalvageInfo& s : salvage) dead[s.dead] = &s;

  // Pull every id out of circulation; dummies retire for good (the new
  // padding gets fresh ids), real ids re-enter at their new holders.
  std::map<Key, std::vector<std::uint64_t>> pool;
  for (auto& node_holding : holding_) {
    for (auto& [v, ids] : node_holding) {
      if (v == kDummyKey) {
        for (const std::uint64_t id : ids) {
          Rec& rec = recs_[id];
          rec.retired = true;
          append_event(rec, {LineageEventKind::Retire, phase, rec.holder,
                             rec.holder, -1});
        }
        continue;
      }
      std::vector<std::uint64_t>& dst = pool[v];
      const std::size_t mid = dst.size();
      dst.insert(dst.end(), ids.begin(), ids.end());
      std::inplace_merge(dst.begin(),
                         dst.begin() + static_cast<std::ptrdiff_t>(mid),
                         dst.end());
    }
    node_holding.clear();
  }

  for (cube::NodeId u = 0; u < blocks.size(); ++u) {
    for (const Key v : blocks[u]) {
      if (v == kDummyKey) {
        mint(u, v, phase);
        continue;
      }
      const auto it = pool.find(v);
      if (it == pool.end() || it->second.empty()) {
        // Salvage produced a value lineage never saw: keep the audit
        // consistent by minting it, but count the discrepancy.
        ++resolve_mismatches_;
        mint(u, v, phase);
        continue;
      }
      const std::uint64_t id = it->second.front();
      it->second.erase(it->second.begin());
      Rec& rec = recs_[id];
      const auto dit = dead.find(rec.holder);
      if (dit != dead.end()) {
        rec.salvaged = true;
        append_event(rec, {LineageEventKind::Salvage, phase, u,
                           dit->second->witness, dit->second->step});
      } else if (rec.holder != u) {
        append_event(rec,
                     {LineageEventKind::Rescatter, phase, u, rec.holder, -1});
      }
      rec.holder = u;
      hold(u, v, id);
    }
  }

  // Real ids nobody re-adopted: the salvage lost them.
  for (const auto& [v, ids] : pool)
    for (const std::uint64_t id : ids) {
      Rec& rec = recs_[id];
      rec.lost = true;
      append_event(rec,
                   {LineageEventKind::Lost, phase, rec.holder, rec.holder,
                    -1});
    }
}

LineageSnapshot Lineage::snapshot() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  LineageSnapshot snap;
  snap.enabled = enabled_;
  if (!enabled_) return snap;
  snap.dim = dim_;
  snap.assigned = recs_.size();
  snap.dummies = dummies_;
  snap.dropped_events = dropped_events_;
  snap.resolve_mismatches = resolve_mismatches_;
  snap.untracked = untracked_;
  snap.keys.reserve(recs_.size());
  for (const Rec& rec : recs_) {
    LineageKeyRecord out;
    out.value = rec.value;
    out.origin = rec.origin;
    out.holder = rec.holder;
    out.dummy = rec.dummy;
    out.retired = rec.retired;
    out.lost = rec.lost;
    out.salvaged = rec.salvaged;
    out.witness = rec.witness;
    out.witness_step = rec.witness_step;
    out.moves = rec.moves;
    out.hops = rec.hops;
    out.chain = rec.chain;
    snap.keys.push_back(std::move(out));
  }
  return snap;
}

void audit_lineage(LineageSnapshot& snap, std::span<const Key> output) {
  if (!snap.enabled) return;
  LineageAudit audit;
  audit.checked = true;

  // Live real ids per value, ascending; a cursor pops the smallest first.
  std::map<Key, std::vector<std::uint64_t>> live;
  for (std::uint64_t id = 0; id < snap.keys.size(); ++id) {
    const LineageKeyRecord& k = snap.keys[id];
    if (!k.dummy && !k.retired) live[k.value].push_back(id);
  }
  std::map<Key, std::size_t> cursor;
  std::map<Key, std::uint64_t> extra;
  for (const Key v : output) {
    const auto it = live.find(v);
    std::size_t& c = cursor[v];
    if (it == live.end() || c >= it->second.size()) {
      ++extra[v];
      continue;
    }
    ++c;
  }
  for (const auto& [v, n] : extra) audit.duplicated.push_back({v, n});
  for (const auto& [v, ids] : live) {
    const auto cit = cursor.find(v);
    const std::size_t used = cit == cursor.end() ? 0 : cit->second;
    for (std::size_t k = used; k < ids.size(); ++k) {
      const LineageKeyRecord& rec = snap.keys[ids[k]];
      audit.lost.push_back(
          {ids[k], v, rec.holder,
           rec.chain.empty() ? Phase::Unattributed
                             : rec.chain.back().phase});
    }
  }
  std::sort(audit.lost.begin(), audit.lost.end(),
            [](const LineageAudit::LostKey& a,
               const LineageAudit::LostKey& b) { return a.id < b.id; });
  for (const LineageKeyRecord& k : snap.keys)
    if (k.salvaged) {
      ++audit.salvaged;
      if (k.witness != kLineageNoWitness ||
          std::any_of(k.chain.begin(), k.chain.end(),
                      [](const LineageEvent& ev) {
                        return ev.kind == LineageEventKind::Salvage &&
                               ev.peer != kLineageNoWitness;
                      }))
        ++audit.witnessed_salvaged;
    }
  audit.ok = audit.lost.empty() && audit.duplicated.empty();
  snap.audit = std::move(audit);
}

}  // namespace ftsort::sim
