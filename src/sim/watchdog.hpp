// Wall-clock watchdog: a host-side monitor thread over lock-free heartbeat
// counters, catching the hangs the logical machinery cannot see.
//
// Everything else in sim/ reasons in simulated time, where a genuine
// deadlock is detected *instantly* at quiescence. What that machinery
// cannot catch is a stall of the host itself: a miscompiled coroutine that
// never resumes its continuation (tests/test_coro_miscompile.cpp), a lost
// cv wakeup in the threaded executor, a worker thread wedged in foreign
// code. The watchdog applies the paper's own silent-processor idea to the
// host layer: every execution shard publishes a heartbeat counter it bumps
// on progress (tasks resumed, trials completed) plus an activity word
// (current paper phase, trial index), and a monitor thread trips when the
// *global* beat sum stops advancing past a wall-clock deadline.
//
// Determinism discipline: heartbeats and the monitor live entirely in
// wall-clock land. A beat is one relaxed fetch_add; nothing here reads or
// writes simulated time, so golden reports and executor-equivalence
// snapshots are byte-identical with the watchdog on. The only fields that
// escape into serialized reports are the config echo and the trip /
// near-miss counts — zero on every healthy run by construction of the
// deadline (see below), never the wall-clock ages or poll counts.
//
// Slow-CI robustness: the configured deadline_ms is a *floor*, not the
// gate. The monitor measures the longest gap between successive global
// progress observations while the run is healthy, and trips only when the
// silence exceeds max(deadline_ms, kGapHeadroom x longest-healthy-gap) —
// a box slow enough to stretch every beat stretches its own threshold.
//
// Trip policy: abort_on_trip=true invokes the owner's on_trip callback
// (the Machine passes begin_shutdown) and latches tripped(); the owner
// assembles the black-box dump (sim::Diagnosis of the stalled set,
// flight-recorder tail, host profile, the heartbeat table captured here)
// once its threads are quiescent, writes it via write_watchdog_dump, and
// throws WatchdogError. abort_on_trip=false records a near-miss,
// re-baselines, and keeps monitoring. `ftdiag stuck` decodes the dump.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/diagnosis.hpp"
#include "sim/trace.hpp"

namespace ftsort::sim {

struct HostProfile;  // machine.hpp; dump rendering only needs a pointer

/// Knobs for one run's watchdog; carried by core::SortConfig and
/// campaign::CampaignConfig. Disabled by default: a watchdog costs a
/// monitor thread per run plus one relaxed fetch_add per scheduler step.
struct WatchdogConfig {
  bool enabled = false;
  /// Monitor poll period. Also bounds how stale the heartbeat table in a
  /// dump can be.
  std::uint32_t interval_ms = 25;
  /// Minimum wall-clock silence (no beat anywhere) before a trip. The
  /// effective deadline can only be larger (measured-progress scaling).
  std::uint32_t deadline_ms = 10'000;
  /// true: trip aborts the run with WatchdogError after the dump.
  /// false: trip is recorded as a near-miss and the run continues.
  bool abort_on_trip = true;
  /// Black-box dump target; empty disables the file (the report still
  /// carries the trip counts).
  std::string dump_path;
};

/// One heartbeat source as the monitor last saw it.
struct WatchdogSlotView {
  std::string label;          ///< "node 7", "worker 3", "scheduler", ...
  std::uint64_t beats = 0;    ///< lifetime beat count
  std::uint64_t age_ms = 0;   ///< wall ms since this slot last advanced
  std::string activity;       ///< decoded activity word ("-" when none)
  bool terminal = false;      ///< slot signalled orderly completion
};

/// Run stats plus the heartbeat table captured at the last breach (or the
/// last poll, when the run stayed healthy). Only `enabled`, the config
/// echo, `trips`, and `near_misses` are serialized into metrics/campaign
/// JSON; the wall-clock fields feed dumps and the progress line only.
struct WatchdogReport {
  bool enabled = false;
  bool abort_on_trip = true;
  std::uint32_t deadline_ms = 0;
  std::uint32_t interval_ms = 0;
  std::uint32_t trips = 0;
  std::uint32_t near_misses = 0;
  std::uint64_t polls = 0;                  ///< monitor wakeups
  std::uint64_t effective_deadline_ms = 0;  ///< after progress scaling
  std::uint64_t stall_ms = 0;               ///< silence at the last breach
  std::vector<WatchdogSlotView> slots;
};

/// Thrown by the watchdog's owner after an abort-policy trip, once the
/// dump is written. Carries the report so callers (campaign trials, the
/// CLI) can read the trip counts without re-parsing the dump file.
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(const std::string& what, WatchdogReport report)
      : std::runtime_error(what), report_(std::move(report)) {}
  const WatchdogReport& report() const { return report_; }

 private:
  WatchdogReport report_;
};

class Watchdog {
 public:
  /// Activity word meaning "completed cleanly"; rendered as "terminal"
  /// and excluded when `ftdiag stuck` names the most-silent slot.
  static constexpr std::uint64_t kActivityTerminal = ~std::uint64_t{0};
  /// Initial activity word: nothing reported yet; rendered "-".
  static constexpr std::uint64_t kActivityNone = ~std::uint64_t{0} - 1;
  /// Effective deadline = max(deadline_ms, headroom x longest gap between
  /// global progress observations on the healthy part of this very run).
  static constexpr std::uint64_t kGapHeadroom = 8;

  explicit Watchdog(WatchdogConfig cfg) : cfg_(std::move(cfg)) {}
  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  const WatchdogConfig& config() const { return cfg_; }

  /// Register a heartbeat source. Must happen before start(); returns the
  /// slot index to pass to beat().
  std::size_t add_slot(std::string label);

  /// Decode activity words into the dump's activity column (e.g. the
  /// Machine installs phase_name). Words >= kActivityNone never reach the
  /// namer. Default: decimal rendering. Must be set before start().
  void set_activity_namer(std::function<std::string(std::uint64_t)> namer);

  /// Invoked (off the caller's threads, on the monitor) exactly once on an
  /// abort-policy trip, before tripped() latches; owners use it to unwedge
  /// their threads (Machine::begin_shutdown). Must be set before start().
  void on_trip(std::function<void()> fn);

  /// Launch the monitor thread. No-op when the config is disabled.
  void start();

  /// Stop and join the monitor; captures a final heartbeat table when no
  /// breach did. Idempotent; called by the destructor.
  void stop();

  /// Lock-free heartbeat: one relaxed fetch_add (plus a relaxed store for
  /// the activity overload). Safe from any thread, including after stop().
  void beat(std::size_t slot) noexcept {
    slots_[slot]->beats.fetch_add(1, std::memory_order_relaxed);
  }
  void beat(std::size_t slot, std::uint64_t activity) noexcept {
    slots_[slot]->activity.store(activity, std::memory_order_relaxed);
    slots_[slot]->beats.fetch_add(1, std::memory_order_relaxed);
  }

  /// Latched by an abort-policy breach. Owners poll this at safe points
  /// (the sequential executor between resumes) and after joins.
  bool tripped() const noexcept {
    return tripped_.load(std::memory_order_acquire);
  }

  /// Snapshot of stats + the freshest heartbeat table. Callable any time;
  /// cheap enough for a progress line at human frequency.
  WatchdogReport report() const;

 private:
  struct Slot {
    explicit Slot(std::string l) : label(std::move(l)) {}
    std::string label;
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint64_t> activity{kActivityNone};
  };

  void run_monitor();
  WatchdogReport report_locked() const;  // requires mu_

  WatchdogConfig cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::function<std::string(std::uint64_t)> namer_;
  std::function<void()> on_trip_;

  std::thread monitor_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;          // guarded by mu_
  bool started_ = false;       // guarded by mu_
  std::atomic<bool> tripped_{false};

  // Stats below are written by the monitor under mu_ and read by report().
  std::uint32_t trips_ = 0;
  std::uint32_t near_misses_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t effective_deadline_ms_ = 0;
  std::uint64_t stall_ms_ = 0;
  std::vector<WatchdogSlotView> capture_;  ///< freshest heartbeat table
};

/// Everything beyond the watchdog's own data that a black-box dump can
/// carry; owners fill what they have (all optional).
struct WatchdogDumpContext {
  const char* origin = "machine";          ///< "machine" | "campaign" | ...
  const Diagnosis* diagnosis = nullptr;    ///< stalled-set explanation
  const HostProfile* host = nullptr;       ///< per-shard host counters
  const std::vector<TraceEvent>* trace_tail = nullptr;  ///< bounded by caller
};

/// Render the black-box dump JSON (marker key "watchdog_dump", schema
/// util::kWatchdogDumpSchemaVersion). Byte-stable given identical inputs;
/// the wall-clock fields inside are of course run-specific.
std::string render_watchdog_dump(const WatchdogReport& rep,
                                 const WatchdogDumpContext& ctx);

/// Write the dump to `path`; returns false (without throwing) when the
/// file cannot be written — a watchdog must never turn a diagnosis into a
/// second failure.
bool write_watchdog_dump(const std::string& path, const WatchdogReport& rep,
                         const WatchdogDumpContext& ctx);

}  // namespace ftsort::sim
