#include "sim/machine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

namespace ftsort::sim {

cube::Dim NodeCtx::dim() const { return machine_->dim(); }

const fault::FaultSet& NodeCtx::faults() const { return machine_->faults(); }

bool NodeCtx::is_faulty(cube::NodeId u) const {
  return machine_->faults().is_faulty(u);
}

void NodeCtx::charge_compares(std::uint64_t k) {
  if (k == 0) return;
  clock_ += machine_->cost().compare_time(k);
  machine_->comparisons_.fetch_add(k, std::memory_order_relaxed);
  machine_->trace_.record(
      {clock_, id_, EventKind::Compute, 0, 0, k, 0});
}

void NodeCtx::charge_time(SimTime t) {
  FTSORT_REQUIRE(t >= 0.0);
  clock_ += t;
}

void NodeCtx::send(cube::NodeId dst, Tag tag, std::vector<Key> payload) {
  FTSORT_REQUIRE(dst != id_);
  FTSORT_REQUIRE(cube::valid_node(dst, machine_->dim()));
  FTSORT_REQUIRE(!machine_->faults().is_faulty(dst));

  const int hops = machine_->router().hops(id_, dst);
  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.tag = tag;
  msg.sent_at = clock_;
  msg.hops = hops;
  msg.arrival =
      clock_ + machine_->cost().transfer_time(payload.size(), hops);
  msg.payload = std::move(payload);

  clock_ += machine_->cost().injection_time(msg.payload.size());
  machine_->trace_.record({msg.sent_at, id_, EventKind::Send, dst, tag,
                           msg.payload.size(), hops});
  machine_->post(std::move(msg));
}

bool NodeCtx::RecvAwaiter::await_ready() const noexcept {
  // The threaded executor must re-check under the mailbox lock inside
  // await_suspend; the sequential one can short-circuit here.
  if (ctx.machine_->threaded_) return false;
  return ctx.machine_->has_message(ctx.id_, src, tag);
}

bool NodeCtx::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  return ctx.machine_->register_waiter(ctx.id_, src, tag, h);
}

Message NodeCtx::RecvAwaiter::await_resume() {
  return ctx.machine_->pop_message(ctx.id_, src, tag);
}

Machine::Machine(cube::Dim n, fault::FaultSet faults,
                 fault::FaultModel model, CostModel cost,
                 cube::LinkSet dead_links)
    : n_(n), faults_(std::move(faults)), model_(model), cost_(cost),
      router_(n, faults_.bitmap(), model == fault::FaultModel::Total,
              std::move(dead_links)) {
  FTSORT_REQUIRE(cube::valid_dim(n_));
  FTSORT_REQUIRE(faults_.dim() == n_);
  nodes_.resize(size());
}

Machine::NodeState& Machine::state_of(cube::NodeId id) {
  FTSORT_REQUIRE(cube::valid_node(id, n_));
  FTSORT_INVARIANT(nodes_[id] != nullptr);
  return *nodes_[id];
}

void Machine::post(Message msg) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  keys_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  key_hops_.fetch_add(
      msg.payload.size() * static_cast<std::uint64_t>(msg.hops),
      std::memory_order_relaxed);

  NodeState& dst = state_of(msg.dst);
  const std::uint64_t channel = channel_key(msg.src, msg.tag);
  if (threaded_) {
    std::coroutine_handle<> to_wake = nullptr;
    {
      const std::lock_guard<std::mutex> guard(dst.mutex);
      dst.inbox[channel].push_back(std::move(msg));
      if (dst.waiting && dst.want_channel == channel) {
        dst.waiting = false;
        dst.ready = dst.waiter;
        dst.waiter = nullptr;
        to_wake = dst.ready;
      }
    }
    deliveries_.fetch_add(1, std::memory_order_release);
    if (to_wake) dst.cv.notify_one();
    return;
  }
  dst.inbox[channel].push_back(std::move(msg));
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (dst.waiting && dst.want_channel == channel) {
    dst.waiting = false;
    ready_.push_back(dst.waiter);
    dst.waiter = nullptr;
  }
}

bool Machine::has_message(cube::NodeId node, cube::NodeId src, Tag tag) {
  NodeState& st = state_of(node);
  const auto it = st.inbox.find(channel_key(src, tag));
  return it != st.inbox.end() && !it->second.empty();
}

bool Machine::register_waiter(cube::NodeId node, cube::NodeId src, Tag tag,
                              std::coroutine_handle<> h) {
  // A node program is one sequential coroutine chain, so at most one
  // outstanding recv can exist per node.
  FTSORT_REQUIRE(!faults_.is_faulty(src));  // would deadlock: never sends
  NodeState& st = state_of(node);
  if (threaded_) {
    const std::lock_guard<std::mutex> guard(st.mutex);
    const auto it = st.inbox.find(channel_key(src, tag));
    if (it != st.inbox.end() && !it->second.empty())
      return false;  // raced with a sender: resume immediately
    FTSORT_INVARIANT(!st.waiting);
    st.waiting = true;
    st.want_channel = channel_key(src, tag);
    st.waiter = h;
    return true;
  }
  FTSORT_INVARIANT(!st.waiting);
  st.waiting = true;
  st.want_channel = channel_key(src, tag);
  st.waiter = h;
  return true;
}

Message Machine::pop_message(cube::NodeId node, cube::NodeId src, Tag tag) {
  NodeState& st = state_of(node);
  Message msg;
  if (threaded_) {
    const std::lock_guard<std::mutex> guard(st.mutex);
    auto& queue = st.inbox[channel_key(src, tag)];
    FTSORT_INVARIANT(!queue.empty());
    msg = std::move(queue.front());
    queue.pop_front();
  } else {
    auto& queue = st.inbox[channel_key(src, tag)];
    FTSORT_INVARIANT(!queue.empty());
    msg = std::move(queue.front());
    queue.pop_front();
  }
  st.ctx.clock_ = std::max(st.ctx.clock_, msg.arrival);
  trace_.record({st.ctx.clock_, node, EventKind::Recv, src, tag,
                 msg.payload.size(), msg.hops});
  return msg;
}

void Machine::report_deadlock() {
  std::ostringstream os;
  os << "simulation deadlock: every live node is blocked;";
  for (const auto& node : nodes_) {
    if (!node || node->task.done()) continue;
    os << " node " << node->ctx.id();
    if (node->waiting) {
      os << " waits for src=" << (node->want_channel >> 32)
         << " tag=" << (node->want_channel & 0xffffffffu) << ";";
    } else {
      os << " is not runnable;";
    }
  }
  throw DeadlockError(os.str());
}

void Machine::instantiate_programs(const Program& program) {
  messages_ = keys_sent_ = key_hops_ = comparisons_ = deliveries_ = 0;
  ready_.clear();
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (faults_.is_faulty(u)) {
      nodes_[u] = nullptr;
      continue;
    }
    nodes_[u] = std::unique_ptr<NodeState>(new NodeState(NodeCtx(*this, u)));
    nodes_[u]->task = program(nodes_[u]->ctx);
  }
}

RunReport Machine::collect_report() {
  RunReport report;
  report.node_clocks.assign(size(), 0.0);
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (!nodes_[u]) continue;
    try {
      nodes_[u]->task.take_result();
    } catch (const std::exception& e) {
      running_ = false;
      for (auto& node : nodes_) node.reset();
      throw std::runtime_error("node " + std::to_string(u) +
                               " failed: " + e.what());
    }
    report.node_clocks[u] = nodes_[u]->ctx.now();
    report.makespan = std::max(report.makespan, nodes_[u]->ctx.now());
  }
  report.messages = messages_.load();
  report.keys_sent = keys_sent_.load();
  report.key_hops = key_hops_.load();
  report.comparisons = comparisons_.load();

  // Check no messages were left undelivered (protocol completeness).
  for (const auto& node : nodes_) {
    if (!node) continue;
    for (const auto& [channel, queue] : node->inbox)
      FTSORT_ENSURE(queue.empty());
  }
  for (auto& node : nodes_) node.reset();
  running_ = false;
  return report;
}

RunReport Machine::run(const Program& program) {
  FTSORT_REQUIRE(!running_);
  running_ = true;
  threaded_ = false;
  instantiate_programs(program);

  // Kick each program to its first suspension point; then drain wakeups.
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (!nodes_[u]) continue;
    nodes_[u]->task.start();
    while (!ready_.empty()) {
      auto h = ready_.front();
      ready_.pop_front();
      h.resume();
    }
  }
  while (!ready_.empty()) {
    auto h = ready_.front();
    ready_.pop_front();
    h.resume();
  }

  // All programs must have completed; otherwise the system is deadlocked.
  for (const auto& node : nodes_) {
    if (node && !node->task.done()) {
      running_ = false;
      report_deadlock();
    }
  }
  return collect_report();
}

RunReport Machine::run_threaded(const Program& program,
                                std::chrono::milliseconds timeout) {
  FTSORT_REQUIRE(!running_);
  running_ = true;
  threaded_ = true;
  instantiate_programs(program);

  std::atomic<bool> shutdown{false};
  std::atomic<bool> stalled{false};

  std::vector<std::thread> threads;
  threads.reserve(faults_.healthy_count());
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (!nodes_[u]) continue;
    NodeState& st = *nodes_[u];
    threads.emplace_back([&st, &shutdown, &stalled, timeout, this] {
      st.task.start();
      auto last_epoch = deliveries_.load(std::memory_order_acquire);
      auto last_change = std::chrono::steady_clock::now();
      while (!st.task.done() && !shutdown.load()) {
        std::coroutine_handle<> to_resume = nullptr;
        {
          std::unique_lock<std::mutex> lk(st.mutex);
          st.cv.wait_for(lk, std::chrono::milliseconds(50), [&] {
            return st.ready != nullptr || shutdown.load();
          });
          if (st.ready != nullptr) {
            to_resume = st.ready;
            st.ready = nullptr;
          }
        }
        if (to_resume != nullptr) {
          to_resume.resume();
          continue;
        }
        // No wakeup: detect global stalls via the delivery epoch.
        const auto epoch = deliveries_.load(std::memory_order_acquire);
        const auto now = std::chrono::steady_clock::now();
        if (epoch != last_epoch) {
          last_epoch = epoch;
          last_change = now;
        } else if (now - last_change > timeout) {
          stalled.store(true);
          shutdown.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if (stalled.load()) {
    running_ = false;
    for (auto& node : nodes_) node.reset();
    throw DeadlockError(
        "threaded run stalled: no message delivered within the timeout "
        "while nodes were still blocked");
  }
  threaded_ = false;
  return collect_report();
}

}  // namespace ftsort::sim
