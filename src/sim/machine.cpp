#include "sim/machine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>
#include <tuple>

namespace ftsort::sim {

cube::Dim NodeCtx::dim() const { return machine_->dim(); }

const fault::FaultSet& NodeCtx::faults() const { return machine_->faults(); }

bool NodeCtx::is_faulty(cube::NodeId u) const {
  return machine_->faults().is_faulty(u);
}

void NodeCtx::charge_compares(std::uint64_t k) {
  if (k == 0) return;
  const SimTime dt = machine_->cost().compare_time(k);
  clock_ += dt;
  machine_->comparisons_.fetch_add(k, std::memory_order_relaxed);
  if (machine_->metrics_.enabled()) {
    PhaseCounters& pc = machine_->metrics_.at(id_, phase_);
    pc.comparisons += k;
    pc.compute_time += dt;
  }
  machine_->trace_.record(
      {clock_, id_, EventKind::Compute, 0, 0, k, 0, phase_});
  if (machine_->timeline_.enabled())
    machine_->timeline_.note_phase(id_, clock_, phase_);
  machine_->check_alive(id_);
}

void NodeCtx::charge_time(SimTime t) {
  FTSORT_REQUIRE(t >= 0.0);
  clock_ += t;
  if (machine_->metrics_.enabled())
    machine_->metrics_.at(id_, phase_).compute_time += t;
  if (machine_->timeline_.enabled())
    machine_->timeline_.note_phase(id_, clock_, phase_);
  machine_->check_alive(id_);
}

int NodeCtx::hops_to(cube::NodeId dst) const {
  return machine_->router().hops(id_, dst);
}

bool NodeCtx::link_stats_enabled() const {
  return machine_->link_stats_.enabled();
}

void NodeCtx::note_reindex_hops(cube::Dim logical_dim, int extra_hops,
                                bool fault_pair) {
  if (!machine_->link_stats_.enabled()) return;
  machine_->link_stats_.note_reindex(id_, logical_dim, extra_hops,
                                     fault_pair);
}

bool NodeCtx::lineage_enabled() const {
  return machine_->lineage_.enabled();
}

void NodeCtx::note_lineage_retain(cube::NodeId partner, Tag tag,
                                  std::span<const Key> kept,
                                  std::int32_t witness_step) {
  machine_->lineage_.note_retain(id_, partner, tag, kept, phase_,
                                 witness_step);
}

void NodeCtx::note_lineage_rescatter(
    const std::vector<std::vector<Key>>& blocks,
    std::span<const Lineage::SalvageInfo> salvage) {
  machine_->lineage_.note_rescatter(blocks, salvage, phase_);
}

PhaseSpan NodeCtx::span(Phase p) { return PhaseSpan(*this, p, true); }

PhaseSpan NodeCtx::span_if_unattributed(Phase p) {
  return PhaseSpan(*this, p, phase_ == Phase::Unattributed);
}

PhaseSpan::PhaseSpan(NodeCtx& ctx, Phase p, bool engage)
    : ctx_(ctx), prev_(ctx.phase_), engaged_(engage) {
  if (!engaged_) return;
  // Recorded before the phase switches so the walk's gap attribution stays
  // with the enclosing phase; the event itself carries the new phase.
  ctx_.machine_->trace().record(
      {ctx_.clock_, ctx_.id_, EventKind::SpanBegin, 0, 0, 0, 0, p});
  ctx_.phase_ = p;
}

PhaseSpan::~PhaseSpan() {
  if (!engaged_) return;
  ctx_.machine_->trace().record({ctx_.clock_, ctx_.id_, EventKind::SpanEnd,
                                0, 0, 0, 0, ctx_.phase_});
  ctx_.phase_ = prev_;
}

void NodeCtx::send(cube::NodeId dst, Tag tag, std::span<const Key> payload) {
  BufferPool& pool = machine_->pools_[id_];
  std::vector<Key> storage = pool.checkout(payload.size());
  storage.assign(payload.begin(), payload.end());
  if (machine_->metrics_.enabled())
    ++machine_->metrics_.at(id_, phase_).pool_checkouts;
  send(dst, tag, PooledBuffer(&pool, std::move(storage)));
}

void NodeCtx::send(cube::NodeId dst, Tag tag, std::vector<Key>&& payload) {
  // Adopt the storage: it enters the sender's pool circulation when the
  // receiver is done with it.
  send(dst, tag, PooledBuffer(&machine_->pools_[id_], std::move(payload)));
}

void NodeCtx::send(cube::NodeId dst, Tag tag, PooledBuffer&& payload) {
  FTSORT_REQUIRE(dst != id_);
  FTSORT_REQUIRE(cube::valid_node(dst, machine_->dim()));
  FTSORT_REQUIRE(!machine_->faults().is_faulty(dst));
  machine_->check_alive(id_);

  int hops;
  if (machine_->link_stats_.enabled() || machine_->lineage_.enabled()) {
    // Charge every link the message will traverse before the payload is
    // moved out. Same walk the router's hop count summarises, so the two
    // stay consistent by construction; dropped messages are charged here
    // and in post()'s aggregates alike, preserving the conservation
    // invariant (see sim/link_stats.hpp). Lineage charges the identical
    // walk per payload word, which is what makes its per-id + untracked
    // sums match the LinkStats key_hops exactly (sim/lineage.hpp).
    const std::vector<cube::NodeId> path =
        machine_->router().path(id_, dst);
    hops = static_cast<int>(path.size()) - 1;
    if (machine_->link_stats_.enabled())
      machine_->link_stats_.charge_path(path, payload.size(), phase_);
    if (machine_->lineage_.enabled())
      machine_->lineage_.charge_send(id_, path, payload.span());
  } else {
    hops = machine_->router().hops(id_, dst);
  }
  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.tag = tag;
  msg.sent_at = clock_;
  msg.hops = hops;
  msg.arrival =
      clock_ + machine_->cost().transfer_time(payload.size(), hops);
  msg.payload = std::move(payload);
  msg.phase = phase_;

  const SimTime injection =
      machine_->cost().injection_time(msg.payload.size());
  clock_ += injection;
  if (machine_->metrics_.enabled()) {
    PhaseCounters& pc = machine_->metrics_.at(id_, phase_);
    ++pc.messages;
    pc.keys_sent += msg.payload.size();
    pc.key_hops +=
        msg.payload.size() * static_cast<std::uint64_t>(msg.hops);
    pc.send_busy += injection;
    ++pc.msg_size_hist[PhaseCounters::size_bucket(msg.payload.size())];
  }
  machine_->trace_.record({msg.sent_at, id_, EventKind::Send, dst, tag,
                           msg.payload.size(), hops, phase_});
  if (machine_->timeline_.enabled()) {
    machine_->timeline_.note_send(id_, dst, msg.payload.size(),
                                  msg.sent_at);
    machine_->timeline_.note_phase(id_, clock_, phase_);
  }
  machine_->post(std::move(msg));
}

bool NodeCtx::RecvAwaiter::await_ready() const noexcept {
  // The threaded executor must re-check under the mailbox lock inside
  // await_suspend; the sequential one can short-circuit here.
  if (ctx.machine_->threaded_) return false;
  return ctx.machine_->has_message(ctx.id_, src, tag);
}

bool NodeCtx::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  return ctx.machine_->register_waiter(ctx.id_, src, tag, h,
                                       /*has_deadline=*/false, 0.0);
}

Message NodeCtx::RecvAwaiter::await_resume() {
  return ctx.machine_->pop_message(ctx.id_, src, tag);
}

bool NodeCtx::RecvTimeoutAwaiter::await_ready() const noexcept {
  if (ctx.machine_->threaded_) return false;
  return ctx.machine_->has_message(ctx.id_, src, tag);
}

bool NodeCtx::RecvTimeoutAwaiter::await_suspend(std::coroutine_handle<> h) {
  FTSORT_REQUIRE(patience >= 0.0);
  return ctx.machine_->register_waiter(ctx.id_, src, tag, h,
                                       /*has_deadline=*/true,
                                       ctx.clock_ + patience);
}

std::optional<Message> NodeCtx::RecvTimeoutAwaiter::await_resume() {
  return ctx.machine_->finish_recv_or_timeout(ctx.id_, src, tag);
}

Machine::Machine(cube::Dim n, fault::FaultSet faults,
                 fault::FaultModel model, CostModel cost,
                 cube::LinkSet dead_links)
    : n_(n), faults_(std::move(faults)), model_(model), cost_(cost),
      router_(n, faults_.bitmap(), model == fault::FaultModel::Total,
              std::move(dead_links)) {
  FTSORT_REQUIRE(cube::valid_dim(n_));
  FTSORT_REQUIRE(faults_.dim() == n_);
  pools_ = std::vector<BufferPool>(size());
  nodes_.resize(size());
  trace_.reshard(size());
}

void Machine::profile_host(bool on) {
  profile_host_ = on;
  if (on && prof_shards_.size() != size()) {
    prof_shards_.clear();
    for (std::uint32_t u = 0; u < size(); ++u)
      prof_shards_.push_back(std::make_unique<ShardProfile>());
  }
  for (BufferPool& pool : pools_) pool.set_profiling(on);
}

std::unique_lock<std::mutex> Machine::lock_shard(NodeState& st,
                                                 cube::NodeId id) {
  if (!profile_host_) return std::unique_lock<std::mutex>(st.mutex);
  std::unique_lock<std::mutex> lk(st.mutex, std::try_to_lock);
  if (lk.owns_lock()) return lk;
  const auto t0 = std::chrono::steady_clock::now();
  lk.lock();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ShardProfile& prof = *prof_shards_[id];
  prof.mutex_waits.fetch_add(1, std::memory_order_relaxed);
  prof.mutex_wait_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()),
      std::memory_order_relaxed);
  return lk;
}

Diagnosis Machine::diagnose(Diagnosis::Kind kind) const {
  DiagnosisInput in;
  for (cube::NodeId u = 0; u < size(); ++u) {
    const NodeState* st = nodes_[u].get();
    if (st == nullptr) continue;
    if (st->killed) {
      in.kills.push_back({u, st->ctx.clock_, st->ctx.phase_});
    } else if (!st->task.done() && st->waiting) {
      in.waits.push_back({u, static_cast<cube::NodeId>(st->want_channel >> 32),
                          static_cast<Tag>(st->want_channel & 0xffffffffu),
                          st->ctx.clock_, st->ctx.phase_,
                          /*expired=*/false});
    }
  }
  for (const auto& cut : injector_.cuts())
    if (cut.when < kNever) in.cuts.push_back({cut.a, cut.b, cut.when});
  if (trace_.enabled()) {
    // Expired recv_or_timeout waits (and deaths of nodes already reset)
    // survive only in the flight recorder; merge this run's slice in.
    std::vector<TraceEvent> events = trace_.snapshot();
    std::erase_if(events, [this](const TraceEvent& ev) {
      return ev.seq < trace_run_start_;
    });
    DiagnosisInput recorded = diagnosis_input_from_events(events);
    in.waits.insert(in.waits.end(), recorded.waits.begin(),
                    recorded.waits.end());
    in.kills.insert(in.kills.end(), recorded.kills.begin(),
                    recorded.kills.end());
    // This run's eviction count: a nonzero value tells diagnose() the
    // recorded slice above may be missing the true root event.
    const std::uint64_t dropped_now = trace_.dropped();
    in.trace_dropped = dropped_now >= trace_dropped_mark_
                           ? dropped_now - trace_dropped_mark_
                           : dropped_now;
  }
  return sim::diagnose(std::move(in), kind);
}

PoolStats Machine::pool_stats() const {
  PoolStats total;
  for (const BufferPool& pool : pools_) total += pool.stats();
  return total;
}

PoolStats Machine::pool_stats_delta() const {
  const PoolStats now = pool_stats();
  FTSORT_INVARIANT(now.checkouts >= pool_mark_.checkouts);
  FTSORT_INVARIANT(now.returns >= pool_mark_.returns);
  PoolStats delta;
  delta.checkouts = now.checkouts - pool_mark_.checkouts;
  delta.fresh = now.fresh - pool_mark_.fresh;
  delta.grows = now.grows - pool_mark_.grows;
  delta.returns = now.returns - pool_mark_.returns;
  return delta;
}

Machine::NodeState& Machine::state_of(cube::NodeId id) {
  FTSORT_REQUIRE(cube::valid_node(id, n_));
  FTSORT_INVARIANT(nodes_[id] != nullptr);
  return *nodes_[id];
}

std::size_t Machine::inbox_find(const NodeState& st, std::uint64_t channel) {
  for (std::size_t k = 0; k < st.inbox.size(); ++k) {
    const Message& m = st.inbox[k];
    if (channel_key(m.src, m.tag) == channel) return k;
  }
  return kNotFound;
}

void Machine::check_alive(cube::NodeId id) {
  NodeState& st = state_of(id);
  if (st.ctx.clock_ < st.kill_time) return;
  if (threaded_) {
    const std::unique_lock<std::mutex> guard = lock_shard(st, id);
    st.killed = true;
  } else {
    st.killed = true;
  }
  trace_.record(
      {st.ctx.clock_, id, EventKind::Kill, 0, 0, 0, 0, st.ctx.phase_});
  throw KilledSignal{};
}

void Machine::post(Message msg) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  keys_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  key_hops_.fetch_add(
      msg.payload.size() * static_cast<std::uint64_t>(msg.hops),
      std::memory_order_relaxed);

  NodeState& dst = state_of(msg.dst);
  // Dynamic-fault drop rules: dead on arrival, or the direct link between
  // adjacent endpoints was cut before the send. Both are purely logical,
  // so each executor drops exactly the same messages.
  const bool dead_on_arrival = msg.arrival >= dst.kill_time;
  const bool link_cut =
      cube::hamming(msg.src, msg.dst) == 1 &&
      msg.sent_at >= injector_.link_cut_time(msg.src, msg.dst);
  if (dead_on_arrival || link_cut) {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    // Charged to the *sender's* row (post runs on the sender's thread, so
    // this stays within the per-node write sharding) under the sender's
    // phase at the send, carried on the message.
    if (metrics_.enabled())
      ++metrics_.at(msg.src, msg.phase).messages_dropped;
    trace_.record({msg.arrival, msg.dst, EventKind::Drop, msg.src, msg.tag,
                   msg.payload.size(), msg.hops, msg.phase});
    if (timeline_.enabled())
      timeline_.note_dropped(msg.src, msg.dst, msg.payload.size(),
                             msg.arrival);
    return;
  }
  if (timeline_.enabled()) timeline_.note_enqueue(msg.dst, msg.arrival);

  const std::uint64_t channel = channel_key(msg.src, msg.tag);
  if (threaded_) {
    // Sharded hot path: only the destination's own lock. The sender is by
    // definition runnable, so quiescence cannot be pending concurrently.
    const std::unique_lock<std::mutex> guard = lock_shard(dst, msg.dst);
    dst.inbox.push_back(std::move(msg));
    deliveries_.fetch_add(1, std::memory_order_release);
    if (dst.waiting && dst.want_channel == channel) {
      dst.waiting = false;
      dst.ready = dst.waiter;
      dst.waiter = nullptr;
      progress_.fetch_sub(1, std::memory_order_acq_rel);
      dst.cv.notify_one();
    }
    return;
  }
  dst.inbox.push_back(std::move(msg));
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (dst.waiting && dst.want_channel == channel) {
    dst.waiting = false;
    ready_.push_back(dst.waiter);
    dst.waiter = nullptr;
  }
}

bool Machine::has_message(cube::NodeId node, cube::NodeId src, Tag tag) {
  return inbox_find(state_of(node), channel_key(src, tag)) != kNotFound;
}

bool Machine::register_waiter(cube::NodeId node, cube::NodeId src, Tag tag,
                              std::coroutine_handle<> h, bool has_deadline,
                              SimTime deadline) {
  // A node program is one sequential coroutine chain, so at most one
  // outstanding recv can exist per node. Statically faulty processors can
  // never send (only injector victims can die after sending).
  FTSORT_REQUIRE(!faults_.is_faulty(src));
  NodeState& st = state_of(node);
  const std::uint64_t channel = channel_key(src, tag);
  if (threaded_) {
    {
      const std::unique_lock<std::mutex> guard = lock_shard(st, node);
      if (inbox_find(st, channel) != kNotFound)
        return false;  // raced with a sender: resume immediately
      FTSORT_INVARIANT(!st.waiting);
      st.waiting = true;
      st.want_channel = channel;
      st.waiter = h;
      st.has_deadline = has_deadline;
      st.deadline = deadline;
      // Inside the lock so a racing wake in post() can never observe (and
      // decrement) a blocked count we have not yet incremented.
      progress_.fetch_add(1, std::memory_order_acq_rel);
    }
    maybe_resolve_quiescence();
    return true;
  }
  FTSORT_INVARIANT(!st.waiting);
  st.waiting = true;
  st.want_channel = channel;
  st.waiter = h;
  st.has_deadline = has_deadline;
  st.deadline = deadline;
  return true;
}

Message Machine::pop_message(cube::NodeId node, cube::NodeId src, Tag tag) {
  NodeState& st = state_of(node);
  const std::uint64_t channel = channel_key(src, tag);
  Message msg;
  if (threaded_) {
    const std::unique_lock<std::mutex> guard = lock_shard(st, node);
    const std::size_t k = inbox_find(st, channel);
    FTSORT_INVARIANT(k != kNotFound);
    msg = std::move(st.inbox[k]);
    st.inbox.erase(st.inbox.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    const std::size_t k = inbox_find(st, channel);
    FTSORT_INVARIANT(k != kNotFound);
    msg = std::move(st.inbox[k]);
    st.inbox.erase(st.inbox.begin() + static_cast<std::ptrdiff_t>(k));
  }
  const SimTime before = st.ctx.clock_;
  st.ctx.clock_ = std::max(st.ctx.clock_, msg.arrival);
  if (metrics_.enabled()) {
    PhaseCounters& pc = metrics_.at(node, st.ctx.phase_);
    ++pc.recvs;
    pc.keys_received += msg.payload.size();
    pc.recv_wait += st.ctx.clock_ - before;
  }
  trace_.record({st.ctx.clock_, node, EventKind::Recv, src, tag,
                 msg.payload.size(), msg.hops, st.ctx.phase_});
  if (timeline_.enabled()) {
    timeline_.note_dequeue(node, st.ctx.clock_);
    timeline_.note_delivered(src, node, msg.payload.size(), st.ctx.clock_);
    timeline_.note_phase(node, st.ctx.clock_, st.ctx.phase_);
  }
  check_alive(node);
  return msg;
}

std::optional<Message> Machine::finish_recv_or_timeout(cube::NodeId node,
                                                       cube::NodeId src,
                                                       Tag tag) {
  NodeState& st = state_of(node);
  if (st.timed_out) {
    st.timed_out = false;
    st.has_deadline = false;
    const SimTime before = st.ctx.clock_;
    st.ctx.clock_ = std::max(st.ctx.clock_, st.deadline);
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.enabled()) {
      PhaseCounters& pc = metrics_.at(node, st.ctx.phase_);
      ++pc.timeouts;
      pc.recv_wait += st.ctx.clock_ - before;
    }
    trace_.record({st.ctx.clock_, node, EventKind::Timeout, src, tag, 0, 0,
                   st.ctx.phase_});
    if (timeline_.enabled())
      timeline_.note_phase(node, st.ctx.clock_, st.ctx.phase_);
    check_alive(node);
    return std::nullopt;
  }
  st.has_deadline = false;
  return pop_message(node, src, tag);
}

std::string Machine::deadlock_message() const {
  std::ostringstream os;
  os << "simulation deadlock: every live node is blocked;";
  for (const auto& node : nodes_) {
    if (!node || node->task.done() || node->killed) continue;
    os << " node " << node->ctx.id();
    if (node->waiting) {
      os << " waits for src=" << (node->want_channel >> 32)
         << " tag=" << (node->want_channel & 0xffffffffu) << " ["
         << phase_name(node->ctx.phase_) << "];";
    } else {
      os << " is not runnable;";
    }
  }
  // Both executors call this at quiescence with stable node states, so the
  // diagnosis (derived from logical evidence only) matches byte-for-byte.
  const Diagnosis diag = diagnose(Diagnosis::Kind::Deadlock);
  if (diag.triggered()) os << ' ' << diag.to_string();
  return os.str();
}

bool Machine::fire_quiescence_event() {
  // Candidate logical events for blocked nodes: recv-timeout expiry at its
  // deadline, and the death of a node whose kill time can now never be
  // outrun. The earliest (time, kind, node) triple fires; kills order
  // after timeouts on exact ties so a node with deadline == kill time
  // still observes its timeout. At quiescence no node is runnable, so the
  // states read here are stable; the per-node locks (threaded only)
  // synchronise with each node thread's last release of its own state.
  NodeState* best = nullptr;
  SimTime best_time = 0.0;
  int best_kind = 0;  // 0 = timeout, 1 = kill
  cube::NodeId best_node = 0;
  const auto consider = [&](NodeState& st, SimTime t, int kind,
                            cube::NodeId u) {
    if (best != nullptr &&
        std::tie(best_time, best_kind, best_node) <= std::tie(t, kind, u))
      return;
    best = &st;
    best_time = t;
    best_kind = kind;
    best_node = u;
  };
  for (cube::NodeId u = 0; u < size(); ++u) {
    NodeState* st = nodes_[u].get();
    if (st == nullptr) continue;
    std::unique_lock<std::mutex> lock;
    if (threaded_) lock = std::unique_lock<std::mutex>(st->mutex);
    if (!st->waiting) continue;
    if (st->has_deadline) consider(*st, st->deadline, 0, u);
    if (st->kill_time < kNever)
      consider(*st, std::max(st->ctx.clock_, st->kill_time), 1, u);
  }
  if (best == nullptr) return false;

  NodeState& st = *best;
  std::unique_lock<std::mutex> lock;
  if (threaded_) lock = std::unique_lock<std::mutex>(st.mutex);
  FTSORT_INVARIANT(st.waiting);
  st.waiting = false;
  if (best_kind == 0) {
    st.timed_out = true;
    const std::coroutine_handle<> h = st.waiter;
    st.waiter = nullptr;
    if (threaded_) {
      st.ready = h;
      progress_.fetch_sub(1, std::memory_order_acq_rel);
      st.cv.notify_one();
    } else {
      ready_.push_back(h);
    }
    return true;
  }
  // A blocked node dies: its coroutine is abandoned, never resumed.
  st.killed = true;
  st.waiter = nullptr;
  trace_.record({st.ctx.clock_, best_node, EventKind::Kill, 0, 0, 0, 0,
                 st.ctx.phase_});
  if (threaded_) {
    progress_.fetch_sub(1, std::memory_order_acq_rel);
    st.cv.notify_one();  // its thread exits via the killed flag
  }
  return true;
}

void Machine::maybe_resolve_quiescence() {
  const auto quiescent = [this](std::uint64_t packed) {
    const auto blocked = static_cast<std::size_t>(packed & 0xffffffffu);
    const auto terminal = static_cast<std::size_t>(packed >> 32);
    return blocked + terminal >= total_programs_ && blocked > 0;
  };
  if (!quiescent(progress_.load(std::memory_order_acquire))) return;
  const std::lock_guard<std::mutex> guard(sched_mutex_);
  if (profile_host_)
    prof_quiescence_checks_.fetch_add(1, std::memory_order_relaxed);
  if (shutdown_.load(std::memory_order_relaxed)) return;
  // Re-verify under the lock: a concurrent resolver may have fired an
  // event (making some node runnable) between our read and the acquire.
  if (!quiescent(progress_.load(std::memory_order_acquire))) return;
  if (fire_quiescence_event()) {
    if (profile_host_)
      prof_quiescence_events_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Genuine deadlock: report the same blocked set the sequential executor
  // would, then shut the thread pool down.
  deadlocked_ = true;
  deadlock_msg_ = deadlock_message();
  begin_shutdown();
}

void Machine::begin_shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& node : nodes_) {
    if (!node) continue;
    // Lock-then-notify so a thread between its predicate check and its
    // cv wait cannot miss the wakeup.
    const std::lock_guard<std::mutex> guard(node->mutex);
    node->cv.notify_all();
  }
}

void Machine::instantiate_programs(const Program& program) {
  messages_ = keys_sent_ = key_hops_ = comparisons_ = 0;
  messages_dropped_ = timeouts_ = deliveries_ = 0;
  if (metrics_.enabled()) metrics_.reset();
  if (link_stats_.enabled()) link_stats_.reset();
  if (timeline_.enabled()) timeline_.reset();
  // lineage_ is deliberately NOT reset here: its scatter assignment is
  // host-side, pre-run state (see Machine::lineage()).
  pool_mark_ = pool_stats();
  trace_run_start_ = trace_.next_seq();
  trace_dropped_mark_ = trace_.dropped();
  if (profile_host_) {
    for (auto& shard : prof_shards_) {
      shard->mutex_waits.store(0, std::memory_order_relaxed);
      shard->mutex_wait_ns.store(0, std::memory_order_relaxed);
      shard->cv_waits.store(0, std::memory_order_relaxed);
      shard->cv_wakeups.store(0, std::memory_order_relaxed);
      shard->spurious_wakeups.store(0, std::memory_order_relaxed);
      shard->tasks_resumed.store(0, std::memory_order_relaxed);
    }
    prof_quiescence_checks_.store(0, std::memory_order_relaxed);
    prof_quiescence_events_.store(0, std::memory_order_relaxed);
    for (BufferPool& pool : pools_) pool.reset_contention();
  }
  ready_.clear();
  total_programs_ = 0;
  progress_.store(0, std::memory_order_relaxed);
  shutdown_.store(false, std::memory_order_relaxed);
  deadlocked_ = false;
  deadlock_msg_.clear();
  watchdog_stats_ = WatchdogReport{};  // {"enabled": false} stub by default
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (faults_.is_faulty(u)) {
      nodes_[u] = nullptr;
      continue;
    }
    nodes_[u] = std::unique_ptr<NodeState>(new NodeState(NodeCtx(*this, u)));
    nodes_[u]->kill_time = injector_.node_kill_time(u);
    nodes_[u]->task = program(nodes_[u]->ctx);
    ++total_programs_;
  }
}

void Machine::drain_ready() {
  while (!ready_.empty()) {
    // A tripped abort-policy watchdog stops the scheduler at the next
    // resume boundary (the sequential executor cannot preempt a wedged
    // coroutine mid-resume); run() turns the latch into the thrown error.
    if (active_watchdog_ != nullptr && active_watchdog_->tripped()) return;
    auto h = ready_.front();
    ready_.pop_front();
    h.resume();
    if (active_watchdog_ != nullptr) active_watchdog_->beat(0);
  }
}

RunReport Machine::collect_report() {
  RunReport report;
  report.cost = cost_;
  report.node_clocks.assign(size(), 0.0);
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (!nodes_[u]) continue;
    NodeState& st = *nodes_[u];
    report.node_clocks[u] = st.ctx.now();
    if (st.killed) {
      // Died mid-run: clock frozen at death; excluded from the makespan.
      report.killed_nodes.push_back(u);
      continue;
    }
    try {
      st.task.take_result();
    } catch (const std::exception& e) {
      running_ = false;
      for (auto& node : nodes_) node.reset();
      throw std::runtime_error("node " + std::to_string(u) +
                               " failed: " + e.what());
    }
    report.makespan = std::max(report.makespan, st.ctx.now());
  }
  report.messages = messages_.load();
  report.keys_sent = keys_sent_.load();
  report.key_hops = key_hops_.load();
  report.comparisons = comparisons_.load();
  report.messages_dropped = messages_dropped_.load();
  report.timeouts = timeouts_.load();
  report.pool = pool_stats();
  report.pool_delta = pool_stats_delta();
  if (metrics_.enabled()) {
    report.metrics = metrics_.snapshot();
    // Critical-path attribution needs the trace; restrict it to this run's
    // events (the trace may hold earlier runs' history — the run-start
    // sequence watermark slices it, ring evictions notwithstanding).
    std::vector<TraceEvent> events;
    if (trace_.enabled()) {
      events = trace_.snapshot();
      std::erase_if(events, [this](const TraceEvent& ev) {
        return ev.seq < trace_run_start_;
      });
    }
    report.phases = build_phase_breakdown(report.metrics, events,
                                          report.makespan,
                                          report.node_clocks);
  }
  if (link_stats_.enabled()) report.links = link_stats_.snapshot();
  if (timeline_.enabled()) report.timeline = timeline_.snapshot();
  if (lineage_.enabled()) report.lineage = lineage_.snapshot();
  const std::uint64_t dropped_now = trace_.dropped();
  report.trace_dropped =
      dropped_now >= trace_dropped_mark_ ? dropped_now - trace_dropped_mark_
                                         : dropped_now;
  if (report.timeouts > 0 || !report.killed_nodes.empty()) {
    report.diagnosis = diagnose(report.timeouts > 0
                                    ? Diagnosis::Kind::TimeoutBurst
                                    : Diagnosis::Kind::NodeLoss);
  }
  report.host = snapshot_host_profile();
  report.watchdog = watchdog_stats_;

  // Check no messages were left undelivered (protocol completeness). With
  // dynamic faults, stray deliveries to dead or timed-out programs are
  // expected and exempt.
  if (injector_.empty() && report.timeouts == 0) {
    for (const auto& node : nodes_) {
      if (!node) continue;
      FTSORT_ENSURE(node->inbox.empty());
    }
  }
  for (auto& node : nodes_) node.reset();
  running_ = false;
  return report;
}

HostProfile Machine::snapshot_host_profile() const {
  HostProfile host;
  if (!profile_host_) return host;
  host.enabled = true;
  host.shards.resize(size());
  for (std::size_t u = 0; u < prof_shards_.size(); ++u) {
    const ShardProfile& p = *prof_shards_[u];
    SchedShardProfile& out = host.shards[u];
    out.mutex_waits = p.mutex_waits.load(std::memory_order_relaxed);
    out.mutex_wait_ns = p.mutex_wait_ns.load(std::memory_order_relaxed);
    out.cv_waits = p.cv_waits.load(std::memory_order_relaxed);
    out.cv_wakeups = p.cv_wakeups.load(std::memory_order_relaxed);
    out.spurious_wakeups = p.spurious_wakeups.load(std::memory_order_relaxed);
    out.tasks_resumed = p.tasks_resumed.load(std::memory_order_relaxed);
  }
  host.quiescence_checks =
      prof_quiescence_checks_.load(std::memory_order_relaxed);
  host.quiescence_events =
      prof_quiescence_events_.load(std::memory_order_relaxed);
  for (const BufferPool& pool : pools_) {
    host.pool_contended += pool.contended();
    host.pool_contended_wait_ns += pool.contended_wait_ns();
  }
  return host;
}

std::unique_ptr<Watchdog> Machine::arm_watchdog(bool threaded) {
  if (!watchdog_cfg_.enabled) return nullptr;
  auto wd = std::make_unique<Watchdog>(watchdog_cfg_);
  wd->set_activity_namer([](std::uint64_t act) {
    return std::string(phase_name(static_cast<Phase>(act)));
  });
  wd_slot_.assign(size(), 0);
  if (threaded) {
    for (cube::NodeId u = 0; u < size(); ++u)
      if (nodes_[u]) wd_slot_[u] = wd->add_slot("node " + std::to_string(u));
    // Unwedge the node threads so join() returns and the dump can be
    // assembled from a quiescent machine.
    wd->on_trip([this] { begin_shutdown(); });
  } else {
    wd->add_slot("scheduler");
  }
  wd->start();
  return wd;
}

void Machine::throw_watchdog_trip() {
  running_ = false;
  const WatchdogReport rep = watchdog_stats_;
  const Diagnosis diag = diagnose(Diagnosis::Kind::Deadlock);
  const HostProfile host = snapshot_host_profile();
  std::vector<TraceEvent> tail;
  if (trace_.enabled()) {
    tail = trace_.snapshot();
    std::erase_if(tail, [this](const TraceEvent& ev) {
      return ev.seq < trace_run_start_;
    });
    constexpr std::size_t kTailEvents = 64;
    if (tail.size() > kTailEvents)
      tail.erase(tail.begin(),
                 tail.end() - static_cast<std::ptrdiff_t>(kTailEvents));
  }
  WatchdogDumpContext ctx;
  ctx.origin = "machine";
  // A host-level stall usually leaves no logical evidence (the wedge is
  // in wall-clock, not in blocked receives); only attach the diagnosis
  // when it actually found a root, so `ftdiag stuck` never renders a
  // "root cause: none" line.
  ctx.diagnosis = diag.triggered() ? &diag : nullptr;
  ctx.host = &host;
  ctx.trace_tail = trace_.enabled() ? &tail : nullptr;
  if (!watchdog_cfg_.dump_path.empty())
    write_watchdog_dump(watchdog_cfg_.dump_path, rep, ctx);
  // Name the most-silent non-terminal slot: the wedged shard.
  const WatchdogSlotView* worst = nullptr;
  for (const WatchdogSlotView& s : rep.slots)
    if (!s.terminal && (worst == nullptr || s.age_ms > worst->age_ms))
      worst = &s;
  const std::string who = worst != nullptr ? worst->label : std::string();
  std::string msg = "watchdog tripped: no scheduler progress for " +
                    std::to_string(rep.stall_ms) + " ms (deadline " +
                    std::to_string(rep.effective_deadline_ms) + " ms)";
  if (!who.empty()) msg += "; most silent: " + who;
  if (!watchdog_cfg_.dump_path.empty())
    msg += "; dump: " + watchdog_cfg_.dump_path;
  for (auto& node : nodes_) node.reset();
  throw WatchdogError(msg, rep);
}

RunReport Machine::run(const Program& program) {
  FTSORT_REQUIRE(!running_);
  running_ = true;
  threaded_ = false;
  instantiate_programs(program);
  std::unique_ptr<Watchdog> wd = arm_watchdog(/*threaded=*/false);
  active_watchdog_ = wd.get();
  const auto finish_watchdog = [&] {
    active_watchdog_ = nullptr;
    if (wd == nullptr) return false;
    wd->stop();
    watchdog_stats_ = wd->report();
    return wd->tripped();
  };

  try {
    // Kick each program to its first suspension point; then drain wakeups.
    for (cube::NodeId u = 0; u < size(); ++u) {
      if (!nodes_[u]) continue;
      nodes_[u]->task.start();
      if (wd != nullptr) wd->beat(0);
      drain_ready();
    }
    drain_ready();

    // Quiescence loop: every remaining program is blocked in a recv. Fire
    // pending logical events (recv timeouts, deaths of blocked nodes) in
    // event-time order until everything is terminal, or fail with the
    // blocked set if no event can make progress.
    while (true) {
      if (wd != nullptr && wd->tripped()) break;
      bool pending = false;
      for (const auto& node : nodes_) {
        if (node && !node->task.done() && !node->killed) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
      if (!fire_quiescence_event()) {
        running_ = false;
        finish_watchdog();
        const std::string msg = deadlock_message();
        for (auto& node : nodes_) node.reset();
        throw DeadlockError(msg);
      }
      if (wd != nullptr) wd->beat(0);
      drain_ready();
    }
  } catch (...) {
    active_watchdog_ = nullptr;
    throw;
  }
  if (finish_watchdog()) throw_watchdog_trip();
  return collect_report();
}

RunReport Machine::run_threaded(const Program& program,
                                std::chrono::milliseconds timeout) {
  FTSORT_REQUIRE(!running_);
  running_ = true;
  threaded_ = true;
  instantiate_programs(program);
  std::unique_ptr<Watchdog> wd = arm_watchdog(/*threaded=*/true);

  std::atomic<bool> stalled{false};

  std::vector<std::thread> threads;
  threads.reserve(total_programs_);
  for (cube::NodeId u = 0; u < size(); ++u) {
    if (!nodes_[u]) continue;
    NodeState& st = *nodes_[u];
    Watchdog* wdp = wd.get();
    const std::size_t wslot = wdp != nullptr ? wd_slot_[u] : 0;
    threads.emplace_back([&st, &stalled, timeout, this, u, wdp, wslot] {
      ShardProfile* prof =
          profile_host_ ? prof_shards_[u].get() : nullptr;
      st.task.start();
      // Heartbeats are wall-clock-only observability: one relaxed
      // fetch_add per resume, activity = the node's ambient phase. The
      // phase field is only ever written by this node's own coroutine,
      // which runs on this thread.
      if (wdp != nullptr)
        wdp->beat(wslot, static_cast<std::uint64_t>(st.ctx.phase_));
      auto last_epoch = deliveries_.load(std::memory_order_acquire);
      auto last_change = std::chrono::steady_clock::now();
      while (!st.task.done()) {
        std::coroutine_handle<> to_resume = nullptr;
        bool trigger_shutdown = false;
        {
          std::unique_lock<std::mutex> lk = lock_shard(st, u);
          if (st.killed || shutdown_.load(std::memory_order_relaxed))
            break;
          if (st.ready != nullptr) {
            to_resume = st.ready;
            st.ready = nullptr;
          } else {
            if (prof != nullptr)
              prof->cv_waits.fetch_add(1, std::memory_order_relaxed);
            st.cv.wait_for(lk, std::chrono::milliseconds(50), [&] {
              return st.ready != nullptr || st.killed ||
                     shutdown_.load(std::memory_order_relaxed);
            });
            if (prof != nullptr) {
              if (st.ready != nullptr)
                prof->cv_wakeups.fetch_add(1, std::memory_order_relaxed);
              else
                prof->spurious_wakeups.fetch_add(1,
                                                 std::memory_order_relaxed);
            }
            if (st.ready == nullptr && !st.killed &&
                !shutdown_.load(std::memory_order_relaxed)) {
              // Wall-clock backstop against non-blocking livelock; real
              // blocking deadlocks resolve instantly at quiescence.
              const auto epoch =
                  deliveries_.load(std::memory_order_acquire);
              const auto now = std::chrono::steady_clock::now();
              if (epoch != last_epoch) {
                last_epoch = epoch;
                last_change = now;
              } else if (now - last_change > timeout) {
                stalled.store(true);
                trigger_shutdown = true;
              }
            }
          }
        }
        if (trigger_shutdown) begin_shutdown();
        if (to_resume != nullptr) {
          if (prof != nullptr)
            prof->tasks_resumed.fetch_add(1, std::memory_order_relaxed);
          to_resume.resume();
          if (wdp != nullptr)
            wdp->beat(wslot, static_cast<std::uint64_t>(st.ctx.phase_));
        }
      }
      bool newly_terminal = false;
      {
        const std::lock_guard<std::mutex> guard(st.mutex);
        if (!st.terminal) {
          st.terminal = true;
          newly_terminal = true;
        }
      }
      if (newly_terminal) {
        // An orderly thread exit (task done, killed, or shutdown) is
        // progress too, and marks this slot so a dump never blames it.
        if (wdp != nullptr) wdp->beat(wslot, Watchdog::kActivityTerminal);
        progress_.fetch_add(kTerminalOne, std::memory_order_acq_rel);
        maybe_resolve_quiescence();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  bool wd_tripped = false;
  if (wd != nullptr) {
    wd->stop();
    watchdog_stats_ = wd->report();
    wd_tripped = wd->tripped();
  }
  threaded_ = false;
  const bool was_deadlocked = deadlocked_;  // threads joined: plain reads
  if (stalled.load() || was_deadlocked) {
    running_ = false;
    const std::string msg =
        was_deadlocked
            ? deadlock_msg_
            : "threaded run stalled: no message delivered within "
              "the timeout while nodes were still blocked";
    for (auto& node : nodes_) node.reset();
    throw DeadlockError(msg);
  }
  // A watchdog trip shut the pool down without a logical deadlock record:
  // the stall was host-level. Dump and throw from the quiescent machine.
  if (wd_tripped) throw_watchdog_trip();
  return collect_report();
}

}  // namespace ftsort::sim
