// Recycled key-buffer storage for simulated message payloads.
//
// Every exchange of the SPMD sorts used to heap-allocate a fresh
// `std::vector<Key>` per message; at steady state the simulator's hot path
// was dominated by allocator traffic rather than by the work the paper's
// cost model charges. A `BufferPool` keeps returned payload storage on a
// per-node free list so that, after warm-up, sends and receives perform no
// heap allocation at all.
//
// Ownership protocol:
//  * `NodeCtx::send` checks a buffer out of the *sender's* pool (or adopts
//    the storage of a moved-in vector) and wraps it in a `PooledBuffer`.
//  * The `Message` carries the `PooledBuffer` to the receiver.
//  * When the receiver drops the handle — or swaps its storage out with
//    `release_into` — the storage travels back to the pool it came from.
//
// Pools are therefore written by at most two threads (the owning node when
// checking out, the receiving node when returning), so the internal mutex
// is essentially uncontended; it exists so the MIMD executor's cross-thread
// returns are race-free. Statistics count every checkout, every checkout
// that had to touch the heap (`fresh` when the free list was empty, `grows`
// when a recycled buffer was too small), and every return, giving the
// benchmark harness an exact allocation ledger.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace ftsort::sim {

using Key = std::int64_t;

/// Allocation ledger of one pool (or the aggregate over all pools).
struct PoolStats {
  std::uint64_t checkouts = 0;  ///< buffers handed out
  std::uint64_t fresh = 0;      ///< checkouts served by a new heap vector
  std::uint64_t grows = 0;      ///< recycled buffers that had to reallocate
  std::uint64_t returns = 0;    ///< buffers returned to the free list

  /// Heap allocations attributable to payload traffic.
  std::uint64_t heap_allocations() const { return fresh + grows; }

  PoolStats& operator+=(const PoolStats& other) {
    checkouts += other.checkouts;
    fresh += other.fresh;
    grows += other.grows;
    returns += other.returns;
    return *this;
  }
};

class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Take a buffer with capacity for at least `size_hint` keys. The buffer
  /// is empty (size 0); its capacity is whatever the recycled storage
  /// carried, grown on demand.
  std::vector<Key> checkout(std::size_t size_hint) {
    std::vector<Key> storage;
    {
      const std::unique_lock<std::mutex> guard = lock();
      ++stats_.checkouts;
      if (free_.empty()) {
        ++stats_.fresh;
      } else {
        storage = std::move(free_.back());
        free_.pop_back();
        if (storage.capacity() < size_hint) ++stats_.grows;
      }
    }
    storage.reserve(size_hint);
    return storage;
  }

  /// Return storage to the free list. The contents are discarded; the
  /// capacity is kept for the next checkout.
  void give_back(std::vector<Key>&& storage) {
    storage.clear();
    const std::unique_lock<std::mutex> guard = lock();
    ++stats_.returns;
    free_.push_back(std::move(storage));
  }

  PoolStats stats() const {
    const std::unique_lock<std::mutex> guard = lock();
    return stats_;
  }

  std::size_t free_count() const {
    const std::unique_lock<std::mutex> guard = lock();
    return free_.size();
  }

  // Host-side contention ledger (Machine::profile_host). Wall-clock data,
  // deliberately kept out of PoolStats: PoolStats feeds deterministic
  // golden-report and executor-equivalence comparisons.
  void set_profiling(bool on) {
    profiling_.store(on, std::memory_order_relaxed);
  }
  void reset_contention() {
    contended_.store(0, std::memory_order_relaxed);
    contended_wait_ns_.store(0, std::memory_order_relaxed);
  }
  std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended_wait_ns() const {
    return contended_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_lock<std::mutex> lock() const {
    if (!profiling_.load(std::memory_order_relaxed))
      return std::unique_lock<std::mutex>(mutex_);
    std::unique_lock<std::mutex> lk(mutex_, std::try_to_lock);
    if (lk.owns_lock()) return lk;
    const auto t0 = std::chrono::steady_clock::now();
    lk.lock();
    const auto waited = std::chrono::steady_clock::now() - t0;
    contended_.fetch_add(1, std::memory_order_relaxed);
    contended_wait_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                .count()),
        std::memory_order_relaxed);
    return lk;
  }

  mutable std::mutex mutex_;
  std::vector<std::vector<Key>> free_;
  PoolStats stats_;
  std::atomic<bool> profiling_{false};
  mutable std::atomic<std::uint64_t> contended_{0};
  mutable std::atomic<std::uint64_t> contended_wait_ns_{0};
};

/// Move-only owning handle to pooled storage. Destruction (or `reset`)
/// returns the storage to its pool; a handle with no pool simply frees.
/// Exposes enough of the vector interface that receivers can read payloads
/// in place, and `release_into` for stealing the storage while recycling
/// the receiver's previous buffer.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(BufferPool* pool, std::vector<Key> storage)
      : pool_(pool), storage_(std::move(storage)) {}
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        storage_(std::move(other.storage_)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = std::exchange(other.pool_, nullptr);
      storage_ = std::move(other.storage_);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  /// Return the storage to its pool and leave the handle empty.
  void reset() {
    if (pool_ != nullptr) {
      pool_->give_back(std::move(storage_));
      pool_ = nullptr;
    }
    storage_.clear();
  }

  /// Swap the payload into `dst`; `dst`'s previous storage goes back to the
  /// pool in its place. The receiver-side analogue of a zero-copy move.
  void release_into(std::vector<Key>& dst) {
    std::swap(dst, storage_);
    reset();
  }

  std::vector<Key>& vec() { return storage_; }
  const std::vector<Key>& vec() const { return storage_; }
  std::span<const Key> span() const { return storage_; }

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  const Key* data() const { return storage_.data(); }
  Key* data() { return storage_.data(); }
  const Key& operator[](std::size_t i) const { return storage_[i]; }
  auto begin() const { return storage_.begin(); }
  auto end() const { return storage_.end(); }
  auto begin() { return storage_.begin(); }
  auto end() { return storage_.end(); }

 private:
  BufferPool* pool_ = nullptr;
  std::vector<Key> storage_;
};

}  // namespace ftsort::sim
