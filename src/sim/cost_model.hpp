// The paper's communication/computation cost algebra.
//
// §3 expresses every term of the total sorting time T as a combination of
//   t_c   — time to compare one pair of keys, and
//   t_s/r — time to send or receive one key between *neighbouring* nodes,
// with multi-hop transfers multiplied by the hop count (store-and-forward).
// This model reproduces those terms; the optional per-message start-up cost
// extends it towards real NCUBE/VERTEX behaviour (0 by default so that the
// default configuration matches the paper's algebra exactly).
#pragma once

#include <cstdint>

namespace ftsort::sim {

/// Simulated time, in microseconds.
using SimTime = double;

struct CostModel {
  double t_compare = 2.0;   ///< µs per key comparison (t_c)
  double t_transfer = 8.0;  ///< µs per key per hop (t_s/r)
  double t_startup = 0.0;   ///< µs per message per hop (VERTEX overhead)

  /// Time the sender's processor is busy injecting k keys into its link.
  SimTime injection_time(std::uint64_t keys) const {
    return t_startup + t_transfer * static_cast<double>(keys);
  }

  /// End-to-end store-and-forward latency of k keys over h hops.
  SimTime transfer_time(std::uint64_t keys, int hops) const {
    return static_cast<double>(hops) *
           (t_startup + t_transfer * static_cast<double>(keys));
  }

  SimTime compare_time(std::uint64_t comparisons) const {
    return t_compare * static_cast<double>(comparisons);
  }

  /// Constants calibrated to NCUBE-era ratios (comparison ~2 µs on a ~0.5
  /// MIPS node CPU; ~8 µs per 4-byte key on a ~0.5 MB/s DMA link).
  static CostModel ncube7() { return CostModel{2.0, 8.0, 0.0}; }

  /// ncube7 plus a realistic 350 µs per-message software start-up, used by
  /// the ablation bench to test sensitivity of the paper's conclusions.
  static CostModel ncube7_with_startup() { return CostModel{2.0, 8.0, 350.0}; }
};

}  // namespace ftsort::sim
