// The paper's communication/computation cost algebra, plus a calibrated
// cut-through (wormhole) variant.
//
// §3 expresses every term of the total sorting time T as a combination of
//   t_c   — time to compare one pair of keys, and
//   t_s/r — time to send or receive one key between *neighbouring* nodes,
// with multi-hop transfers multiplied by the hop count (store-and-forward).
// This model reproduces those terms; the optional per-message start-up cost
// extends it towards real NCUBE/VERTEX behaviour (0 by default so that the
// default configuration matches the paper's algebra exactly).
//
// Start-up semantics (the per-hop ambiguity, pinned by unit test):
//  * `injection_time` charges t_startup exactly ONCE — it models the
//    sender-side software cost of posting one message (buffer checkout,
//    header build, DMA kick-off), which is paid per message, not per hop.
//  * `transfer_time` under StoreAndForward charges t_startup once PER HOP —
//    every intermediate node re-pays the software receive+forward cost when
//    it stores and re-injects the whole message. h·(t_startup + k·t_transfer)
//    is therefore the end-to-end latency the paper's §3 algebra generalises.
//  * `transfer_time` under CutThrough charges t_startup once per hop of
//    *header* routing only — the payload pipelines behind the header, so the
//    end-to-end latency is h·t_startup + k·t_transfer: distance is nearly
//    free for long messages and the per-message start-up term dominates.
//    At h == 1 the two modes agree exactly (no intermediate stage exists).
#pragma once

#include <cstdint>
#include <string>

namespace ftsort::sim {

/// Simulated time, in microseconds.
using SimTime = double;

/// How a multi-hop message accrues latency. Single-hop costs are identical
/// in both modes; they differ only in how intermediate nodes are charged.
enum class RoutingMode : std::uint8_t {
  StoreAndForward,  ///< §3: every hop re-pays the full message time
  CutThrough,       ///< wormhole: header pays per hop, payload pipelines
};

struct CostModel {
  double t_compare = 2.0;   ///< µs per key comparison (t_c)
  double t_transfer = 8.0;  ///< µs per key per hop (t_s/r)
  double t_startup = 0.0;   ///< µs per message start-up (VERTEX overhead)
  /// Declared last so existing three-value aggregate initialisers keep
  /// meaning what they always meant (mode defaults to the paper's).
  RoutingMode routing = RoutingMode::StoreAndForward;

  /// Time the sender's processor is busy injecting k keys into its link.
  /// t_startup is charged once per message (see the file header); identical
  /// in both routing modes.
  SimTime injection_time(std::uint64_t keys) const {
    return t_startup + t_transfer * static_cast<double>(keys);
  }

  /// End-to-end latency of k keys over h hops under the active routing
  /// mode. Both modes coincide at h == 1.
  SimTime transfer_time(std::uint64_t keys, int hops) const {
    const double h = static_cast<double>(hops);
    const double body = t_transfer * static_cast<double>(keys);
    if (routing == RoutingMode::CutThrough) return h * t_startup + body;
    return h * (t_startup + body);
  }

  SimTime compare_time(std::uint64_t comparisons) const {
    return t_compare * static_cast<double>(comparisons);
  }

  /// Wire time a link's traffic occupies: each traversal holds the wire for
  /// one message start-up plus its payload. Identical in both routing modes
  /// — cut-through changes *latency* across hops, not per-wire occupancy —
  /// so LinkStats-derived busy/utilisation stay comparable across modes.
  SimTime link_busy(std::uint64_t traversals, std::uint64_t key_hops) const {
    return static_cast<double>(traversals) * t_startup +
           static_cast<double>(key_hops) * t_transfer;
  }

  bool operator==(const CostModel&) const = default;

  /// Constants calibrated to NCUBE-era ratios (comparison ~2 µs on a ~0.5
  /// MIPS node CPU; ~8 µs per 4-byte key on a ~0.5 MB/s DMA link).
  static CostModel ncube7() { return CostModel{2.0, 8.0, 0.0}; }

  /// ncube7 plus a realistic 350 µs per-message software start-up, used by
  /// the ablation bench to test sensitivity of the paper's conclusions.
  static CostModel ncube7_with_startup() { return CostModel{2.0, 8.0, 350.0}; }

  /// ncube7's compare time with the transfer/compare ratio dialled to r
  /// (ncube7 itself is r = 4). Used by the cost-ablation bench instead of
  /// re-hardcoding constants.
  static CostModel ncube7_ratio(double transfer_over_compare) {
    return CostModel{2.0, 2.0 * transfer_over_compare, 0.0};
  }

  /// Cut-through calibration of the same hardware constants: ncube7's key
  /// and compare times, the 350 µs software start-up, but wormhole routing
  /// (latency h·t_startup + k·t_transfer). Equals ncube7_with_startup() on
  /// every single-hop transfer — the validation property tests pin.
  static CostModel wormhole() {
    return CostModel{2.0, 8.0, 350.0, RoutingMode::CutThrough};
  }

  /// "store_and_forward" or "cut_through".
  std::string mode_name() const {
    return routing == RoutingMode::CutThrough ? "cut_through"
                                              : "store_and_forward";
  }

  /// Derived (not stored) display name: the known calibrations by name,
  /// anything else "custom". Exports carry the numeric fields alongside, so
  /// two "custom" models are still distinguishable.
  std::string name() const {
    if (*this == ncube7()) return "ncube7";
    if (*this == ncube7_with_startup()) return "ncube7_startup";
    if (*this == wormhole()) return "wormhole";
    return "custom";
  }
};

}  // namespace ftsort::sim
