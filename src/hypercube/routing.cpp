#include "hypercube/routing.hpp"

#include <algorithm>
#include <queue>

namespace ftsort::cube {

std::vector<NodeId> ecube_path(Dim n, NodeId src, NodeId dst) {
  FTSORT_REQUIRE(valid_node(src, n) && valid_node(dst, n));
  std::vector<NodeId> path{src};
  NodeId cur = src;
  while (cur != dst) {
    const Dim d = lowest_set_dim(cur ^ dst);
    cur = neighbor(cur, d);
    path.push_back(cur);
  }
  return path;
}

std::optional<std::vector<NodeId>> bfs_path(Dim n, NodeId src, NodeId dst,
                                            const std::vector<bool>& faulty,
                                            const LinkSet* dead_links) {
  FTSORT_REQUIRE(valid_node(src, n) && valid_node(dst, n));
  FTSORT_REQUIRE(faulty.size() == num_nodes(n));
  if (src == dst) return std::vector<NodeId>{src};

  constexpr NodeId kUnreached = ~NodeId{0};
  std::vector<NodeId> parent(num_nodes(n), kUnreached);
  std::queue<NodeId> frontier;
  parent[src] = src;
  frontier.push(src);
  while (!frontier.empty() && parent[dst] == kUnreached) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (Dim d = 0; d < n; ++d) {
      const NodeId v = neighbor(u, d);
      if (parent[v] != kUnreached) continue;
      if (dead_links != nullptr && dead_links->contains(u, d)) continue;
      // Intermediate hops must be healthy; the destination itself may be
      // reached regardless (it is the caller's business whether it listens).
      if (v != dst && faulty[v]) continue;
      parent[v] = u;
      frontier.push(v);
    }
  }
  if (parent[dst] == kUnreached) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId u = dst; u != src; u = parent[u]) path.push_back(u);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<NodeId>> adaptive_path(
    Dim n, NodeId src, NodeId dst, const std::vector<bool>& faulty,
    const LinkSet* dead_links) {
  FTSORT_REQUIRE(valid_node(src, n) && valid_node(dst, n));
  FTSORT_REQUIRE(faulty.size() == num_nodes(n));
  const auto usable = [&](NodeId from, Dim d) {
    return dead_links == nullptr || !dead_links->contains(from, d);
  };
  std::vector<NodeId> path{src};
  NodeId cur = src;
  // Budget: the greedy walk may detour, but any healthy-connected pair is
  // reachable in < 2N steps; beyond that we defer to the BFS oracle.
  const int budget = static_cast<int>(num_nodes(n)) * 2;
  Dim last_detour = -1;
  while (cur != dst && static_cast<int>(path.size()) <= budget) {
    const NodeId diff = cur ^ dst;
    Dim chosen = -1;
    // Preferred: correct an outstanding dimension, lowest first (e-cube).
    for (Dim d = 0; d < n; ++d) {
      if (!bit(diff, d) || !usable(cur, d)) continue;
      const NodeId next = neighbor(cur, d);
      if (next == dst || !faulty[next]) {
        chosen = d;
        break;
      }
    }
    if (chosen < 0) {
      // Detour: burn one hop across a healthy spare dimension. Avoid
      // immediately undoing the previous detour (would livelock).
      for (Dim d = 0; d < n; ++d) {
        if (bit(diff, d) || d == last_detour || !usable(cur, d)) continue;
        const NodeId next = neighbor(cur, d);
        if (!faulty[next]) {
          chosen = d;
          break;
        }
      }
      if (chosen < 0) break;  // stuck; fall through to BFS
      last_detour = chosen;
    } else {
      last_detour = -1;
    }
    cur = neighbor(cur, chosen);
    path.push_back(cur);
  }
  if (cur == dst) return path;
  return bfs_path(n, src, dst, faulty, dead_links);
}

Router::Router(Dim n, std::vector<bool> faulty, bool avoid_faulty,
               LinkSet dead_links)
    : n_(n), faulty_(std::move(faulty)), avoid_faulty_(avoid_faulty),
      dead_links_(std::move(dead_links)) {
  FTSORT_REQUIRE(valid_dim(n_));
  FTSORT_REQUIRE(faulty_.size() == num_nodes(n_));
  FTSORT_REQUIRE(dead_links_.empty() || dead_links_.dim() == n_);
}

std::vector<NodeId> Router::path(NodeId src, NodeId dst) const {
  if (!avoid_faulty_ && dead_links_.empty())
    return ecube_path(n_, src, dst);
  // Dead links must be avoided under either fault model; partial-model
  // routing may still pass through faulty nodes.
  const std::vector<bool> no_nodes_blocked(faulty_.size(), false);
  const std::vector<bool>& blocked =
      avoid_faulty_ ? faulty_ : no_nodes_blocked;
  auto p = adaptive_path(n_, src, dst, blocked,
                         dead_links_.empty() ? nullptr : &dead_links_);
  FTSORT_REQUIRE(p.has_value());
  return *std::move(p);
}

int Router::hops(NodeId src, NodeId dst) const {
  if (!avoid_faulty_ && dead_links_.empty()) return hamming(src, dst);
  return static_cast<int>(path(src, dst).size()) - 1;
}

}  // namespace ftsort::cube
