// Binary hypercube address algebra.
//
// An n-dimensional hypercube Q_n has N = 2^n nodes addressed 0 .. N-1; two
// nodes are adjacent iff their addresses differ in exactly one bit. All the
// partition / re-indexing machinery in the paper is plain bit manipulation on
// these addresses, collected here.
#pragma once

#include <bit>
#include <cstdint>

#include "util/contracts.hpp"

namespace ftsort::cube {

/// A node address within a hypercube. Only the low `dimension` bits are
/// meaningful; helpers below never set higher bits.
using NodeId = std::uint32_t;

/// A dimension index (bit position), 0-based.
using Dim = int;

/// Largest supported cube dimension. 2^20 nodes is far beyond anything the
/// 1992 evaluation touches but keeps every mask in 32 bits.
inline constexpr Dim kMaxDim = 20;

constexpr std::uint32_t num_nodes(Dim n) {
  return std::uint32_t{1} << n;
}

constexpr bool valid_dim(Dim n) { return n >= 0 && n <= kMaxDim; }

constexpr bool valid_node(NodeId u, Dim n) { return u < num_nodes(n); }

/// Value of bit `d` of address `u`.
constexpr int bit(NodeId u, Dim d) { return static_cast<int>((u >> d) & 1u); }

/// Address with bit `d` flipped: the neighbour of `u` across dimension `d`.
constexpr NodeId neighbor(NodeId u, Dim d) {
  return u ^ (NodeId{1} << d);
}

/// Address with bit `d` forced to `value`.
constexpr NodeId with_bit(NodeId u, Dim d, int value) {
  const NodeId mask = NodeId{1} << d;
  return value ? (u | mask) : (u & ~mask);
}

/// Hamming distance — the routing distance between two nodes in Q_n.
constexpr int hamming(NodeId a, NodeId b) {
  return std::popcount(a ^ b);
}

/// Number of set bits.
constexpr int weight(NodeId u) { return std::popcount(u); }

/// Lowest set bit position; precondition: u != 0.
constexpr Dim lowest_set_dim(NodeId u) {
  return std::countr_zero(u);
}

/// Reflected binary Gray code and its inverse (used by the ring-embedding
/// example and by tests as an independent adjacency oracle).
constexpr NodeId gray(NodeId i) { return i ^ (i >> 1); }

constexpr NodeId gray_inverse(NodeId g) {
  NodeId i = g;
  for (NodeId shift = 1; shift < 32; shift <<= 1) i ^= i >> shift;
  return i;
}

}  // namespace ftsort::cube
