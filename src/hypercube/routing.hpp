// Message routing on (possibly faulty) hypercubes.
//
// Three routers are provided:
//  * e-cube (dimension-order) routing — the deterministic scheme used by the
//    NCUBE VERTEX operating system; ignores faults, so it models the paper's
//    *partial* fault type where a faulty node still forwards messages;
//  * adaptive fault-avoiding routing in the spirit of Chen & Shin — prefer
//    e-cube dimensions, detour across a spare dimension when the preferred
//    next hop is faulty; models *total* faults;
//  * breadth-first search — the exact shortest fault-free path, used as the
//    oracle for tests and as a fallback when the greedy detour fails.
//
// All paths include both endpoints; hop count = path.size() - 1.
#pragma once

#include <optional>
#include <vector>

#include "hypercube/address.hpp"
#include "hypercube/link_set.hpp"

namespace ftsort::cube {

/// Dimension-order path from `src` to `dst`, correcting bits from dimension
/// 0 upward. Length is always hamming(src, dst) + 1 nodes.
std::vector<NodeId> ecube_path(Dim n, NodeId src, NodeId dst);

/// Shortest path avoiding faulty *intermediate* nodes (endpoints are
/// permitted regardless, so diagnosis traffic can probe a faulty node)
/// and, when `dead_links` is given, avoiding its links entirely.
/// Returns std::nullopt when no fault-free path exists.
std::optional<std::vector<NodeId>> bfs_path(
    Dim n, NodeId src, NodeId dst, const std::vector<bool>& faulty,
    const LinkSet* dead_links = nullptr);

/// Greedy adaptive routing: at each step take the lowest still-unfixed
/// dimension whose next hop is healthy; if none is available, detour across
/// the lowest healthy spare dimension not used by the previous detour.
/// Falls back to BFS when the greedy walk stalls or exceeds its hop budget.
/// Returns std::nullopt when the destination is unreachable.
std::optional<std::vector<NodeId>> adaptive_path(
    Dim n, NodeId src, NodeId dst, const std::vector<bool>& faulty,
    const LinkSet* dead_links = nullptr);

/// Facade bundling the policy choice: `avoid_faulty == false` charges plain
/// e-cube distance (partial faults); `true` uses adaptive routing (total
/// faults). Dead links, if any, are avoided under *both* policies — a
/// broken wire carries nothing regardless of the processor fault type.
class Router {
 public:
  Router(Dim n, std::vector<bool> faulty, bool avoid_faulty,
         LinkSet dead_links = {});

  Dim dim() const { return n_; }
  bool avoids_faulty() const { return avoid_faulty_; }
  const LinkSet& dead_links() const { return dead_links_; }

  /// The path a message takes. Throws ContractViolation if unreachable
  /// under the total-fault model (callers must not route to cut-off nodes).
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  /// Number of link traversals for a message src -> dst.
  int hops(NodeId src, NodeId dst) const;

 private:
  Dim n_;
  std::vector<bool> faulty_;
  bool avoid_faulty_;
  LinkSet dead_links_;
};

}  // namespace ftsort::cube
