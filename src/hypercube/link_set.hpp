// Sets of hypercube links, used to model faulty links.
//
// A link is identified by its canonical (lower endpoint, dimension) pair:
// the edge between u and u ^ 2^d is stored under the endpoint whose bit d
// is 0. Queries accept either endpoint.
#pragma once

#include <vector>

#include "hypercube/address.hpp"

namespace ftsort::cube {

/// One undirected hypercube edge in canonical form.
struct Link {
  NodeId lo = 0;  ///< endpoint with bit `dim` == 0
  Dim dim = 0;

  static Link between(NodeId a, NodeId b) {
    FTSORT_REQUIRE(hamming(a, b) == 1);
    const Dim d = lowest_set_dim(a ^ b);
    return Link{with_bit(a, d, 0), d};
  }
  NodeId hi() const { return neighbor(lo, dim); }

  friend bool operator==(const Link&, const Link&) = default;
};

/// A set of links of Q_n with O(1) membership tests.
class LinkSet {
 public:
  LinkSet() = default;
  explicit LinkSet(Dim n) : n_(n), blocked_(num_nodes(n) * static_cast<std::size_t>(n > 0 ? n : 1), false) {
    FTSORT_REQUIRE(valid_dim(n));
  }
  LinkSet(Dim n, const std::vector<Link>& links) : LinkSet(n) {
    for (const Link& link : links) add(link);
  }

  Dim dim() const { return n_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  void add(Link link) {
    FTSORT_REQUIRE(link.dim >= 0 && link.dim < n_);
    FTSORT_REQUIRE(valid_node(link.lo, n_));
    FTSORT_REQUIRE(bit(link.lo, link.dim) == 0);
    auto ref = blocked_[index(link.lo, link.dim)];
    if (!ref) {
      ref = true;
      ++count_;
    }
  }

  /// Is the edge between u and its dimension-d neighbour in the set?
  bool contains(NodeId u, Dim d) const {
    if (empty()) return false;
    FTSORT_REQUIRE(d >= 0 && d < n_);
    FTSORT_REQUIRE(valid_node(u, n_));
    return blocked_[index(with_bit(u, d, 0), d)];
  }

  bool contains(const Link& link) const {
    return contains(link.lo, link.dim);
  }

  /// All member links, canonical, ascending by (lo, dim).
  std::vector<Link> links() const {
    std::vector<Link> out;
    out.reserve(count_);
    for (NodeId u = 0; u < num_nodes(n_); ++u)
      for (Dim d = 0; d < n_; ++d)
        if (bit(u, d) == 0 && blocked_[index(u, d)])
          out.push_back(Link{u, d});
    return out;
  }

 private:
  std::size_t index(NodeId lo, Dim d) const {
    return static_cast<std::size_t>(lo) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(d);
  }

  Dim n_ = 0;
  std::vector<bool> blocked_;
  std::size_t count_ = 0;
};

}  // namespace ftsort::cube
