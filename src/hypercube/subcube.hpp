// Subcube descriptors and the cutting-dimension address split.
//
// A subcube of Q_n is described by a (mask, value) pair: node u belongs to it
// iff (u & mask) == value. `CutSplit` implements the paper's address-space
// factorisation: cutting dimensions D = (d_1 .. d_m) give each node a pair
// (v, w) where v is the m-bit subcube index {u_{d_m} .. u_{d_1}} and w the
// s = n-m bit within-subcube address formed by the remaining dimensions in
// increasing order.
#pragma once

#include <cstdint>
#include <vector>

#include "hypercube/address.hpp"

namespace ftsort::cube {

/// A (possibly improper) subcube of Q_n: the set of nodes u with
/// (u & mask) == value. `mask` bits are the *fixed* dimensions.
struct Subcube {
  Dim ambient_dim = 0;   ///< n of the surrounding Q_n
  NodeId mask = 0;       ///< fixed-dimension bit mask
  NodeId value = 0;      ///< required values on the fixed dimensions

  /// Dimension of the subcube itself (number of free dimensions).
  Dim dim() const { return ambient_dim - weight(mask); }
  std::uint32_t size() const { return num_nodes(dim()); }

  bool contains(NodeId u) const { return (u & mask) == value; }

  /// All member node addresses, in increasing global-address order.
  std::vector<NodeId> members() const;

  friend bool operator==(const Subcube&, const Subcube&) = default;
};

/// The address factorisation induced by a cutting-dimension sequence.
class CutSplit {
 public:
  /// `cuts` must be distinct dimensions of Q_n; order follows the paper's
  /// convention (d_1 is the first cut, becomes v bit 0).
  CutSplit(Dim n, std::vector<Dim> cuts);

  Dim ambient_dim() const { return n_; }
  Dim subcube_bits() const { return m_; }            ///< m
  Dim local_bits() const { return s_; }              ///< s = n - m
  std::uint32_t num_subcubes() const { return num_nodes(m_); }
  std::uint32_t subcube_size() const { return num_nodes(s_); }
  const std::vector<Dim>& cuts() const { return cuts_; }
  /// The non-cut dimensions in increasing order (w bit i = global bit
  /// local_dims()[i]).
  const std::vector<Dim>& local_dims() const { return local_dims_; }

  /// m-bit subcube index v of a global address.
  NodeId subcube_index(NodeId u) const;
  /// s-bit within-subcube address w of a global address.
  NodeId local_address(NodeId u) const;
  /// Reassemble a global address from (v, w).
  NodeId global_address(NodeId v, NodeId w) const;

  /// The subcube (mask/value form) with index v.
  Subcube subcube(NodeId v) const;

 private:
  Dim n_;
  Dim m_;
  Dim s_;
  std::vector<Dim> cuts_;        // d_1 .. d_m
  std::vector<Dim> local_dims_;  // remaining dims, increasing
};

/// Enumerate every subcube of Q_n of exactly `sub_dim` dimensions.
/// There are C(n, n-sub_dim) * 2^(n-sub_dim) of them.
std::vector<Subcube> all_subcubes(Dim n, Dim sub_dim);

}  // namespace ftsort::cube
