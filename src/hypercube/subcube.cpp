#include "hypercube/subcube.hpp"

#include <algorithm>

namespace ftsort::cube {

std::vector<NodeId> Subcube::members() const {
  std::vector<NodeId> out;
  out.reserve(size());
  for (NodeId u = 0; u < num_nodes(ambient_dim); ++u)
    if (contains(u)) out.push_back(u);
  return out;
}

CutSplit::CutSplit(Dim n, std::vector<Dim> cuts)
    : n_(n), m_(static_cast<Dim>(cuts.size())), s_(n - m_),
      cuts_(std::move(cuts)) {
  FTSORT_REQUIRE(valid_dim(n_));
  FTSORT_REQUIRE(m_ <= n_);
  NodeId seen = 0;
  for (Dim d : cuts_) {
    FTSORT_REQUIRE(d >= 0 && d < n_);
    const NodeId bit_mask = NodeId{1} << d;
    FTSORT_REQUIRE((seen & bit_mask) == 0);  // cuts must be distinct
    seen |= bit_mask;
  }
  for (Dim d = 0; d < n_; ++d)
    if ((seen & (NodeId{1} << d)) == 0) local_dims_.push_back(d);
}

NodeId CutSplit::subcube_index(NodeId u) const {
  FTSORT_REQUIRE(valid_node(u, n_));
  NodeId v = 0;
  for (Dim i = 0; i < m_; ++i)
    v |= static_cast<NodeId>(bit(u, cuts_[static_cast<std::size_t>(i)]))
         << i;
  return v;
}

NodeId CutSplit::local_address(NodeId u) const {
  FTSORT_REQUIRE(valid_node(u, n_));
  NodeId w = 0;
  for (Dim i = 0; i < s_; ++i)
    w |= static_cast<NodeId>(
             bit(u, local_dims_[static_cast<std::size_t>(i)]))
         << i;
  return w;
}

NodeId CutSplit::global_address(NodeId v, NodeId w) const {
  FTSORT_REQUIRE(valid_node(v, m_));
  FTSORT_REQUIRE(valid_node(w, s_));
  NodeId u = 0;
  for (Dim i = 0; i < m_; ++i)
    u = with_bit(u, cuts_[static_cast<std::size_t>(i)], bit(v, i));
  for (Dim i = 0; i < s_; ++i)
    u = with_bit(u, local_dims_[static_cast<std::size_t>(i)], bit(w, i));
  return u;
}

Subcube CutSplit::subcube(NodeId v) const {
  FTSORT_REQUIRE(valid_node(v, m_));
  NodeId mask = 0;
  for (Dim d : cuts_) mask |= NodeId{1} << d;
  return Subcube{n_, mask, global_address(v, 0)};
}

std::vector<Subcube> all_subcubes(Dim n, Dim sub_dim) {
  FTSORT_REQUIRE(valid_dim(n));
  FTSORT_REQUIRE(sub_dim >= 0 && sub_dim <= n);
  const Dim fixed = n - sub_dim;
  std::vector<Subcube> out;
  // Enumerate all masks with `fixed` set bits, then all values on the mask.
  for (NodeId mask = 0; mask < num_nodes(n); ++mask) {
    if (weight(mask) != fixed) continue;
    // Iterate over the submasks of `mask` as fixed values.
    NodeId value = 0;
    while (true) {
      out.push_back(Subcube{n, mask, value});
      if (value == mask) break;
      value = (value - mask) & mask;  // next submask trick
    }
  }
  std::sort(out.begin(), out.end(), [](const Subcube& a, const Subcube& b) {
    return a.mask != b.mask ? a.mask < b.mask : a.value < b.value;
  });
  return out;
}

}  // namespace ftsort::cube
