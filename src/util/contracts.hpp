// Lightweight contract checks (Core Guidelines I.6/I.8 style).
//
// FTSORT_REQUIRE / FTSORT_ENSURE throw ftsort::ContractViolation with the
// failing expression and location; they are always on (this library is a
// research artifact where a wrong answer is worse than a throw).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ftsort {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc)
      : std::logic_error(std::string(kind) + " failed: `" + expr + "` at " +
                         loc.file_name() + ":" + std::to_string(loc.line()) +
                         " in " + loc.function_name()) {}
};

namespace detail {
inline void contract_check(bool ok, const char* kind, const char* expr,
                           const std::source_location& loc) {
  if (!ok) throw ContractViolation(kind, expr, loc);
}
}  // namespace detail

}  // namespace ftsort

#define FTSORT_REQUIRE(expr)                                   \
  ::ftsort::detail::contract_check(static_cast<bool>(expr),    \
                                   "precondition", #expr,      \
                                   ::std::source_location::current())

#define FTSORT_ENSURE(expr)                                    \
  ::ftsort::detail::contract_check(static_cast<bool>(expr),    \
                                   "postcondition", #expr,     \
                                   ::std::source_location::current())

#define FTSORT_INVARIANT(expr)                                 \
  ::ftsort::detail::contract_check(static_cast<bool>(expr),    \
                                   "invariant", #expr,         \
                                   ::std::source_location::current())
