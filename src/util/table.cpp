#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace ftsort::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignment)
    : headers_(std::move(headers)), align_(std::move(alignment)) {
  FTSORT_REQUIRE(!headers_.empty());
  if (align_.empty()) align_.assign(headers_.size(), Align::Right);
  FTSORT_REQUIRE(align_.size() == headers_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  FTSORT_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto w = static_cast<int>(width[c]);
      os << (align_[c] == Align::Left ? std::left : std::right)
         << std::setw(w) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  os << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

std::string Table::fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::percent(double v, int decimals) {
  return fixed(v, decimals) + "%";
}

std::string Table::integer(long long v) { return std::to_string(v); }

}  // namespace ftsort::util
