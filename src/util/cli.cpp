#include "util/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "util/contracts.hpp"

namespace ftsort::util {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::Flag, help, "false"};
}

void CliParser::add_int(const std::string& name, std::int64_t fallback,
                        const std::string& help) {
  options_[name] = Option{Kind::Int, help, std::to_string(fallback)};
}

void CliParser::add_string(const std::string& name,
                           const std::string& fallback,
                           const std::string& help) {
  options_[name] = Option{Kind::String, help, fallback};
}

bool CliParser::parse(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::cerr << program_ << ": unknown option --" << name << "\n"
                << usage();
      return false;
    }
    Option& opt = it->second;
    opt.seen = true;
    if (opt.kind == Kind::Flag) {
      opt.value = inline_value.value_or("true");
    } else if (inline_value) {
      opt.value = *inline_value;
    } else if (i + 1 < argc) {
      opt.value = argv[++i];
    } else {
      std::cerr << program_ << ": option --" << name
                << " requires a value\n";
      return false;
    }
    if (opt.kind == Kind::Int) {
      std::int64_t parsed = 0;
      const auto* first = opt.value.data();
      const auto* last = first + opt.value.size();
      const auto [ptr, ec] = std::from_chars(first, last, parsed);
      if (ec != std::errc{} || ptr != last) {
        std::cerr << program_ << ": option --" << name
                  << " expects an integer, got '" << opt.value << "'\n";
        return false;
      }
    }
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name,
                                           Kind kind) const {
  const auto it = options_.find(name);
  FTSORT_REQUIRE(it != options_.end());
  FTSORT_REQUIRE(it->second.kind == kind);
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  return lookup(name, Kind::Flag).value == "true";
}

std::int64_t CliParser::integer(const std::string& name) const {
  return std::stoll(lookup(name, Kind::Int).value);
}

const std::string& CliParser::str(const std::string& name) const {
  return lookup(name, Kind::String).value;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (opt.kind != Kind::Flag) os << " <" << opt.value << ">";
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace ftsort::util
