#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace ftsort::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(n_);
  const double n_b = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_ab = n_a + n_b;
  mean_ += delta * n_b / n_ab;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n_ab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double SampleSet::mean() const {
  FTSORT_REQUIRE(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  FTSORT_REQUIRE(!samples_.empty());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  FTSORT_REQUIRE(!sorted_.empty());
  return sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  FTSORT_REQUIRE(!sorted_.empty());
  return sorted_.back();
}

double SampleSet::percentile(double p) const {
  FTSORT_REQUIRE(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  FTSORT_REQUIRE(!sorted_.empty());
  if (sorted_.size() == 1) return sorted_.front();
  const double rank =
      p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  bins_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  const auto it = bins_.find(value);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::percent(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(count(value)) /
         static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [value, n] : bins_) {
    if (!first) os << ", ";
    first = false;
    os << value << ": " << n;
  }
  os << "}";
  return os.str();
}

}  // namespace ftsort::util
