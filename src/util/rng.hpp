// Deterministic pseudo-random number generation.
//
// Self-contained (no <random> engines) so that every experiment in the
// benchmark harness reproduces bit-identically across standard libraries:
// SplitMix64 for seeding, xoshiro256** as the workhorse generator, plus the
// bounded-uniform, shuffling, and distinct-sampling helpers the workload
// generators need.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace ftsort::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values drawn uniformly from [0, population). O(population)
  /// when k is large, reservoir-free partial Fisher–Yates otherwise.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t population,
                                             std::uint64_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ftsort::util
