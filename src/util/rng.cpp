#include "util/rng.hpp"

#include <numeric>

namespace ftsort::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  FTSORT_REQUIRE(bound > 0);
  // Lemire's multiply-shift with rejection of the biased low region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  FTSORT_REQUIRE(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? next() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t population,
                                                std::uint64_t k) {
  FTSORT_REQUIRE(k <= population);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k == 0) return out;
  // Partial Fisher–Yates over an explicit index vector: population sizes in
  // this project are at most 2^16 nodes, so O(population) is always cheap.
  std::vector<std::uint64_t> idx(static_cast<std::size_t>(population));
  std::iota(idx.begin(), idx.end(), 0ull);
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + below(population - i);
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(j)]);
    out.push_back(idx[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace ftsort::util
