// Rotating JSONL history append, shared by bench_harness (the writer of
// BENCH_history.jsonl) and its tests.
//
// The contract the bench gate relies on:
//  - A missing file is the normal first run: it seeds a new trajectory.
//  - A file that *exists* but cannot be read (permissions, I/O error)
//    must never be clobbered by the rewrite — the rotation is skipped
//    and reported instead.
//  - After a successful append the file holds at most `cap` non-empty
//    lines: the newest `cap` of (existing lines + the new one), oldest
//    trimmed first.
//  - The rewrite is crash-safe: the new content lands in a sibling temp
//    file first and replaces the history with one atomic rename, so a
//    run killed mid-append (SIGKILL, power loss, the watchdog's abort)
//    leaves either the old file or the new one — never a half-written
//    trajectory. A torn final line from a *pre-atomic* writer (no
//    trailing newline) is recognized on read, skipped, and counted.
//  - A failed write degrades the trajectory, never the caller: the
//    result reports it and the caller decides whether that is fatal.
#pragma once

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

namespace ftsort::util {

/// Default retention of append_history_line: a long-lived checkout
/// otherwise grows the file without bound, and only the recent
/// trajectory is ever read by the trend gate.
inline constexpr std::size_t kHistoryCap = 500;

struct HistoryAppendResult {
  bool rotated = false;      ///< the file was rewritten with the new line
  bool unreadable = false;   ///< existing file could not be read; skipped
  bool write_failed = false;  ///< rewrite attempted but it failed
  bool torn_skipped = false;  ///< unterminated final line dropped on read
  std::size_t entries = 0;   ///< non-empty lines in the file after trim
};

/// Append `line` to the JSONL file at `path`, keeping only the newest
/// `cap` lines. Empty lines in the existing file are dropped during
/// rotation, and an unterminated final fragment (a torn append from a
/// crashed run) is skipped rather than propagated. The rewrite goes
/// through `path + ".tmp"` and an atomic std::filesystem::rename, so
/// readers never observe a partially written history.
inline HistoryAppendResult append_history_line(const std::string& path,
                                               const std::string& line,
                                               std::size_t cap = kHistoryCap) {
  HistoryAppendResult res;
  std::vector<std::string> lines;
  {
    std::error_code ec;
    const bool had_file = std::filesystem::exists(path, ec);
    // A directory at the path opens "successfully" as an ifstream on
    // Linux (O_RDONLY on directories succeeds); treat it as unreadable
    // rather than letting the rewrite below replace it.
    std::ifstream in(path, std::ios::binary);
    if (had_file && (!in || std::filesystem::is_directory(path, ec))) {
      res.unreadable = true;
      return res;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string whole = ss.str();
    // Only newline-terminated lines are committed history; a trailing
    // fragment means the previous writer died mid-append.
    std::size_t begin = 0;
    while (begin < whole.size()) {
      const std::size_t nl = whole.find('\n', begin);
      if (nl == std::string::npos) {
        res.torn_skipped = true;
        break;
      }
      if (nl > begin) lines.push_back(whole.substr(begin, nl - begin));
      begin = nl + 1;
    }
  }
  lines.push_back(line);
  const std::size_t keep_from = lines.size() > cap ? lines.size() - cap : 0;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    for (std::size_t i = keep_from; i < lines.size(); ++i)
      out << lines[i] << "\n";
    out.flush();
    if (!out) {
      res.write_failed = true;
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return res;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    res.write_failed = true;
    std::filesystem::remove(tmp, ec);
    return res;
  }
  res.entries = lines.size() - keep_from;
  res.rotated = true;
  return res;
}

}  // namespace ftsort::util
