// Rotating JSONL history append, shared by bench_harness (the writer of
// BENCH_history.jsonl) and its tests.
//
// The contract the bench gate relies on:
//  - A missing file is the normal first run: it seeds a new trajectory.
//  - A file that *exists* but cannot be read (permissions, I/O error)
//    must never be clobbered by the truncating rewrite — the rotation is
//    skipped and reported instead.
//  - After a successful append the file holds at most `cap` non-empty
//    lines: the newest `cap` of (existing lines + the new one), oldest
//    trimmed first.
//  - A failed write degrades the trajectory, never the caller: the
//    result reports it and the caller decides whether that is fatal.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

namespace ftsort::util {

/// Default retention of append_history_line: a long-lived checkout
/// otherwise grows the file without bound, and only the recent
/// trajectory is ever read by the trend gate.
inline constexpr std::size_t kHistoryCap = 500;

struct HistoryAppendResult {
  bool rotated = false;      ///< the file was rewritten with the new line
  bool unreadable = false;   ///< existing file could not be read; skipped
  bool write_failed = false;  ///< rewrite attempted but the stream failed
  std::size_t entries = 0;   ///< non-empty lines in the file after trim
};

/// Append `line` to the JSONL file at `path`, keeping only the newest
/// `cap` lines. Empty lines in the existing file (partial appends from a
/// crashed run) are dropped during rotation.
inline HistoryAppendResult append_history_line(const std::string& path,
                                               const std::string& line,
                                               std::size_t cap = kHistoryCap) {
  HistoryAppendResult res;
  std::vector<std::string> lines;
  {
    std::error_code ec;
    const bool had_file = std::filesystem::exists(path, ec);
    // A directory at the path opens "successfully" as an ifstream on
    // Linux (O_RDONLY on directories succeeds); treat it as unreadable
    // rather than letting the truncating rewrite below run against it.
    std::ifstream in(path);
    if (had_file && (!in || std::filesystem::is_directory(path, ec))) {
      res.unreadable = true;
      return res;
    }
    std::string existing;
    while (std::getline(in, existing))
      if (!existing.empty()) lines.push_back(existing);
  }
  lines.push_back(line);
  const std::size_t keep_from = lines.size() > cap ? lines.size() - cap : 0;
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = keep_from; i < lines.size(); ++i)
    out << lines[i] << "\n";
  res.entries = lines.size() - keep_from;
  if (!out) {
    res.write_failed = true;
    return res;
  }
  res.rotated = true;
  return res;
}

}  // namespace ftsort::util
