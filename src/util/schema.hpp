// The one table of JSON export schema versions. Every writer stamps its
// `schema_version` from here and every reader (tools/ftdiag) derives its
// ceiling from the same constant, so a version bump is a one-line change
// that cannot leave a writer and its reader disagreeing.
//
// Formats:
//   metrics  — sim::write_metrics_json (single-run export; version
//              history in that writer's comment)
//   bench    — bench_harness write_json (multi-scenario export)
//   campaign — campaign::write_campaign_json (Monte Carlo fault campaign)
//   watchdog — sim::write_watchdog_dump (black-box stall dump)
#pragma once

#include <cstddef>

namespace ftsort::util {

inline constexpr int kMetricsSchemaVersion = 7;
inline constexpr int kBenchSchemaVersion = 3;
inline constexpr int kCampaignSchemaVersion = 7;
inline constexpr int kWatchdogDumpSchemaVersion = 1;

struct SchemaEntry {
  const char* format;
  int version;
  /// Readers of this format accept any file up to `version`; an
  /// exact-version reader (the campaign curve diff, whose bucket keys
  /// changed meaning across versions) refuses older files too.
  bool exact;
};

inline constexpr SchemaEntry kSchemaTable[] = {
    {"metrics", kMetricsSchemaVersion, false},
    {"bench", kBenchSchemaVersion, false},
    {"campaign", kCampaignSchemaVersion, true},
    {"watchdog", kWatchdogDumpSchemaVersion, false},
};

inline constexpr std::size_t kSchemaTableSize =
    sizeof(kSchemaTable) / sizeof(kSchemaTable[0]);

}  // namespace ftsort::util
