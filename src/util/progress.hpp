// Live stderr progress line, shared by campaign_demo and bench_harness.
//
// Pure wall-clock telemetry for a human at a terminal: a single
// carriage-return-overwritten line with completion, rate, ETA, and the
// heartbeat age of the slowest-moving unit of work. Nothing here touches
// a report, a JSON export, or sim time — redirecting stderr to a file
// degrades to nothing (the line is TTY-gated by default), so captured
// logs and goldens stay byte-identical.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace ftsort::util {

/// True when stderr is an interactive terminal — the only place a
/// \r-overwritten line renders as intended.
inline bool stderr_is_tty() { return ::isatty(STDERR_FILENO) == 1; }

/// "73s" / "4m07s" / "2h03m" — compact, fixed-ambiguity ETA rendering.
inline std::string format_eta(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const auto s = static_cast<std::uint64_t>(seconds + 0.5);
  char buf[32];
  if (s < 100) {
    std::snprintf(buf, sizeof buf, "%llus", static_cast<unsigned long long>(s));
  } else if (s < 6000) {
    std::snprintf(buf, sizeof buf, "%llum%02llus",
                  static_cast<unsigned long long>(s / 60),
                  static_cast<unsigned long long>(s % 60));
  } else {
    std::snprintf(buf, sizeof buf, "%lluh%02llum",
                  static_cast<unsigned long long>(s / 3600),
                  static_cast<unsigned long long>(s % 3600 / 60));
  }
  return buf;
}

/// Emitter for a single overwritten stderr line. `show` is decided once
/// at construction (TTY by default) so a redirected run never sees
/// control characters; `finish()` ends the line so subsequent output
/// starts clean. The line is padded to the longest line written so far,
/// so a shrinking message never leaves stale tail characters behind.
class ProgressLine {
 public:
  explicit ProgressLine(bool show = stderr_is_tty()) : show_(show) {}
  ~ProgressLine() { finish(); }

  ProgressLine(const ProgressLine&) = delete;
  ProgressLine& operator=(const ProgressLine&) = delete;

  void update(const std::string& line) {
    if (!show_) return;
    std::string padded = line;
    if (padded.size() < widest_) padded.resize(widest_, ' ');
    widest_ = padded.size();
    std::fprintf(stderr, "\r%s", padded.c_str());
    std::fflush(stderr);
    active_ = true;
  }

  /// Terminate the live line (newline) if one is on screen.
  void finish() {
    if (!active_) return;
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    active_ = false;
  }

 private:
  bool show_;
  bool active_ = false;
  std::size_t widest_ = 0;
};

}  // namespace ftsort::util
