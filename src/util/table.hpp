// Fixed-width ASCII table renderer for the benchmark harness. The table and
// figure benches print rows in the same layout as the paper's evaluation
// section; this keeps the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftsort::util {

enum class Align { Left, Right };

/// A simple column-oriented table: declare headers, append rows of cells,
/// render with padding and column separators.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> alignment = {});

  /// Append one row; must match the number of headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Render with a header rule. `indent` spaces prefix every line.
  std::string to_string(int indent = 0) const;
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  // Cell formatting helpers used across the benches.
  static std::string fixed(double v, int decimals);
  static std::string percent(double v, int decimals = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftsort::util
