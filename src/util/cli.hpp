// Minimal command-line option parser for the example applications.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms, with
// typed accessors and an auto-generated usage string. Unknown options are an
// error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftsort::util {

class CliParser {
 public:
  CliParser(std::string program, std::string summary);

  /// Register an option; `fallback` doubles as documentation of the default.
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t fallback,
               const std::string& help);
  void add_string(const std::string& name, const std::string& fallback,
                  const std::string& help);

  /// Parse argv. Returns false (after printing usage) on `--help` or error.
  bool parse(int argc, const char* const argv[]);

  bool flag(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  const std::string& str(const std::string& name) const;
  /// Positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { Flag, Int, String };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;       // current (default or parsed) textual value
    bool seen = false;
  };

  const Option& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace ftsort::util
