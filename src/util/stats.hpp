// Descriptive statistics for experiment harnesses: Welford online moments,
// percentile summaries, and integer histograms (used for mincut
// distributions, utilisation spreads, and timing series).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ftsort::util {

/// Single-pass mean/variance accumulator (Welford). Numerically stable.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary with arbitrary percentiles over stored samples.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily; mutable cache keyed on size.
  mutable std::vector<double> sorted_;
  std::vector<double> samples_;
  void ensure_sorted() const;
};

/// Counts of integer-valued outcomes (e.g. mincut values). Preserves key
/// order for table rendering.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t value) const;
  /// Share of `value` among all observations, in percent.
  double percent(std::int64_t value) const;
  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

  std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace ftsort::util
