// §2.2 — The Partition Algorithm.
//
// Given Q_n with r faulty processors, find the minimum number of cutting
// dimensions (mincut, m) whose induced 2^m subcubes each contain at most one
// fault (the single-fault subcube structure F_n^m), together with the full
// cutting set Ψ of all m-subsets that achieve it.
//
// The search mirrors the paper exactly: a depth-first traversal of the
// cutting-dimension tree T_n (all increasing dimension sequences — at most
// 2^n - 1 nodes), pruned when the depth exceeds the best mincut found so
// far; each visited node runs the checking-tree test, which distributes the
// r fault addresses over the subcube indices. Total work is O(rN).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_set.hpp"

namespace ftsort::partition {

/// The checking-tree test: does cutting Q_n along `cuts` yield subcubes
/// with at most one fault each?
bool is_single_fault_structure(const fault::FaultSet& faults,
                               std::span<const cube::Dim> cuts);

struct SearchResult {
  int mincut = 0;
  /// Ψ: every minimum-size cutting sequence, in DFS (lexicographic) order.
  std::vector<std::vector<cube::Dim>> cutting_set;
  std::uint64_t tree_nodes_visited = 0;  ///< cutting-dimension-tree nodes
  std::uint64_t fault_checks = 0;        ///< per-fault address inspections
};

/// Run the partition algorithm. For r <= 1 the result is mincut 0 with the
/// empty sequence. Always succeeds (cutting every dimension isolates every
/// fault), but for r <= n-1 the paper guarantees mincut <= n-2.
SearchResult find_cutting_set(const fault::FaultSet& faults);

}  // namespace ftsort::partition
