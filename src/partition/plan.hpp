// The executable partition plan: cutting sequence + per-subcube dead
// processor + re-indexing, i.e. everything Steps 1-2 of the fault-tolerant
// sorting algorithm need.
//
// After planning, every subcube has exactly one *dead* local address (its
// fault, or the chosen dangling processor when it is fault-free), except in
// the trivial fault-free case m == 0, r == 0 where nothing is dead. The
// re-index operation XORs local addresses with the dead address so the dead
// node sits at logical 0 in every subcube — making the live logical address
// sets identical across subcubes, which is what lets subcubes be treated as
// super-nodes of an m-cube.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "hypercube/subcube.hpp"
#include "partition/partition.hpp"
#include "partition/selection.hpp"

namespace ftsort::partition {

class Plan {
 public:
  /// Full pipeline: partition search, heuristic selection, danglings.
  static Plan build(const fault::FaultSet& faults);
  /// Build with a fixed cutting sequence (tests / ablations). The sequence
  /// must yield a single-fault structure.
  static Plan build_with_cuts(const fault::FaultSet& faults,
                              std::vector<cube::Dim> cuts);

  cube::Dim n() const { return faults_.dim(); }
  cube::Dim m() const { return split_.subcube_bits(); }
  cube::Dim s() const { return split_.local_bits(); }
  const fault::FaultSet& faults() const { return faults_; }
  const cube::CutSplit& split() const { return split_; }
  const SearchResult& search() const { return search_; }
  const Selection& selection() const { return selection_; }

  std::uint32_t num_subcubes() const { return split_.num_subcubes(); }
  /// Keys-per-subcube capacity: live processors in each subcube.
  std::uint32_t live_per_subcube() const {
    return split_.subcube_size() - (has_dead() ? 1u : 0u);
  }
  /// N' — total key-holding processors.
  std::uint32_t live_count() const {
    return num_subcubes() * live_per_subcube();
  }
  /// Healthy-but-idle processors.
  std::uint32_t dangling_count() const { return dangling_count_; }
  /// live / healthy, in percent — the paper's Table 2 metric.
  double utilization_percent() const;

  /// True when every subcube carries a dead (faulty or dangling) node.
  bool has_dead() const { return has_dead_; }
  /// Pre-reindex local address of subcube v's dead node.
  cube::NodeId dead_w(cube::NodeId v) const;
  /// True when subcube v's dead node is a fault (else it is dangling).
  bool dead_is_fault(cube::NodeId v) const;

  /// Machine address of logical processor `logical_w` of subcube `v`
  /// (logical_w != 0 when has_dead()).
  cube::NodeId physical(cube::NodeId v, cube::NodeId logical_w) const;

  /// Where a machine node sits in the plan.
  struct Role {
    cube::NodeId v = 0;          ///< subcube index
    cube::NodeId logical_w = 0;  ///< re-indexed local address
    bool live = false;           ///< holds keys (healthy and not dangling)
  };
  Role role_of(cube::NodeId u) const;

  /// Machine addresses of the dangling processors, ascending.
  std::vector<cube::NodeId> dangling_addresses() const;

  std::string to_string() const;

 private:
  Plan(fault::FaultSet faults, SearchResult search, Selection selection);

  fault::FaultSet faults_;
  SearchResult search_;
  Selection selection_;
  cube::CutSplit split_;
  bool has_dead_ = false;
  std::vector<cube::NodeId> dead_w_;     ///< per subcube (valid if has_dead_)
  std::vector<bool> dead_is_fault_;      ///< per subcube
  std::uint32_t dangling_count_ = 0;
};

}  // namespace ftsort::partition
