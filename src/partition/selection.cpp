#include "partition/selection.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace ftsort::partition {

OverheadProfile extra_overhead(const fault::FaultSet& faults,
                               const cube::CutSplit& split) {
  const cube::Dim m = split.subcube_bits();
  // Local fault address per subcube index (at most one by construction —
  // callers pass sequences validated by the partition algorithm).
  std::vector<std::optional<cube::NodeId>> fault_w(split.num_subcubes());
  for (cube::NodeId f : faults.addresses()) {
    const cube::NodeId v = split.subcube_index(f);
    FTSORT_REQUIRE(!fault_w[v].has_value());
    fault_w[v] = split.local_address(f);
  }

  OverheadProfile profile;
  profile.h.assign(static_cast<std::size_t>(m), 0);
  for (cube::Dim i = 0; i < m; ++i) {
    int worst = 0;
    for (cube::NodeId v = 0; v < split.num_subcubes(); ++v) {
      if (cube::bit(v, i) != 0) continue;  // count each pair once
      const cube::NodeId v2 = cube::neighbor(v, i);
      if (fault_w[v].has_value() && fault_w[v2].has_value())
        worst = std::max(worst, cube::hamming(*fault_w[v], *fault_w[v2]));
    }
    profile.h[static_cast<std::size_t>(i)] = worst;
    profile.total += worst;
  }
  return profile;
}

cube::NodeId most_frequent_fault_local(const fault::FaultSet& faults,
                                       const cube::CutSplit& split) {
  FTSORT_REQUIRE(!faults.empty());
  std::map<cube::NodeId, int> frequency;
  for (cube::NodeId f : faults.addresses())
    ++frequency[split.local_address(f)];
  cube::NodeId best = 0;
  int best_count = -1;
  for (const auto& [w, count] : frequency) {
    if (count > best_count) {  // map order => smallest address wins ties
      best_count = count;
      best = w;
    }
  }
  return best;
}

Selection select_sequence(
    const fault::FaultSet& faults,
    const std::vector<std::vector<cube::Dim>>& cutting_set) {
  FTSORT_REQUIRE(!cutting_set.empty());
  Selection best;
  bool have_best = false;
  best.candidates.reserve(cutting_set.size());
  for (std::size_t idx = 0; idx < cutting_set.size(); ++idx) {
    const cube::CutSplit split(faults.dim(), cutting_set[idx]);
    OverheadProfile profile = extra_overhead(faults, split);
    if (!have_best || profile.total < best.overhead.total) {
      best.cuts = cutting_set[idx];
      best.overhead = profile;
      best.beta = idx;
      have_best = true;
    }
    best.candidates.push_back(std::move(profile));
  }
  return best;
}

}  // namespace ftsort::partition
