// §3 — Heuristic selection of the cutting sequence D_β and of the dangling
// processors.
//
// Re-indexing puts each subcube's dead processor at local address 0, so
// corresponding processors of two neighbouring subcubes are physically
// HD(FP, FP') extra hops apart, where FP/FP' are the s-bit local addresses
// of the subcubes' faults. For each cube dimension i of the m-cube of
// subcubes, h_i is the maximum such distance over the fault-carrying pairs
// adjacent along i; the chosen D_β minimises Σ_i max(h_i) over Ψ (ties:
// first in Ψ order, i.e. the paper's Example 2 choice).
//
// The dangling processor of every fault-free subcube is the local address
// occurring most frequently among the faults (ties: smallest address),
// which lines the dead nodes up across subcubes and so minimises the
// re-index penalty the danglings introduce.
#pragma once

#include <vector>

#include "fault/fault_set.hpp"
#include "hypercube/subcube.hpp"

namespace ftsort::partition {

/// Per-dimension worst-case extra hop counts for one cutting sequence.
struct OverheadProfile {
  std::vector<int> h;      ///< h_i = max pairwise HD along m-cube dim i
  int total = 0;           ///< Σ h_i — formula (1) of the paper
};

OverheadProfile extra_overhead(const fault::FaultSet& faults,
                               const cube::CutSplit& split);

/// The local (s-bit) address appearing most often among the faults; ties
/// broken toward the smallest address. Precondition: at least one fault.
cube::NodeId most_frequent_fault_local(const fault::FaultSet& faults,
                                       const cube::CutSplit& split);

struct Selection {
  std::vector<cube::Dim> cuts;  ///< the chosen D_β
  OverheadProfile overhead;
  std::size_t beta = 0;         ///< index of D_β within Ψ
  /// Formula-(1) profile of *every* sequence in Ψ, in Ψ order
  /// (`candidates[beta] == overhead`). Retained so the link-telemetry
  /// audit can compare the pick against every rejected candidate.
  std::vector<OverheadProfile> candidates;
};

/// Evaluate formula (1) on every sequence in Ψ and return the argmin.
Selection select_sequence(
    const fault::FaultSet& faults,
    const std::vector<std::vector<cube::Dim>>& cutting_set);

}  // namespace ftsort::partition
