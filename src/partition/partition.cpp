#include "partition/partition.hpp"

#include <algorithm>

namespace ftsort::partition {

bool is_single_fault_structure(const fault::FaultSet& faults,
                               std::span<const cube::Dim> cuts) {
  // Equivalent to the paper's checking tree: each fault descends left/right
  // by its bit on each cutting dimension; a leaf (subcube) may hold at most
  // one fault. Implemented by projecting each fault onto its subcube index
  // and looking for a collision.
  std::vector<cube::NodeId> indices;
  indices.reserve(faults.count());
  for (cube::NodeId f : faults.addresses()) {
    cube::NodeId v = 0;
    for (std::size_t i = 0; i < cuts.size(); ++i)
      v |= static_cast<cube::NodeId>(cube::bit(f, cuts[i])) << i;
    indices.push_back(v);
  }
  std::sort(indices.begin(), indices.end());
  return std::adjacent_find(indices.begin(), indices.end()) ==
         indices.end();
}

namespace {

struct DfsState {
  const fault::FaultSet& faults;
  SearchResult result;
  std::vector<cube::Dim> prefix;

  bool check(std::span<const cube::Dim> cuts) {
    result.fault_checks += faults.count();
    return is_single_fault_structure(faults, cuts);
  }

  void visit(cube::Dim next_start) {
    const cube::Dim n = faults.dim();
    for (cube::Dim d = next_start; d < n; ++d) {
      // Prune: a child at depth k+1 can never improve on mincut.
      const int depth = static_cast<int>(prefix.size()) + 1;
      if (depth > result.mincut) return;
      prefix.push_back(d);
      ++result.tree_nodes_visited;
      if (check(prefix)) {
        if (depth < result.mincut) {
          result.mincut = depth;
          result.cutting_set.clear();
        }
        if (depth == result.mincut) result.cutting_set.push_back(prefix);
        // No point descending: any superset is longer, hence non-minimal.
      } else {
        visit(d + 1);
      }
      prefix.pop_back();
    }
  }
};

}  // namespace

SearchResult find_cutting_set(const fault::FaultSet& faults) {
  DfsState state{faults, SearchResult{}, {}};
  state.result.mincut = faults.dim();  // initial bound: cut everything

  // Root of the tree: the empty sequence, valid iff r <= 1.
  if (state.check({})) {
    state.result.mincut = 0;
    state.result.cutting_set.push_back({});
    return state.result;
  }
  state.visit(0);
  FTSORT_ENSURE(!state.result.cutting_set.empty());
  return state.result;
}

}  // namespace ftsort::partition
