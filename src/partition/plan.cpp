#include "partition/plan.hpp"

#include <algorithm>
#include <sstream>

namespace ftsort::partition {

Plan Plan::build(const fault::FaultSet& faults) {
  SearchResult search = find_cutting_set(faults);
  Selection selection = select_sequence(faults, search.cutting_set);
  return Plan(faults, std::move(search), std::move(selection));
}

Plan Plan::build_with_cuts(const fault::FaultSet& faults,
                           std::vector<cube::Dim> cuts) {
  FTSORT_REQUIRE(is_single_fault_structure(faults, cuts));
  SearchResult search;
  search.mincut = static_cast<int>(cuts.size());
  search.cutting_set.push_back(cuts);
  Selection selection = select_sequence(faults, search.cutting_set);
  return Plan(faults, std::move(search), std::move(selection));
}

Plan::Plan(fault::FaultSet faults, SearchResult search, Selection selection)
    : faults_(std::move(faults)), search_(std::move(search)),
      selection_(std::move(selection)),
      split_(faults_.dim(), selection_.cuts) {
  const std::uint32_t subcubes = split_.num_subcubes();
  // Every subcube is given a dead node unless the cube is entirely
  // fault-free and unpartitioned.
  has_dead_ = !(faults_.empty() && split_.subcube_bits() == 0);
  if (!has_dead_) return;

  dead_w_.assign(subcubes, 0);
  dead_is_fault_.assign(subcubes, false);
  const cube::NodeId dangling_w =
      most_frequent_fault_local(faults_, split_);
  for (cube::NodeId v = 0; v < subcubes; ++v) dead_w_[v] = dangling_w;
  for (cube::NodeId f : faults_.addresses()) {
    const cube::NodeId v = split_.subcube_index(f);
    FTSORT_INVARIANT(!dead_is_fault_[v]);  // single-fault structure
    dead_w_[v] = split_.local_address(f);
    dead_is_fault_[v] = true;
  }
  dangling_count_ =
      subcubes - static_cast<std::uint32_t>(faults_.count());
}

double Plan::utilization_percent() const {
  const double healthy =
      static_cast<double>(faults_.cube_size() - faults_.count());
  if (healthy == 0.0) return 0.0;
  return 100.0 * static_cast<double>(live_count()) / healthy;
}

cube::NodeId Plan::dead_w(cube::NodeId v) const {
  FTSORT_REQUIRE(has_dead_);
  FTSORT_REQUIRE(cube::valid_node(v, m()));
  return dead_w_[v];
}

bool Plan::dead_is_fault(cube::NodeId v) const {
  FTSORT_REQUIRE(has_dead_);
  FTSORT_REQUIRE(cube::valid_node(v, m()));
  return dead_is_fault_[v];
}

cube::NodeId Plan::physical(cube::NodeId v, cube::NodeId logical_w) const {
  const cube::NodeId w =
      has_dead_ ? (logical_w ^ dead_w_[v]) : logical_w;
  return split_.global_address(v, w);
}

Plan::Role Plan::role_of(cube::NodeId u) const {
  Role role;
  role.v = split_.subcube_index(u);
  const cube::NodeId w = split_.local_address(u);
  role.logical_w = has_dead_ ? (w ^ dead_w_[role.v]) : w;
  role.live = !(has_dead_ && role.logical_w == 0);
  return role;
}

std::vector<cube::NodeId> Plan::dangling_addresses() const {
  std::vector<cube::NodeId> out;
  if (!has_dead_) return out;
  for (cube::NodeId v = 0; v < num_subcubes(); ++v)
    if (!dead_is_fault_[v])
      out.push_back(split_.global_address(v, dead_w_[v]));
  std::sort(out.begin(), out.end());
  return out;
}

std::string Plan::to_string() const {
  std::ostringstream os;
  os << "Plan(Q_" << n() << ", r=" << faults_.count() << ", mincut="
     << search_.mincut << ", cuts=(";
  for (std::size_t i = 0; i < selection_.cuts.size(); ++i) {
    if (i != 0) os << ",";
    os << selection_.cuts[i];
  }
  os << "), overhead=" << selection_.overhead.total << ", live="
     << live_count() << ", dangling=" << dangling_count_ << ")";
  return os.str();
}

}  // namespace ftsort::partition
