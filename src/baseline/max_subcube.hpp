// Özgüner & Aykanat's reconfiguration baseline: find the maximum-dimensional
// fault-free subcube of Q_n and run everything there, leaving the other
// healthy processors idle ("dangling" in the paper's terminology).
#pragma once

#include <optional>

#include "fault/fault_set.hpp"
#include "hypercube/subcube.hpp"

namespace ftsort::baseline {

struct MaxSubcubeResult {
  cube::Subcube subcube;                  ///< a largest fault-free subcube
  std::uint64_t subcubes_examined = 0;    ///< search effort
  /// Healthy processors left idle by this reconfiguration.
  std::uint32_t dangling_count = 0;
  double utilization_percent = 0.0;       ///< used / healthy, in percent
};

/// Exhaustive search from dimension n downward; among equal-dimension
/// candidates the one with the smallest (mask, value) is returned, making
/// the result deterministic. Returns nullopt only when every node is
/// faulty.
std::optional<MaxSubcubeResult> find_max_fault_free_subcube(
    const fault::FaultSet& faults);

}  // namespace ftsort::baseline
