// A second algorithmic baseline: odd-even transposition block sort on a
// logical ring embedded over *all* healthy processors.
//
// Where the MFS baseline sacrifices up to three quarters of the healthy
// machine and the paper's algorithm needs the single-fault subcube
// structure, a ring needs nothing: order the healthy nodes along the
// cube's Gray-code Hamiltonian cycle (skipping faulty nodes; successive
// live nodes are then a few hops apart) and run the classic odd-even
// transposition sort — P phases of neighbour merge-splits for P live
// nodes. Utilization is perfect, but the phase count is linear in P
// instead of log^2, which is exactly the trade-off the bench quantifies.
#pragma once

#include <span>

#include "fault/fault_set.hpp"
#include "sim/machine.hpp"
#include "sort/spmd_bitonic.hpp"

namespace ftsort::baseline {

struct RingSortResult {
  std::vector<sort::Key> sorted;
  sim::RunReport report;
  std::size_t block_size = 0;
  /// Ring order: position -> machine address (Gray-code order, faulty
  /// nodes skipped).
  std::vector<cube::NodeId> ring;
};

/// The Gray-code ring over healthy nodes.
std::vector<cube::NodeId> healthy_ring(const fault::FaultSet& faults);

/// Sort `keys` over every healthy processor of the faulty cube.
RingSortResult ring_odd_even_sort(
    cube::Dim n, const fault::FaultSet& faults,
    std::span<const sort::Key> keys,
    fault::FaultModel model = fault::FaultModel::Partial,
    sim::CostModel cost = sim::CostModel::ncube7());

}  // namespace ftsort::baseline
