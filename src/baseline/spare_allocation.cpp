#include "baseline/spare_allocation.hpp"

#include <vector>

#include "fault/scenario.hpp"

namespace ftsort::baseline {

bool SpareScheme::survives(const fault::FaultSet& faults) const {
  FTSORT_REQUIRE(faults.dim() == cube_dim);
  std::vector<int> per_module(modules(), 0);
  for (cube::NodeId f : faults.addresses()) {
    if (++per_module[module_of(f)] > 1) return false;
  }
  return true;
}

double survival_probability(const SpareScheme& scheme, std::size_t r,
                            int trials, util::Rng& rng) {
  FTSORT_REQUIRE(trials > 0);
  int survived = 0;
  for (int t = 0; t < trials; ++t) {
    const auto faults = fault::random_faults(scheme.cube_dim, r, rng);
    if (scheme.survives(faults)) ++survived;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

SpareScheme coarse_spares(cube::Dim n) {
  FTSORT_REQUIRE(cube::num_nodes(n) >= 16);
  return SpareScheme{"coarse (g=16)", n, 16, 18};
}

SpareScheme medium_spares(cube::Dim n) {
  FTSORT_REQUIRE(cube::num_nodes(n) >= 8);
  return SpareScheme{"medium (g=8)", n, 8, 10};
}

SpareScheme fine_spares(cube::Dim n) {
  FTSORT_REQUIRE(cube::num_nodes(n) >= 4);
  return SpareScheme{"fine (g=4)", n, 4, 5};
}

}  // namespace ftsort::baseline
