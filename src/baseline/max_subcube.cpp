#include "baseline/max_subcube.hpp"

namespace ftsort::baseline {

std::optional<MaxSubcubeResult> find_max_fault_free_subcube(
    const fault::FaultSet& faults) {
  const cube::Dim n = faults.dim();
  MaxSubcubeResult result;
  for (cube::Dim k = n; k >= 0; --k) {
    for (const cube::Subcube& candidate : cube::all_subcubes(n, k)) {
      ++result.subcubes_examined;
      if (faults.count_in(candidate.mask, candidate.value) == 0) {
        result.subcube = candidate;
        const auto healthy =
            static_cast<std::uint32_t>(faults.healthy_count());
        result.dangling_count = healthy - candidate.size();
        result.utilization_percent =
            healthy == 0 ? 0.0
                         : 100.0 * static_cast<double>(candidate.size()) /
                               static_cast<double>(healthy);
        return result;
      }
    }
  }
  return std::nullopt;
}

}  // namespace ftsort::baseline
