#include "baseline/mfs_sorter.hpp"

#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "util/contracts.hpp"

namespace ftsort::baseline {

MfsSortResult mfs_bitonic_sort(cube::Dim n, const fault::FaultSet& faults,
                               std::span<const sort::Key> keys,
                               fault::FaultModel model, sim::CostModel cost,
                               sort::ExchangeProtocol protocol) {
  auto reconf = find_max_fault_free_subcube(faults);
  FTSORT_REQUIRE(reconf.has_value());
  const cube::Subcube& sub = reconf->subcube;

  // Logical cube over the subcube's free dimensions, no dead node.
  sort::LogicalCube lc;
  lc.s = sub.dim();
  lc.phys = sub.members();  // increasing global order == logical order

  sort::Distribution dist =
      sort::distribute_evenly(keys, lc.live_count());
  std::vector<std::vector<sort::Key>> block_of(cube::num_nodes(n));
  std::vector<cube::NodeId> logical_of(cube::num_nodes(n),
                                       cube::num_nodes(n));
  for (cube::NodeId logical = 0; logical < lc.size(); ++logical) {
    block_of[lc.phys[logical]] = std::move(dist.blocks[logical]);
    logical_of[lc.phys[logical]] = logical;
  }

  sim::Machine machine(n, faults, model, cost);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const cube::NodeId logical = logical_of[ctx.id()];
    if (logical == cube::num_nodes(n)) co_return;  // outside the subcube
    std::vector<sort::Key>& block = block_of[ctx.id()];
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::LocalSort);
      std::uint64_t comparisons = 0;
      sort::heapsort(block, comparisons);
      ctx.charge_compares(comparisons);
    }
    co_await sort::block_bitonic_sort(ctx, lc, logical, block,
                                      /*ascending=*/true, protocol,
                                      /*tag_base=*/0);
  };

  MfsSortResult result;
  result.report = machine.run(program);
  result.reconfiguration = *reconf;
  result.block_size = dist.block_size;

  std::vector<std::vector<sort::Key>> in_order;
  in_order.reserve(lc.size());
  for (cube::NodeId logical = 0; logical < lc.size(); ++logical)
    in_order.push_back(std::move(block_of[lc.phys[logical]]));
  result.sorted = sort::gather_and_strip(in_order);
  return result;
}

}  // namespace ftsort::baseline
