// Hardware fault tolerance via spare processors — the reconfiguration
// family the paper's introduction contrasts against (Rennels; Chau &
// Liestman; Alam & Melhem).
//
// Abstracted model: the 2^n processors are grouped into modules of g
// nodes sharing one spare processor behind decoupling switches. A faulty
// processor is replaced by its module's spare; the machine then still
// *looks like* a fault-free Q_n (100 % computational capability) — but
// only while no module collects a second fault. The model is parametric
// (module size, switches per module) because the three papers differ in
// wiring, not in this failure law; the comparison against algorithmic
// fault tolerance depends only on the scaling.
#pragma once

#include <string>

#include "fault/fault_set.hpp"
#include "util/rng.hpp"

namespace ftsort::baseline {

struct SpareScheme {
  std::string name;
  cube::Dim cube_dim = 0;     ///< n of the protected Q_n
  std::uint32_t module_size = 4;  ///< g: processors sharing one spare
  /// Decoupling switches needed per module (parametric; the published
  /// designs range between ~g and ~2g).
  std::uint32_t switches_per_module = 5;

  std::uint32_t modules() const {
    return cube::num_nodes(cube_dim) / module_size;
  }
  std::uint32_t spares() const { return modules(); }
  std::uint32_t switches() const {
    return modules() * switches_per_module;
  }
  /// Fraction of all processors (normal + spare) doing useful work when
  /// the machine is healthy: spares idle until a fault arrives.
  double silicon_utilization() const {
    const double normal = cube::num_nodes(cube_dim);
    return normal / (normal + spares());
  }

  /// Modules are aligned address blocks [k*g, (k+1)*g).
  std::uint32_t module_of(cube::NodeId u) const { return u / module_size; }

  /// Does the spare allocation absorb this fault set (<= 1 fault per
  /// module)?
  bool survives(const fault::FaultSet& faults) const;
};

/// Monte-Carlo survival probability under r uniformly random faults.
double survival_probability(const SpareScheme& scheme, std::size_t r,
                            int trials, util::Rng& rng);

/// Presets spanning the design space of the cited schemes.
SpareScheme coarse_spares(cube::Dim n);   ///< few big modules (g = 16)
SpareScheme medium_spares(cube::Dim n);   ///< g = 8
SpareScheme fine_spares(cube::Dim n);     ///< many small modules (g = 4)

}  // namespace ftsort::baseline
