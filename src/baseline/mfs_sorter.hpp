// The baseline sorter the paper compares against: plain block bitonic sort
// on the maximum-dimensional fault-free subcube, with every key crammed onto
// its 2^(n-t) processors.
#pragma once

#include <span>

#include "baseline/max_subcube.hpp"
#include "sim/machine.hpp"
#include "sort/spmd_bitonic.hpp"

namespace ftsort::baseline {

struct MfsSortResult {
  std::vector<sort::Key> sorted;
  sim::RunReport report;
  MaxSubcubeResult reconfiguration;
  std::size_t block_size = 0;
};

/// Sort `keys` on the largest fault-free subcube of Q_n. Throws when no
/// fault-free subcube exists (every node faulty).
MfsSortResult mfs_bitonic_sort(
    cube::Dim n, const fault::FaultSet& faults,
    std::span<const sort::Key> keys,
    fault::FaultModel model = fault::FaultModel::Partial,
    sim::CostModel cost = sim::CostModel::ncube7(),
    sort::ExchangeProtocol protocol = sort::ExchangeProtocol::HalfExchange);

}  // namespace ftsort::baseline
