#include "baseline/ring_sorter.hpp"

#include "sort/distribution.hpp"
#include "sort/merge_split.hpp"
#include "sort/sequential.hpp"
#include "util/contracts.hpp"

namespace ftsort::baseline {

std::vector<cube::NodeId> healthy_ring(const fault::FaultSet& faults) {
  std::vector<cube::NodeId> ring;
  ring.reserve(faults.healthy_count());
  for (cube::NodeId i = 0; i < faults.cube_size(); ++i) {
    const cube::NodeId u = cube::gray(i);
    if (!faults.is_faulty(u)) ring.push_back(u);
  }
  return ring;
}

RingSortResult ring_odd_even_sort(cube::Dim n,
                                  const fault::FaultSet& faults,
                                  std::span<const sort::Key> keys,
                                  fault::FaultModel model,
                                  sim::CostModel cost) {
  FTSORT_REQUIRE(faults.dim() == n);
  RingSortResult result;
  result.ring = healthy_ring(faults);
  const std::size_t live = result.ring.size();
  FTSORT_REQUIRE(live > 0);

  // Position of each machine node along the ring.
  std::vector<std::size_t> position(cube::num_nodes(n), live);
  for (std::size_t p = 0; p < live; ++p) position[result.ring[p]] = p;

  sort::Distribution dist = sort::distribute_evenly(
      keys, static_cast<std::uint32_t>(live));
  result.block_size = dist.block_size;
  std::vector<std::vector<sort::Key>> block_of(cube::num_nodes(n));
  for (std::size_t p = 0; p < live; ++p)
    block_of[result.ring[p]] = std::move(dist.blocks[p]);

  sim::Machine machine(n, faults, model, cost);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const std::size_t me = position[ctx.id()];
    if (me == live) co_return;  // not on the ring (cannot happen: healthy)
    std::vector<sort::Key>& block = block_of[ctx.id()];
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::LocalSort);
      std::uint64_t comparisons = 0;
      sort::heapsort(block, comparisons);
      ctx.charge_compares(comparisons);
    }

    // Odd-even transposition: phase p pairs positions (i, i+1) with
    // i ≡ p (mod 2). `live` phases guarantee a sorted ring.
    for (std::size_t phase = 0; phase < live; ++phase) {
      const bool is_left = (me % 2) == (phase % 2);
      const std::size_t partner_pos =
          is_left ? me + 1 : me - 1;
      // Ends of the line sit out when their partner does not exist.
      if (is_left && partner_pos >= live) continue;
      if (!is_left && me == 0) continue;
      const cube::NodeId partner = result.ring[partner_pos];
      block = co_await sort::exchange_merge_split(
          ctx, partner, static_cast<sim::Tag>(phase), std::move(block),
          is_left ? sort::SplitHalf::Lower : sort::SplitHalf::Upper,
          sort::ExchangeProtocol::FullExchange);
    }
    co_return;
  };
  result.report = machine.run(program);

  std::vector<std::vector<sort::Key>> in_order;
  in_order.reserve(live);
  for (std::size_t p = 0; p < live; ++p)
    in_order.push_back(std::move(block_of[result.ring[p]]));
  result.sorted = sort::gather_and_strip(in_order);
  return result;
}

}  // namespace ftsort::baseline
