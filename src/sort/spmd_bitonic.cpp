#include "sort/spmd_bitonic.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace ftsort::sort {

LogicalCube LogicalCube::identity(cube::Dim s) {
  LogicalCube lc;
  lc.s = s;
  lc.phys.resize(cube::num_nodes(s));
  std::iota(lc.phys.begin(), lc.phys.end(), cube::NodeId{0});
  return lc;
}

std::uint32_t bitonic_tag_span(cube::Dim s) {
  // s(s+1)/2 compare-exchange steps, two tags each.
  const auto steps = static_cast<std::uint32_t>(s) *
                     (static_cast<std::uint32_t>(s) + 1) / 2;
  return steps * 2;
}

namespace {

sim::Task<void> half_exchange(sim::NodeCtx& ctx, cube::NodeId partner,
                              sim::Tag tag, std::vector<Key>& block,
                              ExchangeScratch& scratch, SplitHalf keep) {
  // Pairing: with both blocks ascending, the b smallest of A ∪ B are
  // { min(A[k], B[b-1-k]) } and the b largest { max(A[k], B[b-1-k]) }.
  // The Lower side evaluates pairs k in [h, b), the Upper side k in [0, h),
  // h = b/2 — so each key crosses the wire at most once each way and the
  // per-step traffic matches the paper's ⌈M/2N'⌉ terms. The reversed
  // indexing of the second element of each pair happens inside
  // pairwise_select_rev_into; no reversed copies are materialised.
  const std::size_t b = block.size();
  const std::size_t h = b / 2;
  const std::span<const Key> mine(block);
  std::uint64_t comparisons = 0;

  if (keep == SplitHalf::Lower) {
    // Send my bottom half A[0..h); partner needs it for pairs k in [0, h).
    ctx.send(partner, tag, mine.first(h));
    // Receive partner's bottom part B[0..b-h).
    sim::Message msg = co_await ctx.recv(partner, tag);
    FTSORT_REQUIRE(msg.payload.size() == b - h);
    // My pairs: a[t] = A[h+t], b[t] = B[b-1-(h+t)] = reversed(received)[t].
    pairwise_select_rev_into(mine.subspan(h), msg.payload.span(),
                             SplitHalf::Lower, scratch.kept,
                             scratch.returned, comparisons);
    ctx.charge_compares(comparisons);
    comparisons = 0;
    // Return the losers (maxes) to the partner.
    ctx.send(partner, tag + 1, std::span<const Key>(scratch.returned));
    // Receive the winners (mins) of the partner's pairs.
    sim::Message back = co_await ctx.recv(partner, tag + 1);
    FTSORT_REQUIRE(back.payload.size() == h);
    // Both parts are unimodal; sort each, then merge.
    sort_unimodal(scratch.kept, scratch.unimodal, comparisons);
    sort_unimodal(back.payload.vec(), scratch.unimodal, comparisons);
    merge_sorted_into(scratch.kept, back.payload.span(), scratch.merged,
                      comparisons);
    ctx.charge_compares(comparisons);
    FTSORT_ENSURE(scratch.merged.size() == b);
    std::swap(block, scratch.merged);
    if (ctx.lineage_enabled()) ctx.note_lineage_retain(partner, tag, block);
    co_return;
  }

  // Upper side: send my bottom part B[0..b-h); partner pairs k in [h, b).
  ctx.send(partner, tag, mine.first(b - h));
  sim::Message msg = co_await ctx.recv(partner, tag);
  FTSORT_REQUIRE(msg.payload.size() == h);
  // My pairs k in [0, h): a[t] = A[t] (received), b[t] = B[b-1-t] = the top
  // of my own block read backwards.
  pairwise_select_rev_into(msg.payload.span(), mine.last(h),
                           SplitHalf::Upper, scratch.kept, scratch.returned,
                           comparisons);
  ctx.charge_compares(comparisons);
  comparisons = 0;
  ctx.send(partner, tag + 1, std::span<const Key>(scratch.returned));
  sim::Message back = co_await ctx.recv(partner, tag + 1);
  FTSORT_REQUIRE(back.payload.size() == b - h);
  // My final multiset: the kept/returned sets already contain every key
  // exactly once — kept (h maxes) + back.payload (b-h maxes from the
  // partner's pairs); the top of my block served only as comparison input.
  sort_unimodal(scratch.kept, scratch.unimodal, comparisons);
  sort_unimodal(back.payload.vec(), scratch.unimodal, comparisons);
  merge_sorted_into(scratch.kept, back.payload.span(), scratch.merged,
                    comparisons);
  ctx.charge_compares(comparisons);
  FTSORT_ENSURE(scratch.merged.size() == b);
  std::swap(block, scratch.merged);
  if (ctx.lineage_enabled()) ctx.note_lineage_retain(partner, tag, block);
  co_return;
}

}  // namespace

sim::Task<void> exchange_merge_split_into(
    sim::NodeCtx& ctx, cube::NodeId partner, sim::Tag tag,
    std::vector<Key>& block, ExchangeScratch& scratch, SplitHalf keep,
    ExchangeProtocol protocol) {
  // Generic tag; a caller's step-level span (e.g. ft_sorter's
  // MergeExchange/Resort) takes precedence.
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::MergeExchange);
  if (protocol == ExchangeProtocol::HalfExchange) {
    co_await half_exchange(ctx, partner, tag, block, scratch, keep);
    co_return;
  }

  // Full exchange: swap entire blocks, split locally.
  ctx.send(partner, tag, std::span<const Key>(block));
  sim::Message msg = co_await ctx.recv(partner, tag);
  std::uint64_t comparisons = 0;
  merge_split_into(block, msg.payload.span(), keep, scratch.merged,
                   comparisons);
  ctx.charge_compares(comparisons);
  std::swap(block, scratch.merged);
  // Custody commits here, at the merge — never at send/recv: the wire
  // carried a copy (sim/lineage.hpp).
  if (ctx.lineage_enabled()) ctx.note_lineage_retain(partner, tag, block);
  co_return;
}

sim::Task<std::vector<Key>> exchange_merge_split(
    sim::NodeCtx& ctx, cube::NodeId partner, sim::Tag tag,
    std::vector<Key> block, SplitHalf keep, ExchangeProtocol protocol) {
  ExchangeScratch scratch;
  co_await exchange_merge_split_into(ctx, partner, tag, block, scratch, keep,
                                     protocol);
  co_return std::move(block);
}

std::uint32_t bitonic_merge_tag_span(cube::Dim s) {
  return static_cast<std::uint32_t>(s) * 2 + 1;
}

namespace {

/// The plain s-substep blockwise bitonic merge (mirrored when descending).
sim::Task<void> merge_network(sim::NodeCtx& ctx, const LogicalCube& lc,
                              cube::NodeId me_logical,
                              std::vector<Key>& block, bool ascending,
                              ExchangeProtocol protocol, sim::Tag tag_base,
                              ExchangeScratch& scratch) {
  sim::Tag tag = tag_base;
  for (cube::Dim j = lc.s - 1; j >= 0; --j, tag += 2) {
    const cube::NodeId partner_logical = cube::neighbor(me_logical, j);
    if (lc.is_dead(partner_logical)) continue;
    const SplitHalf keep =
        (cube::bit(me_logical, j) == (ascending ? 0 : 1))
            ? SplitHalf::Lower
            : SplitHalf::Upper;
    co_await exchange_merge_split_into(ctx, lc.phys[partner_logical], tag,
                                       block, scratch, keep, protocol);
  }
  co_return;
}

}  // namespace

sim::Task<void> block_bitonic_merge(sim::NodeCtx& ctx,
                                    const LogicalCube& lc,
                                    cube::NodeId me_logical,
                                    std::vector<Key>& block, bool ascending,
                                    SplitHalf content_side,
                                    ExchangeProtocol protocol,
                                    sim::Tag tag_base,
                                    ExchangeScratch* scratch) {
  FTSORT_REQUIRE(cube::valid_node(me_logical, lc.s));
  FTSORT_REQUIRE(!lc.is_dead(me_logical));
  FTSORT_REQUIRE(lc.phys[me_logical] == ctx.id());
  FTSORT_REQUIRE(is_ascending(block));

  const sim::PhaseSpan span = ctx.span_if_unattributed(sim::Phase::Resort);
  ExchangeScratch local;
  ExchangeScratch& sc = scratch != nullptr ? *scratch : local;

  // Without a hole any direction is sound; with the dead node the merge
  // direction must match the content side (see header).
  const bool compatible_asc = content_side == SplitHalf::Lower;
  const bool direct = !lc.dead0 || (ascending == compatible_asc);
  if (direct) {
    co_await merge_network(ctx, lc, me_logical, block, ascending, protocol,
                           tag_base, sc);
    co_return;
  }

  // Merge in the sound direction, then reverse block order across live
  // addresses with the involution w <-> 2^s - w (never touches logical 0).
  co_await merge_network(ctx, lc, me_logical, block, compatible_asc,
                         protocol, tag_base, sc);
  const cube::NodeId mirror =
      static_cast<cube::NodeId>(lc.size()) - me_logical;
  if (mirror != me_logical) {
    const sim::Tag swap_tag =
        tag_base + static_cast<sim::Tag>(lc.s) * 2;
    ctx.send(lc.phys[mirror], swap_tag, std::move(block));
    sim::Message msg = co_await ctx.recv(lc.phys[mirror], swap_tag);
    msg.payload.release_into(block);
    if (ctx.lineage_enabled())
      ctx.note_lineage_retain(lc.phys[mirror], swap_tag, block);
  }
  co_return;
}

sim::Task<void> block_bitonic_sort(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me_logical,
                                   std::vector<Key>& block, bool ascending,
                                   ExchangeProtocol protocol,
                                   sim::Tag tag_base,
                                   ExchangeScratch* scratch) {
  FTSORT_REQUIRE(cube::valid_node(me_logical, lc.s));
  FTSORT_REQUIRE(!lc.is_dead(me_logical));
  FTSORT_REQUIRE(lc.phys[me_logical] == ctx.id());
  FTSORT_REQUIRE(is_ascending(block));

  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::SubcubeSort);
  ExchangeScratch local;
  ExchangeScratch& sc = scratch != nullptr ? *scratch : local;

  const cube::Dim s = lc.s;
  sim::Tag tag = tag_base;
  for (cube::Dim i = 0; i < s; ++i) {
    for (cube::Dim j = i; j >= 0; --j, tag += 2) {
      const cube::NodeId partner_logical = cube::neighbor(me_logical, j);
      if (lc.is_dead(partner_logical)) continue;  // dead partner: no-op
      // Direction bit: within stage i it is bit i+1 of the logical address;
      // the final stage (i == s-1) fixes the overall order. A descending
      // sort mirrors the *whole* network (equivalent to sorting negated
      // keys ascending): only then does the dead node at logical 0 always
      // sit in a sub-sort whose extreme element belongs at address 0, which
      // is what makes the §2.1 skip rule safe in both directions.
      const int stage_bit =
          (i + 1 == s) ? 0 : cube::bit(me_logical, i + 1);
      const int dir_bit = ascending ? stage_bit : 1 - stage_bit;
      const SplitHalf keep = (cube::bit(me_logical, j) == dir_bit)
                                 ? SplitHalf::Lower
                                 : SplitHalf::Upper;
      co_await exchange_merge_split_into(ctx, lc.phys[partner_logical], tag,
                                         block, sc, keep, protocol);
    }
  }
  co_return;
}

}  // namespace ftsort::sort
