// Sequential sorting kernels used inside each simulated processor.
//
// Everything is written from scratch (the paper's Step 3 prescribes
// heapsort) and every kernel reports the number of key comparisons it
// performed so the simulator can charge t_c faithfully.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.hpp"

namespace ftsort::sort {

using sim::Key;

/// In-place heapsort, ascending. Returns nothing; comparisons are
/// accumulated into `comparisons`.
void heapsort(std::span<Key> data, std::uint64_t& comparisons);

/// Convenience overload that drops the count.
void heapsort(std::span<Key> data);

/// Top-down merge sort (stable, ~n log n comparisons, n extra space).
/// The paper prescribes heapsort for Step 3; this is the ablation
/// alternative with a lower comparison count.
void mergesort(std::span<Key> data, std::uint64_t& comparisons);

/// Median-of-three quicksort with insertion-sort cutoff. Expected
/// ~1.39 n log n comparisons; in-place.
void quicksort(std::span<Key> data, std::uint64_t& comparisons);

/// Which algorithm a node uses for its local Step 3 sort.
enum class LocalSort { Heapsort, Mergesort, Quicksort };

void local_sort(LocalSort algorithm, std::span<Key> data,
                std::uint64_t& comparisons);

/// Stable two-way merge of ascending runs into one ascending vector.
std::vector<Key> merge_sorted(std::span<const Key> a, std::span<const Key> b,
                              std::uint64_t& comparisons);

/// Scratch-buffer variant of `merge_sorted`: merges into caller-owned `out`
/// (resized, capacity reused across calls). `out` must not alias the
/// inputs. Identical output and comparison count to `merge_sorted`.
void merge_sorted_into(std::span<const Key> a, std::span<const Key> b,
                       std::vector<Key>& out, std::uint64_t& comparisons);

/// Sort a *unimodal* sequence — one that rises then falls (peak) or falls
/// then rises (valley); both shapes arise from pairwise min/max selections
/// in the half-exchange protocol. O(n) with at most n extra comparisons.
void sort_unimodal(std::vector<Key>& data, std::uint64_t& comparisons);

/// Scratch-buffer variant: merges the two monotone runs of `data` directly
/// into `scratch` (reading one of them backwards instead of materialising
/// reversed copies) and swaps the result back into `data`. Identical output
/// and comparison count to the allocating overload; zero allocations once
/// `scratch` is warm.
void sort_unimodal(std::vector<Key>& data, std::vector<Key>& scratch,
                   std::uint64_t& comparisons);

/// True iff ascending (non-strict).
bool is_ascending(std::span<const Key> data);

/// True iff the concatenation of blocks, in order, is ascending.
bool is_globally_ascending(std::span<const std::vector<Key>> blocks);

}  // namespace ftsort::sort
