// Internal entry points behind the KernelBackend dispatch in
// merge_split.cpp. The `_scalar` kernels are the reference loops (defined
// in merge_split.cpp); the `_simd` kernels live in merge_split_simd.cpp,
// which is the only translation unit compiled with vector ISA flags — keep
// every call to them behind `simd_kernels_available()` so no AVX2
// instruction can execute on a CPU without it.
//
// Contract shared by both backends, enforced by tests/test_merge_split.cpp:
// byte-identical output AND identical comparison counts on every input.
// The SIMD merge does not replay the scalar comparison sequence — it
// computes the count analytically (the count depends only on the inputs:
// comparisons accrue until the first input run exhausts, and the exhaustion
// point is a rank, found by binary search).
#pragma once

#include "sort/merge_split.hpp"

namespace ftsort::sort::detail {

void merge_split_into_scalar(std::span<const Key> mine,
                             std::span<const Key> theirs, SplitHalf keep,
                             std::vector<Key>& out,
                             std::uint64_t& comparisons);
void pairwise_select_into_scalar(std::span<const Key> a,
                                 std::span<const Key> b, SplitHalf keep,
                                 std::vector<Key>& kept,
                                 std::vector<Key>& returned,
                                 std::uint64_t& comparisons);
void pairwise_select_rev_into_scalar(std::span<const Key> a,
                                     std::span<const Key> b, SplitHalf keep,
                                     std::vector<Key>& kept,
                                     std::vector<Key>& returned,
                                     std::uint64_t& comparisons);

#if FTSORT_SIMD_KERNELS
void merge_split_into_simd(std::span<const Key> mine,
                           std::span<const Key> theirs, SplitHalf keep,
                           std::vector<Key>& out, std::uint64_t& comparisons);
void pairwise_select_into_simd(std::span<const Key> a, std::span<const Key> b,
                               SplitHalf keep, std::vector<Key>& kept,
                               std::vector<Key>& returned,
                               std::uint64_t& comparisons);
void pairwise_select_rev_into_simd(std::span<const Key> a,
                                   std::span<const Key> b, SplitHalf keep,
                                   std::vector<Key>& kept,
                                   std::vector<Key>& returned,
                                   std::uint64_t& comparisons);
#endif

}  // namespace ftsort::sort::detail
