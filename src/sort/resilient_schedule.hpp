// Precomputed exchange schedules for the resilient (recovery-mode) sort.
//
// The online-recovery engine (core/recovery.hpp) cannot use the streaming
// SPMD sorts of spmd_bitonic.hpp directly: to bound the wait on a possibly
// dead partner it needs every comparison-exchange flattened into a list of
// (global step, partner, keep) triples, one wire tag per step, so that a
// timed-out exchange identifies exactly which protocol step — and hence
// which partner — went silent.
//
// `append_bitonic_sort_schedule` emits the exact exchange sequence of
// block_bitonic_sort (same stages, same direction rule, same dead-partner
// skip). Every (stage, substep) advances the global step counter whether or
// not an exchange occurs, so step indices — and therefore tags — agree
// across all nodes of the logical cube.
#pragma once

#include <cstdint>
#include <vector>

#include "sort/spmd_bitonic.hpp"

namespace ftsort::sort {

/// One full-block merge-split exchange of a resilient schedule: at global
/// step index `step`, swap whole blocks with machine node `partner` and
/// keep the given half of the union.
struct ScheduleStep {
  std::uint32_t step = 0;
  cube::NodeId partner = 0;
  SplitHalf keep = SplitHalf::Lower;
};

/// Number of global step indices a full block bitonic sort of a Q_s
/// consumes: s(s+1)/2.
std::uint32_t bitonic_sort_steps(cube::Dim s);

/// Appends the block-bitonic-sort schedule of `lc` for live logical
/// address `lw` (ascending or descending by blocks), advancing `step` by
/// bitonic_sort_steps(lc.s).
void append_bitonic_sort_schedule(const LogicalCube& lc, cube::NodeId lw,
                                  bool ascending, std::uint32_t& step,
                                  std::vector<ScheduleStep>& out);

}  // namespace ftsort::sort
