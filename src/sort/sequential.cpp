#include "sort/sequential.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ftsort::sort {

namespace {

/// Restore the max-heap property below `root` within data[0 .. size).
void sift_down(std::span<Key> data, std::size_t root, std::size_t size,
               std::uint64_t& comparisons) {
  while (true) {
    const std::size_t left = 2 * root + 1;
    if (left >= size) return;
    std::size_t largest = left;
    const std::size_t right = left + 1;
    if (right < size) {
      ++comparisons;
      if (data[right] > data[left]) largest = right;
    }
    ++comparisons;
    if (data[largest] <= data[root]) return;
    std::swap(data[root], data[largest]);
    root = largest;
  }
}

}  // namespace

void heapsort(std::span<Key> data, std::uint64_t& comparisons) {
  const std::size_t n = data.size();
  if (n < 2) return;
  for (std::size_t i = n / 2; i-- > 0;)
    sift_down(data, i, n, comparisons);
  for (std::size_t end = n; end-- > 1;) {
    std::swap(data[0], data[end]);
    sift_down(data, 0, end, comparisons);
  }
}

void heapsort(std::span<Key> data) {
  std::uint64_t ignored = 0;
  heapsort(data, ignored);
}

namespace {

void mergesort_impl(std::span<Key> data, std::span<Key> scratch,
                    std::uint64_t& comparisons) {
  const std::size_t n = data.size();
  if (n < 2) return;
  const std::size_t half = n / 2;
  mergesort_impl(data.subspan(0, half), scratch.subspan(0, half),
                 comparisons);
  mergesort_impl(data.subspan(half), scratch.subspan(half), comparisons);
  // Merge into scratch, then copy back.
  std::size_t i = 0;
  std::size_t j = half;
  std::size_t out = 0;
  while (i < half && j < n) {
    ++comparisons;
    scratch[out++] = (data[j] < data[i]) ? data[j++] : data[i++];
  }
  while (i < half) scratch[out++] = data[i++];
  while (j < n) scratch[out++] = data[j++];
  std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n),
            data.begin());
}

void insertion_sort(std::span<Key> data, std::uint64_t& comparisons) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    const Key key = data[i];
    std::size_t j = i;
    while (j > 0) {
      ++comparisons;
      if (data[j - 1] <= key) break;
      data[j] = data[j - 1];
      --j;
    }
    data[j] = key;
  }
}

void quicksort_impl(std::span<Key> data, std::uint64_t& comparisons) {
  constexpr std::size_t kCutoff = 16;
  while (data.size() > kCutoff) {
    // Median of three: first, middle, last.
    const std::size_t n = data.size();
    const std::size_t mid = n / 2;
    comparisons += 3;
    if (data[mid] < data[0]) std::swap(data[mid], data[0]);
    if (data[n - 1] < data[0]) std::swap(data[n - 1], data[0]);
    if (data[n - 1] < data[mid]) std::swap(data[n - 1], data[mid]);
    const Key pivot = data[mid];
    // Hoare partition.
    std::size_t i = 0;
    std::size_t j = n - 1;
    while (true) {
      do {
        ++i;
        ++comparisons;
      } while (data[i] < pivot);
      do {
        --j;
        ++comparisons;
      } while (pivot < data[j]);
      if (i >= j) break;
      std::swap(data[i], data[j]);
    }
    // Recurse into the smaller side, loop on the larger (O(log n) stack).
    const std::size_t split = j + 1;
    if (split < n - split) {
      quicksort_impl(data.subspan(0, split), comparisons);
      data = data.subspan(split);
    } else {
      quicksort_impl(data.subspan(split), comparisons);
      data = data.subspan(0, split);
    }
  }
  insertion_sort(data, comparisons);
}

}  // namespace

void mergesort(std::span<Key> data, std::uint64_t& comparisons) {
  std::vector<Key> scratch(data.size());
  mergesort_impl(data, scratch, comparisons);
}

void quicksort(std::span<Key> data, std::uint64_t& comparisons) {
  quicksort_impl(data, comparisons);
}

void local_sort(LocalSort algorithm, std::span<Key> data,
                std::uint64_t& comparisons) {
  switch (algorithm) {
    case LocalSort::Heapsort: heapsort(data, comparisons); return;
    case LocalSort::Mergesort: mergesort(data, comparisons); return;
    case LocalSort::Quicksort: quicksort(data, comparisons); return;
  }
}

void merge_sorted_into(std::span<const Key> a, std::span<const Key> b,
                       std::vector<Key>& out, std::uint64_t& comparisons) {
  out.resize(a.size() + b.size());
  Key* const dst = out.data();
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < a.size() && j < b.size()) {
    ++comparisons;
    dst[k++] = (b[j] < a[i]) ? b[j++] : a[i++];
  }
  while (i < a.size()) dst[k++] = a[i++];
  while (j < b.size()) dst[k++] = b[j++];
}

std::vector<Key> merge_sorted(std::span<const Key> a, std::span<const Key> b,
                              std::uint64_t& comparisons) {
  std::vector<Key> out;
  merge_sorted_into(a, b, out, comparisons);
  return out;
}

namespace {

/// Shared shape-detection prologue of the `sort_unimodal` overloads.
/// Returns true when the two monotone runs still need merging; otherwise
/// the sequence was handled in place (trivial, all-equal, or monotone —
/// the latter reversed if descending).
bool unimodal_turn(std::vector<Key>& data, std::uint64_t& comparisons,
                   std::size_t& turn, bool& rising_start) {
  if (data.size() < 2) return false;
  // Detect the shape from the first strict change of direction. A peak
  // sequence splits into ascending + descending; a valley into descending
  // + ascending.
  const std::size_t n = data.size();
  turn = n;  // index where the second run starts
  rising_start = true;
  std::size_t k = 1;
  while (k < n && data[k] == data[k - 1]) ++k;
  if (k == n) return false;  // all equal
  ++comparisons;
  rising_start = data[k] > data[k - 1];
  for (; k < n; ++k) {
    ++comparisons;
    if (data[k] == data[k - 1]) continue;
    const bool rising_here = data[k] > data[k - 1];
    if (rising_here != rising_start) {
      turn = k;
      break;
    }
  }
  if (turn == n) {  // already monotone
    if (!rising_start) std::reverse(data.begin(), data.end());
    return false;
  }
  return true;
}

}  // namespace

void sort_unimodal(std::vector<Key>& data, std::uint64_t& comparisons) {
  std::size_t turn = 0;
  bool rising_start = true;
  if (!unimodal_turn(data, comparisons, turn, rising_start)) return;
  std::vector<Key> first(data.begin(),
                         data.begin() + static_cast<std::ptrdiff_t>(turn));
  std::vector<Key> second(data.begin() + static_cast<std::ptrdiff_t>(turn),
                          data.end());
  if (rising_start) {
    // Peak: first ascending, second descending.
    std::reverse(second.begin(), second.end());
  } else {
    // Valley: first descending, second ascending.
    std::reverse(first.begin(), first.end());
  }
  data = merge_sorted(first, second, comparisons);
}

void sort_unimodal(std::vector<Key>& data, std::vector<Key>& scratch,
                   std::uint64_t& comparisons) {
  std::size_t turn = 0;
  bool rising_start = true;
  if (!unimodal_turn(data, comparisons, turn, rising_start)) return;
  // Merge the two monotone runs straight out of `data`, reading the
  // descending run backwards — same merge (and comparison sequence) as the
  // allocating overload, minus the two reversed copies.
  const std::size_t n = data.size();
  scratch.resize(n);
  const Key* const src = data.data();
  Key* const dst = scratch.data();
  // Run A = data[0, turn), ascending when rising_start else read backward;
  // run B = data[turn, n), read backward when rising_start else ascending.
  std::size_t ai = 0;
  std::size_t bj = 0;
  const std::size_t a_len = turn;
  const std::size_t b_len = n - turn;
  const auto a_at = [&](std::size_t i) {
    return rising_start ? src[i] : src[a_len - 1 - i];
  };
  const auto b_at = [&](std::size_t j) {
    return rising_start ? src[n - 1 - j] : src[turn + j];
  };
  std::size_t k = 0;
  while (ai < a_len && bj < b_len) {
    ++comparisons;
    const Key a = a_at(ai);
    const Key b = b_at(bj);
    if (b < a) {
      dst[k++] = b;
      ++bj;
    } else {
      dst[k++] = a;
      ++ai;
    }
  }
  while (ai < a_len) dst[k++] = a_at(ai++);
  while (bj < b_len) dst[k++] = b_at(bj++);
  std::swap(data, scratch);
}

bool is_ascending(std::span<const Key> data) {
  for (std::size_t i = 1; i < data.size(); ++i)
    if (data[i] < data[i - 1]) return false;
  return true;
}

bool is_globally_ascending(std::span<const std::vector<Key>> blocks) {
  const Key* last = nullptr;
  for (const auto& block : blocks) {
    for (const Key& key : block) {
      if (last != nullptr && key < *last) return false;
      last = &key;
    }
  }
  return true;
}

}  // namespace ftsort::sort
