// Key distribution, gathering, and workload generation.
//
// The host scatters M unsorted keys over the live processors in equal
// blocks, padding the tail with dummy (+∞) keys exactly as the paper does;
// gathering concatenates blocks in logical order and strips the dummies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {

using sim::Key;

/// Equal blocks of size ceil(M / live_count), dummy-padded.
struct Distribution {
  std::size_t block_size = 0;
  std::vector<std::vector<Key>> blocks;  ///< one per live slot, in order
};

Distribution distribute_evenly(std::span<const Key> keys,
                               std::uint32_t live_count);

/// Concatenate blocks in order and drop dummy keys. The result of a correct
/// sort is ascending with all dummies trailing, so stripping preserves
/// order.
std::vector<Key> gather_and_strip(
    std::span<const std::vector<Key>> blocks);

// ---- Workload generators (all deterministic given the Rng) ----

/// Uniform random 48-bit keys (kept well below the dummy sentinel).
std::vector<Key> gen_uniform(std::size_t count, util::Rng& rng);
/// Already ascending input.
std::vector<Key> gen_sorted(std::size_t count);
/// Strictly descending input (adversarial for many sorts, not for bitonic).
std::vector<Key> gen_reverse(std::size_t count);
/// Keys drawn from only `distinct` values — stresses tie handling.
std::vector<Key> gen_few_distinct(std::size_t count, std::size_t distinct,
                                  util::Rng& rng);
/// Ascending then descending ("organ pipe") — classic merge stress shape.
std::vector<Key> gen_organ_pipe(std::size_t count);
/// Sorted input with `swaps` random transpositions.
std::vector<Key> gen_nearly_sorted(std::size_t count, std::size_t swaps,
                                   util::Rng& rng);

}  // namespace ftsort::sort
