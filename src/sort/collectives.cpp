#include "sort/collectives.hpp"

#include <algorithm>
#include <bit>
#include <span>

namespace ftsort::sort {

namespace {

/// Relative rank: collectives operate on r = me XOR root so the root is
/// always relative 0; physical targets are mapped back through the cube.
cube::NodeId physical_of(const LogicalCube& lc, cube::NodeId relative,
                         cube::NodeId root) {
  return lc.phys[relative ^ root];
}

void check_args(const LogicalCube& lc, cube::NodeId me, cube::NodeId root) {
  FTSORT_REQUIRE(!lc.dead0);
  FTSORT_REQUIRE(cube::valid_node(me, lc.s));
  FTSORT_REQUIRE(cube::valid_node(root, lc.s));
}

}  // namespace

std::uint32_t collective_tag_span(cube::Dim s) {
  return static_cast<std::uint32_t>(s);
}

sim::Task<std::vector<Key>> broadcast(sim::NodeCtx& ctx,
                                      const LogicalCube& lc,
                                      cube::NodeId me, cube::NodeId root,
                                      std::vector<Key> data, sim::Tag tag) {
  check_args(lc, me, root);
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::Collective);
  const cube::NodeId r = me ^ root;
  // Round k: ranks below 2^k forward to their k-th-dimension partner.
  for (cube::Dim k = 0; k < lc.s; ++k, ++tag) {
    const cube::NodeId bit_k = cube::NodeId{1} << k;
    if (r < bit_k) {
      ctx.send(physical_of(lc, r | bit_k, root), tag, data);
    } else if (r < (bit_k << 1)) {
      sim::Message msg =
          co_await ctx.recv(physical_of(lc, r ^ bit_k, root), tag);
      msg.payload.release_into(data);
    }
  }
  co_return data;
}

sim::Task<std::vector<Key>> scatter(sim::NodeCtx& ctx,
                                    const LogicalCube& lc, cube::NodeId me,
                                    cube::NodeId root,
                                    std::vector<std::vector<Key>> blocks,
                                    sim::Tag tag) {
  check_args(lc, me, root);
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::Collective);
  const cube::NodeId r = me ^ root;
  // Buffer holds the blocks destined for relative ranks
  // [r, r + buffer.size()); at the root that is everything.
  std::vector<std::vector<Key>> buffer;
  if (r == 0) {
    FTSORT_REQUIRE(blocks.size() == lc.size());
    // Re-order root blocks from logical to relative rank order.
    buffer.resize(lc.size());
    for (cube::NodeId rel = 0; rel < lc.size(); ++rel)
      buffer[rel] = std::move(blocks[rel ^ root]);
  }
  // Top-down: at round k the holders (relative ranks that are multiples of
  // 2^(k+1)) split off the upper 2^k blocks of their range to r + 2^k.
  // `wire` is ExchangeScratch-style staging reused across rounds: the
  // span-send checks the on-wire buffer out of the pool, so the largest
  // (first) round's staging capacity serves every smaller later round.
  std::vector<Key> wire;
  for (cube::Dim k = lc.s - 1; k >= 0; --k, ++tag) {
    const cube::NodeId bit_k = cube::NodeId{1} << k;
    const bool holder = (r & ((bit_k << 1) - 1)) == 0 && !buffer.empty();
    if (holder) {
      // Send blocks [bit_k, 2*bit_k) of my range to partner r | bit_k.
      wire.clear();
      for (cube::NodeId idx = bit_k; idx < (bit_k << 1); ++idx)
        wire.insert(wire.end(), buffer[idx].begin(), buffer[idx].end());
      ctx.send(physical_of(lc, r | bit_k, root), tag,
               std::span<const Key>(wire));
      buffer.resize(bit_k);
    } else if ((r & bit_k) != 0 && (r & (bit_k - 1)) == 0) {
      // I am the receiver of this round: r in [bit_k, 2*bit_k).
      sim::Message msg =
          co_await ctx.recv(physical_of(lc, r ^ bit_k, root), tag);
      const std::size_t count = bit_k;
      FTSORT_REQUIRE(msg.payload.size() % count == 0);
      const std::size_t block_len = msg.payload.size() / count;
      buffer.resize(count);
      if (count == 1) {
        // Leaf of the split tree (half the cube lands here): the payload
        // IS my block — steal it and recycle my old storage via the pool.
        msg.payload.release_into(buffer[0]);
      } else {
        for (std::size_t i = 0; i < count; ++i)
          buffer[i].assign(
              msg.payload.begin() +
                  static_cast<std::ptrdiff_t>(i * block_len),
              msg.payload.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * block_len));
      }
    }
  }
  FTSORT_ENSURE(buffer.size() == 1);
  co_return std::move(buffer.front());
}

sim::Task<std::vector<Key>> gather(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me, cube::NodeId root,
                                   std::vector<Key> mine, sim::Tag tag) {
  check_args(lc, me, root);
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::Collective);
  const cube::NodeId r = me ^ root;
  const std::size_t block_len = mine.size();
  // Bottom-up: after round k, ranks with low k+1 bits zero hold the
  // concatenation of relative ranks [r, r + 2^(k+1)).
  std::vector<Key> buffer = std::move(mine);
  // I accumulate for countr_zero(r) rounds before handing off (the root
  // for all s); reserving the final size keeps the inserts below from
  // reallocating the growing concatenation every round.
  const int rounds = r == 0 ? static_cast<int>(lc.s)
                            : std::countr_zero(static_cast<unsigned>(r));
  buffer.reserve(block_len << rounds);
  for (cube::Dim k = 0; k < lc.s; ++k, ++tag) {
    const cube::NodeId bit_k = cube::NodeId{1} << k;
    if ((r & (bit_k - 1)) != 0) break;  // already handed off
    if ((r & bit_k) != 0) {
      ctx.send(physical_of(lc, r ^ bit_k, root), tag, std::move(buffer));
      buffer.clear();
      break;
    }
    sim::Message msg =
        co_await ctx.recv(physical_of(lc, r | bit_k, root), tag);
    buffer.insert(buffer.end(), msg.payload.begin(), msg.payload.end());
  }
  if (r != 0) co_return std::vector<Key>{};
  // Root holds relative rank order == logical order rotated by XOR root;
  // restore logical order.
  FTSORT_ENSURE(buffer.size() == block_len * lc.size());
  std::vector<Key> out(buffer.size());
  for (cube::NodeId rel = 0; rel < lc.size(); ++rel) {
    const cube::NodeId logical = rel ^ root;
    std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(rel * block_len),
              buffer.begin() +
                  static_cast<std::ptrdiff_t>((rel + 1) * block_len),
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(logical) *
                                block_len));
  }
  co_return out;
}

sim::Task<std::vector<Key>> all_gather(sim::NodeCtx& ctx,
                                       const LogicalCube& lc,
                                       cube::NodeId me,
                                       std::vector<Key> mine,
                                       sim::Tag tag) {
  check_args(lc, me, 0);
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::Collective);
  const std::size_t block_len = mine.size();
  // Recursive doubling: after round k I hold the blocks of the 2^(k+1)
  // ranks sharing my high bits, in rank order within that group.
  std::vector<Key> buffer = std::move(mine);
  for (cube::Dim k = 0; k < lc.s; ++k, ++tag) {
    const cube::NodeId partner = cube::neighbor(me, k);
    ctx.send(lc.phys[partner], tag, buffer);
    sim::Message msg = co_await ctx.recv(lc.phys[partner], tag);
    if (cube::bit(me, k) == 0) {
      buffer.insert(buffer.end(), msg.payload.begin(), msg.payload.end());
    } else {
      // Partner's block precedes mine: append my keys to the payload
      // storage and steal it, recycling my old buffer through the pool.
      std::vector<Key>& p = msg.payload.vec();
      p.insert(p.end(), buffer.begin(), buffer.end());
      msg.payload.release_into(buffer);
    }
  }
  FTSORT_ENSURE(buffer.size() == block_len * lc.size());
  co_return buffer;
}

sim::Task<std::vector<Key>> reduce(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me, cube::NodeId root,
                                   std::vector<Key> mine, ReduceOp op,
                                   sim::Tag tag) {
  check_args(lc, me, root);
  const sim::PhaseSpan span =
      ctx.span_if_unattributed(sim::Phase::Collective);
  const cube::NodeId r = me ^ root;
  const auto combine = [op](Key a, Key b) {
    switch (op) {
      case ReduceOp::Sum: return static_cast<Key>(a + b);
      case ReduceOp::Min: return std::min(a, b);
      case ReduceOp::Max: return std::max(a, b);
    }
    return a;
  };
  std::vector<Key> buffer = std::move(mine);
  std::uint64_t combines = 0;
  for (cube::Dim k = 0; k < lc.s; ++k, ++tag) {
    const cube::NodeId bit_k = cube::NodeId{1} << k;
    if ((r & (bit_k - 1)) != 0) break;
    if ((r & bit_k) != 0) {
      ctx.send(physical_of(lc, r ^ bit_k, root), tag, std::move(buffer));
      buffer.clear();
      break;
    }
    sim::Message msg =
        co_await ctx.recv(physical_of(lc, r | bit_k, root), tag);
    FTSORT_REQUIRE(msg.payload.size() == buffer.size());
    for (std::size_t i = 0; i < buffer.size(); ++i)
      buffer[i] = combine(buffer[i], msg.payload[i]);
    combines += buffer.size();
  }
  ctx.charge_compares(combines);
  if (r != 0) co_return std::vector<Key>{};
  co_return buffer;
}

}  // namespace ftsort::sort
