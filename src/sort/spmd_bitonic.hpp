// SPMD block bitonic sort over a logical (sub)cube of the simulated machine.
//
// A `LogicalCube` maps logical addresses 0 .. 2^s-1 onto physical machine
// nodes; logical address 0 may be *dead* (a faulty or dangling processor
// holding no keys — §2.1's re-indexed fault). Every live node calls
// `block_bitonic_sort` with its own sorted block; on return the blocks,
// concatenated in logical-address order, are globally ascending (or
// descending by blocks when `ascending == false`, with each block still
// stored ascending internally).
//
// The comparison-exchange at each (stage, substep) is a merge-split carried
// out by either the full-exchange or the paper's half-exchange protocol
// (see merge_split.hpp). A live node whose partner is dead performs no
// exchange — the rule that makes the sort single-fault tolerant.
#pragma once

#include <vector>

#include "hypercube/address.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "sort/merge_split.hpp"

namespace ftsort::sort {

/// A 2^s-node logical cube embedded in the machine.
struct LogicalCube {
  cube::Dim s = 0;                  ///< logical dimension
  std::vector<cube::NodeId> phys;   ///< logical address -> machine address
  bool dead0 = false;               ///< logical 0 holds no keys

  std::uint32_t size() const { return cube::num_nodes(s); }
  /// Number of key-holding processors.
  std::uint32_t live_count() const { return size() - (dead0 ? 1u : 0u); }
  bool is_dead(cube::NodeId logical) const { return dead0 && logical == 0; }

  /// Identity cube: logical address == physical address, no dead node.
  static LogicalCube identity(cube::Dim s);
};

/// Number of distinct tags block_bitonic_sort consumes from `tag_base`
/// (two per compare-exchange step).
std::uint32_t bitonic_tag_span(cube::Dim s);

/// Reusable per-node working storage for the comparison-exchanges. One
/// instance lives for a whole sort; after the first few exchanges every
/// buffer has reached its steady-state capacity and the O(M) merge path
/// performs no heap allocation at all.
struct ExchangeScratch {
  std::vector<Key> merged;    ///< merge destination, swapped into the block
  std::vector<Key> kept;      ///< pairwise winners (half exchange)
  std::vector<Key> returned;  ///< pairwise losers sent back (half exchange)
  std::vector<Key> unimodal;  ///< sort_unimodal merge scratch
};

/// One comparison-exchange with `partner_phys`, in place: after completion
/// `block` holds the lower (or upper) half of the union of the two blocks,
/// ascending. Both sides must call it with complementary `keep` and the
/// same `tag` (tag and tag+1 are used). All temporary storage comes from
/// `scratch`.
sim::Task<void> exchange_merge_split_into(
    sim::NodeCtx& ctx, cube::NodeId partner_phys, sim::Tag tag,
    std::vector<Key>& block, ExchangeScratch& scratch, SplitHalf keep,
    ExchangeProtocol protocol);

/// Value-returning convenience form (tests, baselines, walkthroughs): same
/// exchange with a private scratch.
sim::Task<std::vector<Key>> exchange_merge_split(
    sim::NodeCtx& ctx, cube::NodeId partner_phys, sim::Tag tag,
    std::vector<Key> block, SplitHalf keep, ExchangeProtocol protocol);

/// The SPMD sort. `me_logical` is the caller's logical address (must be
/// live); `block` is its sorted ascending block and is replaced by the
/// node's slice of the result. All live blocks must have equal size.
/// `scratch` (optional) lets the caller reuse exchange storage across
/// multiple sorts/merges; when null a sort-local scratch is used.
sim::Task<void> block_bitonic_sort(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me_logical,
                                   std::vector<Key>& block, bool ascending,
                                   ExchangeProtocol protocol,
                                   sim::Tag tag_base,
                                   ExchangeScratch* scratch = nullptr);

/// Number of distinct tags block_bitonic_merge consumes (two per substep
/// plus one for the reversal swap).
std::uint32_t bitonic_merge_tag_span(cube::Dim s);

/// SPMD block bitonic *merge*: sorts a block sequence that is already
/// blockwise bitonic — the state of a subcube right after a Step 7
/// inter-subcube split — in s substeps instead of the full sort's
/// s(s+1)/2. This optimisation is what makes the paper's Figure 7
/// crossovers reproducible (its cost formula's s(s+3)/2 re-sort term would
/// lose to the baseline).
///
/// `content_side` is the SplitHalf the caller kept in the preceding
/// exchange. With a dead logical 0 the skip rule is only sound when the
/// merge direction matches the content side (the hole virtually holds -inf
/// after a Lower split and +inf after an Upper split); for the opposite
/// direction the merge runs in the compatible direction and finishes with
/// the block reversal swap w <-> (2^s - w), a permutation among live
/// addresses only.
sim::Task<void> block_bitonic_merge(sim::NodeCtx& ctx,
                                    const LogicalCube& lc,
                                    cube::NodeId me_logical,
                                    std::vector<Key>& block, bool ascending,
                                    SplitHalf content_side,
                                    ExchangeProtocol protocol,
                                    sim::Tag tag_base,
                                    ExchangeScratch* scratch = nullptr);

}  // namespace ftsort::sort
