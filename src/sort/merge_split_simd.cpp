// Vectorized merge-split / pairwise-select kernels (KernelBackend::Simd).
//
// This is the only translation unit compiled with vector ISA flags
// (-mavx2; see src/sort/CMakeLists.txt) — nothing here may run unless
// simd_kernels_available() said yes, which merge_split.cpp's dispatch
// guarantees.
//
// The merge kernel is an Inoue-style block merge: keep two sorted
// 4-vectors in registers, run a bitonic merge network over them (3 levels
// of min/max + lane shuffles), emit the low four, carry the high four, and
// refill from whichever input's next head is smaller. Correctness of the
// refill rule needs both inputs sorted: every carried key from the refill
// side is ≤ its head, and every carried key from the other side is ≤ that
// side's still-unloaded head, so the emitted low four can never overtake an
// unloaded key. The tail (fewer than four keys left anywhere) finishes with
// a three-way scalar merge over {carry, rest of mine, rest of theirs}.
//
// Byte-identity with the scalar oracle needs no tie-breaking care: keys are
// plain values, so "the `want` smallest keys of the union, ascending" is a
// unique byte string no matter which side equal keys came from. Comparison
// counts ARE tie-sensitive, but they are a pure function of the inputs:
// the scalar loop counts one comparison per output until the first input
// run exhausts, and the exhaustion point is a rank — computable with one
// binary search (see exhaust-rank helpers below), not by replaying the
// loop. tests/test_merge_split.cpp pins both properties exhaustively.
#include <algorithm>
#include <cstring>

#include "sort/merge_split_kernels.hpp"
#include "util/contracts.hpp"

namespace ftsort::sort::detail {

namespace {

typedef Key v4k __attribute__((vector_size(32)));

inline v4k vmin4(v4k a, v4k b) { return a < b ? a : b; }
inline v4k vmax4(v4k a, v4k b) { return a > b ? a : b; }

/// Bitonic merge of two ascending 4-vectors: on return `va` holds the four
/// smallest of the eight keys and `vb` the four largest, both ascending.
inline void bitonic_merge8(v4k& va, v4k& vb) {
  const v4k rb = __builtin_shufflevector(vb, vb, 3, 2, 1, 0);
  v4k l = vmin4(va, rb);
  v4k h = vmax4(va, rb);
  v4k t = __builtin_shufflevector(l, l, 2, 3, 0, 1);
  v4k mn = vmin4(l, t);
  v4k mx = vmax4(l, t);
  l = __builtin_shufflevector(mn, mx, 0, 1, 6, 7);
  t = __builtin_shufflevector(l, l, 1, 0, 3, 2);
  mn = vmin4(l, t);
  mx = vmax4(l, t);
  l = __builtin_shufflevector(mn, mx, 0, 5, 2, 7);
  t = __builtin_shufflevector(h, h, 2, 3, 0, 1);
  mn = vmin4(h, t);
  mx = vmax4(h, t);
  h = __builtin_shufflevector(mn, mx, 0, 1, 6, 7);
  t = __builtin_shufflevector(h, h, 1, 0, 3, 2);
  mn = vmin4(h, t);
  mx = vmax4(h, t);
  h = __builtin_shufflevector(mn, mx, 0, 5, 2, 7);
  va = l;
  vb = h;
}

/// Comparisons the scalar Lower loop performs: one per output until the
/// first run exhausts. `theirs` exhausts at output rank (#mine ≤
/// theirs.back()) + |theirs| (ties consume mine first); `mine` at rank
/// |mine| + (#theirs < mine.back()).
std::uint64_t lower_comparisons(std::span<const Key> mine,
                                std::span<const Key> theirs,
                                std::size_t want) {
  if (mine.empty() || theirs.empty()) return 0;
  const std::size_t tb =
      static_cast<std::size_t>(
          std::upper_bound(mine.begin(), mine.end(), theirs.back()) -
          mine.begin()) +
      theirs.size();
  const std::size_t ta =
      mine.size() + static_cast<std::size_t>(std::lower_bound(
                        theirs.begin(), theirs.end(), mine.back()) -
                    theirs.begin());
  return std::min({want, ta, tb});
}

/// Mirror of lower_comparisons for the backward (Upper) loop, which
/// consumes from the top and takes mine on ties.
std::uint64_t upper_comparisons(std::span<const Key> mine,
                                std::span<const Key> theirs,
                                std::size_t want) {
  if (mine.empty() || theirs.empty()) return 0;
  const std::size_t tb =
      (mine.size() - static_cast<std::size_t>(std::lower_bound(
                         mine.begin(), mine.end(), theirs.front()) -
                     mine.begin())) +
      theirs.size();
  const std::size_t ta =
      mine.size() + (theirs.size() -
                     static_cast<std::size_t>(std::upper_bound(
                         theirs.begin(), theirs.end(), mine.front()) -
                     theirs.begin()));
  return std::min({want, ta, tb});
}

void merge_lower(const Key* a, std::size_t na, const Key* b, std::size_t nb,
                 Key* dst, std::size_t want) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  Key carry[8];
  std::size_t nc = 0;
  if (na >= 4 && nb >= 4 && want >= 4) {
    v4k va;
    v4k vb;
    std::memcpy(&va, a, 32);
    i = 4;
    std::memcpy(&vb, b, 32);
    j = 4;
    for (;;) {
      bitonic_merge8(va, vb);
      if (k + 4 > want) {
        std::memcpy(carry, &va, 32);
        std::memcpy(carry + 4, &vb, 32);
        nc = 8;
        break;
      }
      std::memcpy(dst + k, &va, 32);
      k += 4;
      const bool take_a = (j >= nb) || (i < na && a[i] <= b[j]);
      if (take_a) {
        if (i + 4 > na) {
          std::memcpy(carry, &vb, 32);
          nc = 4;
          break;
        }
        std::memcpy(&va, a + i, 32);
        i += 4;
      } else {
        if (j + 4 > nb) {
          std::memcpy(carry, &vb, 32);
          nc = 4;
          break;
        }
        std::memcpy(&va, b + j, 32);
        j += 4;
      }
    }
  }
  // Three-way finish: carry is sorted but not ordered against the unloaded
  // rests, so pick the minimum of the three heads each step.
  std::size_t c = 0;
  while (k < want) {
    Key best = 0;
    int src = -1;
    if (c < nc) {
      best = carry[c];
      src = 0;
    }
    if (i < na && (src < 0 || a[i] < best)) {
      best = a[i];
      src = 1;
    }
    if (j < nb && (src < 0 || b[j] < best)) {
      best = b[j];
      src = 2;
    }
    FTSORT_INVARIANT(src >= 0);
    if (src == 0)
      ++c;
    else if (src == 1)
      ++i;
    else
      ++j;
    dst[k++] = best;
  }
}

void merge_upper(const Key* a, std::size_t na, const Key* b, std::size_t nb,
                 Key* dst, std::size_t want) {
  std::size_t i = na;
  std::size_t j = nb;
  std::size_t k = want;
  Key carry[8];
  std::size_t nc = 0;
  if (na >= 4 && nb >= 4 && want >= 4) {
    v4k va;
    v4k vb;
    std::memcpy(&va, a + na - 4, 32);
    i = na - 4;
    std::memcpy(&vb, b + nb - 4, 32);
    j = nb - 4;
    for (;;) {
      bitonic_merge8(va, vb);
      if (k < 4) {
        std::memcpy(carry, &va, 32);
        std::memcpy(carry + 4, &vb, 32);
        nc = 8;
        break;
      }
      std::memcpy(dst + k - 4, &vb, 32);
      k -= 4;
      const bool take_a = (j == 0) || (i > 0 && a[i - 1] >= b[j - 1]);
      if (take_a) {
        if (i < 4) {
          std::memcpy(carry, &va, 32);
          nc = 4;
          break;
        }
        std::memcpy(&vb, a + i - 4, 32);
        i -= 4;
      } else {
        if (j < 4) {
          std::memcpy(carry, &va, 32);
          nc = 4;
          break;
        }
        std::memcpy(&vb, b + j - 4, 32);
        j -= 4;
      }
    }
  }
  std::size_t c = nc;  // carry ascending; consume from its top
  while (k > 0) {
    Key best = 0;
    int src = -1;
    if (c > 0) {
      best = carry[c - 1];
      src = 0;
    }
    if (i > 0 && (src < 0 || a[i - 1] > best)) {
      best = a[i - 1];
      src = 1;
    }
    if (j > 0 && (src < 0 || b[j - 1] > best)) {
      best = b[j - 1];
      src = 2;
    }
    FTSORT_INVARIANT(src >= 0);
    if (src == 0)
      --c;
    else if (src == 1)
      --i;
    else
      --j;
    dst[--k] = best;
  }
}

inline v4k reverse4(v4k x) { return __builtin_shufflevector(x, x, 3, 2, 1, 0); }

}  // namespace

void merge_split_into_simd(std::span<const Key> mine,
                           std::span<const Key> theirs, SplitHalf keep,
                           std::vector<Key>& out,
                           std::uint64_t& comparisons) {
  const std::size_t want = mine.size();
  out.resize(want);
  if (want == 0) return;
  if (keep == SplitHalf::Lower) {
    merge_lower(mine.data(), mine.size(), theirs.data(), theirs.size(),
                out.data(), want);
    comparisons += lower_comparisons(mine, theirs, want);
  } else {
    merge_upper(mine.data(), mine.size(), theirs.data(), theirs.size(),
                out.data(), want);
    comparisons += upper_comparisons(mine, theirs, want);
  }
}

void pairwise_select_into_simd(std::span<const Key> a, std::span<const Key> b,
                               SplitHalf keep, std::vector<Key>& kept,
                               std::vector<Key>& returned,
                               std::uint64_t& comparisons) {
  FTSORT_REQUIRE(a.size() == b.size());
  const std::size_t n = a.size();
  kept.resize(n);
  returned.resize(n);
  comparisons += n;
  Key* const kp = kept.data();
  Key* const rp = returned.data();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    v4k va;
    v4k vb;
    std::memcpy(&va, a.data() + t, 32);
    std::memcpy(&vb, b.data() + t, 32);
    const v4k lo = vmin4(va, vb);
    const v4k hi = vmax4(va, vb);
    std::memcpy(kp + t, keep == SplitHalf::Lower ? &lo : &hi, 32);
    std::memcpy(rp + t, keep == SplitHalf::Lower ? &hi : &lo, 32);
  }
  for (; t < n; ++t) {
    const Key lo = std::min(a[t], b[t]);
    const Key hi = std::max(a[t], b[t]);
    kp[t] = keep == SplitHalf::Lower ? lo : hi;
    rp[t] = keep == SplitHalf::Lower ? hi : lo;
  }
}

void pairwise_select_rev_into_simd(std::span<const Key> a,
                                   std::span<const Key> b, SplitHalf keep,
                                   std::vector<Key>& kept,
                                   std::vector<Key>& returned,
                                   std::uint64_t& comparisons) {
  FTSORT_REQUIRE(a.size() == b.size());
  const std::size_t n = a.size();
  kept.resize(n);
  returned.resize(n);
  comparisons += n;
  Key* const kp = kept.data();
  Key* const rp = returned.data();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    v4k va;
    v4k vb;
    std::memcpy(&va, a.data() + t, 32);
    std::memcpy(&vb, b.data() + (n - t - 4), 32);
    vb = reverse4(vb);  // pairs a[t+l] with b[n-1-(t+l)]
    const v4k lo = vmin4(va, vb);
    const v4k hi = vmax4(va, vb);
    std::memcpy(kp + t, keep == SplitHalf::Lower ? &lo : &hi, 32);
    std::memcpy(rp + t, keep == SplitHalf::Lower ? &hi : &lo, 32);
  }
  for (; t < n; ++t) {
    const Key bt = b[n - 1 - t];
    const Key lo = std::min(a[t], bt);
    const Key hi = std::max(a[t], bt);
    kp[t] = keep == SplitHalf::Lower ? lo : hi;
    rp[t] = keep == SplitHalf::Lower ? hi : lo;
  }
}

}  // namespace ftsort::sort::detail
