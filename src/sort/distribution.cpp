#include "sort/distribution.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ftsort::sort {

Distribution distribute_evenly(std::span<const Key> keys,
                               std::uint32_t live_count) {
  FTSORT_REQUIRE(live_count > 0);
  Distribution dist;
  dist.block_size =
      (keys.size() + live_count - 1) / live_count;  // ceil; 0 when no keys
  dist.blocks.resize(live_count);
  std::size_t offset = 0;
  for (auto& block : dist.blocks) {
    const std::size_t take = std::min(dist.block_size, keys.size() - offset);
    block.assign(keys.begin() + static_cast<std::ptrdiff_t>(offset),
                 keys.begin() + static_cast<std::ptrdiff_t>(offset + take));
    block.resize(dist.block_size, sim::kDummyKey);
    offset += take;
  }
  FTSORT_ENSURE(offset == keys.size());
  return dist;
}

std::vector<Key> gather_and_strip(
    std::span<const std::vector<Key>> blocks) {
  std::vector<Key> out;
  for (const auto& block : blocks)
    for (Key key : block)
      if (key != sim::kDummyKey) out.push_back(key);
  return out;
}

std::vector<Key> gen_uniform(std::size_t count, util::Rng& rng) {
  std::vector<Key> keys(count);
  for (auto& key : keys)
    key = static_cast<Key>(rng.below(std::uint64_t{1} << 48));
  return keys;
}

std::vector<Key> gen_sorted(std::size_t count) {
  std::vector<Key> keys(count);
  for (std::size_t i = 0; i < count; ++i) keys[i] = static_cast<Key>(i);
  return keys;
}

std::vector<Key> gen_reverse(std::size_t count) {
  std::vector<Key> keys(count);
  for (std::size_t i = 0; i < count; ++i)
    keys[i] = static_cast<Key>(count - i);
  return keys;
}

std::vector<Key> gen_few_distinct(std::size_t count, std::size_t distinct,
                                  util::Rng& rng) {
  FTSORT_REQUIRE(distinct > 0);
  std::vector<Key> keys(count);
  for (auto& key : keys)
    key = static_cast<Key>(rng.below(distinct) * 1000);
  return keys;
}

std::vector<Key> gen_organ_pipe(std::size_t count) {
  std::vector<Key> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t up = i < (count + 1) / 2 ? i : count - 1 - i;
    keys[i] = static_cast<Key>(up);
  }
  return keys;
}

std::vector<Key> gen_nearly_sorted(std::size_t count, std::size_t swaps,
                                   util::Rng& rng) {
  std::vector<Key> keys = gen_sorted(count);
  for (std::size_t t = 0; t < swaps && count >= 2; ++t) {
    const auto i = static_cast<std::size_t>(rng.below(count));
    const auto j = static_cast<std::size_t>(rng.below(count));
    std::swap(keys[i], keys[j]);
  }
  return keys;
}

}  // namespace ftsort::sort
