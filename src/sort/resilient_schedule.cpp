#include "sort/resilient_schedule.hpp"

namespace ftsort::sort {

std::uint32_t bitonic_sort_steps(cube::Dim s) {
  return static_cast<std::uint32_t>(s) *
         (static_cast<std::uint32_t>(s) + 1) / 2;
}

void append_bitonic_sort_schedule(const LogicalCube& lc, cube::NodeId lw,
                                  bool ascending, std::uint32_t& step,
                                  std::vector<ScheduleStep>& out) {
  // Mirrors block_bitonic_sort: stage i compares along dimensions i..0; the
  // direction bit within stage i is bit i+1 of the logical address (0 in
  // the final stage); a descending sort mirrors the whole network; a dead
  // logical-0 partner means no exchange at that substep.
  for (cube::Dim i = 0; i < lc.s; ++i) {
    for (cube::Dim j = i; j >= 0; --j, ++step) {
      const cube::NodeId partner = cube::neighbor(lw, j);
      if (lc.is_dead(partner)) continue;
      const int stage_bit = (i + 1 == lc.s) ? 0 : cube::bit(lw, i + 1);
      const int dir_bit = ascending ? stage_bit : 1 - stage_bit;
      const SplitHalf keep = (cube::bit(lw, j) == dir_bit)
                                 ? SplitHalf::Lower
                                 : SplitHalf::Upper;
      out.push_back({step, lc.phys[partner], keep});
    }
  }
}

}  // namespace ftsort::sort
