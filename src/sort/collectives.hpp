// SPMD collective operations on a logical hypercube — the standard
// binomial-tree / recursive-doubling algorithms every hypercube
// multicomputer of the era shipped (and the substrate for modelling the
// NCUBE host's scatter/gather of Step 2).
//
// All collectives run over a fault-free LogicalCube (re-mapped subcubes are
// fine; a dead logical 0 is not supported — route host I/O through a live
// entry node instead) and complete in s rounds. Every rank must call the
// collective with the same root and tag.
#pragma once

#include <vector>

#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "sort/spmd_bitonic.hpp"

namespace ftsort::sort {

/// Tags consumed by one collective call (one per round).
std::uint32_t collective_tag_span(cube::Dim s);

/// Binomial-tree broadcast: after completion every rank returns a copy of
/// the root's `data` (non-roots pass an empty vector).
sim::Task<std::vector<Key>> broadcast(sim::NodeCtx& ctx,
                                      const LogicalCube& lc,
                                      cube::NodeId me, cube::NodeId root,
                                      std::vector<Key> data, sim::Tag tag);

/// Scatter equal-size blocks: the root passes 2^s blocks (in logical rank
/// order, all the same size); every rank returns its own block.
sim::Task<std::vector<Key>> scatter(sim::NodeCtx& ctx,
                                    const LogicalCube& lc, cube::NodeId me,
                                    cube::NodeId root,
                                    std::vector<std::vector<Key>> blocks,
                                    sim::Tag tag);

/// Gather equal-size blocks to the root: returns, at the root, the 2^s
/// blocks concatenated in logical rank order; empty elsewhere.
sim::Task<std::vector<Key>> gather(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me, cube::NodeId root,
                                   std::vector<Key> mine, sim::Tag tag);

/// Recursive-doubling all-gather: every rank returns the concatenation of
/// all ranks' blocks in logical rank order (blocks must be equal size).
sim::Task<std::vector<Key>> all_gather(sim::NodeCtx& ctx,
                                       const LogicalCube& lc,
                                       cube::NodeId me,
                                       std::vector<Key> mine, sim::Tag tag);

enum class ReduceOp { Sum, Min, Max };

/// Binomial-tree reduction to the root: element-wise op over equal-length
/// vectors; returns the reduced vector at the root, empty elsewhere.
sim::Task<std::vector<Key>> reduce(sim::NodeCtx& ctx, const LogicalCube& lc,
                                   cube::NodeId me, cube::NodeId root,
                                   std::vector<Key> mine, ReduceOp op,
                                   sim::Tag tag);

}  // namespace ftsort::sort
