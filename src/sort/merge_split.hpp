// Merge-split kernels: the block-level comparator of block bitonic sort.
//
// Replacing each key of a sorting network by a sorted block and each
// compare-exchange by a *merge-split* (lower block keeps the smaller half of
// the union) sorts the blocked input — Baudet & Stevenson's classical
// observation that underlies all hypercube bitonic sorts, including the
// paper's.
//
// Two wire protocols compute the same split:
//  * Full exchange — both partners swap whole blocks and each computes its
//    half locally. Simple; 2x the traffic.
//  * Half exchange (the paper's §2.1/§3 Step 7 protocol) — each partner
//    sends half its block, the pairwise winners are computed at both ends,
//    and exactly the losers travel back; per-step traffic matches the
//    ⌈M/2N'⌉ + ⌈M/2N'⌉ terms in the paper's cost formula. It relies on the
//    identity that for ascending equal-length blocks A and B, the b smallest
//    keys of A ∪ B are { min(A[k], B[b-1-k]) } and the b largest are
//    { max(A[k], B[b-1-k]) }.
//
// The messaging halves of these protocols live in spmd_bitonic.*; this
// header holds the pure computational kernels plus a reference
// `merge_split_full` used directly by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sort/sequential.hpp"

namespace ftsort::sort {

enum class SplitHalf { Lower, Upper };

/// Which wire protocol the SPMD sorts use for each comparison-exchange.
enum class ExchangeProtocol {
  FullExchange,  ///< swap whole blocks, compute locally
  HalfExchange,  ///< the paper's send-half / compare / return protocol
};

/// Reference kernel: given own ascending block `mine` and the partner's
/// ascending block `theirs`, return the `mine.size()` smallest (Lower) or
/// largest (Upper) keys of the union, ascending.
std::vector<Key> merge_split_full(std::span<const Key> mine,
                                  std::span<const Key> theirs,
                                  SplitHalf keep,
                                  std::uint64_t& comparisons);

/// Scratch-buffer variant of `merge_split_full`: merges into caller-owned
/// `out` (resized to `mine.size()`, capacity reused across calls so the
/// steady state never allocates). Byte-identical output and identical
/// comparison count to the reference kernel. `out` must not alias the
/// inputs.
void merge_split_into(std::span<const Key> mine, std::span<const Key> theirs,
                      SplitHalf keep, std::vector<Key>& out,
                      std::uint64_t& comparisons);

/// Pairwise-select kernel of the half-exchange protocol. Pairs a[t] with
/// b[t] (the caller arranges the reversed indexing) and splits winners from
/// losers: with `keep == Lower` kept[t] = min, returned[t] = max; with
/// `Upper` the reverse. `a` and `b` must have equal length.
struct PairwiseSplit {
  std::vector<Key> kept;
  std::vector<Key> returned;
};
PairwiseSplit pairwise_select(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::uint64_t& comparisons);

/// Scratch-buffer variant of `pairwise_select`: writes into caller-owned
/// `kept` / `returned` (resized, capacity reused). Outputs must not alias
/// the inputs.
void pairwise_select_into(std::span<const Key> a, std::span<const Key> b,
                          SplitHalf keep, std::vector<Key>& kept,
                          std::vector<Key>& returned,
                          std::uint64_t& comparisons);

/// As `pairwise_select_into`, but pairs a[t] with b[n-1-t] — equivalent to
/// reversing `b` first, without materialising the reversed copy. This is
/// exactly the indexing the half-exchange identity needs (ascending A vs
/// descending-read B).
void pairwise_select_rev_into(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::vector<Key>& kept,
                              std::vector<Key>& returned,
                              std::uint64_t& comparisons);

}  // namespace ftsort::sort
