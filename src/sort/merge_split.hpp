// Merge-split kernels: the block-level comparator of block bitonic sort.
//
// Replacing each key of a sorting network by a sorted block and each
// compare-exchange by a *merge-split* (lower block keeps the smaller half of
// the union) sorts the blocked input — Baudet & Stevenson's classical
// observation that underlies all hypercube bitonic sorts, including the
// paper's.
//
// Two wire protocols compute the same split:
//  * Full exchange — both partners swap whole blocks and each computes its
//    half locally. One round, one message each way, b keys per direction.
//  * Half exchange (the paper's §2.1/§3 Step 7 protocol) — each partner
//    sends half its block, the pairwise winners are computed at both ends,
//    and exactly the losers travel back; per-step traffic matches the
//    ⌈M/2N'⌉ + ⌈M/2N'⌉ terms in the paper's cost formula. It relies on the
//    identity that for ascending equal-length blocks A and B, the b smallest
//    keys of A ∪ B are { min(A[k], B[b-1-k]) } and the b largest are
//    { max(A[k], B[b-1-k]) }.
//
// Contrary to the obvious intuition (which an earlier revision of this
// header repeated), the two protocols move the SAME number of payload keys
// per direction — half + returned-losers = b either way. What half exchange
// actually buys under the paper's zero-start-up model is nothing at all in
// traffic; it costs an extra round trip and extra local work (pairwise
// select + two unimodal sorts + a merge, ≈2b comparisons vs the full
// exchange's ≤b). Under a cost model where the per-message start-up term
// dominates (cut-through), the 4-message/2-round shape is strictly worse —
// which is why CoalescePolicy::Auto rewrites it to the single-round full
// exchange there. See resolve_protocol.
//
// The messaging halves of these protocols live in spmd_bitonic.*; this
// header holds the pure computational kernels plus a reference
// `merge_split_full` used directly by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/cost_model.hpp"
#include "sort/sequential.hpp"

namespace ftsort::sort {

enum class SplitHalf { Lower, Upper };

/// Which wire protocol the SPMD sorts use for each comparison-exchange.
enum class ExchangeProtocol {
  FullExchange,  ///< swap whole blocks, compute locally
  HalfExchange,  ///< the paper's send-half / compare / return protocol
};

/// Exchange coalescing: whether the sorter may rewrite the paper's
/// two-round half exchange into the one-round full exchange (same keys per
/// direction, half the messages and rounds — see the file header).
enum class CoalescePolicy {
  Off,   ///< run the configured protocol verbatim
  Auto,  ///< coalesce exactly when the cost model routes cut-through
  On,    ///< always coalesce
};

/// The protocol a sort actually runs: `configured` filtered through the
/// coalescing policy under the active cost model. FullExchange is already
/// maximally coalesced and passes through untouched; under the default
/// (store-and-forward, Auto) configuration the result is always
/// `configured`, which is what keeps default reports byte-identical.
ExchangeProtocol resolve_protocol(ExchangeProtocol configured,
                                  CoalescePolicy policy,
                                  const sim::CostModel& cost);

/// Which compiled implementation the split/select kernels below dispatch
/// to. Scalar is the reference (the oracle tests compare against); Simd is
/// the vectorized hot path, byte-identical in output AND comparison count.
enum class KernelBackend {
  Scalar,
  Simd,
};

/// True when the vectorized kernels are compiled in (FTSORT_SIMD_KERNELS)
/// and this CPU supports them (AVX2).
bool simd_kernels_available();

/// Select the process-global kernel backend. Requests for Simd degrade to
/// Scalar when unavailable; returns the backend actually in effect.
KernelBackend set_kernel_backend(KernelBackend requested);

KernelBackend active_kernel_backend();

/// Reference kernel: given own ascending block `mine` and the partner's
/// ascending block `theirs`, return the `mine.size()` smallest (Lower) or
/// largest (Upper) keys of the union, ascending.
std::vector<Key> merge_split_full(std::span<const Key> mine,
                                  std::span<const Key> theirs,
                                  SplitHalf keep,
                                  std::uint64_t& comparisons);

/// Scratch-buffer variant of `merge_split_full`: merges into caller-owned
/// `out` (resized to `mine.size()`, capacity reused across calls so the
/// steady state never allocates). Byte-identical output and identical
/// comparison count to the reference kernel. `out` must not alias the
/// inputs.
void merge_split_into(std::span<const Key> mine, std::span<const Key> theirs,
                      SplitHalf keep, std::vector<Key>& out,
                      std::uint64_t& comparisons);

/// Pairwise-select kernel of the half-exchange protocol. Pairs a[t] with
/// b[t] (the caller arranges the reversed indexing) and splits winners from
/// losers: with `keep == Lower` kept[t] = min, returned[t] = max; with
/// `Upper` the reverse. `a` and `b` must have equal length.
struct PairwiseSplit {
  std::vector<Key> kept;
  std::vector<Key> returned;
};
PairwiseSplit pairwise_select(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::uint64_t& comparisons);

/// Scratch-buffer variant of `pairwise_select`: writes into caller-owned
/// `kept` / `returned` (resized, capacity reused). Outputs must not alias
/// the inputs.
void pairwise_select_into(std::span<const Key> a, std::span<const Key> b,
                          SplitHalf keep, std::vector<Key>& kept,
                          std::vector<Key>& returned,
                          std::uint64_t& comparisons);

/// As `pairwise_select_into`, but pairs a[t] with b[n-1-t] — equivalent to
/// reversing `b` first, without materialising the reversed copy. This is
/// exactly the indexing the half-exchange identity needs (ascending A vs
/// descending-read B).
void pairwise_select_rev_into(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::vector<Key>& kept,
                              std::vector<Key>& returned,
                              std::uint64_t& comparisons);

}  // namespace ftsort::sort
