#include "sort/merge_split.hpp"

#include <algorithm>
#include <atomic>

#include "sort/merge_split_kernels.hpp"
#include "util/contracts.hpp"

namespace ftsort::sort {

bool simd_kernels_available() {
#if FTSORT_SIMD_KERNELS && defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

// -1 = "not chosen yet": the first query resolves the compile-time default
// (FTSORT_SIMD_KERNELS_DEFAULT builds start on Simd when the CPU allows)
// without touching __builtin_cpu_supports during static initialisation.
constexpr int kBackendUnset = -1;
std::atomic<int> g_backend{kBackendUnset};

KernelBackend default_backend() {
#if FTSORT_SIMD_KERNELS_DEFAULT
  return simd_kernels_available() ? KernelBackend::Simd
                                  : KernelBackend::Scalar;
#else
  return KernelBackend::Scalar;
#endif
}

bool use_simd() {
  const int b = g_backend.load(std::memory_order_relaxed);
  if (b == kBackendUnset) return default_backend() == KernelBackend::Simd;
  return static_cast<KernelBackend>(b) == KernelBackend::Simd;
}

}  // namespace

KernelBackend set_kernel_backend(KernelBackend requested) {
  const KernelBackend effective =
      (requested == KernelBackend::Simd && simd_kernels_available())
          ? KernelBackend::Simd
          : KernelBackend::Scalar;
  g_backend.store(static_cast<int>(effective), std::memory_order_relaxed);
  return effective;
}

KernelBackend active_kernel_backend() {
  const int b = g_backend.load(std::memory_order_relaxed);
  if (b == kBackendUnset) return default_backend();
  return static_cast<KernelBackend>(b);
}

ExchangeProtocol resolve_protocol(ExchangeProtocol configured,
                                  CoalescePolicy policy,
                                  const sim::CostModel& cost) {
  if (configured == ExchangeProtocol::FullExchange) return configured;
  switch (policy) {
    case CoalescePolicy::Off:
      return configured;
    case CoalescePolicy::On:
      return ExchangeProtocol::FullExchange;
    case CoalescePolicy::Auto:
      return cost.routing == sim::RoutingMode::CutThrough
                 ? ExchangeProtocol::FullExchange
                 : configured;
  }
  FTSORT_INVARIANT(false);
  return configured;
}

namespace detail {

void merge_split_into_scalar(std::span<const Key> mine,
                             std::span<const Key> theirs, SplitHalf keep,
                             std::vector<Key>& out,
                             std::uint64_t& comparisons) {
  const std::size_t want = mine.size();
  out.resize(want);
  if (want == 0) return;
  Key* const dst = out.data();

  if (keep == SplitHalf::Lower) {
    // Forward merge until `want` keys are produced.
    std::size_t i = 0;
    std::size_t j = 0;
    for (std::size_t k = 0; k < want; ++k) {
      if (i < mine.size() && j < theirs.size()) {
        ++comparisons;
        dst[k] = theirs[j] < mine[i] ? theirs[j++] : mine[i++];
      } else if (i < mine.size()) {
        dst[k] = mine[i++];
      } else {
        FTSORT_INVARIANT(j < theirs.size());
        dst[k] = theirs[j++];
      }
    }
  } else {
    // Backward merge from the top, filling `out` back-to-front (no final
    // reverse). Comparison sequence matches the forward-filling reference.
    std::size_t i = mine.size();
    std::size_t j = theirs.size();
    for (std::size_t k = want; k-- > 0;) {
      if (i > 0 && j > 0) {
        ++comparisons;
        dst[k] = mine[i - 1] < theirs[j - 1] ? theirs[--j] : mine[--i];
      } else if (i > 0) {
        dst[k] = mine[--i];
      } else {
        FTSORT_INVARIANT(j > 0);
        dst[k] = theirs[--j];
      }
    }
  }
}

void pairwise_select_into_scalar(std::span<const Key> a,
                                 std::span<const Key> b, SplitHalf keep,
                                 std::vector<Key>& kept,
                                 std::vector<Key>& returned,
                                 std::uint64_t& comparisons) {
  FTSORT_REQUIRE(a.size() == b.size());
  const std::size_t n = a.size();
  kept.resize(n);
  returned.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    ++comparisons;
    const Key lo = std::min(a[t], b[t]);
    const Key hi = std::max(a[t], b[t]);
    if (keep == SplitHalf::Lower) {
      kept[t] = lo;
      returned[t] = hi;
    } else {
      kept[t] = hi;
      returned[t] = lo;
    }
  }
}

void pairwise_select_rev_into_scalar(std::span<const Key> a,
                                     std::span<const Key> b, SplitHalf keep,
                                     std::vector<Key>& kept,
                                     std::vector<Key>& returned,
                                     std::uint64_t& comparisons) {
  FTSORT_REQUIRE(a.size() == b.size());
  const std::size_t n = a.size();
  kept.resize(n);
  returned.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    ++comparisons;
    const Key bt = b[n - 1 - t];
    const Key lo = std::min(a[t], bt);
    const Key hi = std::max(a[t], bt);
    if (keep == SplitHalf::Lower) {
      kept[t] = lo;
      returned[t] = hi;
    } else {
      kept[t] = hi;
      returned[t] = lo;
    }
  }
}

}  // namespace detail

void merge_split_into(std::span<const Key> mine, std::span<const Key> theirs,
                      SplitHalf keep, std::vector<Key>& out,
                      std::uint64_t& comparisons) {
#if FTSORT_SIMD_KERNELS
  if (use_simd()) {
    detail::merge_split_into_simd(mine, theirs, keep, out, comparisons);
    return;
  }
#endif
  detail::merge_split_into_scalar(mine, theirs, keep, out, comparisons);
}

std::vector<Key> merge_split_full(std::span<const Key> mine,
                                  std::span<const Key> theirs,
                                  SplitHalf keep,
                                  std::uint64_t& comparisons) {
  std::vector<Key> out;
  merge_split_into(mine, theirs, keep, out, comparisons);
  return out;
}

void pairwise_select_into(std::span<const Key> a, std::span<const Key> b,
                          SplitHalf keep, std::vector<Key>& kept,
                          std::vector<Key>& returned,
                          std::uint64_t& comparisons) {
#if FTSORT_SIMD_KERNELS
  if (use_simd()) {
    detail::pairwise_select_into_simd(a, b, keep, kept, returned, comparisons);
    return;
  }
#endif
  detail::pairwise_select_into_scalar(a, b, keep, kept, returned, comparisons);
}

void pairwise_select_rev_into(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::vector<Key>& kept,
                              std::vector<Key>& returned,
                              std::uint64_t& comparisons) {
#if FTSORT_SIMD_KERNELS
  if (use_simd()) {
    detail::pairwise_select_rev_into_simd(a, b, keep, kept, returned,
                                          comparisons);
    return;
  }
#endif
  detail::pairwise_select_rev_into_scalar(a, b, keep, kept, returned,
                                          comparisons);
}

PairwiseSplit pairwise_select(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::uint64_t& comparisons) {
  PairwiseSplit split;
  pairwise_select_into(a, b, keep, split.kept, split.returned, comparisons);
  return split;
}

}  // namespace ftsort::sort
