#include "sort/merge_split.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ftsort::sort {

std::vector<Key> merge_split_full(std::span<const Key> mine,
                                  std::span<const Key> theirs,
                                  SplitHalf keep,
                                  std::uint64_t& comparisons) {
  const std::size_t want = mine.size();
  std::vector<Key> out;
  out.reserve(want);
  if (want == 0) return out;

  if (keep == SplitHalf::Lower) {
    // Forward merge until `want` keys are produced.
    std::size_t i = 0;
    std::size_t j = 0;
    while (out.size() < want) {
      if (i < mine.size() && j < theirs.size()) {
        ++comparisons;
        out.push_back(theirs[j] < mine[i] ? theirs[j++] : mine[i++]);
      } else if (i < mine.size()) {
        out.push_back(mine[i++]);
      } else {
        FTSORT_INVARIANT(j < theirs.size());
        out.push_back(theirs[j++]);
      }
    }
  } else {
    // Backward merge from the top.
    std::size_t i = mine.size();
    std::size_t j = theirs.size();
    while (out.size() < want) {
      if (i > 0 && j > 0) {
        ++comparisons;
        out.push_back(mine[i - 1] < theirs[j - 1] ? theirs[--j] : mine[--i]);
      } else if (i > 0) {
        out.push_back(mine[--i]);
      } else {
        FTSORT_INVARIANT(j > 0);
        out.push_back(theirs[--j]);
      }
    }
    std::reverse(out.begin(), out.end());
  }
  return out;
}

PairwiseSplit pairwise_select(std::span<const Key> a, std::span<const Key> b,
                              SplitHalf keep, std::uint64_t& comparisons) {
  FTSORT_REQUIRE(a.size() == b.size());
  PairwiseSplit split;
  split.kept.reserve(a.size());
  split.returned.reserve(a.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ++comparisons;
    const Key lo = std::min(a[t], b[t]);
    const Key hi = std::max(a[t], b[t]);
    if (keep == SplitHalf::Lower) {
      split.kept.push_back(lo);
      split.returned.push_back(hi);
    } else {
      split.kept.push_back(hi);
      split.returned.push_back(lo);
    }
  }
  return split;
}

}  // namespace ftsort::sort
