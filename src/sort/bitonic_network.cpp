#include "sort/bitonic_network.hpp"

#include <bit>
#include <utility>

#include "util/contracts.hpp"

namespace ftsort::sort {

std::vector<CompareExchange> bitonic_schedule(int k) {
  FTSORT_REQUIRE(k >= 0 && k <= 24);
  std::vector<CompareExchange> schedule;
  const std::size_t n = std::size_t{1} << k;
  for (int i = 0; i < k; ++i) {
    for (int j = i; j >= 0; --j) {
      const std::size_t stride = std::size_t{1} << j;
      for (std::size_t p = 0; p < n; ++p) {
        const std::size_t q = p ^ stride;
        if (q < p) continue;
        const bool ascending = ((p >> (i + 1)) & 1u) == 0;
        schedule.push_back(CompareExchange{p, q, ascending});
      }
    }
  }
  return schedule;
}

void apply_schedule(std::span<Key> data,
                    std::span<const CompareExchange> schedule,
                    std::uint64_t& comparisons) {
  for (const auto& ce : schedule) {
    FTSORT_REQUIRE(ce.hi < data.size());
    ++comparisons;
    const bool out_of_order = ce.ascending ? data[ce.hi] < data[ce.lo]
                                           : data[ce.lo] < data[ce.hi];
    if (out_of_order) std::swap(data[ce.lo], data[ce.hi]);
  }
}

void bitonic_sort_sequential(std::span<Key> data,
                             std::uint64_t& comparisons) {
  FTSORT_REQUIRE(std::has_single_bit(data.size()) || data.empty());
  if (data.size() < 2) return;
  const int k = std::countr_zero(data.size());
  const auto schedule = bitonic_schedule(k);
  apply_schedule(data, schedule, comparisons);
}

}  // namespace ftsort::sort
