// Sequential bitonic sorting network — the oracle the SPMD sorts are tested
// against, and the schedule generator documentation refers to.
//
// Batcher's bitonic sorter for 2^k keys: stages i = 0..k-1, each sweeping
// substeps j = i..0; at (i, j) key p is compare-exchanged with p ^ 2^j in
// ascending order iff bit i+1 of p is 0. The same (i, j) loop structure,
// lifted to blocks and hypercube nodes, is exactly the paper's algorithm.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sort/sequential.hpp"

namespace ftsort::sort {

struct CompareExchange {
  std::size_t lo = 0;     ///< smaller index of the pair
  std::size_t hi = 0;     ///< larger index
  bool ascending = true;  ///< min to lo / max to hi when true
};

/// The full schedule for 2^k keys, in execution order.
std::vector<CompareExchange> bitonic_schedule(int k);

/// Apply a schedule in order.
void apply_schedule(std::span<Key> data,
                    std::span<const CompareExchange> schedule,
                    std::uint64_t& comparisons);

/// Sort `data` (size must be a power of two) with the bitonic network.
void bitonic_sort_sequential(std::span<Key> data,
                             std::uint64_t& comparisons);

}  // namespace ftsort::sort
