#include "sort/single_fault.hpp"

#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "util/contracts.hpp"

namespace ftsort::sort {

SingleFaultSortResult single_fault_bitonic_sort(
    cube::Dim n, const fault::FaultSet& faults, std::span<const Key> keys,
    fault::FaultModel model, sim::CostModel cost,
    ExchangeProtocol protocol) {
  FTSORT_REQUIRE(faults.dim() == n);
  FTSORT_REQUIRE(faults.count() <= 1);

  // Logical cube: XOR re-indexing places the fault (if any) at logical 0.
  const cube::NodeId reindex_mask =
      faults.empty() ? 0 : faults.addresses().front();
  LogicalCube lc;
  lc.s = n;
  lc.dead0 = !faults.empty();
  lc.phys.resize(cube::num_nodes(n));
  for (cube::NodeId logical = 0; logical < lc.size(); ++logical)
    lc.phys[logical] = logical ^ reindex_mask;

  // Scatter: live logical addresses in increasing order get the blocks.
  Distribution dist = distribute_evenly(keys, lc.live_count());
  std::vector<std::vector<Key>> block_of(cube::num_nodes(n));
  {
    std::size_t slot = 0;
    for (cube::NodeId logical = 0; logical < lc.size(); ++logical) {
      if (lc.is_dead(logical)) continue;
      block_of[lc.phys[logical]] = std::move(dist.blocks[slot++]);
    }
  }

  sim::Machine machine(n, faults, model, cost);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const cube::NodeId logical = ctx.id() ^ reindex_mask;
    if (lc.is_dead(logical)) co_return;  // a dangling-style no-op (unused)
    std::vector<Key>& block = block_of[ctx.id()];
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::LocalSort);
      std::uint64_t comparisons = 0;
      heapsort(block, comparisons);
      ctx.charge_compares(comparisons);
    }
    co_await block_bitonic_sort(ctx, lc, logical, block, /*ascending=*/true,
                                protocol, /*tag_base=*/0);
  };

  SingleFaultSortResult result;
  result.report = machine.run(program);
  result.block_size = dist.block_size;

  std::vector<std::vector<Key>> in_logical_order;
  in_logical_order.reserve(lc.live_count());
  for (cube::NodeId logical = 0; logical < lc.size(); ++logical) {
    if (lc.is_dead(logical)) continue;
    in_logical_order.push_back(std::move(block_of[lc.phys[logical]]));
  }
  result.sorted = gather_and_strip(in_logical_order);
  return result;
}

}  // namespace ftsort::sort
