// §2.1 of the paper: bitonic sort on a hypercube with at most one faulty
// processor.
//
// The fault is re-indexed to logical address 0 by XOR-ing every address with
// the fault's address; the dead node holds no keys and its partners skip
// their comparison-exchanges. This wrapper builds the machine, scatters the
// keys, runs the SPMD sort, and gathers the verified result.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_set.hpp"
#include "sim/machine.hpp"
#include "sort/spmd_bitonic.hpp"

namespace ftsort::sort {

struct SingleFaultSortResult {
  std::vector<Key> sorted;  ///< all input keys, ascending
  sim::RunReport report;
  std::size_t block_size = 0;
};

/// Sort `keys` on Q_n with `faults.count() <= 1`.
SingleFaultSortResult single_fault_bitonic_sort(
    cube::Dim n, const fault::FaultSet& faults, std::span<const Key> keys,
    fault::FaultModel model = fault::FaultModel::Partial,
    sim::CostModel cost = sim::CostModel::ncube7(),
    ExchangeProtocol protocol = ExchangeProtocol::HalfExchange);

}  // namespace ftsort::sort
