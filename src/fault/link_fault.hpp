// Faulty links (§1 of the paper covers "failure of one or more
// processors/links").
//
// A dead wire carries nothing under either processor fault model, so the
// router always detours around it. For the *algorithm*, the classical
// reduction applies: pick a set of endpoint processors covering every
// faulty link, treat those processors as (logically) faulty in the
// partition plan, and no comparison-exchange ever needs a dead wire's two
// endpoints to talk as a pair. The cover is chosen greedily by degree —
// the minimum vertex cover of the faulty-link graph — so few healthy
// processors are sacrificed.
#pragma once

#include "fault/fault_set.hpp"
#include "hypercube/link_set.hpp"
#include "util/rng.hpp"

namespace ftsort::fault {

/// k distinct faulty links drawn uniformly from the n*2^(n-1) links.
cube::LinkSet random_link_faults(cube::Dim n, std::size_t k,
                                 util::Rng& rng);

/// Like random_link_faults but rejects sets that disconnect the healthy
/// cube (checked together with `node_faults`), so routing always succeeds.
cube::LinkSet random_link_faults_connected(cube::Dim n, std::size_t k,
                                           const FaultSet& node_faults,
                                           util::Rng& rng);

/// True iff every pair of healthy nodes can still reach each other without
/// using a dead link or a faulty intermediate node.
bool healthy_subgraph_connected(const FaultSet& node_faults,
                                const cube::LinkSet& dead_links);

/// Greedy minimum vertex cover of the faulty links (max-degree first,
/// ties toward already-faulty endpoints, then smaller address): the
/// processors to treat as logically faulty so the sorting algorithm never
/// schedules an exchange across a dead wire. Endpoints already in
/// `node_faults` cover their links for free.
std::vector<cube::NodeId> link_cover(const cube::LinkSet& dead_links,
                                     const FaultSet& node_faults);

/// node_faults ∪ link_cover: the fault set the partition algorithm plans
/// for when links are faulty too.
FaultSet effective_node_faults(const FaultSet& node_faults,
                               const cube::LinkSet& dead_links);

}  // namespace ftsort::fault
