// Fault sets: which processors of a Q_n are permanently faulty.
//
// The paper's model (§1): permanent processor faults, locations known before
// the sort runs (via off-line diagnosis), and r <= n-1 so that no healthy
// node can be walled off from the rest of the cube.
#pragma once

#include <string>
#include <vector>

#include "hypercube/address.hpp"

namespace ftsort::fault {

/// How a faulty processor interacts with the network (Hastad et al., §4 of
/// the paper): a *partial* fault kills only the computation but the node
/// still forwards messages (the VERTEX behaviour the authors simulate); a
/// *total* fault also removes the node from the network, forcing
/// fault-avoiding routes.
enum class FaultModel { Partial, Total };

std::string to_string(FaultModel m);

/// An immutable-after-construction set of faulty node addresses in Q_n.
class FaultSet {
 public:
  /// Empty (fault-free) set.
  explicit FaultSet(cube::Dim n);
  /// From explicit addresses; duplicates are rejected.
  FaultSet(cube::Dim n, std::vector<cube::NodeId> faults);

  cube::Dim dim() const { return n_; }
  std::uint32_t cube_size() const { return cube::num_nodes(n_); }
  /// Number of faulty processors, r.
  std::size_t count() const { return faults_.size(); }
  bool empty() const { return faults_.empty(); }

  bool is_faulty(cube::NodeId u) const;
  /// Sorted faulty addresses.
  const std::vector<cube::NodeId>& addresses() const { return faults_; }
  /// Per-node boolean map (index = address), as routers expect.
  const std::vector<bool>& bitmap() const { return bitmap_; }

  std::size_t healthy_count() const { return cube_size() - count(); }

  /// True when some *healthy* node has every neighbour faulty — the
  /// configuration the paper excludes (it can occur only for r >= n).
  bool isolates_healthy_node() const;

  /// Number of faulty nodes inside a (mask, value) subcube.
  std::size_t count_in(cube::NodeId mask, cube::NodeId value) const;

  /// A new set with `extra` nodes additionally faulty and the version
  /// bumped — how online recovery grows the fault knowledge. Nodes already
  /// faulty are ignored.
  FaultSet grown(const std::vector<cube::NodeId>& extra) const;
  /// How many times this set has been grown from its diagnosis-time
  /// original (0 for freshly constructed sets).
  unsigned version() const { return version_; }

  std::string to_string() const;

  friend bool operator==(const FaultSet& a, const FaultSet& b) {
    return a.n_ == b.n_ && a.faults_ == b.faults_;
  }

 private:
  cube::Dim n_;
  std::vector<cube::NodeId> faults_;  // sorted
  std::vector<bool> bitmap_;
  unsigned version_ = 0;
};

}  // namespace ftsort::fault
