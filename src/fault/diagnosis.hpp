// Off-line fault diagnosis.
//
// The paper assumes fault locations are known before sorting, citing
// distributed diagnosis work (Armstrong & Gray; Bhat). This module provides
// the fail-stop instantiation of that assumption: every healthy processor
// pings its n neighbours (a permanently faulty node never answers), then the
// local verdicts are flooded across the healthy subgraph — connected for
// r <= n-1 because Q_n is n-connected — until every healthy node holds the
// complete fault map.
//
// The functions here model the protocol as a synchronous round-based
// computation and report both the recovered fault map and the number of
// rounds/messages it took (matching what the SPMD version on the simulator
// measures; see examples/diagnosis_demo).
#pragma once

#include <cstddef>

#include "fault/fault_set.hpp"

namespace ftsort::fault {

struct DiagnosisResult {
  FaultSet identified;      ///< fault map as recovered by the protocol
  int rounds = 0;           ///< synchronous flooding rounds until quiescence
  std::size_t messages = 0; ///< total node-to-node messages (pings + floods)
  bool complete = false;    ///< every healthy node learned the full map
};

/// Run the fail-stop neighbour-test + flooding protocol against a ground
/// truth. Deterministic. For r <= n-1 the result is always complete and
/// equals the ground truth.
DiagnosisResult diagnose_fail_stop(const FaultSet& ground_truth);

}  // namespace ftsort::fault
