#include "fault/fault_set.hpp"

#include <algorithm>
#include <sstream>

namespace ftsort::fault {

std::string to_string(FaultModel m) {
  return m == FaultModel::Partial ? "partial" : "total";
}

FaultSet::FaultSet(cube::Dim n) : n_(n), bitmap_(cube::num_nodes(n), false) {
  FTSORT_REQUIRE(cube::valid_dim(n));
}

FaultSet::FaultSet(cube::Dim n, std::vector<cube::NodeId> faults)
    : n_(n), faults_(std::move(faults)),
      bitmap_(cube::num_nodes(n), false) {
  FTSORT_REQUIRE(cube::valid_dim(n));
  std::sort(faults_.begin(), faults_.end());
  FTSORT_REQUIRE(std::adjacent_find(faults_.begin(), faults_.end()) ==
                 faults_.end());
  for (cube::NodeId f : faults_) {
    FTSORT_REQUIRE(cube::valid_node(f, n_));
    bitmap_[f] = true;
  }
}

bool FaultSet::is_faulty(cube::NodeId u) const {
  FTSORT_REQUIRE(cube::valid_node(u, n_));
  return bitmap_[u];
}

bool FaultSet::isolates_healthy_node() const {
  for (cube::NodeId u = 0; u < cube_size(); ++u) {
    if (bitmap_[u]) continue;
    bool all_neighbors_faulty = n_ > 0;
    for (cube::Dim d = 0; d < n_; ++d) {
      if (!bitmap_[cube::neighbor(u, d)]) {
        all_neighbors_faulty = false;
        break;
      }
    }
    if (all_neighbors_faulty) return true;
  }
  return false;
}

FaultSet FaultSet::grown(const std::vector<cube::NodeId>& extra) const {
  std::vector<cube::NodeId> all = faults_;
  for (cube::NodeId u : extra)
    if (!is_faulty(u)) all.push_back(u);
  FaultSet next(n_, std::move(all));
  next.version_ = version_ + 1;
  return next;
}

std::size_t FaultSet::count_in(cube::NodeId mask, cube::NodeId value) const {
  std::size_t c = 0;
  for (cube::NodeId f : faults_)
    if ((f & mask) == value) ++c;
  return c;
}

std::string FaultSet::to_string() const {
  std::ostringstream os;
  os << "FaultSet(Q_" << n_ << ", {";
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (i != 0) os << ", ";
    os << faults_[i];
  }
  os << "})";
  return os.str();
}

}  // namespace ftsort::fault
