#include "fault/link_fault.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace ftsort::fault {

cube::LinkSet random_link_faults(cube::Dim n, std::size_t k,
                                 util::Rng& rng) {
  const std::uint64_t total_links =
      static_cast<std::uint64_t>(n) * (cube::num_nodes(n) / 2);
  FTSORT_REQUIRE(k <= total_links);
  // Enumerate links as (lo with bit d == 0, d): index them densely.
  std::vector<cube::Link> all;
  all.reserve(static_cast<std::size_t>(total_links));
  for (cube::NodeId u = 0; u < cube::num_nodes(n); ++u)
    for (cube::Dim d = 0; d < n; ++d)
      if (cube::bit(u, d) == 0) all.push_back(cube::Link{u, d});
  const auto picks = rng.sample_distinct(all.size(), k);
  std::vector<cube::Link> chosen;
  chosen.reserve(k);
  for (auto idx : picks) chosen.push_back(all[static_cast<std::size_t>(idx)]);
  return cube::LinkSet(n, chosen);
}

bool healthy_subgraph_connected(const FaultSet& node_faults,
                                const cube::LinkSet& dead_links) {
  const cube::Dim n = node_faults.dim();
  const cube::NodeId size = node_faults.cube_size();
  cube::NodeId start = size;
  for (cube::NodeId u = 0; u < size; ++u) {
    if (!node_faults.is_faulty(u)) {
      start = u;
      break;
    }
  }
  if (start == size) return true;  // vacuously: no healthy nodes

  std::vector<bool> seen(size, false);
  std::queue<cube::NodeId> frontier;
  seen[start] = true;
  frontier.push(start);
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const cube::NodeId u = frontier.front();
    frontier.pop();
    for (cube::Dim d = 0; d < n; ++d) {
      const cube::NodeId v = cube::neighbor(u, d);
      if (seen[v] || node_faults.is_faulty(v)) continue;
      if (!dead_links.empty() && dead_links.contains(u, d)) continue;
      seen[v] = true;
      ++reached;
      frontier.push(v);
    }
  }
  return reached == node_faults.healthy_count();
}

cube::LinkSet random_link_faults_connected(cube::Dim n, std::size_t k,
                                           const FaultSet& node_faults,
                                           util::Rng& rng) {
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    cube::LinkSet candidate = random_link_faults(n, k, rng);
    if (healthy_subgraph_connected(node_faults, candidate))
      return candidate;
  }
  throw ContractViolation("precondition",
                          "a connectivity-preserving link fault set exists",
                          std::source_location::current());
}

std::vector<cube::NodeId> link_cover(const cube::LinkSet& dead_links,
                                     const FaultSet& node_faults) {
  // Remaining = links with neither endpoint chosen yet; already-faulty
  // endpoints cover for free.
  std::vector<cube::Link> remaining;
  for (const cube::Link& link : dead_links.links())
    if (!node_faults.is_faulty(link.lo) &&
        !node_faults.is_faulty(link.hi()))
      remaining.push_back(link);

  std::vector<cube::NodeId> cover;
  while (!remaining.empty()) {
    std::map<cube::NodeId, int> degree;
    for (const cube::Link& link : remaining) {
      ++degree[link.lo];
      ++degree[link.hi()];
    }
    cube::NodeId best = remaining.front().lo;
    int best_degree = -1;
    for (const auto& [node, deg] : degree) {
      if (deg > best_degree) {  // map order breaks ties toward smaller id
        best_degree = deg;
        best = node;
      }
    }
    cover.push_back(best);
    std::erase_if(remaining, [&](const cube::Link& link) {
      return link.lo == best || link.hi() == best;
    });
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

FaultSet effective_node_faults(const FaultSet& node_faults,
                               const cube::LinkSet& dead_links) {
  if (dead_links.empty()) return node_faults;
  FTSORT_REQUIRE(dead_links.dim() == node_faults.dim());
  std::vector<cube::NodeId> all = node_faults.addresses();
  const auto extra = link_cover(dead_links, node_faults);
  all.insert(all.end(), extra.begin(), extra.end());
  return FaultSet(node_faults.dim(), std::move(all));
}

}  // namespace ftsort::fault
