// Fault-scenario generators for the evaluation harness.
//
// The paper's experiments draw r distinct faulty addresses uniformly at
// random, 10 000 times per (n, r) cell. The extra generators here
// (clustered, spread, adjacent-chain) stress the partition algorithm in ways
// uniform sampling rarely does and drive the ablation benches.
#pragma once

#include "fault/fault_set.hpp"
#include "util/rng.hpp"

namespace ftsort::fault {

/// r distinct faulty processors uniformly at random in Q_n.
FaultSet random_faults(cube::Dim n, std::size_t r, util::Rng& rng);

/// Like random_faults but rejects configurations that isolate a healthy
/// node (only relevant when r >= n; always succeeds for r <= n-1).
FaultSet random_faults_no_isolation(cube::Dim n, std::size_t r,
                                    util::Rng& rng);

/// All r faults inside one subcube of dimension `cluster_dim` — the
/// adversarial case for mincut (many cuts needed to separate them).
FaultSet clustered_faults(cube::Dim n, std::size_t r, cube::Dim cluster_dim,
                          util::Rng& rng);

/// Faults chosen pairwise far apart (greedy max-min Hamming distance) — the
/// friendly case, usually separable with few cuts.
FaultSet spread_faults(cube::Dim n, std::size_t r, util::Rng& rng);

/// A chain of r mutually adjacent faults (fault i+1 neighbours fault i),
/// modelling a failing board/row. Falls back to the nearest healthy
/// neighbour when the chain self-intersects.
FaultSet chain_faults(cube::Dim n, std::size_t r, util::Rng& rng);

}  // namespace ftsort::fault
