#include "fault/diagnosis.hpp"

#include <vector>

namespace ftsort::fault {

DiagnosisResult diagnose_fail_stop(const FaultSet& ground_truth) {
  const cube::Dim n = ground_truth.dim();
  const cube::NodeId size = ground_truth.cube_size();

  DiagnosisResult result{FaultSet(n), 0, 0, false};

  // Phase 1: every healthy node pings each neighbour (one message out, one
  // reply from healthy neighbours). A missing reply marks the neighbour
  // faulty in the tester's local view.
  //
  // knowledge[u] = set of nodes u has a verdict for (bit per node), with
  // verdict[u] = the believed fault bits. Faulty nodes participate in
  // nothing.
  std::vector<std::vector<bool>> known(size,
                                       std::vector<bool>(size, false));
  std::vector<std::vector<bool>> verdict(size,
                                         std::vector<bool>(size, false));
  for (cube::NodeId u = 0; u < size; ++u) {
    if (ground_truth.is_faulty(u)) continue;
    known[u][u] = true;
    for (cube::Dim d = 0; d < n; ++d) {
      const cube::NodeId v = cube::neighbor(u, d);
      result.messages += 1;  // ping
      const bool v_faulty = ground_truth.is_faulty(v);
      if (!v_faulty) result.messages += 1;  // reply
      known[u][v] = true;
      verdict[u][v] = v_faulty;
    }
  }

  // Phase 2: synchronous flooding. Each round, every healthy node sends its
  // current map to each healthy neighbour; a round that changes nothing
  // terminates the protocol. r <= n-1 keeps the healthy subgraph connected,
  // so the union converges to the global map at every healthy node.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    std::vector<std::vector<bool>> next_known = known;
    std::vector<std::vector<bool>> next_verdict = verdict;
    for (cube::NodeId u = 0; u < size; ++u) {
      if (ground_truth.is_faulty(u)) continue;
      for (cube::Dim d = 0; d < n; ++d) {
        const cube::NodeId v = cube::neighbor(u, d);
        if (ground_truth.is_faulty(v)) continue;
        result.messages += 1;  // u's map sent to v
        for (cube::NodeId w = 0; w < size; ++w) {
          if (known[u][w] && !next_known[v][w]) {
            next_known[v][w] = true;
            next_verdict[v][w] = verdict[u][w];
            changed = true;
          }
        }
      }
    }
    known = std::move(next_known);
    verdict = std::move(next_verdict);
  }

  // Collect the map from an arbitrary healthy witness and check that every
  // healthy node agrees and is complete.
  cube::NodeId witness = size;  // sentinel
  for (cube::NodeId u = 0; u < size; ++u) {
    if (!ground_truth.is_faulty(u)) {
      witness = u;
      break;
    }
  }
  if (witness == size) return result;  // every node faulty: nothing to say

  std::vector<cube::NodeId> identified;
  result.complete = true;
  for (cube::NodeId w = 0; w < size; ++w) {
    if (!known[witness][w]) {
      result.complete = false;
      continue;
    }
    if (verdict[witness][w]) identified.push_back(w);
  }
  for (cube::NodeId u = 0; u < size && result.complete; ++u) {
    if (ground_truth.is_faulty(u)) continue;
    for (cube::NodeId w = 0; w < size; ++w) {
      if (!known[u][w] ||
          (w != u && known[u][w] != known[witness][w]) ||
          verdict[u][w] != verdict[witness][w]) {
        // A node may lack a verdict only for itself (it knows it is fine).
        if (w == u) continue;
        result.complete = false;
        break;
      }
    }
  }
  result.identified = FaultSet(n, std::move(identified));
  return result;
}

}  // namespace ftsort::fault
