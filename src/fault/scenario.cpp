#include "fault/scenario.hpp"

#include <algorithm>

namespace ftsort::fault {

namespace {

std::vector<cube::NodeId> draw_distinct(std::uint64_t population,
                                        std::size_t r, util::Rng& rng) {
  const auto sample = rng.sample_distinct(population, r);
  std::vector<cube::NodeId> out;
  out.reserve(sample.size());
  for (std::uint64_t v : sample)
    out.push_back(static_cast<cube::NodeId>(v));
  return out;
}

}  // namespace

FaultSet random_faults(cube::Dim n, std::size_t r, util::Rng& rng) {
  FTSORT_REQUIRE(r <= cube::num_nodes(n));
  return FaultSet(n, draw_distinct(cube::num_nodes(n), r, rng));
}

FaultSet random_faults_no_isolation(cube::Dim n, std::size_t r,
                                    util::Rng& rng) {
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    FaultSet candidate = random_faults(n, r, rng);
    if (!candidate.isolates_healthy_node()) return candidate;
  }
  throw ContractViolation("precondition",
                          "non-isolating fault set exists for (n, r)",
                          std::source_location::current());
}

FaultSet clustered_faults(cube::Dim n, std::size_t r, cube::Dim cluster_dim,
                          util::Rng& rng) {
  FTSORT_REQUIRE(cluster_dim <= n);
  FTSORT_REQUIRE(r <= cube::num_nodes(cluster_dim));
  // Pick a random subcube: random set of `cluster_dim` free dimensions and a
  // random value on the rest; then sample faults inside it.
  std::vector<cube::Dim> dims(static_cast<std::size_t>(n));
  for (cube::Dim d = 0; d < n; ++d) dims[static_cast<std::size_t>(d)] = d;
  rng.shuffle(dims);
  dims.resize(static_cast<std::size_t>(cluster_dim));
  std::sort(dims.begin(), dims.end());

  cube::NodeId base = static_cast<cube::NodeId>(rng.below(cube::num_nodes(n)));
  for (cube::Dim d : dims) base = cube::with_bit(base, d, 0);

  const auto local = draw_distinct(cube::num_nodes(cluster_dim), r, rng);
  std::vector<cube::NodeId> faults;
  faults.reserve(r);
  for (cube::NodeId w : local) {
    cube::NodeId u = base;
    for (cube::Dim i = 0; i < cluster_dim; ++i)
      u = cube::with_bit(u, dims[static_cast<std::size_t>(i)],
                         cube::bit(w, i));
    faults.push_back(u);
  }
  return FaultSet(n, std::move(faults));
}

FaultSet spread_faults(cube::Dim n, std::size_t r, util::Rng& rng) {
  FTSORT_REQUIRE(r <= cube::num_nodes(n));
  std::vector<cube::NodeId> faults;
  if (r == 0) return FaultSet(n);
  faults.push_back(static_cast<cube::NodeId>(rng.below(cube::num_nodes(n))));
  while (faults.size() < r) {
    // Greedy farthest-point: pick the node maximising its minimum Hamming
    // distance to the chosen set (ties broken by address for determinism).
    cube::NodeId best = 0;
    int best_dist = -1;
    for (cube::NodeId u = 0; u < cube::num_nodes(n); ++u) {
      if (std::find(faults.begin(), faults.end(), u) != faults.end())
        continue;
      int dist = n + 1;
      for (cube::NodeId f : faults)
        dist = std::min(dist, cube::hamming(u, f));
      if (dist > best_dist) {
        best_dist = dist;
        best = u;
      }
    }
    faults.push_back(best);
  }
  return FaultSet(n, std::move(faults));
}

FaultSet chain_faults(cube::Dim n, std::size_t r, util::Rng& rng) {
  FTSORT_REQUIRE(r <= cube::num_nodes(n));
  std::vector<cube::NodeId> faults;
  if (r == 0) return FaultSet(n);
  cube::NodeId cur =
      static_cast<cube::NodeId>(rng.below(cube::num_nodes(n)));
  faults.push_back(cur);
  while (faults.size() < r) {
    // Random unvisited neighbour of the chain head; if the head is boxed in,
    // restart the head from any already-chosen fault.
    std::vector<cube::NodeId> candidates;
    for (cube::Dim d = 0; d < n; ++d) {
      const cube::NodeId v = cube::neighbor(cur, d);
      if (std::find(faults.begin(), faults.end(), v) == faults.end())
        candidates.push_back(v);
    }
    if (candidates.empty()) {
      cur = faults[static_cast<std::size_t>(rng.below(faults.size()))];
      continue;
    }
    cur = candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
    faults.push_back(cur);
  }
  return FaultSet(n, std::move(faults));
}

}  // namespace ftsort::fault
