// Run-outcome classification: collapse the evidence one sort run leaves
// behind (RunReport counters, the structured Diagnosis, and whether the
// output verified) into a single categorical outcome.
//
// This is the reduction the Monte Carlo campaign engine (src/campaign/)
// aggregates over thousands of trials, but it is a property of a single
// run, so it lives in core next to the sorter that produces the report.
// The mapping is total and deterministic: every trial of a campaign lands
// in exactly one class, which is what makes trial-count conservation an
// exact invariant rather than a statistical one.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/machine.hpp"

namespace ftsort::core {

/// What one sort run amounted to, in decreasing order of happiness.
enum class RunOutcome : std::uint8_t {
  /// Sorted output, no timeouts, no deaths: the fault schedule never bit
  /// (empty, too late, or aimed at nodes the plan left idle).
  CompletedClean,
  /// Sorted output after the recovery protocol absorbed at least one
  /// timeout or death mid-run.
  CompletedRecovered,
  /// DegradationError: recovery gave up gracefully (no result, no hang).
  Degraded,
  /// DeadlockError: every live node blocked forever. Unreachable under
  /// online recovery (bounded waits); counted so a protocol bug that
  /// reintroduces it is visible in campaign aggregates, never silent.
  Deadlocked,
  /// The run "completed" but the output failed verification (not sorted,
  /// or not a permutation of the input). Must never happen; a campaign
  /// with a nonzero corrupt count is itself a failed campaign.
  Corrupt,
  /// The trial harness caught an unexpected exception (setup failure,
  /// bad_alloc, ...). Distinct from Degraded: this is the harness
  /// failing, not the protocol declining.
  Failed,
};

inline constexpr std::size_t kRunOutcomeCount = 6;

/// Stable machine-readable name, used by the campaign JSON exporter and
/// the ftdiag campaign parser (keep them in lockstep).
const char* run_outcome_name(RunOutcome o);

/// True for the two classes that produced a verified sorted result.
constexpr bool outcome_completed(RunOutcome o) {
  return o == RunOutcome::CompletedClean || o == RunOutcome::CompletedRecovered;
}

/// Classify a run that returned a report (i.e. did not throw).
/// `output_ok` is the caller's verification verdict on the sorted keys.
RunOutcome classify_completed(const sim::RunReport& report, bool output_ok);

/// Fault-detection share of a report's makespan: the latest expired
/// recv_or_timeout deadline the diagnosis recorded, clamped to the
/// makespan (0 for clean runs, or when the trace that records expiries
/// was disabled). The remainder, makespan - detect_time, is real
/// post-recovery sort work — the split bench_harness gates separately.
sim::SimTime detect_time(const sim::RunReport& report);

}  // namespace ftsort::core
