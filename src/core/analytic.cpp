#include "core/analytic.hpp"

#include <cmath>

namespace ftsort::core {

namespace {

double ceil_div(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>((a + b - 1) / b);
}

/// Heapsort worst case, the paper's [(b-1) log b + 1] t_c.
double heapsort_term(double b, const sim::CostModel& cost) {
  if (b < 2.0) return cost.t_compare;
  return ((b - 1.0) * std::log2(b) + 1.0) * cost.t_compare;
}

/// One "bitonic sorting algorithm" pass over a k-cube with blocks of b:
/// the paper's k(k+3)/2 [ b t_sr + (ceil(3b/2) - 1) t_c ] term.
double bitonic_pass_term(int k, double b, const sim::CostModel& cost) {
  const double loops = static_cast<double>(k) *
                       (static_cast<double>(k) + 3.0) / 2.0;
  return loops * (b * cost.t_transfer +
                  (std::ceil(1.5 * b) - 1.0) * cost.t_compare);
}

}  // namespace

CostBreakdown predicted_sort_time(const partition::Plan& plan,
                                  std::uint64_t keys,
                                  const sim::CostModel& cost) {
  const int m = plan.m();
  const int s = plan.s();
  const double b = ceil_div(keys, plan.live_count());

  CostBreakdown out;
  out.heapsort = heapsort_term(b, cost);
  out.intra_sort = bitonic_pass_term(s, b, cost);

  // Steps 4-8: m(m+3)/2 iterations of { step 7 + step 8 }.
  const double inter_loops =
      static_cast<double>(m) * (static_cast<double>(m) + 3.0) / 2.0;
  const double step7 =
      (static_cast<double>(s) + 1.0) * b * cost.t_transfer +   // 7(a)+(b) wire
      (std::ceil(b / 2.0) - 1.0) * cost.t_compare +            // 7(b) compares
      (b - 1.0) * cost.t_compare;                              // 7(c) merge
  const double step8 = bitonic_pass_term(s, b, cost);
  out.inter_exchange = inter_loops * step7;
  out.inter_resort = inter_loops * step8;

  out.total =
      out.heapsort + out.intra_sort + out.inter_exchange + out.inter_resort;
  return out;
}

double predicted_baseline_time(cube::Dim t, std::uint64_t keys,
                               const sim::CostModel& cost) {
  const double b = ceil_div(keys, cube::num_nodes(t));
  return heapsort_term(b, cost) + bitonic_pass_term(t, b, cost);
}

}  // namespace ftsort::core
