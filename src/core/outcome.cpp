#include "core/outcome.hpp"

#include <algorithm>

namespace ftsort::core {

const char* run_outcome_name(RunOutcome o) {
  switch (o) {
    case RunOutcome::CompletedClean: return "completed";
    case RunOutcome::CompletedRecovered: return "recovered";
    case RunOutcome::Degraded: return "degraded";
    case RunOutcome::Deadlocked: return "deadlocked";
    case RunOutcome::Corrupt: return "corrupt";
    case RunOutcome::Failed: return "failed";
  }
  return "?";
}

RunOutcome classify_completed(const sim::RunReport& report, bool output_ok) {
  if (!output_ok) return RunOutcome::Corrupt;
  // A run the protocol had to rescue shows it in the report: either a
  // processor died (killed_nodes) or a bounded wait expired (timeouts) —
  // a link cut never kills a node but always surfaces as timeouts.
  if (report.killed_nodes.empty() && report.timeouts == 0)
    return RunOutcome::CompletedClean;
  return RunOutcome::CompletedRecovered;
}

sim::SimTime detect_time(const sim::RunReport& report) {
  sim::SimTime detect = 0.0;
  for (const sim::Diagnosis::Wait& w : report.diagnosis.waits)
    if (w.expired && w.time > detect) detect = w.time;
  return std::min(detect, report.makespan);
}

}  // namespace ftsort::core
