// The paper's closed-form cost model (§3): the worst-case total time T of
// the fault-tolerant sorting algorithm, term by term, plus the matching
// expression for plain block bitonic sort (the baseline's cost).
//
// These are the formulas the paper derives, not measurements; the
// `AnalyticVsSimulated` tests and the bench_formula binary quantify how
// closely the simulator tracks them (they agree on every term's scaling;
// the formula is a *worst-case* bound, so simulation <= formula with the
// FullSort Step 8 the formula assumes).
#pragma once

#include <cstdint>

#include "partition/plan.hpp"
#include "sim/cost_model.hpp"

namespace ftsort::core {

struct CostBreakdown {
  double heapsort = 0.0;       ///< Step 3 local sort, t_c term
  double intra_sort = 0.0;     ///< Step 3 subcube bitonic sort
  double inter_exchange = 0.0; ///< Steps 7(a)-(c) over all (i, j)
  double inter_resort = 0.0;   ///< Step 8 over all (i, j)
  double total = 0.0;
};

/// The paper's T for sorting `keys` on the plan's F_n^m, literal reading
/// (Step 8 = full sort). `keys` is M; block size is ceil(M / N').
CostBreakdown predicted_sort_time(const partition::Plan& plan,
                                  std::uint64_t keys,
                                  const sim::CostModel& cost);

/// Plain block bitonic sort of `keys` on a fault-free Q_t (the paper's
/// thick-line baseline): heapsort + t(t+3)/2-style loop cost.
double predicted_baseline_time(cube::Dim t, std::uint64_t keys,
                               const sim::CostModel& cost);

}  // namespace ftsort::core
