#include "core/ft_sorter.hpp"

#include <algorithm>

#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "util/contracts.hpp"

namespace ftsort::core {

namespace {

/// §3 heuristic audit: pair every Ψ candidate's predicted overhead profile
/// (retained by partition::select_sequence) with the run's measured
/// re-index extra hops (sim/link_stats.hpp audit table).
sim::ReindexAudit build_reindex_audit(const partition::Plan& plan,
                                      const sim::LinkStatsSnapshot& links) {
  sim::ReindexAudit audit;
  audit.enabled = true;
  const partition::Selection& sel = plan.selection();
  const auto& psi = plan.search().cutting_set;
  FTSORT_INVARIANT(psi.size() == sel.candidates.size());
  for (std::size_t idx = 0; idx < psi.size(); ++idx) {
    sim::ReindexAudit::Candidate c;
    c.cuts = psi[idx];
    c.predicted_h = sel.candidates[idx].h;
    c.predicted_total = sel.candidates[idx].total;
    c.chosen = idx == sel.beta;
    audit.candidates.push_back(std::move(c));
  }
  audit.measured_h =
      sim::measured_reindex_by_dim(links.reindex_fault_extra, plan.m());
  for (const int h : audit.measured_h) audit.measured_total += h;
  audit.measured_all_h =
      sim::measured_reindex_by_dim(links.reindex_extra, plan.m());
  for (const int h : audit.measured_all_h) audit.measured_all_total += h;
  return audit;
}

}  // namespace

FaultTolerantSorter::FaultTolerantSorter(cube::Dim n,
                                         fault::FaultSet faults,
                                         SortConfig config)
    : config_(config), plan_(partition::Plan::build(faults)),
      machine_faults_(plan_.faults()) {
  FTSORT_REQUIRE(faults.dim() == n);
  FTSORT_REQUIRE(plan_.live_count() > 0);
}

FaultTolerantSorter::FaultTolerantSorter(cube::Dim n,
                                         fault::FaultSet faults,
                                         cube::LinkSet dead_links,
                                         SortConfig config)
    : config_(config),
      plan_(partition::Plan::build(
          fault::effective_node_faults(faults, dead_links))),
      machine_faults_(std::move(faults)), dead_links_(std::move(dead_links)) {
  FTSORT_REQUIRE(machine_faults_.dim() == n);
  FTSORT_REQUIRE(plan_.live_count() > 0);
  FTSORT_REQUIRE(
      fault::healthy_subgraph_connected(machine_faults_, dead_links_));
}

FaultTolerantSorter::FaultTolerantSorter(partition::Plan plan,
                                         SortConfig config)
    : config_(config), plan_(std::move(plan)),
      machine_faults_(plan_.faults()) {
  FTSORT_REQUIRE(plan_.live_count() > 0);
}

SortOutcome FaultTolerantSorter::sort(
    std::span<const sort::Key> keys) const {
  if (config_.online_recovery) {
    // Recovery renegotiates processor faults only; a plan reduced from
    // dead links would let it schedule exchanges across dead wires.
    FTSORT_REQUIRE(dead_links_.empty());
    return recovery_sort(plan_, config_, keys);
  }
  const partition::Plan& plan = plan_;
  const cube::Dim n = plan.n();
  const cube::Dim m = plan.m();
  const cube::Dim s = plan.s();

  // One logical cube per subcube (Step 1: re-indexing is baked into the
  // plan's physical() map; dead node is logical 0).
  std::vector<sort::LogicalCube> subcube_lc(plan.num_subcubes());
  for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v) {
    sort::LogicalCube& lc = subcube_lc[v];
    lc.s = s;
    lc.dead0 = plan.has_dead();
    lc.phys.resize(cube::num_nodes(s));
    for (cube::NodeId lw = 0; lw < lc.size(); ++lw)
      lc.phys[lw] = plan.physical(v, lw);
  }

  // Step 2: scatter in (v, logical_w) order.
  sort::Distribution dist =
      sort::distribute_evenly(keys, plan.live_count());
  std::vector<std::vector<sort::Key>> block_of(cube::num_nodes(n));
  {
    std::size_t slot = 0;
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v)
      for (cube::NodeId lw = 0; lw < cube::num_nodes(s); ++lw) {
        if (subcube_lc[v].is_dead(lw)) continue;
        block_of[plan.physical(v, lw)] = std::move(dist.blocks[slot++]);
      }
  }

  // Host entry node: lowest live machine address (only meaningful when
  // host I/O is charged).
  cube::NodeId entry = cube::num_nodes(n);
  for (cube::NodeId u = 0; u < cube::num_nodes(n) && config_.charge_host_io;
       ++u) {
    if (plan.role_of(u).live) {
      entry = u;
      break;
    }
  }

  // Tag layout: [0, T_s) intra-subcube Step 3 sort; then 2 tags per
  // inter-subcube exchange; then T_s per Step 8 re-sort.
  const std::uint32_t ts = sort::bitonic_tag_span(s);
  const std::uint32_t msteps =
      static_cast<std::uint32_t>(m) * (static_cast<std::uint32_t>(m) + 1) /
      2;
  const auto tag_exchange = [ts](std::uint32_t step) {
    return ts + step * 2;
  };
  const std::uint32_t resort_span =
      std::max(ts, sort::bitonic_merge_tag_span(s));
  const auto tag_resort = [ts, msteps, resort_span](std::uint32_t step) {
    return ts + msteps * 2 + step * resort_span;
  };

  // Host I/O tags sit past everything the sort itself uses.
  const std::uint32_t tag_host = tag_resort(msteps) + resort_span + 1;

  const auto protocol = sort::resolve_protocol(config_.protocol,
                                               config_.coalesce, config_.cost);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const partition::Plan::Role role = plan.role_of(ctx.id());
    if (!role.live) co_return;  // dangling processor: idles
    const cube::NodeId v = role.v;
    const cube::NodeId lw = role.logical_w;
    const sort::LogicalCube& lc = subcube_lc[v];
    std::vector<sort::Key>& block = block_of[ctx.id()];

    // Step 2 (optional): the host pushes every key through the entry
    // node's host link; the entry fans the blocks out.
    if (config_.charge_host_io) {
      const sim::PhaseSpan span = ctx.span(sim::Phase::Scatter);
      if (ctx.id() == entry) {
        ctx.charge_time(config_.cost.injection_time(keys.size()));
        for (cube::NodeId u = 0; u < cube::num_nodes(plan.n()); ++u) {
          if (u == entry || !plan.role_of(u).live) continue;
          ctx.send(u, tag_host, block_of[u]);
        }
      } else {
        sim::Message msg = co_await ctx.recv(entry, tag_host);
        msg.payload.release_into(block);
      }
    }

    // Exchange working storage, reused across every merge-split this node
    // performs; after warm-up the whole sort's hot path is allocation-free.
    sort::ExchangeScratch scratch;

    // Step 3: local sort (heapsort per the paper, configurable), then the
    // single-fault bitonic sort of this subcube; ascending iff the subcube
    // address is even.
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::LocalSort);
      std::uint64_t comparisons = 0;
      sort::local_sort(config_.local_sort, block, comparisons);
      ctx.charge_compares(comparisons);
    }
    const bool v_even = cube::bit(v, 0) == 0;
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::SubcubeSort);
      co_await sort::block_bitonic_sort(ctx, lc, lw, block,
                                        /*ascending=*/m == 0 || v_even,
                                        protocol, /*tag_base=*/0, &scratch);
    }

    // Steps 4-8: bitonic-like sort across subcubes.
    std::uint32_t step = 0;
    for (cube::Dim i = 0; i < m; ++i) {
      // Step 5: mask = v_{i+1} (v_m = 0).
      const int mask = (i + 1 == m) ? 0 : cube::bit(v, i + 1);
      for (cube::Dim j = i; j >= 0; --j, ++step) {
        // Step 7: merge-split with the corresponding processor of the
        // neighbouring subcube along dimension j.
        const cube::NodeId v2 = cube::neighbor(v, j);
        const cube::NodeId partner = plan.physical(v2, lw);
        // §3 audit: corresponding processors of neighbouring subcubes are
        // one hop apart before re-indexing; whatever the router charges
        // beyond that is the measured re-index penalty along dimension j.
        // Exchanges between two fault-carrying subcubes are the formula's
        // own scope; the rest (dangling pairs) it does not model.
        if (ctx.link_stats_enabled()) {
          const bool fault_pair = plan.has_dead() &&
                                  plan.dead_is_fault(v) &&
                                  plan.dead_is_fault(v2);
          ctx.note_reindex_hops(j, ctx.hops_to(partner) - 1, fault_pair);
        }
        const sort::SplitHalf keep = (cube::bit(v, j) == mask)
                                         ? sort::SplitHalf::Lower
                                         : sort::SplitHalf::Upper;
        {
          const sim::PhaseSpan span = ctx.span(sim::Phase::MergeExchange);
          co_await sort::exchange_merge_split_into(
              ctx, partner, tag_exchange(step), block, scratch, keep,
              protocol);
        }
        // Step 8: re-sort this subcube; ascending iff v_{j-1} == mask
        // (v_{-1} = 0). The content is blockwise bitonic after the split,
        // so the merge variant needs only s substeps.
        const int v_jm1 = (j == 0) ? 0 : cube::bit(v, j - 1);
        const sim::PhaseSpan span = ctx.span(sim::Phase::Resort);
        if (config_.step8 == Step8Mode::BitonicMerge) {
          co_await sort::block_bitonic_merge(ctx, lc, lw, block,
                                             /*ascending=*/v_jm1 == mask,
                                             keep, protocol,
                                             tag_resort(step), &scratch);
        } else {
          co_await sort::block_bitonic_sort(ctx, lc, lw, block,
                                            /*ascending=*/v_jm1 == mask,
                                            protocol, tag_resort(step),
                                            &scratch);
        }
      }
    }

    // Final gather (optional): blocks stream back to the host through the
    // entry node in output order.
    if (config_.charge_host_io) {
      const sim::PhaseSpan span = ctx.span(sim::Phase::Gather);
      if (ctx.id() == entry) {
        for (cube::NodeId gv = 0; gv < plan.num_subcubes(); ++gv)
          for (cube::NodeId glw = 0; glw < cube::num_nodes(plan.s());
               ++glw) {
            if (subcube_lc[gv].is_dead(glw)) continue;
            const cube::NodeId u = plan.physical(gv, glw);
            if (u == entry) continue;
            sim::Message msg = co_await ctx.recv(u, tag_host + 1);
            msg.payload.release_into(block_of[u]);
          }
        ctx.charge_time(config_.cost.injection_time(keys.size()));
      } else {
        ctx.send(entry, tag_host + 1, block);
      }
    }
    co_return;
  };

  sim::Machine machine(n, machine_faults_, config_.model, config_.cost,
                       dead_links_);
  machine.set_injector(config_.injector);
  machine.trace().enable(config_.record_trace);
  machine.trace().set_capacity(config_.trace_capacity);
  machine.profile_host(config_.profile_host);
  machine.set_watchdog(config_.watchdog);
  if (config_.record_metrics) machine.metrics().enable(machine.size());
  if (config_.record_link_stats)
    machine.link_stats().enable(machine.size(), machine.dim());
  if (config_.record_timeline)
    machine.timeline().enable(machine.size(), machine.dim(),
                              config_.timeline_tick);
  if (config_.record_lineage) {
    // Assign ids in the scatter's own (subcube, logical) slot order so the
    // id universe is identical across executors and sorter paths.
    machine.lineage().enable(machine.size(), machine.dim());
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v)
      for (cube::NodeId lw = 0; lw < cube::num_nodes(s); ++lw) {
        if (subcube_lc[v].is_dead(lw)) continue;
        const cube::NodeId u = plan.physical(v, lw);
        machine.lineage().assign_block(u, block_of[u]);
      }
  }

  SortOutcome outcome;
  outcome.report = config_.executor == Executor::Threaded
                       ? machine.run_threaded(program)
                       : machine.run(program);
  outcome.block_size = dist.block_size;
  if (config_.record_trace) {
    outcome.trace = machine.trace().to_string();
    outcome.trace_events = machine.trace().snapshot();
  }
  if (config_.record_link_stats)
    outcome.report.reindex_audit = build_reindex_audit(plan,
                                                       outcome.report.links);

  // Gather in subcube-address order (the algorithm's output placement).
  std::vector<std::vector<sort::Key>> in_order;
  in_order.reserve(plan.live_count());
  for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v)
    for (cube::NodeId lw = 0; lw < cube::num_nodes(s); ++lw) {
      if (subcube_lc[v].is_dead(lw)) continue;
      in_order.push_back(std::move(block_of[plan.physical(v, lw)]));
    }
  outcome.sorted = sort::gather_and_strip(in_order);
  if (config_.record_lineage)
    sim::audit_lineage(outcome.report.lineage, outcome.sorted);
  return outcome;
}

}  // namespace ftsort::core
