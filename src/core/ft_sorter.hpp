// The paper's headline contribution: the Fault-Tolerant Sorting Algorithm
// (§3, Steps 1-8) for Q_n with r <= n-1 faulty processors.
//
// Pipeline per sort:
//   Step 1   re-index every subcube of the partition plan so its dead
//            (faulty or dangling) processor is logical 0;
//   Step 2   scatter the M keys in equal dummy-padded blocks over the
//            N' = 2^n - 2^m live processors, in (subcube, logical) order;
//   Step 3   per-node heapsort, then single-fault bitonic sort inside every
//            subcube (ascending iff the subcube index v is even);
//   Steps 4-8 the bitonic-like merge of subcubes: for i = 0..m-1, for
//            j = i..0, corresponding live processors of subcubes adjacent
//            along dimension j run a merge-split exchange (direction from
//            mask = v_{i+1} vs v_j), then each subcube re-sorts itself
//            (ascending iff v_{j-1} == mask, with v_{-1} = 0).
// The result, gathered in subcube-address order, is globally ascending.
#pragma once

#include <span>
#include <vector>

#include "core/recovery.hpp"
#include "fault/link_fault.hpp"
#include "partition/plan.hpp"
#include "sim/machine.hpp"
#include "sort/spmd_bitonic.hpp"

namespace ftsort::core {

/// How Step 8 restores intra-subcube order after each Step 7 exchange.
enum class Step8Mode {
  /// Full block bitonic sort, s(s+1)/2 exchange substeps — the literal
  /// reading of the paper's Step 8 and of its cost formula (the
  /// s(s+3)/2 term in T).
  FullSort,
  /// Block bitonic merge, s substeps — exploits that a subcube's content
  /// is blockwise bitonic right after a Step 7 split. Required to
  /// reproduce the paper's Figure 7 crossovers (its measured times are
  /// consistent with this variant, not with the formula's full sort).
  BitonicMerge,
};

/// Which executor drives the node programs. Both produce identical
/// results and logical times; Threaded runs one OS thread per processor
/// (true MIMD concurrency), Sequential a deterministic single-threaded
/// scheduler.
enum class Executor { Sequential, Threaded };

struct SortConfig {
  fault::FaultModel model = fault::FaultModel::Partial;
  sim::CostModel cost = sim::CostModel::ncube7();
  sort::ExchangeProtocol protocol = sort::ExchangeProtocol::HalfExchange;
  /// Exchange coalescing. Auto rewrites the two-round half exchange into
  /// the one-round full exchange exactly when `cost` routes cut-through
  /// (same keys per direction, half the messages — the start-up term is
  /// what dominates there). Under the default store-and-forward model Auto
  /// changes nothing, so default reports stay byte-identical.
  sort::CoalescePolicy coalesce = sort::CoalescePolicy::Auto;
  Step8Mode step8 = Step8Mode::BitonicMerge;
  Executor executor = Executor::Sequential;
  /// Step 3's local sort; the paper prescribes heapsort.
  sort::LocalSort local_sort = sort::LocalSort::Heapsort;
  /// Model the host's Step 2 scatter and the final gather: the host board
  /// is wired to one live *entry* node (the lowest live address, as on the
  /// NCUBE/7); all keys cross that link and fan out/in from there. The
  /// paper's T excludes this phase, so it defaults off; switching it on
  /// shows how far host I/O dominates once the cube itself is fast.
  bool charge_host_io = false;
  bool record_trace = false;
  /// Flight-recorder bound: per-node trace ring capacity in events
  /// (0 = unbounded). Lets record_trace stay always-on in long recovery
  /// runs; evictions are counted in RunReport::trace_dropped. A truncated
  /// trace degrades only attribution (critical path, diagnosis depth) —
  /// logical results and golden report fields are unaffected.
  std::size_t trace_capacity = 0;
  /// Host-side (wall-clock) scheduler and buffer-pool profiling: populates
  /// RunReport::host with per-shard mutex waits, cv wakeups, resume and
  /// quiescence counters. Charged outside simulated time, so enabling it
  /// never changes logical results. Mainly useful with Executor::Threaded.
  bool profile_host = false;
  /// Populate RunReport::metrics / RunReport::phases with per-node,
  /// per-phase counters (sim/metrics.hpp). The critical-path makespan
  /// attribution additionally needs record_trace. Deterministic across
  /// executors; off by default (one branch per charge site when off).
  bool record_metrics = false;
  /// Populate RunReport::links with the per-link traffic matrix and — for
  /// the plain (non-recovery) sort — RunReport::reindex_audit with the §3
  /// heuristic audit (sim/link_stats.hpp): predicted Σ max(h_i) of every
  /// Ψ candidate next to the measured re-index extra hops per dimension.
  /// Deterministic across executors; off by default.
  bool record_link_stats = false;
  /// Populate RunReport::timeline with the sim-time sampler series
  /// (sim/timeline.hpp): per-node queue depth, in-flight keys per
  /// dimension, pool occupancy, and active phase, bucketed by
  /// `timeline_tick`. Zero simulated-time cost, deterministic across
  /// executors; off by default (one branch per charge site when off).
  bool record_timeline = false;
  /// Sampler tick width in simulated µs (> 0). The series is capped at
  /// sim::kTimelineMaxTicks buckets; pick a tick near
  /// expected_makespan / 1000 for long runs.
  sim::SimTime timeline_tick = 1000.0;
  /// Populate RunReport::lineage with per-key provenance (sim/lineage.hpp):
  /// a stable id per input key, custody chains committed at every merge
  /// point, per-dimension hop counts that conserve against LinkStats, and
  /// the exact no-loss/no-dup audit run against the gathered output. Zero
  /// simulated-time cost, deterministic across executors; off by default
  /// (one branch per send and merge site when off).
  bool record_lineage = false;
  /// Mid-run fault schedule (sim/fault_injector.hpp), applied to every run.
  /// Without online_recovery an injected death typically leaves the
  /// victim's partners blocked forever and the run ends in DeadlockError —
  /// the behaviour the paper's offline-diagnosis model predicts.
  sim::FaultInjector injector;
  /// Route the sort through the online-recovery engine (core/recovery.hpp):
  /// survivors detect injected deaths, renegotiate the partition, salvage
  /// the casualties' keys and restart, raising DegradationError when the
  /// grown fault set defeats recovery. Requires charge_host_io == false and
  /// no dead links; protocol and step8 are ignored (recovery always uses
  /// full-block exchanges and the FullSort Step 8).
  bool online_recovery = false;
  RecoveryConfig recovery;
  /// Wall-clock watchdog over the run's host execution (sim/watchdog.hpp):
  /// heartbeat counters per executor shard, a monitor thread, and a
  /// black-box dump + WatchdogError when host progress stops past the
  /// deadline. Lives entirely outside simulated time — golden reports and
  /// executor equivalence are byte-identical with it armed. Off by default.
  sim::WatchdogConfig watchdog;
};

struct SortOutcome {
  std::vector<sort::Key> sorted;  ///< all input keys, ascending
  sim::RunReport report;          ///< logical time & traffic of the run
  std::size_t block_size = 0;     ///< ⌈M / N'⌉
  std::string trace;              ///< event dump when record_trace was set
  /// Raw events when record_trace was set — feed to
  /// sim::write_chrome_trace for a Perfetto-loadable timeline.
  std::vector<sim::TraceEvent> trace_events;
};

/// Reusable sorter: the partition plan is computed once per fault
/// configuration and amortised over any number of sorts.
class FaultTolerantSorter {
 public:
  FaultTolerantSorter(cube::Dim n, fault::FaultSet faults,
                      SortConfig config = {});

  /// Processor *and link* faults. Dead links are always routed around; for
  /// the algorithm they are reduced to logical processor faults via a
  /// greedy vertex cover (fault/link_fault.hpp), so the partition plan
  /// never schedules an exchange across a dead wire's endpoints. The
  /// covered processors stay healthy in the machine (they still forward
  /// messages) but hold no keys.
  FaultTolerantSorter(cube::Dim n, fault::FaultSet faults,
                      cube::LinkSet dead_links, SortConfig config = {});

  /// Sort with an explicit, pre-built partition plan — used by ablation
  /// studies to pin a cutting sequence other than the heuristic's choice.
  explicit FaultTolerantSorter(partition::Plan plan, SortConfig config = {});

  const partition::Plan& plan() const { return plan_; }
  const SortConfig& config() const { return config_; }

  SortOutcome sort(std::span<const sort::Key> keys) const;

 private:
  SortConfig config_;
  partition::Plan plan_;
  /// Faults of the physical machine (excludes the link-cover processors,
  /// which are healthy and keep forwarding).
  fault::FaultSet machine_faults_;
  cube::LinkSet dead_links_;
};

}  // namespace ftsort::core
