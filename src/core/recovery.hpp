// Online recovery: sorting through processor deaths that happen mid-run.
//
// The paper assumes fault locations are known before the sort starts
// (off-line diagnosis, §1). This engine drops that assumption: a
// FaultInjector (sim/fault_injector.hpp) may kill processors while the sort
// is in flight, and the survivors renegotiate — detect the loss, grow the
// fault set, re-run the §2.2 partition search and §3 heuristic on it,
// salvage the dead processors' keys, and restart. The run commits when an
// attempt finishes with no new deaths; it raises DegradationError when the
// post-injection fault configuration no longer admits the single-fault
// subcube structure (or keys are provably lost), never hanging and never
// returning corrupt output.
//
// Protocol per attempt (full detail in DESIGN.md):
//   sort      every live node runs the §3 schedule with full-block swaps,
//             bounding each partner wait by `detect_patience`; a timeout
//             aborts the attempt, keeping the pre-step block (sends are
//             copies, so an abort never needs rollback). Completed
//             exchanges record a *witness*: the partner's post-step block,
//             recomputed locally from the swapped data.
//   check-in  everyone reports FINISHED / ABORTED / IDLE to the
//             coordinator (lowest statically-healthy address); a processor
//             that misses roll call within `collect_patience` is dead —
//             timeouts during the sort are only hints, since a live node
//             blocked on a dead one times out too.
//   verdict   no deaths and no aborts: COMMIT. Deaths: the coordinator
//             grows the fault set, re-plans, and broadcasts RESTART with
//             the casualty list (or DEGRADE when re-planning fails).
//   salvage   survivors send their blocks plus witnesses for the dead;
//             the coordinator reconstructs each dead node's keys from the
//             freshest witness (falling back on the scatter record), checks
//             the pool against the input count and checksum, redistributes
//             over the new plan's live processors, and re-scatters.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "partition/plan.hpp"
#include "sim/cost_model.hpp"
#include "sim/diagnosis.hpp"
#include "sort/merge_split.hpp"

namespace ftsort::core {

struct SortConfig;
struct SortOutcome;

/// Logical-time patience tiers of the recovery protocol. Soundness needs
/// them well separated: a check-in may trail the coordinator's collection
/// start by the attempt's full clock divergence plus one detection timeout,
/// so collect_patience must dominate makespan + detect_patience; verdict
/// waits must in turn survive a whole collection round of timeouts,
/// verdict_patience > max_deaths * collect_patience. The defaults leave
/// three orders of magnitude between tiers — far beyond any makespan the
/// benchmarks produce.
struct RecoveryConfig {
  sim::SimTime detect_patience = 1e6;    ///< partner wait during the sort
  sim::SimTime collect_patience = 1e9;   ///< coordinator roll-call wait
  sim::SimTime verdict_patience = 1e12;  ///< wait on coordinator messages
  int max_attempts = 8;                  ///< restart cap before degrading
};

/// Raised when online recovery cannot complete the sort: the grown fault
/// set admits no single-fault partition, keys were irrecoverably lost to
/// concurrent deaths, the coordinator itself died, or the restart budget
/// ran out. The message always begins with "graceful degradation:".
///
/// When the engine still holds the machine at throw time it attaches the
/// structured failure explainer, so consumers that aggregate failures (the
/// campaign engine's root-cause histogram) get the same `Diagnosis` the
/// message renders — without parsing strings. `diagnosis().triggered()` is
/// false for degradations raised before any run evidence existed.
class DegradationError : public std::runtime_error {
 public:
  explicit DegradationError(const std::string& what)
      : std::runtime_error(what) {}
  DegradationError(const std::string& what, sim::Diagnosis diagnosis)
      : std::runtime_error(what), diagnosis_(std::move(diagnosis)) {}

  const sim::Diagnosis& diagnosis() const { return diagnosis_; }

 private:
  sim::Diagnosis diagnosis_;
};

/// The recovery-mode sort. `plan` is the diagnosis-time plan (attempt 0);
/// faults injected by `config.injector` are handled online as described
/// above. Requires config.charge_host_io == false.
SortOutcome recovery_sort(const partition::Plan& plan,
                          const SortConfig& config,
                          std::span<const sort::Key> keys);

}  // namespace ftsort::core
