#include "core/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "sort/resilient_schedule.hpp"
#include "sort/sequential.hpp"
#include "util/contracts.hpp"

namespace ftsort::core {
namespace {

using cube::NodeId;
using sort::Key;

// Wire words. Check-in statuses:
constexpr Key kStatusFinished = 0;
constexpr Key kStatusAborted = 1;
constexpr Key kStatusIdle = 2;
// Verdicts:
constexpr Key kVerdictCommit = 0;
constexpr Key kVerdictRestart = 1;
constexpr Key kVerdictDegrade = 2;
// Re-scatter flags:
constexpr Key kRescatterIdle = 0;
constexpr Key kRescatterLive = 1;
constexpr Key kRescatterDegrade = 2;

// Control tags of an attempt sit right after its exchange-step tags.
constexpr std::uint32_t kTagCheckin = 0;
constexpr std::uint32_t kTagVerdict = 1;
constexpr std::uint32_t kTagWitness = 2;
constexpr std::uint32_t kTagRescatter = 3;
constexpr std::uint32_t kControlTags = 4;

sort::SplitHalf opposite(sort::SplitHalf h) {
  return h == sort::SplitHalf::Lower ? sort::SplitHalf::Upper
                                     : sort::SplitHalf::Lower;
}

/// Order-insensitive integrity check of the key pool (wrapping sum).
std::uint64_t checksum(std::span<const Key> keys) {
  std::uint64_t sum = 0;
  for (Key k : keys) sum += static_cast<std::uint64_t>(k);
  return sum;
}

/// Everything one attempt needs to know about its plan. Attempt 0 is built
/// host-side; later attempts by the coordinator, which appends to the
/// shared vector *before* sending the re-scatter messages whose receipt is
/// the only thing that lets another node index the new entry — message
/// delivery orders the reads after the write on both executors.
struct AttemptState {
  partition::Plan plan;
  std::vector<sort::LogicalCube> lc;  ///< per subcube
  std::uint32_t steps = 0;            ///< global exchange-step count
  std::uint32_t tag_base = 0;         ///< first wire tag of this attempt
};

AttemptState make_attempt(partition::Plan plan, std::uint32_t tag_base) {
  AttemptState a{std::move(plan), {}, 0, tag_base};
  const cube::Dim s = a.plan.s();
  const cube::Dim m = a.plan.m();
  a.lc.resize(a.plan.num_subcubes());
  for (NodeId v = 0; v < a.plan.num_subcubes(); ++v) {
    sort::LogicalCube& lc = a.lc[v];
    lc.s = s;
    lc.dead0 = a.plan.has_dead();
    lc.phys.resize(cube::num_nodes(s));
    for (NodeId lw = 0; lw < lc.size(); ++lw)
      lc.phys[lw] = a.plan.physical(v, lw);
  }
  const std::uint32_t t3 = sort::bitonic_sort_steps(s);
  const std::uint32_t msteps =
      static_cast<std::uint32_t>(m) * (static_cast<std::uint32_t>(m) + 1) /
      2;
  // Step 3, then per inter-subcube exchange one swap plus a full Step 8.
  a.steps = t3 + msteps * (1 + t3);
  return a;
}

/// The full resilient schedule of machine node `u`: Step 3, then Steps 4-8
/// with the FullSort Step 8 variant — the same structure as ft_sorter's
/// program, flattened to (step, partner, keep) triples.
std::vector<sort::ScheduleStep> node_schedule(const AttemptState& a,
                                              NodeId u) {
  const partition::Plan::Role role = a.plan.role_of(u);
  FTSORT_REQUIRE(role.live);
  const NodeId v = role.v;
  const NodeId lw = role.logical_w;
  const sort::LogicalCube& lc = a.lc[v];
  const cube::Dim m = a.plan.m();
  std::vector<sort::ScheduleStep> out;
  std::uint32_t step = 0;
  const bool v_even = cube::bit(v, 0) == 0;
  sort::append_bitonic_sort_schedule(lc, lw, m == 0 || v_even, step, out);
  for (cube::Dim i = 0; i < m; ++i) {
    const int mask = (i + 1 == m) ? 0 : cube::bit(v, i + 1);
    for (cube::Dim j = i; j >= 0; --j) {
      const NodeId partner = a.plan.physical(cube::neighbor(v, j), lw);
      const sort::SplitHalf keep = (cube::bit(v, j) == mask)
                                       ? sort::SplitHalf::Lower
                                       : sort::SplitHalf::Upper;
      out.push_back({step++, partner, keep});
      const int v_jm1 = (j == 0) ? 0 : cube::bit(v, j - 1);
      sort::append_bitonic_sort_schedule(lc, lw, v_jm1 == mask, step, out);
    }
  }
  FTSORT_ENSURE(step == a.steps);
  return out;
}

struct Shared {
  /// Stage boundaries of one RESTART round, written by the coordinator
  /// coroutine as the protocol passes them (single writer; the host reads
  /// only after the run's threads joined). Clocks are the coordinator's
  /// logical times, so the derived RecoveryLatency is byte-identical
  /// across executors.
  struct EpisodeMark {
    std::uint32_t attempt = 0;
    std::vector<NodeId> dead;          ///< this roll call's casualties
    sim::SimTime own_abort = -1.0;     ///< coordinator's own sort timeout
    sim::SimTime first_timeout = -1.0; ///< first roll-call timeout clock
    sim::SimTime last_timeout = -1.0;  ///< last roll-call timeout clock
    sim::SimTime rollcall_end = 0.0;   ///< clock after the roll-call loop
    sim::SimTime salvage_end = 0.0;    ///< clock after the salvage check
  };

  std::vector<AttemptState> attempts;  ///< capacity reserved: never moves
  std::vector<EpisodeMark> episode_marks;  ///< one per RESTART round
  std::vector<std::vector<Key>>* block_of = nullptr;
  /// Coordinator's copy of the current attempt's scatter — the step -1
  /// witness for a node that dies before completing any exchange.
  std::vector<std::vector<Key>> scatter_record;
  std::uint64_t expect_count = 0;
  std::uint64_t expect_sum = 0;
  NodeId coordinator = 0;
  int final_attempt = -1;  ///< set by the coordinator before COMMIT
  std::atomic<bool> degraded{false};
  std::mutex reason_mutex;
  std::string reason;

  void record(const std::string& why) {
    {
      std::scoped_lock lock(reason_mutex);
      if (reason.empty()) reason = why;
    }
    degraded.store(true);
  }
  std::string first_reason() {
    std::scoped_lock lock(reason_mutex);
    return reason;
  }
  [[noreturn]] void degrade(const std::string& why) {
    record(why);
    throw DegradationError("graceful degradation: " + why);
  }
};

sim::Task<void> node_program(sim::NodeCtx& ctx, Shared& sh,
                             const SortConfig& cfg) {
  const NodeId me = ctx.id();
  const RecoveryConfig& rc = cfg.recovery;
  const bool coord = me == sh.coordinator;
  std::vector<Key>& block = (*sh.block_of)[me];
  // Merge scratch reused across every exchange step (and attempt): the
  // double-buffer swap below keeps the hot loop allocation-free.
  std::vector<Key> mine_scratch;
  std::vector<Key> theirs_scratch;

  for (int e = 0;; ++e) {
    const AttemptState& at = sh.attempts[static_cast<std::size_t>(e)];
    const partition::Plan::Role role = at.plan.role_of(me);
    const std::uint32_t cbase = at.tag_base + at.steps;

    // ---- Sort phase ----------------------------------------------------
    Key status = kStatusIdle;
    sim::SimTime own_abort = -1.0;  // coordinator's own timeout evidence
    // Freshest witness per partner: (step, the partner's post-step block,
    // recomputed locally from the swapped data).
    std::map<NodeId, std::pair<std::uint32_t, std::vector<Key>>> witness;
    if (role.live) {
      status = kStatusFinished;
      {
        const sim::PhaseSpan span = ctx.span(sim::Phase::LocalSort);
        std::uint64_t comps = 0;
        sort::local_sort(cfg.local_sort, block, comps);
        ctx.charge_compares(comps);
      }
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoverySort);
      for (const sort::ScheduleStep& st : node_schedule(at, me)) {
        const sim::Tag tag = at.tag_base + st.step;
        ctx.send(st.partner, tag, block);  // a copy: aborts need no rollback
        auto reply =
            co_await ctx.recv_or_timeout(st.partner, tag, rc.detect_patience);
        if (!reply) {
          status = kStatusAborted;  // keep the pre-step block
          if (coord) own_abort = ctx.now();
          break;
        }
        std::uint64_t c1 = 0, c2 = 0;
        sort::merge_split_into(block, reply->payload.span(), st.keep,
                               mine_scratch, c1);
        sort::merge_split_into(reply->payload.span(), block,
                               opposite(st.keep), theirs_scratch, c2);
        ctx.charge_compares(c1 + c2);  // witness upkeep is charged work
        auto& w = witness[st.partner];
        w.first = st.step;
        std::swap(w.second, theirs_scratch);  // recycle the old witness
        std::swap(block, mine_scratch);
        if (ctx.lineage_enabled()) {
          // Commit custody at the merge; the witness_step marks this as a
          // witness-capture step, so both sides of the pair get stamped
          // with their partner as freshest witness at resolution time.
          ctx.note_lineage_retain(st.partner, tag, block,
                                  static_cast<std::int32_t>(st.step));
        }
      }
    }

    // ---- Check-in and verdict (non-coordinator) ------------------------
    if (!coord) {
      {
        const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryCheckin);
        ctx.send(sh.coordinator, cbase + kTagCheckin, {status});
      }
      std::optional<sim::Message> verdict;
      {
        const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryVerdict);
        verdict = co_await ctx.recv_or_timeout(
            sh.coordinator, cbase + kTagVerdict, rc.verdict_patience);
        if (!verdict) sh.degrade("coordinator failed during recovery");
      }
      FTSORT_REQUIRE(!verdict->payload.empty());
      const Key word = verdict->payload[0];
      if (word == kVerdictCommit) co_return;
      if (word == kVerdictDegrade)
        throw DegradationError("graceful degradation: " + sh.first_reason());

      // RESTART: payload[1..] is the casualty list. Send my (rolled-back)
      // block and my witnesses for the dead, then wait for the new block.
      FTSORT_REQUIRE(word == kVerdictRestart);
      {
        const sim::PhaseSpan span = ctx.span(sim::Phase::RecoverySalvage);
        std::vector<Key> wire;
        wire.push_back(static_cast<Key>(block.size()));
        wire.insert(wire.end(), block.begin(), block.end());
        Key nwit = 0;
        std::vector<Key> wits;
        for (std::size_t k = 1; k < verdict->payload.size(); ++k) {
          const NodeId d = static_cast<NodeId>(verdict->payload[k]);
          auto it = witness.find(d);
          if (it == witness.end()) continue;
          ++nwit;
          wits.push_back(static_cast<Key>(d));
          wits.push_back(static_cast<Key>(it->second.first));
          wits.push_back(static_cast<Key>(it->second.second.size()));
          wits.insert(wits.end(), it->second.second.begin(),
                      it->second.second.end());
        }
        wire.push_back(nwit);
        wire.insert(wire.end(), wits.begin(), wits.end());
        ctx.send(sh.coordinator, cbase + kTagWitness, std::move(wire));
      }

      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryRescatter);
      auto rs = co_await ctx.recv_or_timeout(
          sh.coordinator, cbase + kTagRescatter, rc.verdict_patience);
      if (!rs) sh.degrade("coordinator failed during recovery");
      FTSORT_REQUIRE(!rs->payload.empty());
      if (rs->payload[0] == kRescatterDegrade)
        throw DegradationError("graceful degradation: " + sh.first_reason());
      block.assign(rs->payload.begin() + 1, rs->payload.end());
      continue;  // next attempt
    }

    // ---- Coordinator: roll call ----------------------------------------
    std::vector<NodeId> peers;
    for (NodeId u = 0; u < cube::num_nodes(at.plan.n()); ++u)
      if (u != me && !at.plan.faults().is_faulty(u)) peers.push_back(u);

    std::vector<NodeId> dead;
    bool any_abort = status == kStatusAborted;
    sim::SimTime first_timeout = -1.0;
    sim::SimTime last_timeout = -1.0;
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryCheckin);
      for (NodeId u : peers) {
        auto r = co_await ctx.recv_or_timeout(u, cbase + kTagCheckin,
                                              rc.collect_patience);
        if (!r) {
          dead.push_back(u);  // missed roll call: the ground truth of death
          // The timeout left the clock exactly at its deadline; the last
          // one is the run's detect watermark (see sim/timeline.hpp).
          if (first_timeout < 0.0) first_timeout = ctx.now();
          last_timeout = ctx.now();
        } else if (!r->payload.empty() && r->payload[0] == kStatusAborted) {
          any_abort = true;
        }
      }
    }
    const sim::SimTime rollcall_end = ctx.now();

    if (dead.empty() && !any_abort) {
      sh.final_attempt = e;
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryVerdict);
      for (NodeId u : peers)
        ctx.send(u, cbase + kTagVerdict, {kVerdictCommit});
      co_return;
    }

    std::vector<NodeId> survivors;  // peers minus dead, ascending
    std::set_difference(peers.begin(), peers.end(), dead.begin(),
                        dead.end(), std::back_inserter(survivors));

    // Degrade before the verdict: survivors still wait on kTagVerdict.
    auto fail_verdict = [&](const std::string& why) {
      sh.record(why);
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryVerdict);
      for (NodeId u : survivors)
        ctx.send(u, cbase + kTagVerdict, {kVerdictDegrade});
      throw DegradationError("graceful degradation: " + why);
    };
    // Degrade after RESTART went out: survivors wait on kTagRescatter.
    auto fail_salvage = [&](const std::string& why) {
      sh.record(why);
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryRescatter);
      for (NodeId u : survivors)
        ctx.send(u, cbase + kTagRescatter, {kRescatterDegrade});
      throw DegradationError("graceful degradation: " + why);
    };

    if (dead.empty())
      fail_verdict(
          "live processors time out on each other with no deaths — cut "
          "links admit no recovery");
    if (e + 1 >= rc.max_attempts)
      fail_verdict("recovery attempt limit reached");

    const fault::FaultSet grown = at.plan.faults().grown(dead);
    std::optional<partition::Plan> next;
    if (!grown.isolates_healthy_node()) {
      try {
        next = partition::Plan::build(grown);
      } catch (const std::exception&) {
        // no single-fault structure: degrade below
      }
    }
    if (!next || next->live_count() == 0)
      fail_verdict("grown fault set " + grown.to_string() +
                   " admits no single-fault partition");

    std::vector<Key> restart{kVerdictRestart};
    for (NodeId d : dead) restart.push_back(static_cast<Key>(d));
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoveryVerdict);
      for (NodeId u : survivors)
        ctx.send(u, cbase + kTagVerdict, restart);
    }

    // ---- Salvage -------------------------------------------------------
    const std::uint32_t nn = cube::num_nodes(at.plan.n());
    std::vector<Key> pool;  // every salvaged key, exactly once
    // Per dead node, the witness whose block won the salvage — the lineage
    // layer stamps it into the salvaged keys' custody chains.
    std::vector<sim::Lineage::SalvageInfo> salvage_info;
    {
      const sim::PhaseSpan span = ctx.span(sim::Phase::RecoverySalvage);
      std::vector<std::vector<Key>> contributed(nn);
      // Per dead node: freshest (step, block) plus the node that offered
      // it — the lineage layer names that witness in the salvaged keys'
      // custody chains. The scatter record is the step -1 fallback for
      // nodes that never completed an exchange.
      struct BestWitness {
        long step = -1;
        std::vector<Key> blk;
        NodeId from = 0;
      };
      std::map<NodeId, BestWitness> best;
      auto offer = [&](NodeId d, long step, std::vector<Key> w,
                       NodeId from) {
        auto it = best.find(d);
        if (it == best.end() || step > it->second.step)
          best[d] = {step, std::move(w), from};
      };
      contributed[me] = block;
      for (const auto& [d, w] : witness)
        if (std::binary_search(dead.begin(), dead.end(), d))
          offer(d, static_cast<long>(w.first), w.second, me);
      for (NodeId u : survivors) {
        auto r = co_await ctx.recv_or_timeout(u, cbase + kTagWitness,
                                              rc.collect_patience);
        if (!r)
          fail_salvage("processor " + std::to_string(u) +
                       " failed during recovery negotiation");
        const std::vector<Key>& p = r->payload.vec();
        std::size_t k = 0;
        const auto need = [&](std::size_t c) {
          FTSORT_REQUIRE(k + c <= p.size());
        };
        need(1);
        const auto nb = static_cast<std::size_t>(p[k++]);
        need(nb);
        contributed[u].assign(p.begin() + static_cast<std::ptrdiff_t>(k),
                              p.begin() + static_cast<std::ptrdiff_t>(k + nb));
        k += nb;
        need(1);
        const auto nw = static_cast<std::size_t>(p[k++]);
        for (std::size_t t = 0; t < nw; ++t) {
          need(3);
          const NodeId d = static_cast<NodeId>(p[k++]);
          const long stp = static_cast<long>(p[k++]);
          const auto len = static_cast<std::size_t>(p[k++]);
          need(len);
          offer(d, stp,
                std::vector<Key>(p.begin() + static_cast<std::ptrdiff_t>(k),
                                 p.begin() +
                                     static_cast<std::ptrdiff_t>(k + len)),
                u);
          k += len;
        }
      }
      for (NodeId d : dead)
        if (!best.count(d) && d < sh.scatter_record.size())
          offer(d, -1, sh.scatter_record[d], me);

      // Pool every key exactly once, in deterministic order, and verify
      // nothing was lost: concurrent deaths can leave witnesses stale (two
      // casualties that exchanged with each other before dying), which this
      // count + checksum test catches.
      for (NodeId u = 0; u < nn; ++u)
        for (Key key : contributed[u])
          if (key != sim::kDummyKey) pool.push_back(key);
      for (const auto& [d, w] : best)
        for (Key key : w.blk)
          if (key != sim::kDummyKey) pool.push_back(key);
      if (pool.size() != sh.expect_count ||
          checksum(pool) != sh.expect_sum)
        fail_salvage("key salvage failed — concurrent deaths destroyed data");
      for (const auto& [d, w] : best)
        salvage_info.push_back({d, w.from, static_cast<std::int32_t>(w.step)});
    }

    sh.episode_marks.push_back({static_cast<std::uint32_t>(e), dead,
                                own_abort, first_timeout, last_timeout,
                                rollcall_end, ctx.now()});

    // ---- Re-plan and re-scatter ---------------------------------------
    const sim::PhaseSpan rescatter_span =
        ctx.span(sim::Phase::RecoveryRescatter);
    sh.attempts.push_back(
        make_attempt(std::move(*next), cbase + kControlTags));
    const AttemptState& na = sh.attempts.back();
    sort::Distribution dist =
        sort::distribute_evenly(pool, na.plan.live_count());
    std::vector<std::vector<Key>> nb(nn);
    {
      std::size_t slot = 0;
      for (NodeId v = 0; v < na.plan.num_subcubes(); ++v)
        for (NodeId lw = 0; lw < cube::num_nodes(na.plan.s()); ++lw) {
          if (na.lc[v].is_dead(lw)) continue;
          nb[na.plan.physical(v, lw)] = std::move(dist.blocks[slot++]);
        }
    }
    sh.scatter_record = nb;
    // Re-key the lineage holdings against the new scatter. Ordered after
    // every witness receive and before any re-scatter send, so survivors
    // observe post-rescatter custody only once their new block arrives.
    if (ctx.lineage_enabled()) ctx.note_lineage_rescatter(nb, salvage_info);
    for (NodeId u : survivors) {
      std::vector<Key> msg;
      msg.push_back(na.plan.role_of(u).live ? kRescatterLive
                                            : kRescatterIdle);
      msg.insert(msg.end(), nb[u].begin(), nb[u].end());
      ctx.send(u, cbase + kTagRescatter, std::move(msg));
    }
    block = std::move(nb[me]);
  }
}

}  // namespace

SortOutcome recovery_sort(const partition::Plan& plan0,
                          const SortConfig& config,
                          std::span<const sort::Key> keys) {
  FTSORT_REQUIRE(!config.charge_host_io);
  const cube::Dim n = plan0.n();
  const std::uint32_t nn = cube::num_nodes(n);

  Shared sh;
  sh.attempts.reserve(
      static_cast<std::size_t>(std::max(config.recovery.max_attempts, 1)) +
      1);
  sh.attempts.push_back(make_attempt(plan0, 0));
  sh.expect_count = keys.size();
  sh.expect_sum = checksum(keys);
  for (NodeId u = 0; u < nn; ++u)
    if (!plan0.faults().is_faulty(u)) {
      sh.coordinator = u;
      break;
    }

  // Step 2: scatter exactly as the offline sorter does.
  sort::Distribution dist =
      sort::distribute_evenly(keys, plan0.live_count());
  std::vector<std::vector<Key>> block_of(nn);
  {
    const AttemptState& a0 = sh.attempts[0];
    std::size_t slot = 0;
    for (NodeId v = 0; v < a0.plan.num_subcubes(); ++v)
      for (NodeId lw = 0; lw < cube::num_nodes(a0.plan.s()); ++lw) {
        if (a0.lc[v].is_dead(lw)) continue;
        block_of[a0.plan.physical(v, lw)] = std::move(dist.blocks[slot++]);
      }
  }
  sh.block_of = &block_of;
  sh.scatter_record = block_of;

  sim::Machine machine(n, plan0.faults(), config.model, config.cost, {});
  machine.set_injector(config.injector);
  machine.trace().enable(config.record_trace);
  machine.trace().set_capacity(config.trace_capacity);
  machine.profile_host(config.profile_host);
  machine.set_watchdog(config.watchdog);
  if (config.record_metrics) machine.metrics().enable(machine.size());
  if (config.record_link_stats)
    machine.link_stats().enable(machine.size(), machine.dim());
  if (config.record_timeline)
    machine.timeline().enable(machine.size(), machine.dim(),
                              config.timeline_tick);
  if (config.record_lineage) {
    machine.lineage().enable(machine.size(), machine.dim());
    const AttemptState& a0 = sh.attempts[0];
    for (NodeId v = 0; v < a0.plan.num_subcubes(); ++v)
      for (NodeId lw = 0; lw < cube::num_nodes(a0.plan.s()); ++lw) {
        if (a0.lc[v].is_dead(lw)) continue;
        const NodeId u = a0.plan.physical(v, lw);
        machine.lineage().assign_block(u, block_of[u]);
      }
  }
  const auto program = [&sh, &config](sim::NodeCtx& ctx) {
    return node_program(ctx, sh, config);
  };

  // When the run degrades, annotate the error with the failure explainer:
  // the flight recorder outlives collect_report's node teardown, so the
  // root fault and the stalled set are still reconstructable here.
  const auto degradation_error = [&machine, &config](std::string why) {
    std::string msg = "graceful degradation: " + std::move(why);
    const sim::Diagnosis diag =
        machine.diagnose(sim::Diagnosis::Kind::Degradation);
    if (config.record_trace && diag.triggered()) msg += "\n" + diag.to_string();
    return DegradationError(msg, diag);
  };

  SortOutcome out;
  out.block_size = dist.block_size;
  try {
    out.report = config.executor == Executor::Threaded
                     ? machine.run_threaded(program)
                     : machine.run(program);
  } catch (const std::runtime_error&) {
    if (sh.degraded.load()) throw degradation_error(sh.first_reason());
    throw;
  }
  // Recovery traces are long (two sorts plus the negotiation); raise the
  // dump cap so the death and the restart are actually visible.
  if (config.record_trace) {
    out.trace = machine.trace().to_string(50'000);
    out.trace_events = machine.trace().snapshot();
  }
  if (sh.degraded.load()) throw degradation_error(sh.first_reason());
  if (sh.final_attempt < 0)
    throw degradation_error(
        "the recovery coordinator died before any attempt committed");

  // Recovery-latency decomposition (sim/timeline.hpp): turn the
  // coordinator's stage marks into per-episode boundaries. An episode's
  // restart stage runs until the next episode's fault injection, or to the
  // makespan for the last one — so the stages telescope exactly to
  // `makespan - episodes.front().inject`.
  if (!sh.episode_marks.empty()) {
    sim::RecoveryLatency& rl = out.report.recovery_latency;
    rl.enabled = true;
    for (const Shared::EpisodeMark& mk : sh.episode_marks) {
      sim::RecoveryEpisode ep;
      ep.attempt = mk.attempt;
      ep.dead = mk.dead;
      ep.detect_first =
          mk.own_abort >= 0.0 ? mk.own_abort : mk.first_timeout;
      ep.detect_confirm = mk.last_timeout;
      ep.rollcall_end = mk.rollcall_end;
      ep.salvage_end = mk.salvage_end;
      // Earliest injector kill among this round's casualties. A roll call
      // can (in principle) declare a node dead without an injector entry —
      // fall back to the detection clock, making that stage zero-width.
      sim::SimTime inject = sim::kNever;
      for (NodeId d : mk.dead)
        inject = std::min(inject, config.injector.node_kill_time(d));
      ep.inject = inject < sim::kNever ? inject : ep.detect_first;
      rl.episodes.push_back(std::move(ep));
    }
    for (std::size_t k = 0; k + 1 < rl.episodes.size(); ++k)
      rl.episodes[k].restart_end = rl.episodes[k + 1].inject;
    rl.episodes.back().restart_end = out.report.makespan;
  }

  // Gather under the plan that committed.
  const AttemptState& fin =
      sh.attempts[static_cast<std::size_t>(sh.final_attempt)];
  std::vector<std::vector<Key>> in_order;
  in_order.reserve(fin.plan.live_count());
  for (NodeId v = 0; v < fin.plan.num_subcubes(); ++v)
    for (NodeId lw = 0; lw < cube::num_nodes(fin.plan.s()); ++lw) {
      if (fin.lc[v].is_dead(lw)) continue;
      in_order.push_back(std::move(block_of[fin.plan.physical(v, lw)]));
    }
  out.sorted = sort::gather_and_strip(in_order);
  if (config.record_lineage)
    sim::audit_lineage(out.report.lineage, out.sorted);
  return out;
}

}  // namespace ftsort::core
