// Fault sweep: how mincut, dangling processors, utilization, and sort time
// evolve as faults accumulate on one machine — the operator's view of
// graceful degradation.
//
//   $ ./fault_sweep [--n 6] [--keys 16000] [--trials 200] [--seed 7]
#include <iostream>

#include "baseline/max_subcube.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("fault_sweep",
                      "degradation study: metrics vs fault count");
  cli.add_int("n", 6, "hypercube dimension");
  cli.add_int("keys", 16'000, "keys per sort");
  cli.add_int("trials", 200, "random fault placements per r");
  cli.add_int("seed", 7, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  const auto num_keys = static_cast<std::size_t>(cli.integer("keys"));
  const int trials = static_cast<int>(cli.integer("trials"));
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));

  std::cout << "graceful degradation on Q_" << n << " ("
            << cube::num_nodes(n) << " processors), " << num_keys
            << " keys, " << trials << " trials per r\n\n";

  util::Table table({"r", "mean mincut", "mean dangling",
                     "utilization (ours)", "utilization (MFS)",
                     "sort time ms (ours)", "MFS dim (mean)"},
                    std::vector<util::Align>(7, util::Align::Right));

  const auto keys = sort::gen_uniform(num_keys, rng);
  for (std::size_t r = 0; r + 1 <= static_cast<std::size_t>(n); ++r) {
    util::OnlineStats mincut_stats;
    util::OnlineStats dangling_stats;
    util::OnlineStats util_ours;
    util::OnlineStats util_mfs;
    util::OnlineStats mfs_dim;
    for (int t = 0; t < trials; ++t) {
      const auto faults = fault::random_faults(n, r, rng);
      const auto plan = partition::Plan::build(faults);
      mincut_stats.add(plan.search().mincut);
      dangling_stats.add(plan.dangling_count());
      util_ours.add(plan.utilization_percent());
      const auto mfs = baseline::find_max_fault_free_subcube(faults);
      util_mfs.add(mfs->utilization_percent);
      mfs_dim.add(mfs->subcube.dim());
    }
    // One representative timed sort (timing is deterministic per plan).
    const auto faults = fault::random_faults(n, r, rng);
    core::FaultTolerantSorter sorter(n, faults);
    const auto outcome = sorter.sort(keys);

    table.add_row({std::to_string(r),
                   util::Table::fixed(mincut_stats.mean(), 2),
                   util::Table::fixed(dangling_stats.mean(), 2),
                   util::Table::percent(util_ours.mean(), 1),
                   util::Table::percent(util_mfs.mean(), 1),
                   util::Table::fixed(outcome.report.makespan / 1000.0, 2),
                   util::Table::fixed(mfs_dim.mean(), 2)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: the proposed partition keeps utilization near "
               "100% while the maximum fault-free subcube collapses to "
               "50% with the very first fault.\n";
  return 0;
}
