// Partition explorer: run the paper's partition algorithm (§2.2) and
// heuristic selection (§3) on any fault configuration and show every
// intermediate quantity — the cutting set Ψ, per-sequence communication
// overheads, the chosen D_β, and the dangling processors.
//
// With no arguments it reproduces the paper's Examples 1 and 2 (Q_5 with
// faults 3, 5, 16, 24). Pass --n and fault addresses as positionals:
//
//   $ ./partition_explorer --n 6 0 6 9 33
#include <iostream>
#include <sstream>

#include "baseline/max_subcube.hpp"
#include "partition/plan.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::string cuts_to_string(const std::vector<ftsort::cube::Dim>& cuts) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (i != 0) os << ",";
    os << cuts[i];
  }
  os << ")";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("partition_explorer",
                      "explore the fault-tolerant partition algorithm");
  cli.add_int("n", 5, "hypercube dimension");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  std::vector<cube::NodeId> addresses;
  for (const std::string& pos : cli.positional())
    addresses.push_back(static_cast<cube::NodeId>(std::stoul(pos)));
  if (addresses.empty()) addresses = {3, 5, 16, 24};  // paper's Example 1

  const fault::FaultSet faults(n, addresses);
  std::cout << "faulty hypercube: " << faults.to_string() << "\n\n";

  // --- The partition algorithm (§2.2) ---
  const auto search = partition::find_cutting_set(faults);
  std::cout << "mincut m = " << search.mincut << " ("
            << search.tree_nodes_visited
            << " cutting-tree nodes visited, " << search.fault_checks
            << " fault checks)\n";

  // --- Heuristic evaluation of every sequence in Ψ (§3, formula (1)) ---
  util::Table psi_table({"D", "cuts", "sum max(h_i)", "h profile"},
                        {util::Align::Right, util::Align::Left,
                         util::Align::Right, util::Align::Left});
  for (std::size_t i = 0; i < search.cutting_set.size(); ++i) {
    const cube::CutSplit split(n, search.cutting_set[i]);
    const auto profile = partition::extra_overhead(faults, split);
    std::ostringstream hs;
    for (std::size_t k = 0; k < profile.h.size(); ++k) {
      if (k != 0) hs << " ";
      hs << profile.h[k];
    }
    psi_table.add_row({"D_" + std::to_string(i + 1),
                       cuts_to_string(search.cutting_set[i]),
                       std::to_string(profile.total), hs.str()});
  }
  std::cout << "\ncutting set Psi (" << search.cutting_set.size()
            << " sequences):\n"
            << psi_table.to_string(2);

  // --- The selected plan, with danglings ---
  const auto plan = partition::Plan::build(faults);
  std::cout << "\nselected D_beta = "
            << cuts_to_string(plan.selection().cuts)
            << " (overhead " << plan.selection().overhead.total << ")\n";
  if (plan.has_dead()) {
    util::Table sub_table({"subcube v", "dead node", "kind"},
                          {util::Align::Right, util::Align::Right,
                           util::Align::Left});
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v) {
      const cube::NodeId dead =
          plan.split().global_address(v, plan.dead_w(v));
      sub_table.add_row({std::to_string(v), std::to_string(dead),
                         plan.dead_is_fault(v) ? "faulty" : "dangling"});
    }
    std::cout << "\nper-subcube dead processors:\n"
              << sub_table.to_string(2);
  }
  std::cout << "\nlive processors N' = " << plan.live_count() << " of "
            << faults.healthy_count() << " healthy ("
            << util::Table::percent(plan.utilization_percent())
            << " utilization)\n";

  // --- Contrast with the baseline reconfiguration ---
  const auto mfs = baseline::find_max_fault_free_subcube(faults);
  if (mfs) {
    std::cout << "\nmaximum fault-free subcube baseline: Q_"
              << mfs->subcube.dim() << " ("
              << util::Table::percent(mfs->utilization_percent)
              << " utilization, " << mfs->dangling_count
              << " dangling)\n";
  }
  return 0;
}
