// Online recovery demo: a processor dies in the middle of the sort — after
// the bitonic phase is already under way — and the machine finishes anyway.
//
// The run is replayed on both executors to show the logical histories are
// identical, then once more with the event trace on so the death, the
// timeouts it causes, and the restart are visible.
//
//   $ ./recovery_demo [--n 4] [--keys 4000] [--victim 11] [--when-pct 50]
//
// Pass `--trace out.json` to save the traced run in Chrome trace_events
// format (open at ui.perfetto.dev: one track per node, the recovery stages
// as nested spans, message flows as arrows) and `--metrics metrics.json`
// for the phase-attributed counter breakdown.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sim/exporters.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("recovery_demo",
                      "kill a processor mid-sort and recover online");
  cli.add_int("n", 4, "hypercube dimension");
  cli.add_int("keys", 4'000, "number of keys");
  cli.add_int("victim", 11, "processor to kill");
  cli.add_int("when-pct", 50,
              "kill time as a percentage of the fault-free makespan");
  cli.add_int("seed", 7, "random seed");
  cli.add_string("trace", "",
                 "write the traced run as Chrome/Perfetto trace JSON");
  cli.add_string("metrics", "",
                 "write the traced run's phase metrics as JSON");
  cli.add_flag("timeline",
               "sample queue/pool/in-flight series over sim time (adds "
               "timeline counter tracks to --trace and a timeline block "
               "to --metrics)");
  cli.add_flag("lineage",
               "track per-key custody through the kill and salvage (adds "
               "the audit verdict below and a lineage block to --metrics)");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  const auto victim = static_cast<cube::NodeId>(cli.integer("victim"));
  if (victim >= cube::num_nodes(n)) {
    std::cerr << "error: --victim " << victim << " is not a node of Q_"
              << n << " (valid: 0.." << cube::num_nodes(n) - 1 << ")\n";
    return 1;
  }
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const auto keys =
      sort::gen_uniform(static_cast<std::size_t>(cli.integer("keys")), rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  // Fault-free recovery-mode run: the yardstick for the kill time.
  core::SortConfig base;
  base.online_recovery = true;
  core::FaultTolerantSorter calm(n, fault::FaultSet(n), base);
  const auto calm_out = calm.sort(keys);
  const sim::SimTime t0 = calm_out.report.makespan;
  std::cout << "fault-free run:    makespan " << t0 / 1000.0 << " ms, "
            << calm_out.report.messages << " messages\n";

  // Scale the patience tiers to this workload so the detection latency does
  // not dwarf the sort itself (the defaults are sized for arbitrary
  // workloads). The detect tier must stay above the natural clock skew
  // between live partners — re-scattered blocks arrive staggered — so one
  // full fault-free makespan is the conservative choice.
  base.recovery.detect_patience = 1.0 * t0;
  base.recovery.collect_patience = 2.5 * t0;
  base.recovery.verdict_patience = 50.0 * t0;

  const double frac =
      static_cast<double>(cli.integer("when-pct")) / 100.0;
  const sim::SimTime when = frac * t0;
  std::cout << "injecting:         kill node " << victim << " at "
            << when / 1000.0 << " ms (" << cli.integer("when-pct")
            << "% of the fault-free makespan)\n\n";

  for (const auto& [exec, label] :
       {std::pair{core::Executor::Sequential, "sequential"},
        std::pair{core::Executor::Threaded, "threaded  "}}) {
    core::SortConfig cfg = base;
    cfg.executor = exec;
    cfg.injector.kill_node_at(victim, when);
    core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
    core::SortOutcome out;
    try {
      out = sorter.sort(keys);
    } catch (const core::DegradationError& e) {
      std::cout << label << " run:    " << e.what() << '\n';
      continue;
    }
    std::cout << label << " run:    makespan " << out.report.makespan / 1000.0
              << " ms, " << out.report.messages << " messages, "
              << out.report.timeouts << " timeouts, killed:";
    for (auto u : out.report.killed_nodes) std::cout << ' ' << u;
    std::cout << ", sorted: "
              << (out.sorted == expected ? "yes" : "NO — BUG") << '\n';
  }

  // Once more with the trace on, to watch the machinery work.
  core::SortConfig traced = base;
  traced.record_trace = true;
  traced.record_metrics = true;   // per-phase counters for --metrics
  traced.record_link_stats = true;  // traffic matrix + counter tracks
  if (cli.flag("timeline")) {
    traced.record_timeline = true;
    // ~1000 samples across the run: the fault-free makespan is the best
    // available scale estimate (recovery stretches it, which just means
    // a few more ticks).
    traced.timeline_tick = std::max(1.0, t0 / 1000.0);
  }
  if (cli.flag("lineage")) traced.record_lineage = true;
  traced.injector.kill_node_at(victim, when);
  core::FaultTolerantSorter sorter(n, fault::FaultSet(n), traced);
  core::SortOutcome out;
  try {
    out = sorter.sort(keys);
  } catch (const core::DegradationError& e) {
    // This fault load is unrecoverable (e.g. the coordinator was killed, or
    // too many deaths for a single-fault partition): the protocol's promise
    // is a clean error either way, which is what we just demonstrated.
    std::cout << "\nthis fault is beyond online recovery — the run ends "
                 "with a clean error instead of a wrong answer:\n  "
              << e.what() << '\n';
    return 0;
  }
  std::cout << "\nrecovery overhead: "
            << (out.report.makespan - t0) / 1000.0 << " ms ("
            << 100.0 * (out.report.makespan - t0) / t0
            << "% over the fault-free run)\n";
  if (out.report.diagnosis.triggered())
    std::cout << "\nwhat the flight recorder saw:\n  "
              << out.report.diagnosis.to_string() << '\n';
  if (out.report.recovery_latency.enabled) {
    std::cout << "\nwhere the recovery time went (per episode, ms):\n";
    for (const sim::RecoveryEpisode& ep :
         out.report.recovery_latency.episodes) {
      std::cout << "  attempt " << ep.attempt << " (dead:";
      for (auto u : ep.dead) std::cout << ' ' << u;
      std::cout << "): detect " << ep.detection() / 1000.0 << ", roll-call "
                << ep.roll_call() / 1000.0 << ", salvage "
                << ep.salvage() / 1000.0 << ", restart "
                << ep.restart() / 1000.0 << '\n';
    }
  }
  if (out.report.lineage.enabled) {
    const sim::LineageSnapshot& lin = out.report.lineage;
    std::cout << "\nkey custody (lineage): " << lin.assigned
              << " ids tracked, " << lin.audit.salvaged
              << " salvaged off the dead node ("
              << lin.audit.witnessed_salvaged
              << " through a recorded witness)\n"
              << "  audit: "
              << (lin.audit.ok ? "OK — every key in the output exactly once"
                               : "VIOLATED")
              << " (" << lin.audit.lost.size() << " lost, "
              << lin.audit.duplicated.size() << " duplicated)\n";
    // The farthest-travelled keys: custody moves are where the recovery
    // re-scatter shows up per key.
    std::vector<std::size_t> order(lin.keys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return lin.keys[a].hops_total() >
                              lin.keys[b].hops_total();
                     });
    std::cout << "  top travelers:";
    for (std::size_t i = 0; i < order.size() && i < 3; ++i) {
      const sim::LineageKeyRecord& k = lin.keys[order[i]];
      std::cout << (i != 0 ? "," : "") << " id " << order[i] << " ("
                << k.hops_total() << " hops, " << k.moves << " moves"
                << (k.salvaged ? ", salvaged" : "") << ")";
    }
    std::cout << '\n';
  }

  std::cout << "\nevent trace around the death (timeout = a survivor "
               "detecting the loss):\n";
  // Show only the interesting kinds; the full trace is huge.
  std::size_t shown = 0;
  std::istringstream lines(out.trace);
  for (std::string line; std::getline(lines, line) && shown < 24;) {
    if (line.find("kill") != std::string::npos ||
        line.find("timeout") != std::string::npos ||
        line.find("drop") != std::string::npos) {
      std::cout << "  " << line << '\n';
      ++shown;
    }
  }

  if (!cli.str("trace").empty()) {
    std::ofstream tf(cli.str("trace"));
    // With the cost model attached the export adds per-dimension counter
    // tracks: watch keys_in_flight spike on the dimensions the recovery
    // re-scatter crosses.
    const sim::ChromeTraceOptions topts{
        .cost = &out.report.cost,
        .trace_dropped = out.report.trace_dropped,
        .timeline = &out.report.timeline,
        .lineage = &out.report.lineage};
    sim::write_chrome_trace(tf, out.trace_events, cube::num_nodes(n), topts);
    std::cout << "\nwrote trace: " << cli.str("trace")
              << " (open at ui.perfetto.dev)\n";
  }
  if (!cli.str("metrics").empty()) {
    std::ofstream mf(cli.str("metrics"));
    sim::write_metrics_json(mf, out.report);
    std::cout << "wrote metrics: " << cli.str("metrics") << '\n';
  }
  return out.sorted == expected ? 0 : 1;
}
