// Resilience story: a hypercube machine that keeps sorting as processors
// die underneath it — the operational scenario motivating the paper
// ("continuing operations of the hypercube multicomputers after failure of
// one or more processors").
//
// One batch of keys is sorted per epoch; between epochs one more random
// processor fails. Each epoch re-runs off-line diagnosis, rebuilds the
// partition plan, and reports how the machine degrades — against what the
// maximum fault-free subcube reconfiguration would have salvaged.
//
//   $ ./resilience_story [--n 6] [--keys 32000] [--epochs 6] [--seed 3]
#include <algorithm>
#include <iostream>

#include "baseline/max_subcube.hpp"
#include "core/ft_sorter.hpp"
#include "fault/diagnosis.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("resilience_story",
                      "keep sorting while processors die");
  cli.add_int("n", 6, "hypercube dimension");
  cli.add_int("keys", 32'000, "keys per batch");
  cli.add_int("epochs", 6, "number of batches (faults grow by one each)");
  cli.add_int("seed", 3, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  const auto epochs = cli.integer("epochs");
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const auto keys =
      sort::gen_uniform(static_cast<std::size_t>(cli.integer("keys")), rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  std::vector<cube::NodeId> failed;
  util::Table table({"epoch", "faults", "mincut", "live", "utilization",
                     "batch time (ms)", "MFS would use", "sorted?"},
                    std::vector<util::Align>(8, util::Align::Right));

  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    // Diagnose the current machine state (the operator does not get to
    // peek at ground truth).
    const fault::FaultSet truth(n, failed);
    const auto diagnosis = fault::diagnose_fail_stop(truth);
    if (!(diagnosis.complete && diagnosis.identified == truth)) {
      std::cout << "diagnosis failed at epoch " << epoch << "\n";
      return 1;
    }

    core::FaultTolerantSorter sorter(n, diagnosis.identified);
    const auto outcome = sorter.sort(keys);
    const auto mfs =
        baseline::find_max_fault_free_subcube(diagnosis.identified);

    table.add_row(
        {std::to_string(epoch), std::to_string(failed.size()),
         std::to_string(sorter.plan().search().mincut),
         std::to_string(sorter.plan().live_count()),
         util::Table::percent(sorter.plan().utilization_percent(), 1),
         util::Table::fixed(outcome.report.makespan / 1000.0, 2),
         "Q_" + std::to_string(mfs->subcube.dim()),
         outcome.sorted == expected ? "yes" : "NO"});

    // One more processor dies before the next batch.
    std::vector<cube::NodeId> healthy;
    for (cube::NodeId u = 0; u < cube::num_nodes(n); ++u)
      if (!truth.is_faulty(u)) healthy.push_back(u);
    failed.push_back(
        healthy[static_cast<std::size_t>(rng.below(healthy.size()))]);
  }

  std::cout << "machine: Q_" << n << " (" << cube::num_nodes(n)
            << " processors), one new processor failure per epoch\n\n"
            << table.to_string()
            << "\nthe machine never stops sorting; time degrades "
               "gracefully while the MFS alternative would have thrown "
               "away half the healthy processors at the first fault.\n";
  return 0;
}
