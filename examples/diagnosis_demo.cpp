// Diagnosis demo: the off-line fault identification step the paper assumes
// (§1), run both as the closed-form protocol model and as a real SPMD
// program on the simulator — every healthy node pings its neighbours, then
// floods its verdicts until the whole healthy subgraph agrees.
//
//   $ ./diagnosis_demo [--n 5] [--r 3] [--seed 3]
#include <iostream>

#include "fault/diagnosis.hpp"
#include "fault/scenario.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"

namespace {

using namespace ftsort;

/// SPMD flooding diagnosis on the Machine. Faulty nodes never run, so a
/// healthy node discovers a neighbour's fault by *absence*: in this
/// synchronous rendering, each healthy node exchanges its current fault map
/// with every healthy neighbour for `rounds` rounds; a neighbour that is
/// faulty contributes nothing and is marked locally. Payload encoding: one
/// key per node, 1 = faulty.
sim::RunReport run_spmd_diagnosis(const fault::FaultSet& truth, int rounds,
                                  std::vector<bool>& recovered) {
  const cube::Dim n = truth.dim();
  const cube::NodeId size = truth.cube_size();
  std::vector<std::vector<bool>> maps(size, std::vector<bool>(size, false));

  sim::Machine machine(n, truth);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    auto& map = maps[ctx.id()];
    // Ping phase happens implicitly: the fault set is known to the harness
    // and a faulty neighbour would never ack, so seed the local view.
    for (cube::Dim d = 0; d < n; ++d) {
      const cube::NodeId v = cube::neighbor(ctx.id(), d);
      if (ctx.is_faulty(v)) map[v] = true;
    }
    for (int round = 0; round < rounds; ++round) {
      const sim::Tag tag = static_cast<sim::Tag>(round);
      for (cube::Dim d = 0; d < n; ++d) {
        const cube::NodeId v = cube::neighbor(ctx.id(), d);
        if (ctx.is_faulty(v)) continue;
        std::vector<sim::Key> payload;
        for (cube::NodeId w = 0; w < size; ++w)
          payload.push_back(map[w] ? 1 : 0);
        ctx.send(v, tag, std::move(payload));
      }
      for (cube::Dim d = 0; d < n; ++d) {
        const cube::NodeId v = cube::neighbor(ctx.id(), d);
        if (ctx.is_faulty(v)) continue;
        const sim::Message msg = co_await ctx.recv(v, tag);
        for (cube::NodeId w = 0; w < size; ++w)
          if (msg.payload[w] != 0) map[w] = true;
      }
    }
    co_return;
  };
  const auto report = machine.run(program);

  // Verify all healthy nodes agree and extract the map.
  recovered.assign(size, false);
  for (cube::NodeId u = 0; u < size; ++u) {
    if (truth.is_faulty(u)) continue;
    recovered = maps[u];
    break;
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("diagnosis_demo",
                      "off-line fail-stop fault diagnosis on Q_n");
  cli.add_int("n", 5, "hypercube dimension");
  cli.add_int("r", 3, "number of faults");
  cli.add_int("seed", 3, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  const auto r = static_cast<std::size_t>(cli.integer("r"));
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const auto truth = fault::random_faults(n, r, rng);
  std::cout << "ground truth: " << truth.to_string() << "\n\n";

  // Closed-form protocol model.
  const auto model = fault::diagnose_fail_stop(truth);
  std::cout << "protocol model: " << model.rounds << " rounds, "
            << model.messages << " messages, "
            << (model.complete && model.identified == truth
                    ? "recovered exactly"
                    : "MISMATCH")
            << "\n";

  // SPMD rendering on the simulator, using the model's round count.
  std::vector<bool> recovered;
  const auto report = run_spmd_diagnosis(truth, model.rounds, recovered);
  bool exact = true;
  for (cube::NodeId u = 0; u < truth.cube_size(); ++u)
    exact &= (recovered[u] == truth.is_faulty(u));
  std::cout << "SPMD run:       " << report.messages << " messages, "
            << report.makespan / 1000.0 << " ms simulated, "
            << (exact ? "recovered exactly" : "MISMATCH") << "\n";
  return 0;
}
