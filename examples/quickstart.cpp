// Quickstart: sort keys on a faulty hypercube in a dozen lines.
//
//   $ ./quickstart
//
// Builds a 5-dimensional (32-processor) simulated hypercube with two faulty
// processors, sorts 10,000 random keys with the fault-tolerant algorithm,
// and prints the partition plan and the simulated execution time.
#include <iostream>

#include "core/ft_sorter.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ftsort;

  // A Q_5 with processors 7 and 22 permanently faulty.
  const cube::Dim n = 5;
  const fault::FaultSet faults(n, {7, 22});

  // The sorter computes the partition plan once (mincut, D_beta, dangling
  // processors) and can then sort any number of inputs.
  core::FaultTolerantSorter sorter(n, faults);
  std::cout << "plan: " << sorter.plan().to_string() << "\n";

  util::Rng rng(2026);
  const auto keys = sort::gen_uniform(10'000, rng);
  const auto outcome = sorter.sort(keys);

  std::cout << "sorted " << outcome.sorted.size() << " keys: "
            << (std::is_sorted(outcome.sorted.begin(),
                               outcome.sorted.end())
                    ? "OK"
                    : "FAILED")
            << "\n"
            << "block size per processor: " << outcome.block_size << "\n"
            << "simulated time: " << outcome.report.makespan / 1000.0
            << " ms\n"
            << "messages: " << outcome.report.messages
            << ", keys on wire: " << outcome.report.keys_sent
            << ", comparisons: " << outcome.report.comparisons << "\n";
  return 0;
}
