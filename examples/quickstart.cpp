// Quickstart: sort keys on a faulty hypercube in a dozen lines.
//
//   $ ./quickstart [--trace out.json] [--metrics metrics.json]
//
// Builds a 5-dimensional (32-processor) simulated hypercube with two faulty
// processors, sorts 10,000 random keys with the fault-tolerant algorithm,
// and prints the partition plan and the simulated execution time. The
// optional flags save a Perfetto-loadable trace (ui.perfetto.dev) and a
// phase-attributed metrics JSON of the run.
#include <fstream>
#include <iostream>

#include "core/ft_sorter.hpp"
#include "sim/exporters.hpp"
#include "sim/link_stats.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("quickstart", "sort keys on a faulty hypercube");
  cli.add_string("trace", "", "write Chrome/Perfetto trace JSON");
  cli.add_string("metrics", "", "write phase metrics JSON");
  if (!cli.parse(argc, argv)) return 1;

  // A Q_5 with processors 7 and 22 permanently faulty.
  const cube::Dim n = 5;
  const fault::FaultSet faults(n, {7, 22});

  // The sorter computes the partition plan once (mincut, D_beta, dangling
  // processors) and can then sort any number of inputs.
  core::SortConfig cfg;
  cfg.record_trace = !cli.str("trace").empty();
  cfg.record_metrics =
      cfg.record_trace || !cli.str("metrics").empty();
  // Per-link traffic matrix: feeds the console summary below, the
  // metrics-JSON "links" block, and the Perfetto counter tracks.
  cfg.record_link_stats = cfg.record_metrics;
  core::FaultTolerantSorter sorter(n, faults, cfg);
  std::cout << "plan: " << sorter.plan().to_string() << "\n";

  util::Rng rng(2026);
  const auto keys = sort::gen_uniform(10'000, rng);
  const auto outcome = sorter.sort(keys);

  std::cout << "sorted " << outcome.sorted.size() << " keys: "
            << (std::is_sorted(outcome.sorted.begin(),
                               outcome.sorted.end())
                    ? "OK"
                    : "FAILED")
            << "\n"
            << "block size per processor: " << outcome.block_size << "\n"
            << "simulated time: " << outcome.report.makespan / 1000.0
            << " ms\n"
            << "messages: " << outcome.report.messages
            << ", keys on wire: " << outcome.report.keys_sent
            << ", comparisons: " << outcome.report.comparisons << "\n";

  if (cfg.record_link_stats) {
    // Which cube dimension carried the most traffic?
    cube::Dim hot = 0;
    for (cube::Dim d = 1; d < outcome.report.links.dim; ++d)
      if (sim::link_busy_time(outcome.report.links.dim_total(d),
                              outcome.report.cost) >
          sim::link_busy_time(outcome.report.links.dim_total(hot),
                              outcome.report.cost))
        hot = d;
    std::cout << "link traffic: " << outcome.report.links.grand_total().key_hops
              << " key-hops, hottest dimension " << hot << " ("
              << outcome.report.links.dim_total(hot).key_hops
              << " key-hops)\n";
  }

  if (!cli.str("trace").empty()) {
    std::ofstream tf(cli.str("trace"));
    // Passing the cost model adds per-dimension counter tracks
    // (keys_in_flight, link_busy_us) next to the span rows in Perfetto.
    const sim::ChromeTraceOptions topts{
        .cost = &outcome.report.cost,
        .trace_dropped = outcome.report.trace_dropped};
    sim::write_chrome_trace(tf, outcome.trace_events, cube::num_nodes(n),
                            topts);
    std::cout << "wrote trace: " << cli.str("trace")
              << " (open at ui.perfetto.dev)\n";
  }
  if (!cli.str("metrics").empty()) {
    std::ofstream mf(cli.str("metrics"));
    sim::write_metrics_json(mf, outcome.report);
    std::cout << "wrote metrics: " << cli.str("metrics") << "\n";
  }
  return 0;
}
