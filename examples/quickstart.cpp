// Quickstart: sort keys on a faulty hypercube in a dozen lines.
//
//   $ ./quickstart [--trace out.json] [--metrics metrics.json]
//
// Builds a 5-dimensional (32-processor) simulated hypercube with two faulty
// processors, sorts 10,000 random keys with the fault-tolerant algorithm,
// and prints the partition plan and the simulated execution time. The
// optional flags save a Perfetto-loadable trace (ui.perfetto.dev) and a
// phase-attributed metrics JSON of the run.
#include <fstream>
#include <iostream>

#include "core/ft_sorter.hpp"
#include "sim/exporters.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("quickstart", "sort keys on a faulty hypercube");
  cli.add_string("trace", "", "write Chrome/Perfetto trace JSON");
  cli.add_string("metrics", "", "write phase metrics JSON");
  if (!cli.parse(argc, argv)) return 1;

  // A Q_5 with processors 7 and 22 permanently faulty.
  const cube::Dim n = 5;
  const fault::FaultSet faults(n, {7, 22});

  // The sorter computes the partition plan once (mincut, D_beta, dangling
  // processors) and can then sort any number of inputs.
  core::SortConfig cfg;
  cfg.record_trace = !cli.str("trace").empty();
  cfg.record_metrics =
      cfg.record_trace || !cli.str("metrics").empty();
  core::FaultTolerantSorter sorter(n, faults, cfg);
  std::cout << "plan: " << sorter.plan().to_string() << "\n";

  util::Rng rng(2026);
  const auto keys = sort::gen_uniform(10'000, rng);
  const auto outcome = sorter.sort(keys);

  std::cout << "sorted " << outcome.sorted.size() << " keys: "
            << (std::is_sorted(outcome.sorted.begin(),
                               outcome.sorted.end())
                    ? "OK"
                    : "FAILED")
            << "\n"
            << "block size per processor: " << outcome.block_size << "\n"
            << "simulated time: " << outcome.report.makespan / 1000.0
            << " ms\n"
            << "messages: " << outcome.report.messages
            << ", keys on wire: " << outcome.report.keys_sent
            << ", comparisons: " << outcome.report.comparisons << "\n";

  if (!cli.str("trace").empty()) {
    std::ofstream tf(cli.str("trace"));
    sim::write_chrome_trace(tf, outcome.trace_events, cube::num_nodes(n));
    std::cout << "wrote trace: " << cli.str("trace")
              << " (open at ui.perfetto.dev)\n";
  }
  if (!cli.str("metrics").empty()) {
    std::ofstream mf(cli.str("metrics"));
    sim::write_metrics_json(mf, outcome.report);
    std::cout << "wrote metrics: " << cli.str("metrics") << "\n";
  }
  return 0;
}
