// Monte Carlo fault-campaign demo: sweep a seeded universe of fault
// scenarios over Q_n, nest each scenario into buckets r = 0..r_max (bucket
// r injects the first r events of the scenario's sequence), and print the
// reliability and slowdown curves the aggregation distils from the trials.
//
//   $ ./campaign_demo [--n 6] [--r-max 2] [--scenarios 25] [--keys 256]
//
// Pass `--out report.json` to save the schema-v6 CampaignReport; inspect
// it later with `ftdiag campaign report.json`, or diff two campaigns with
// `ftdiag campaign old.json new.json`. Any printed trial can be replayed
// in isolation from (seed, trial index) alone — that pair plus the
// universe shape is the whole provenance of a data point:
// `campaign_demo --seed S --replay I` re-runs trial I of seed S's universe
// and prints its outcome, recovery-latency stage split, and lineage audit
// verdict, so a corrupt trial is diagnosable from the CLI in one command.
#include <cstdint>
#include <fstream>
#include <iostream>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("campaign_demo",
                      "Monte Carlo fault campaign with reliability curves");
  cli.add_int("n", 6, "hypercube dimension");
  cli.add_int("r-max", 2, "largest fault count per scenario");
  cli.add_int("scenarios", 25, "independent fault sequences");
  cli.add_int("keys", 256, "keys sorted per trial");
  cli.add_int("seed", 20260807, "campaign seed");
  cli.add_int("workers", 4, "worker threads (never changes the report)");
  cli.add_flag("threaded", "run every trial on the threaded executor");
  cli.add_flag("timeline",
               "print the per-bucket recovery-latency decomposition "
               "(detect/roll-call/salvage/restart percentiles)");
  cli.add_flag("lineage",
               "print the campaign-wide key-lineage audit rollup and any "
               "trial whose custody audit failed");
  cli.add_int("replay", -1,
              "replay this trial index of the --seed universe alone and "
              "print its stage split + lineage audit verdict");
  cli.add_string("out", "", "write the schema-v6 campaign JSON here");
  if (!cli.parse(argc, argv)) return 1;

  campaign::CampaignConfig cfg;
  cfg.universe.n = static_cast<cube::Dim>(cli.integer("n"));
  cfg.universe.r_max = static_cast<std::size_t>(cli.integer("r-max"));
  cfg.universe.scenarios =
      static_cast<std::uint32_t>(cli.integer("scenarios"));
  cfg.universe.num_keys = static_cast<std::size_t>(cli.integer("keys"));
  cfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  cfg.workers = static_cast<unsigned>(cli.integer("workers"));
  cfg.executor = cli.flag("threaded") ? core::Executor::Threaded
                                      : core::Executor::Sequential;

  std::cout << "universe: Q_" << static_cast<int>(cfg.universe.n) << ", r <= "
            << cfg.universe.r_max << ", " << cfg.universe.scenarios
            << " scenarios -> " << cfg.universe.trials() << " trials\n\n";

  // Replay mode: one trial, fully determined by (seed, index, executor).
  // Same envelope calibration as the campaign, so the trial is bit-for-bit
  // the one the full run would have produced at that index.
  if (cli.integer("replay") >= 0) {
    const auto index = static_cast<std::uint32_t>(cli.integer("replay"));
    if (index >= cfg.universe.trials()) {
      std::cerr << "error: --replay " << index << " out of range (universe "
                << "has " << cfg.universe.trials() << " trials)\n";
      return 1;
    }
    const sim::SimTime envelope = campaign::calibrate_envelope(cfg);
    const campaign::TrialResult t =
        campaign::run_trial(cfg, envelope, index, cfg.executor);
    std::cout << "replay: seed " << cfg.seed << ", trial " << t.index
              << " (scenario " << t.scenario << ", r=" << t.r << ")\n"
              << "  outcome:  " << core::run_outcome_name(t.outcome) << "\n"
              << "  makespan: " << t.makespan << " us, " << t.deaths
              << " death(s), " << t.timeouts << " timeout(s)\n"
              << "  stage split (us): detect " << t.detect_latency
              << ", roll-call " << t.rollcall_latency << ", salvage "
              << t.salvage_latency << ", restart " << t.restart_latency
              << "\n";
    if (t.lineage_checked)
      std::cout << "  lineage audit: "
                << (t.lineage_ok ? "OK — no loss, no duplication"
                                 : "VIOLATED")
                << " (" << t.lineage_lost << " lost, "
                << t.lineage_duplicated << " duplicated)\n";
    else
      std::cout << "  lineage audit: not run (trial did not complete a "
                   "gather)\n";
    if (t.diagnosis.triggered())
      std::cout << "  diagnosis: " << t.diagnosis.to_string() << "\n";
    return t.lineage_checked && !t.lineage_ok ? 1 : 0;
  }

  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  std::cout << campaign::campaign_summary(report) << "\n";

  if (cli.flag("timeline")) {
    std::cout << "recovery-latency decomposition over recovered trials "
                 "(p50/p90, us):\n";
    for (const campaign::BucketStats& b : report.buckets) {
      if (b.recovered == 0) continue;
      std::cout << "  r=" << b.r << ": detect " << b.detect_latency_p50 << "/"
                << b.detect_latency_p90 << ", roll-call "
                << b.rollcall_latency_p50 << "/" << b.rollcall_latency_p90
                << ", salvage " << b.salvage_latency_p50 << "/"
                << b.salvage_latency_p90 << ", restart "
                << b.restart_latency_p50 << "/" << b.restart_latency_p90
                << "\n";
    }
    std::cout << "\n";
  }

  if (cli.flag("lineage")) {
    std::cout << "key-lineage custody audit: " << report.lineage_audited
              << " trial(s) audited, " << report.lineage_ok << " passed\n";
    for (const campaign::TrialResult& t : report.trials)
      if (t.lineage_checked && !t.lineage_ok)
        std::cout << "  trial " << t.index << " (scenario " << t.scenario
                  << ", r=" << t.r << "): " << t.lineage_lost << " lost, "
                  << t.lineage_duplicated << " duplicated — replay with "
                  << "--replay " << t.index << "\n";
    std::cout << "\n";
  }

  if (!report.completion_monotone())
    std::cout << "note: completion probability is not monotone in r for "
                 "this universe — grow --scenarios.\n";

  const std::string out = cli.str("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot write " << out << "\n";
      return 1;
    }
    campaign::write_campaign_json(os, report);
    std::cout << "wrote " << out << " (ftdiag campaign " << out << ")\n";
  }
  return 0;
}
