// Monte Carlo fault-campaign demo: sweep a seeded universe of fault
// scenarios over Q_n, nest each scenario into buckets r = 0..r_max (bucket
// r injects the first r events of the scenario's sequence), and print the
// reliability and slowdown curves the aggregation distils from the trials.
//
//   $ ./campaign_demo [--n 6] [--r-max 2] [--scenarios 25] [--keys 256]
//
// Pass `--out report.json` to save the schema-v5 CampaignReport; inspect
// it later with `ftdiag campaign report.json`, or diff two campaigns with
// `ftdiag campaign old.json new.json`. Any printed trial can be replayed
// in isolation from (seed, trial index) alone — that pair plus the
// universe shape is the whole provenance of a data point.
#include <cstdint>
#include <fstream>
#include <iostream>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("campaign_demo",
                      "Monte Carlo fault campaign with reliability curves");
  cli.add_int("n", 6, "hypercube dimension");
  cli.add_int("r-max", 2, "largest fault count per scenario");
  cli.add_int("scenarios", 25, "independent fault sequences");
  cli.add_int("keys", 256, "keys sorted per trial");
  cli.add_int("seed", 20260807, "campaign seed");
  cli.add_int("workers", 4, "worker threads (never changes the report)");
  cli.add_flag("threaded", "run every trial on the threaded executor");
  cli.add_flag("timeline",
               "print the per-bucket recovery-latency decomposition "
               "(detect/roll-call/salvage/restart percentiles)");
  cli.add_string("out", "", "write the schema-v5 campaign JSON here");
  if (!cli.parse(argc, argv)) return 1;

  campaign::CampaignConfig cfg;
  cfg.universe.n = static_cast<cube::Dim>(cli.integer("n"));
  cfg.universe.r_max = static_cast<std::size_t>(cli.integer("r-max"));
  cfg.universe.scenarios =
      static_cast<std::uint32_t>(cli.integer("scenarios"));
  cfg.universe.num_keys = static_cast<std::size_t>(cli.integer("keys"));
  cfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  cfg.workers = static_cast<unsigned>(cli.integer("workers"));
  cfg.executor = cli.flag("threaded") ? core::Executor::Threaded
                                      : core::Executor::Sequential;

  std::cout << "universe: Q_" << static_cast<int>(cfg.universe.n) << ", r <= "
            << cfg.universe.r_max << ", " << cfg.universe.scenarios
            << " scenarios -> " << cfg.universe.trials() << " trials\n\n";

  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  std::cout << campaign::campaign_summary(report) << "\n";

  if (cli.flag("timeline")) {
    std::cout << "recovery-latency decomposition over recovered trials "
                 "(p50/p90, us):\n";
    for (const campaign::BucketStats& b : report.buckets) {
      if (b.recovered == 0) continue;
      std::cout << "  r=" << b.r << ": detect " << b.detect_latency_p50 << "/"
                << b.detect_latency_p90 << ", roll-call "
                << b.rollcall_latency_p50 << "/" << b.rollcall_latency_p90
                << ", salvage " << b.salvage_latency_p50 << "/"
                << b.salvage_latency_p90 << ", restart "
                << b.restart_latency_p50 << "/" << b.restart_latency_p90
                << "\n";
    }
    std::cout << "\n";
  }

  if (!report.completion_monotone())
    std::cout << "note: completion probability is not monotone in r for "
                 "this universe — grow --scenarios.\n";

  const std::string out = cli.str("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot write " << out << "\n";
      return 1;
    }
    campaign::write_campaign_json(os, report);
    std::cout << "wrote " << out << " (ftdiag campaign " << out << ")\n";
  }
  return 0;
}
