// Monte Carlo fault-campaign demo: sweep a seeded universe of fault
// scenarios over Q_n, nest each scenario into buckets r = 0..r_max (bucket
// r injects the first r events of the scenario's sequence), and print the
// reliability and slowdown curves the aggregation distils from the trials.
//
//   $ ./campaign_demo [--n 6] [--r-max 2] [--scenarios 25] [--keys 256]
//
// Pass `--out report.json` to save the schema-v7 CampaignReport; inspect
// it later with `ftdiag campaign report.json`, or diff two campaigns with
// `ftdiag campaign old.json new.json`. Any printed trial can be replayed
// in isolation from (seed, trial index) alone — that pair plus the
// universe shape is the whole provenance of a data point:
// `campaign_demo --seed S --replay I` re-runs trial I of seed S's universe
// and prints its outcome, recovery-latency stage split, and lineage audit
// verdict, so a corrupt trial is diagnosable from the CLI in one command.
//
// Liveness: `--workers 0` sizes the pool from the hardware; a TTY gets a
// live stderr progress line (trials/sec, per-bucket completion, ETA,
// heartbeat age); `--watchdog` arms the wall-clock stall monitor
// (sim/watchdog.hpp) over both every trial and the pool itself, writing
// a black-box dump (`ftdiag stuck dump.json`) on a trip. Ctrl-C flushes
// the completed prefix to --out as a partial report and exits 128+signal
// instead of dropping the sweep on the floor. None of these knobs change
// a single report byte — that is the watchdog's headline invariant.
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "sim/watchdog.hpp"
#include "util/cli.hpp"
#include "util/progress.hpp"

namespace {

// Signal flags: written by the handler, read by the campaign's cancel
// hook and the epilogue. Lock-free atomics are async-signal-safe here.
std::atomic<bool> g_cancel{false};
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  g_signal.store(sig);
  g_cancel.store(true);
}

/// Pool width for --workers W: W itself, or the hardware concurrency
/// (capped — a 128-way box gains nothing past the trial count) when 0.
unsigned effective_workers(std::int64_t requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cap = 16;
  return hw == 0 ? 4 : std::min(hw, cap);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("campaign_demo",
                      "Monte Carlo fault campaign with reliability curves");
  cli.add_int("n", 6, "hypercube dimension");
  cli.add_int("r-max", 2, "largest fault count per scenario");
  cli.add_int("scenarios", 25, "independent fault sequences");
  cli.add_int("keys", 256, "keys sorted per trial");
  cli.add_int("seed", 20260807, "campaign seed");
  cli.add_int("workers", 4,
              "worker threads; 0 = hardware concurrency (never changes "
              "the report)");
  cli.add_flag("threaded", "run every trial on the threaded executor");
  cli.add_flag("timeline",
               "print the per-bucket recovery-latency decomposition "
               "(detect/roll-call/salvage/restart percentiles)");
  cli.add_flag("lineage",
               "print the campaign-wide key-lineage audit rollup and any "
               "trial whose custody audit failed");
  cli.add_int("replay", -1,
              "replay this trial index of the --seed universe alone and "
              "print its stage split + lineage audit verdict");
  cli.add_flag("watchdog",
               "arm the wall-clock stall watchdog over every trial and "
               "the worker pool");
  cli.add_int("watchdog-deadline-ms", 10000,
              "watchdog no-progress deadline (wall ms)");
  cli.add_string("watchdog-dump", "",
                 "write the black-box stall dump here on a trip "
                 "(decode with `ftdiag stuck`)");
  cli.add_flag("progress",
               "force the live stderr progress line even off-TTY");
  cli.add_string("out", "", "write the schema-v7 campaign JSON here");
  if (!cli.parse(argc, argv)) return 1;

  campaign::CampaignConfig cfg;
  cfg.universe.n = static_cast<cube::Dim>(cli.integer("n"));
  cfg.universe.r_max = static_cast<std::size_t>(cli.integer("r-max"));
  cfg.universe.scenarios =
      static_cast<std::uint32_t>(cli.integer("scenarios"));
  cfg.universe.num_keys = static_cast<std::size_t>(cli.integer("keys"));
  cfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  cfg.workers = effective_workers(cli.integer("workers"));
  cfg.executor = cli.flag("threaded") ? core::Executor::Threaded
                                      : core::Executor::Sequential;
  if (cli.flag("watchdog")) {
    cfg.watchdog.enabled = true;
    cfg.watchdog.deadline_ms =
        static_cast<std::uint32_t>(cli.integer("watchdog-deadline-ms"));
    cfg.watchdog.dump_path = cli.str("watchdog-dump");
  }

  std::cout << "universe: Q_" << static_cast<int>(cfg.universe.n) << ", r <= "
            << cfg.universe.r_max << ", " << cfg.universe.scenarios
            << " scenarios -> " << cfg.universe.trials() << " trials\n"
            << "pool: " << cfg.workers << " worker(s)"
            << (cli.integer("workers") == 0 ? " (hardware)" : "")
            << ", watchdog "
            << (cfg.watchdog.enabled
                    ? "armed (" +
                          std::to_string(cfg.watchdog.deadline_ms) +
                          " ms deadline)"
                    : "off")
            << "\n\n";

  // Replay mode: one trial, fully determined by (seed, index, executor).
  // Same envelope calibration as the campaign, so the trial is bit-for-bit
  // the one the full run would have produced at that index.
  if (cli.integer("replay") >= 0) {
    const auto index = static_cast<std::uint32_t>(cli.integer("replay"));
    if (index >= cfg.universe.trials()) {
      std::cerr << "error: --replay " << index << " out of range (universe "
                << "has " << cfg.universe.trials() << " trials)\n";
      return 1;
    }
    const sim::SimTime envelope = campaign::calibrate_envelope(cfg);
    const campaign::TrialResult t =
        campaign::run_trial(cfg, envelope, index, cfg.executor);
    std::cout << "replay: seed " << cfg.seed << ", trial " << t.index
              << " (scenario " << t.scenario << ", r=" << t.r << ")\n"
              << "  outcome:  " << core::run_outcome_name(t.outcome) << "\n"
              << "  makespan: " << t.makespan << " us, " << t.deaths
              << " death(s), " << t.timeouts << " timeout(s)\n"
              << "  stage split (us): detect " << t.detect_latency
              << ", roll-call " << t.rollcall_latency << ", salvage "
              << t.salvage_latency << ", restart " << t.restart_latency
              << "\n";
    if (t.lineage_checked)
      std::cout << "  lineage audit: "
                << (t.lineage_ok ? "OK — no loss, no duplication"
                                 : "VIOLATED")
                << " (" << t.lineage_lost << " lost, "
                << t.lineage_duplicated << " duplicated)\n";
    else
      std::cout << "  lineage audit: not run (trial did not complete a "
                   "gather)\n";
    if (t.diagnosis.triggered())
      std::cout << "  diagnosis: " << t.diagnosis.to_string() << "\n";
    return t.lineage_checked && !t.lineage_ok ? 1 : 0;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  cfg.cancel = &g_cancel;

  util::ProgressLine progress(cli.flag("progress") || util::stderr_is_tty());
  cfg.on_progress = [&progress](const campaign::CampaignProgress& p) {
    std::ostringstream line;
    line << "campaign: " << p.done << "/" << p.total << " trials";
    if (p.trials_per_sec > 0.0) {
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.1f", p.trials_per_sec);
      line << ", " << rate << "/s, eta " << util::format_eta(p.eta_s);
    }
    line << ", buckets";
    for (std::size_t r = 0; r < p.bucket_done.size(); ++r)
      line << (r == 0 ? " " : "/") << p.bucket_done[r];
    line << " of " << p.bucket_total << ", beat " << p.heartbeat_age_ms
         << "ms";
    progress.update(line.str());
  };

  campaign::CampaignReport report;
  try {
    report = campaign::run_campaign(cfg);
  } catch (const sim::WatchdogError& e) {
    progress.finish();
    std::cerr << "watchdog: " << e.what() << "\n";
    return 3;
  }
  progress.finish();

  std::cout << campaign::campaign_summary(report) << "\n";
  if (report.partial)
    std::cout << "note: PARTIAL report — the sweep was interrupted after "
              << report.trials.size() << " trial(s); curves cover the "
                 "completed prefix only.\n\n";

  if (cli.flag("timeline")) {
    std::cout << "recovery-latency decomposition over recovered trials "
                 "(p50/p90, us):\n";
    for (const campaign::BucketStats& b : report.buckets) {
      if (b.recovered == 0) continue;
      std::cout << "  r=" << b.r << ": detect " << b.detect_latency_p50 << "/"
                << b.detect_latency_p90 << ", roll-call "
                << b.rollcall_latency_p50 << "/" << b.rollcall_latency_p90
                << ", salvage " << b.salvage_latency_p50 << "/"
                << b.salvage_latency_p90 << ", restart "
                << b.restart_latency_p50 << "/" << b.restart_latency_p90
                << "\n";
    }
    std::cout << "\n";
  }

  if (cli.flag("lineage")) {
    std::cout << "key-lineage custody audit: " << report.lineage_audited
              << " trial(s) audited, " << report.lineage_ok << " passed\n";
    for (const campaign::TrialResult& t : report.trials)
      if (t.lineage_checked && !t.lineage_ok)
        std::cout << "  trial " << t.index << " (scenario " << t.scenario
                  << ", r=" << t.r << "): " << t.lineage_lost << " lost, "
                  << t.lineage_duplicated << " duplicated — replay with "
                  << "--replay " << t.index << "\n";
    std::cout << "\n";
  }

  if (!report.completion_monotone() && !report.partial)
    std::cout << "note: completion probability is not monotone in r for "
                 "this universe — grow --scenarios.\n";

  const std::string out = cli.str("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot write " << out << "\n";
      return 1;
    }
    campaign::write_campaign_json(os, report);
    std::cout << "wrote " << out << (report.partial ? " (partial)" : "")
              << " (ftdiag campaign " << out << ")\n";
  }
  // An interrupted run exits 128+signal (130 for SIGINT, 143 for
  // SIGTERM) after the flush above, matching shell convention.
  const int sig = g_signal.load();
  return sig != 0 ? 128 + sig : 0;
}
