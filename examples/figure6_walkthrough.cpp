// Figure 6 walkthrough: the paper's running example, state by state.
//
// Q_5 with faulty processors {3, 5, 16, 24} is partitioned by
// D_β = (0, 1, 3) into F_5^3; 47 keys are distributed over the 24 live
// processors (blocks of 2, one dummy). This program drives the sorting
// algorithm *phase by phase* using the library's SPMD primitives and
// prints every intermediate state, mirroring Fig. 6(a)–(i):
//   (a) distribution, (b) after Step 3, then after each Step 7 and Step 8
//   of the subcube-level merge (i = 0..2, j = i..0).
//
//   $ ./figure6_walkthrough [--keys 47] [--seed 6]
#include <iostream>
#include <sstream>

#include "partition/plan.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "sort/spmd_bitonic.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftsort;
using sort::Key;

struct Walkthrough {
  partition::Plan plan;
  std::vector<sort::LogicalCube> subcube_lc;
  std::vector<std::vector<Key>> block_of;  // by machine address
  sort::ExchangeProtocol protocol = sort::ExchangeProtocol::HalfExchange;

  explicit Walkthrough(const fault::FaultSet& faults)
      : plan(partition::Plan::build(faults)),
        block_of(cube::num_nodes(faults.dim())) {
    subcube_lc.resize(plan.num_subcubes());
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v) {
      auto& lc = subcube_lc[v];
      lc.s = plan.s();
      lc.dead0 = plan.has_dead();
      lc.phys.resize(cube::num_nodes(plan.s()));
      for (cube::NodeId lw = 0; lw < lc.size(); ++lw)
        lc.phys[lw] = plan.physical(v, lw);
    }
  }

  void scatter(const std::vector<Key>& keys) {
    auto dist = sort::distribute_evenly(keys, plan.live_count());
    std::size_t slot = 0;
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v)
      for (cube::NodeId lw = 0; lw < subcube_lc[v].size(); ++lw) {
        if (subcube_lc[v].is_dead(lw)) continue;
        block_of[plan.physical(v, lw)] = std::move(dist.blocks[slot++]);
      }
  }

  /// Run one phase of the algorithm as its own simulation run.
  void run_phase(const sim::Machine::Program& program) {
    sim::Machine machine(plan.n(), plan.faults());
    machine.run(program);
  }

  void print_state(const std::string& label) {
    std::cout << label << "\n";
    for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v) {
      std::ostringstream row;
      row << "  subcube v=" << v << ":";
      for (cube::NodeId lw = 0; lw < subcube_lc[v].size(); ++lw) {
        if (subcube_lc[v].is_dead(lw)) {
          row << "  [w'=0: dead]";
          continue;
        }
        row << "  [w'=" << lw << ":";
        for (Key key : block_of[plan.physical(v, lw)]) {
          if (key == sim::kDummyKey)
            row << " inf";
          else
            row << " " << key;
        }
        row << "]";
      }
      std::cout << row.str() << "\n";
    }
    std::cout << "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("figure6_walkthrough",
                      "the paper's Fig. 6 example, phase by phase");
  cli.add_int("keys", 47, "number of keys");
  cli.add_int("seed", 6, "shuffle seed");
  if (!cli.parse(argc, argv)) return 1;

  const fault::FaultSet faults(5, {3, 5, 16, 24});
  Walkthrough wt(faults);
  std::cout << "plan: " << wt.plan.to_string() << "\n\n";

  // Keys 1..M shuffled: small values so states read like the figure.
  std::vector<Key> keys(static_cast<std::size_t>(cli.integer("keys")));
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<Key>(i + 1);
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  rng.shuffle(keys);

  wt.scatter(keys);
  wt.print_state("(a) keys distributed to re-indexed live processors");

  // Step 3a: local heapsort.
  wt.run_phase([&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const auto role = wt.plan.role_of(ctx.id());
    if (!role.live) co_return;
    std::uint64_t comparisons = 0;
    sort::heapsort(wt.block_of[ctx.id()], comparisons);
    ctx.charge_compares(comparisons);
  });
  // Step 3b: single-fault bitonic sort per subcube, direction by parity.
  wt.run_phase([&](sim::NodeCtx& ctx) -> sim::Task<void> {
    const auto role = wt.plan.role_of(ctx.id());
    if (!role.live) co_return;
    const bool ascending = cube::bit(role.v, 0) == 0;
    co_await sort::block_bitonic_sort(ctx, wt.subcube_lc[role.v],
                                      role.logical_w,
                                      wt.block_of[ctx.id()], ascending,
                                      wt.protocol, 0);
  });
  wt.print_state(
      "(b) after Step 3: each subcube sorted (ascending iff v even)");

  // Steps 4-8.
  const cube::Dim m = wt.plan.m();
  char figure_label = 'c';
  for (cube::Dim i = 0; i < m; ++i) {
    for (cube::Dim j = i; j >= 0; --j) {
      // Step 7: inter-subcube merge-split between corresponding nodes.
      wt.run_phase([&](sim::NodeCtx& ctx) -> sim::Task<void> {
        const auto role = wt.plan.role_of(ctx.id());
        if (!role.live) co_return;
        const int mask =
            (i + 1 == m) ? 0 : cube::bit(role.v, i + 1);
        const cube::NodeId v2 = cube::neighbor(role.v, j);
        const cube::NodeId partner = wt.plan.physical(v2, role.logical_w);
        const auto keep = (cube::bit(role.v, j) == mask)
                              ? sort::SplitHalf::Lower
                              : sort::SplitHalf::Upper;
        wt.block_of[ctx.id()] = co_await sort::exchange_merge_split(
            ctx, partner, 0, std::move(wt.block_of[ctx.id()]), keep,
            wt.protocol);
      });
      std::ostringstream label7;
      label7 << "(" << figure_label++ << ") after Step 7, i=" << i
             << " j=" << j << " (exchange along subcube dimension " << j
             << ")";
      wt.print_state(label7.str());

      // Step 8: re-sort each subcube (merge variant).
      wt.run_phase([&](sim::NodeCtx& ctx) -> sim::Task<void> {
        const auto role = wt.plan.role_of(ctx.id());
        if (!role.live) co_return;
        const int mask =
            (i + 1 == m) ? 0 : cube::bit(role.v, i + 1);
        const int v_jm1 = (j == 0) ? 0 : cube::bit(role.v, j - 1);
        const auto keep = (cube::bit(role.v, j) == mask)
                              ? sort::SplitHalf::Lower
                              : sort::SplitHalf::Upper;
        co_await sort::block_bitonic_merge(
            ctx, wt.subcube_lc[role.v], role.logical_w,
            wt.block_of[ctx.id()], /*ascending=*/v_jm1 == mask, keep,
            wt.protocol, 0);
      });
      std::ostringstream label8;
      label8 << "(" << figure_label++ << ") after Step 8, i=" << i
             << " j=" << j << " (subcubes re-sorted)";
      wt.print_state(label8.str());
    }
  }

  // Verify.
  std::vector<std::vector<Key>> in_order;
  for (cube::NodeId v = 0; v < wt.plan.num_subcubes(); ++v)
    for (cube::NodeId lw = 0; lw < wt.subcube_lc[v].size(); ++lw) {
      if (wt.subcube_lc[v].is_dead(lw)) continue;
      in_order.push_back(wt.block_of[wt.plan.physical(v, lw)]);
    }
  const auto sorted = sort::gather_and_strip(in_order);
  const bool ok = sort::is_ascending(sorted) && sorted.size() == keys.size();
  std::cout << "final check: " << (ok ? "globally sorted in subcube order"
                                      : "NOT SORTED (bug!)")
            << "\n";
  return ok ? 0 : 1;
}
