// NCUBE/7 demo: the paper's experimental setting — a 64-processor MIMD
// hypercube — reproduced end to end on the simulator.
//
//   $ ./ncube_demo [--r 3] [--keys 32000] [--seed 1992] [--total-faults]
//                  [--trace]
//
// Pipeline: inject r random faults, run off-line diagnosis to identify
// them, build the partition plan, sort, and compare against the
// maximum-fault-free-subcube baseline.
#include <algorithm>
#include <iostream>

#include "baseline/mfs_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/diagnosis.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("ncube_demo",
                      "fault-tolerant sorting on a simulated NCUBE/7");
  cli.add_int("r", 3, "number of faulty processors (0..5)");
  cli.add_int("keys", 32'000, "number of keys to sort");
  cli.add_int("seed", 1992, "random seed");
  cli.add_flag("total-faults",
               "faulty nodes also stop forwarding (total fault model)");
  cli.add_flag("trace", "dump the first simulation events");
  if (!cli.parse(argc, argv)) return 1;

  const cube::Dim n = 6;  // NCUBE/7: 2^6 = 64 processors
  const auto r = static_cast<std::size_t>(cli.integer("r"));
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));

  std::cout << "=== simulated NCUBE/7: 64 processors, " << r
            << " faults ===\n";
  const auto faults = fault::random_faults(n, r, rng);
  std::cout << "injected: " << faults.to_string() << "\n";

  // Off-line diagnosis (the paper assumes fault locations are known; we
  // show the fail-stop protocol actually finding them).
  const auto diagnosis = fault::diagnose_fail_stop(faults);
  std::cout << "diagnosis: " << (diagnosis.complete ? "complete" : "partial")
            << " in " << diagnosis.rounds << " flooding rounds, "
            << diagnosis.messages << " messages; identified "
            << diagnosis.identified.count() << " faults "
            << (diagnosis.identified == faults ? "(correct)" : "(WRONG)")
            << "\n\n";

  core::SortConfig config;
  config.model = cli.flag("total-faults") ? fault::FaultModel::Total
                                          : fault::FaultModel::Partial;
  config.record_trace = cli.flag("trace");

  core::FaultTolerantSorter sorter(n, diagnosis.identified, config);
  std::cout << "plan: " << sorter.plan().to_string() << "\n";

  const auto keys =
      sort::gen_uniform(static_cast<std::size_t>(cli.integer("keys")), rng);
  const auto outcome = sorter.sort(keys);
  const bool ok = std::is_sorted(outcome.sorted.begin(),
                                 outcome.sorted.end()) &&
                  outcome.sorted.size() == keys.size();
  std::cout << "fault-tolerant sort: " << (ok ? "OK" : "FAILED") << "\n";
  if (config.record_trace) std::cout << outcome.trace << "\n";

  // Baseline for the same scenario.
  const auto baseline = baseline::mfs_bitonic_sort(
      n, faults, keys, config.model, config.cost);

  util::Table table({"algorithm", "processors", "time (ms)", "messages",
                     "key-hops"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right, util::Align::Right,
                     util::Align::Right});
  table.add_row({"proposed (F_n^m partition)",
                 std::to_string(sorter.plan().live_count()),
                 util::Table::fixed(outcome.report.makespan / 1000.0, 2),
                 std::to_string(outcome.report.messages),
                 std::to_string(outcome.report.key_hops)});
  table.add_row(
      {"baseline (max fault-free Q_" +
           std::to_string(baseline.reconfiguration.subcube.dim()) + ")",
       std::to_string(baseline.reconfiguration.subcube.size()),
       util::Table::fixed(baseline.report.makespan / 1000.0, 2),
       std::to_string(baseline.report.messages),
       std::to_string(baseline.report.key_hops)});
  std::cout << "\n" << table.to_string();

  const double speedup =
      baseline.report.makespan / std::max(outcome.report.makespan, 1.0);
  std::cout << "\nspeedup over baseline: " << util::Table::fixed(speedup, 2)
            << "x\n";
  return 0;
}
