// Ablation: does the Σ max(h_i) heuristic for choosing D_β (§3, formula 1)
// actually buy execution time?
//
// For random fault configurations with |Ψ| > 1, sort once with the
// heuristic's choice and once with the worst sequence in Ψ (by the same
// formula) under the *total* fault model, where the re-index hop penalty
// h_i shows up in every inter-subcube exchange. Reports overheads and
// makespans side by side.
#include <iostream>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Ablation: heuristic D_beta selection vs worst member "
               "of Psi (Q_6, 32,000 keys) ===\n\n";

  util::Rng rng(11);
  const auto keys = sort::gen_uniform(32'000, rng);

  util::Table table({"r", "cases |Psi|>1", "overhead best", "overhead worst",
                     "time best (ms)", "time worst (ms)", "saved"},
                    std::vector<util::Align>(7, util::Align::Right));

  for (std::size_t r = 3; r <= 5; ++r) {
    int multi = 0;
    util::OnlineStats best_overhead;
    util::OnlineStats worst_overhead;
    util::OnlineStats best_time;
    util::OnlineStats worst_time;
    for (int trial = 0; trial < 25; ++trial) {
      const auto faults = fault::random_faults(6, r, rng);
      const auto search = partition::find_cutting_set(faults);
      if (search.cutting_set.size() < 2) continue;

      std::size_t best_idx = 0;
      std::size_t worst_idx = 0;
      int best_cost = -1;
      int worst_cost = -1;
      for (std::size_t i = 0; i < search.cutting_set.size(); ++i) {
        const cube::CutSplit split(6, search.cutting_set[i]);
        const int cost = partition::extra_overhead(faults, split).total;
        if (best_cost < 0 || cost < best_cost) {
          best_cost = cost;
          best_idx = i;
        }
        if (cost > worst_cost) {
          worst_cost = cost;
          worst_idx = i;
        }
      }
      if (best_cost == worst_cost) continue;  // choice cannot matter
      ++multi;
      best_overhead.add(best_cost);
      worst_overhead.add(worst_cost);

      for (const bool use_best : {true, false}) {
        const auto& cuts =
            search.cutting_set[use_best ? best_idx : worst_idx];
        core::SortConfig config;
        core::FaultTolerantSorter sorter(
            partition::Plan::build_with_cuts(faults, cuts), config);
        const double ms = sorter.sort(keys).report.makespan / 1000.0;
        (use_best ? best_time : worst_time).add(ms);
      }
    }
    const double saved =
        worst_time.count() == 0
            ? 0.0
            : 100.0 * (worst_time.mean() - best_time.mean()) /
                  worst_time.mean();
    table.add_row({std::to_string(r), std::to_string(multi),
                   util::Table::fixed(best_overhead.mean(), 2),
                   util::Table::fixed(worst_overhead.mean(), 2),
                   util::Table::fixed(best_time.mean(), 2),
                   util::Table::fixed(worst_time.mean(), 2),
                   util::Table::percent(saved, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nthe gap is the re-indexing hop penalty of Steps 5-8; "
               "larger Psi spreads (higher r) give the heuristic more to "
               "save.\n";
  return 0;
}
