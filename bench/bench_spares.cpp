// Extension bench: algorithmic fault tolerance (this paper) vs the
// hardware spare-allocation family its introduction argues against.
//
// Hardware spares restore a *full* fault-free cube — until a module takes
// a second hit; the algorithmic approach never fails for r <= n-1 but
// pays a utilization tax. This bench quantifies the intro's qualitative
// trade-off on Q_6.
#include <iostream>

#include "baseline/spare_allocation.hpp"
#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;
  constexpr int kTrials = 10'000;
  const cube::Dim n = 6;

  std::cout << "=== Algorithmic FT vs hardware spare allocation (Q_6, "
            << kTrials << " random fault sets per r) ===\n\n";

  const auto schemes = {baseline::fine_spares(n),
                        baseline::medium_spares(n),
                        baseline::coarse_spares(n)};

  util::Table hw({"scheme", "spares", "switches", "idle silicon"},
                 {util::Align::Left, util::Align::Right,
                  util::Align::Right, util::Align::Right});
  for (const auto& scheme : schemes)
    hw.add_row({scheme.name, std::to_string(scheme.spares()),
                std::to_string(scheme.switches()),
                util::Table::percent(
                    100.0 * (1.0 - scheme.silicon_utilization()), 1)});
  std::cout << "hardware overhead (always paid, faults or not):\n"
            << hw.to_string() << "\n";

  util::Table table({"r", "algorithmic utilization",
                     "survive fine g=4", "survive medium g=8",
                     "survive coarse g=16"},
                    std::vector<util::Align>(5, util::Align::Right));
  util::Rng rng(1992);
  for (std::size_t r = 1; r <= 5; ++r) {
    util::OnlineStats utilization;
    for (int t = 0; t < 200; ++t) {
      const auto faults = fault::random_faults(n, r, rng);
      utilization.add(
          partition::Plan::build(faults).utilization_percent());
    }
    std::vector<std::string> row{std::to_string(r),
                                 util::Table::percent(utilization.mean(),
                                                      1)};
    for (const auto& scheme : schemes)
      row.push_back(util::Table::percent(
          100.0 * baseline::survival_probability(scheme, r, kTrials, rng),
          1));
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
  std::cout
      << "\nreading: spares give 100% capability while they survive, but "
         "survival decays fast with r and the spare/switch hardware idles "
         "permanently; the algorithmic approach never fails within the "
         "paper's envelope and needs no extra silicon — the intro's "
         "argument, quantified.\n";
  return 0;
}
