// Extension bench: three algorithmic answers to a faulty hypercube.
//
//   1. the paper's partitioned bitonic sort (log^2-step, ~full utilization)
//   2. max fault-free subcube + plain bitonic (log^2-step, poor utilization)
//   3. odd-even transposition on the Gray-code ring of all healthy nodes
//      (perfect utilization, linear phases)
//
// The table shows where each wins as the machine size grows — the ring's
// linear phase count kills it beyond tiny cubes even though it wastes no
// processors, which is why the paper had to keep the bitonic structure.
#include <iostream>

#include "baseline/mfs_sorter.hpp"
#include "baseline/ring_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Alternatives on a faulty cube (r = 2, 32,000 keys, "
               "times in ms) ===\n\n";

  util::Rng rng(77);
  const auto keys = sort::gen_uniform(32'000, rng);

  util::Table table({"n", "proposed", "MFS bitonic", "ring odd-even",
                     "ring/proposed"},
                    std::vector<util::Align>(5, util::Align::Right));
  for (cube::Dim n = 3; n <= 6; ++n) {
    const auto faults = fault::random_faults(n, 2, rng);
    core::FaultTolerantSorter sorter(n, faults);
    const double ours = sorter.sort(keys).report.makespan / 1000.0;
    const double mfs =
        baseline::mfs_bitonic_sort(n, faults, keys).report.makespan /
        1000.0;
    const double ring =
        baseline::ring_odd_even_sort(n, faults, keys).report.makespan /
        1000.0;
    table.add_row({std::to_string(n), util::Table::fixed(ours, 1),
                   util::Table::fixed(mfs, 1),
                   util::Table::fixed(ring, 1),
                   util::Table::fixed(ring / ours, 2)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: the ring wastes nothing but pays 2^n phases; "
               "its gap to the proposed algorithm widens with n, which is "
               "the reason a bitonic-structured fault-tolerant sort is "
               "worth the partition machinery.\n";
  return 0;
}
