// Ablation: Step 3's local sorting algorithm.
//
// The paper prescribes heapsort and charges its worst case. Mergesort and
// quicksort do measurably fewer comparisons, which translates directly
// into simulated time because local comparisons are on the critical path
// for large M. Also reports the raw comparison counts per kernel.
#include <algorithm>
#include <iostream>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Ablation: local sort kernel (Q_6, r = 2, 320,000 "
               "keys) ===\n\n";

  util::Rng rng(9);
  const auto faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(320'000, rng);

  // Raw kernel comparison counts at the per-node block size.
  const std::size_t block = 320'000 / 62 + 1;
  util::Table kernels({"kernel", "comparisons on one block",
                       "per key"},
                      {util::Align::Left, util::Align::Right,
                       util::Align::Right});
  for (const auto algorithm :
       {sort::LocalSort::Heapsort, sort::LocalSort::Mergesort,
        sort::LocalSort::Quicksort}) {
    auto data = sort::gen_uniform(block, rng);
    std::uint64_t comparisons = 0;
    sort::local_sort(algorithm, data, comparisons);
    const char* name = algorithm == sort::LocalSort::Heapsort
                           ? "heapsort (paper)"
                           : algorithm == sort::LocalSort::Mergesort
                                 ? "mergesort"
                                 : "quicksort";
    kernels.add_row({name, std::to_string(comparisons),
                     util::Table::fixed(
                         static_cast<double>(comparisons) /
                             static_cast<double>(block),
                         2)});
  }
  std::cout << kernels.to_string() << "\n";

  util::Table table({"local sort", "time (ms)", "total comparisons"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right});
  for (const auto algorithm :
       {sort::LocalSort::Heapsort, sort::LocalSort::Mergesort,
        sort::LocalSort::Quicksort}) {
    core::SortConfig config;
    config.local_sort = algorithm;
    core::FaultTolerantSorter sorter(6, faults, config);
    const auto outcome = sorter.sort(keys);
    const char* name = algorithm == sort::LocalSort::Heapsort
                           ? "heapsort (paper)"
                           : algorithm == sort::LocalSort::Mergesort
                                 ? "mergesort"
                                 : "quicksort";
    table.add_row({name,
                   util::Table::fixed(outcome.report.makespan / 1000.0, 2),
                   std::to_string(outcome.report.comparisons)});
  }
  std::cout << table.to_string();
  std::cout << "\nthe comparison gap between heapsort and mergesort moves "
               "end-to-end time by only a few percent here: at the NCUBE "
               "ratio the wire, not Step 3, dominates — the paper's "
               "heapsort choice costs little.\n";
  return 0;
}
