// Google-benchmark micro: the partition algorithm's O(rN) claim and its
// component kernels, measured in real wall time.
#include <benchmark/benchmark.h>

#include "baseline/max_subcube.hpp"
#include "fault/scenario.hpp"
#include "partition/partition.hpp"
#include "partition/plan.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftsort;

void BM_FindCuttingSet(benchmark::State& state) {
  const auto n = static_cast<cube::Dim>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  util::Rng rng(static_cast<std::uint64_t>(n * 31 + state.range(1)));
  const auto faults = fault::random_faults(n, r, rng);
  std::uint64_t checks = 0;
  for (auto _ : state) {
    auto result = partition::find_cutting_set(faults);
    checks = result.fault_checks;
    benchmark::DoNotOptimize(result);
  }
  state.counters["fault_checks"] = static_cast<double>(checks);
  state.counters["rN"] =
      static_cast<double>(r) * cube::num_nodes(n);
}

void BM_PlanBuild(benchmark::State& state) {
  const auto n = static_cast<cube::Dim>(state.range(0));
  util::Rng rng(7);
  const auto faults = fault::random_faults(
      n, static_cast<std::size_t>(n - 1), rng);
  for (auto _ : state) {
    auto plan = partition::Plan::build(faults);
    benchmark::DoNotOptimize(plan);
  }
}

void BM_CheckingTree(benchmark::State& state) {
  const auto n = static_cast<cube::Dim>(state.range(0));
  util::Rng rng(9);
  const auto faults = fault::random_faults(
      n, static_cast<std::size_t>(n - 1), rng);
  const std::vector<cube::Dim> cuts{0, 1, 2};
  for (auto _ : state) {
    bool ok = partition::is_single_fault_structure(faults, cuts);
    benchmark::DoNotOptimize(ok);
  }
}

void BM_MaxFaultFreeSubcube(benchmark::State& state) {
  const auto n = static_cast<cube::Dim>(state.range(0));
  util::Rng rng(11);
  const auto faults = fault::random_faults(
      n, static_cast<std::size_t>(n - 1), rng);
  for (auto _ : state) {
    auto result = baseline::find_max_fault_free_subcube(faults);
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace

BENCHMARK(BM_FindCuttingSet)
    ->Args({4, 3})
    ->Args({6, 5})
    ->Args({8, 7})
    ->Args({10, 9})
    ->Args({12, 11});
BENCHMARK(BM_PlanBuild)->Arg(6)->Arg(8)->Arg(10);
BENCHMARK(BM_CheckingTree)->Arg(6)->Arg(10)->Arg(14);
BENCHMARK(BM_MaxFaultFreeSubcube)->Arg(4)->Arg(6)->Arg(8);

BENCHMARK_MAIN();
