// Figure 7(d): execution time vs number of keys on Q_4 (16 processors).
#include "fig7_common.hpp"

int main() {
  ftsort::bench::run_figure7(4, "d");
  return 0;
}
