// Ablation: the paper's half-exchange protocol vs naive full-block
// exchange, with and without a per-message start-up cost.
//
// Both protocols move the same total key volume; the half-exchange does the
// split with half the comparison-bandwidth per phase but twice the message
// count, so it only loses ground once messages carry a fixed software
// start-up (the situation §4 attributes to VERTEX).
#include <iostream>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Ablation: exchange protocol x message start-up cost "
               "(Q_6, r = 3, 64,000 keys) ===\n\n";

  util::Rng rng(5);
  const auto faults = fault::random_faults(6, 3, rng);
  const auto keys = sort::gen_uniform(64'000, rng);

  util::Table table({"protocol", "t_startup (us)", "time (ms)", "messages",
                     "comparisons"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right, util::Align::Right,
                     util::Align::Right});

  for (const double startup : {0.0, 350.0}) {
    for (const auto protocol : {sort::ExchangeProtocol::HalfExchange,
                                sort::ExchangeProtocol::FullExchange}) {
      core::SortConfig config;
      config.protocol = protocol;
      config.cost = sim::CostModel{2.0, 8.0, startup};
      core::FaultTolerantSorter sorter(6, faults, config);
      const auto outcome = sorter.sort(keys);
      table.add_row(
          {protocol == sort::ExchangeProtocol::HalfExchange
               ? "half-exchange (paper)"
               : "full-exchange",
           util::Table::fixed(startup, 0),
           util::Table::fixed(outcome.report.makespan / 1000.0, 2),
           std::to_string(outcome.report.messages),
           std::to_string(outcome.report.comparisons)});
    }
  }
  std::cout << table.to_string();
  return 0;
}
