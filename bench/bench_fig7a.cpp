// Figure 7(a): execution time vs number of keys on Q_6 (64 processors),
// r = 0..5 faults, against fault-free subcube baselines.
#include "fig7_common.hpp"

int main() {
  ftsort::bench::run_figure7(6, "a");
  return 0;
}
