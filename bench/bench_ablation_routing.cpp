// Ablation: partial vs total fault model (§4).
//
// Under partial faults the VERTEX router forwards messages through faulty
// nodes (e-cube distance); under total faults messages must detour around
// them (adaptive routing). The paper predicts total faults cost more; this
// bench quantifies how much, per fault count.
#include <iostream>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Ablation: partial vs total fault model (Q_6, 32,000 "
               "keys, mean of 5 placements) ===\n\n";

  util::Rng rng(21);
  const auto keys = sort::gen_uniform(32'000, rng);

  util::Table table({"r", "partial (ms)", "total (ms)", "slowdown",
                     "key-hops partial", "key-hops total"},
                    std::vector<util::Align>(6, util::Align::Right));

  for (std::size_t r = 1; r <= 5; ++r) {
    util::OnlineStats partial_ms;
    util::OnlineStats total_ms;
    util::OnlineStats partial_hops;
    util::OnlineStats total_hops;
    for (int trial = 0; trial < 5; ++trial) {
      const auto faults = fault::random_faults(6, r, rng);
      core::SortConfig partial_cfg;
      partial_cfg.model = fault::FaultModel::Partial;
      core::SortConfig total_cfg;
      total_cfg.model = fault::FaultModel::Total;
      const auto rp =
          core::FaultTolerantSorter(6, faults, partial_cfg).sort(keys);
      const auto rt =
          core::FaultTolerantSorter(6, faults, total_cfg).sort(keys);
      partial_ms.add(rp.report.makespan / 1000.0);
      total_ms.add(rt.report.makespan / 1000.0);
      partial_hops.add(static_cast<double>(rp.report.key_hops));
      total_hops.add(static_cast<double>(rt.report.key_hops));
    }
    table.add_row(
        {std::to_string(r), util::Table::fixed(partial_ms.mean(), 2),
         util::Table::fixed(total_ms.mean(), 2),
         util::Table::fixed(total_ms.mean() / partial_ms.mean(), 3),
         util::Table::fixed(partial_hops.mean(), 0),
         util::Table::fixed(total_hops.mean(), 0)});
  }
  std::cout << table.to_string();
  std::cout << "\nthe paper's §4 remark — \"the execution time will be "
               "more than the partial fault if the cube has the fault "
               "total property\" — is the slowdown column staying >= "
               "1.\n";
  return 0;
}
