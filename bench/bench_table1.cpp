// Table 1 of the paper: distribution of mincut values.
//
// For each (n, r) with 3 <= n <= 6, 0 <= r <= n-1, draw the addresses of r
// faulty processors uniformly at random 10,000 times and report what
// fraction of the draws partitions into F_n^m for each mincut value m.
// The paper's headline cell: n = 6, r = 5 gives m = 3 in 93.85% of cases
// and m = 4 in 0.15%.
#include <iostream>

#include "fault/scenario.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;
  constexpr int kTrials = 10'000;

  std::cout << "=== Table 1: percentages of mincut values m ("
            << kTrials << " random fault placements per cell) ===\n\n";

  util::Table table({"n", "r", "m=0", "m=1", "m=2", "m=3", "m=4"},
                    std::vector<util::Align>(7, util::Align::Right));

  util::Rng rng(19920401);  // ICPP 1992
  for (cube::Dim n = 3; n <= 6; ++n) {
    for (std::size_t r = 0; r + 1 <= static_cast<std::size_t>(n); ++r) {
      util::Histogram mincuts;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto faults = fault::random_faults(n, r, rng);
        mincuts.add(partition::find_cutting_set(faults).mincut);
      }
      std::vector<std::string> row{std::to_string(n), std::to_string(r)};
      for (int m = 0; m <= 4; ++m) {
        const double pct = mincuts.percent(m);
        row.push_back(pct == 0.0 ? "-" : util::Table::percent(pct));
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << table.to_string();
  std::cout << "\npaper reference (n=6, r=5): m=3 at 93.85%, m=4 at "
               "0.15%; the overwhelming mass on the smallest feasible m "
               "is the property the partition algorithm is biased "
               "toward.\n";
  return 0;
}
