// The paper's closed-form worst-case T (§3) against the simulator, term
// structure included — how tight is the analysis it publishes?
//
// The formula assumes the literal Step 8 full re-sort, so the comparison
// runs in Step8Mode::FullSort. "predicted" is T; "simulated" is the
// critical-path makespan; ratio < 1 always (T is a worst-case bound).
#include <iostream>

#include "core/analytic.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Paper formula T vs simulation (FullSort Step 8, "
               "64,000 keys) ===\n\n";

  util::Rng rng(3);
  const auto keys = sort::gen_uniform(64'000, rng);

  util::Table table({"n", "r", "m", "s", "predicted T (ms)",
                     "simulated (ms)", "sim/T"},
                    std::vector<util::Align>(7, util::Align::Right));
  for (cube::Dim n = 4; n <= 6; ++n) {
    for (std::size_t r = 1; r + 1 <= static_cast<std::size_t>(n); ++r) {
      const auto faults = fault::random_faults(n, r, rng);
      core::SortConfig config;
      config.step8 = core::Step8Mode::FullSort;
      core::FaultTolerantSorter sorter(n, faults, config);
      const auto outcome = sorter.sort(keys);
      const auto predicted = core::predicted_sort_time(
          sorter.plan(), keys.size(), config.cost);
      table.add_row(
          {std::to_string(n), std::to_string(r),
           std::to_string(sorter.plan().m()),
           std::to_string(sorter.plan().s()),
           util::Table::fixed(predicted.total / 1000.0, 2),
           util::Table::fixed(outcome.report.makespan / 1000.0, 2),
           util::Table::fixed(outcome.report.makespan / predicted.total,
                              3)});
    }
  }
  std::cout << table.to_string();

  // Term breakdown for one configuration.
  const auto faults = fault::random_faults(6, 5, rng);
  core::SortConfig config;
  config.step8 = core::Step8Mode::FullSort;
  core::FaultTolerantSorter sorter(6, faults, config);
  const auto breakdown =
      core::predicted_sort_time(sorter.plan(), keys.size(), config.cost);
  std::cout << "\nterm breakdown (n=6, r=5, ms): heapsort "
            << util::Table::fixed(breakdown.heapsort / 1000.0, 2)
            << ", Step 3 subcube sort "
            << util::Table::fixed(breakdown.intra_sort / 1000.0, 2)
            << ", Step 7 exchanges "
            << util::Table::fixed(breakdown.inter_exchange / 1000.0, 2)
            << ", Step 8 re-sorts "
            << util::Table::fixed(breakdown.inter_resort / 1000.0, 2)
            << "\n(the dominant Step 8 term is what the merge variant "
               "removes; see bench_ablation_cost)\n";
  return 0;
}
