// Figure 7(b): execution time vs number of keys on Q_5 (32 processors).
#include "fig7_common.hpp"

int main() {
  ftsort::bench::run_figure7(5, "b");
  return 0;
}
