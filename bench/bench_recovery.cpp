// Recovery-time overhead vs fault count: how much logical time the online
// recovery protocol adds per mid-run death, on both executors.
//
// Each row kills k processors at staggered times (so every recovery round
// handles one new death — the structure the protocol is guaranteed to
// recover from while the grown fault set stays within r <= n-1) and
// reports the makespan against the fault-free recovery-mode run. The
// detection patience dominates the overhead: every death costs its
// partners one detect timeout plus the coordinator one roll-call timeout,
// then a full re-sort of the salvaged keys.
//
//   $ ./bench_recovery [--n 4] [--keys 16000] [--max-kills 3] [--seed 5]
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sort/distribution.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftsort;

  util::CliParser cli("bench_recovery",
                      "online recovery overhead vs number of deaths");
  cli.add_int("n", 4, "hypercube dimension");
  cli.add_int("keys", 16'000, "number of keys");
  cli.add_int("max-kills", 3, "largest number of injected deaths");
  cli.add_int("seed", 5, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<cube::Dim>(cli.integer("n"));
  const auto max_kills = cli.integer("max-kills");
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const auto keys =
      sort::gen_uniform(static_cast<std::size_t>(cli.integer("keys")), rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  core::SortConfig base;
  base.online_recovery = true;

  // Fault-free yardstick.
  core::FaultTolerantSorter calm(n, fault::FaultSet(n), base);
  const sim::SimTime t0 = calm.sort(keys).report.makespan;

  // Patience tiers scaled to the workload (see RecoveryConfig). The detect
  // tier must exceed the clock skew between live partners — after a
  // re-scatter, nodes start the retried sort at staggered times — so one
  // full fault-free makespan is the conservative floor.
  base.recovery.detect_patience = 1.0 * t0;
  base.recovery.collect_patience = 2.5 * t0;
  base.recovery.verdict_patience = 50.0 * t0;

  util::Table table({"deaths", "executor", "makespan (ms)", "overhead",
                     "timeouts", "messages", "sorted?"},
                    std::vector<util::Align>(7, util::Align::Right));

  for (std::int64_t k = 0; k <= max_kills; ++k) {
    // Victims: the top addresses, never node 0 (the coordinator). Each
    // death is staggered one recovered-run length after the previous so
    // each recovery round sees exactly one new casualty.
    try {
      sim::FaultInjector injector;
      sim::SimTime last_makespan = t0;
      for (std::int64_t i = 0; i < k; ++i) {
        const auto victim =
            static_cast<cube::NodeId>(cube::num_nodes(n) - 1 - i);
        // First death mid-initial-sort; each later one mid-way through the
        // re-sort of the previous recovery round (probed empirically).
        const sim::SimTime when =
            (i == 0) ? 0.5 * t0 : last_makespan - 0.4 * t0;
        injector.kill_node_at(victim, when);
        core::SortConfig probe = base;
        probe.injector = injector;
        core::FaultTolerantSorter probe_sorter(n, fault::FaultSet(n), probe);
        last_makespan = probe_sorter.sort(keys).report.makespan;
      }

      for (const auto& [exec, label] :
           {std::pair{core::Executor::Sequential, "sequential"},
            std::pair{core::Executor::Threaded, "threaded"}}) {
        core::SortConfig cfg = base;
        cfg.executor = exec;
        cfg.injector = injector;
        core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
        const auto out = sorter.sort(keys);
        table.add_row(
            {std::to_string(k), label,
             util::Table::fixed(out.report.makespan / 1000.0, 2),
             util::Table::percent(
                 100.0 * (out.report.makespan - t0) / t0, 1),
             std::to_string(out.report.timeouts),
             std::to_string(out.report.messages),
             out.sorted == expected ? "yes" : "NO"});
      }
    } catch (const core::DegradationError&) {
      // This many deaths no longer admits a single-fault partition of Q_n:
      // the sorter's contract is a clean error, so the row records that.
      table.add_row({std::to_string(k), "both", "-", "-", "-", "-",
                     "degraded"});
    }
  }
  std::cout << table.to_string();
  return 0;
}
