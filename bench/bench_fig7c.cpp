// Figure 7(c): execution time vs number of keys on Q_3 (8 processors).
#include "fig7_common.hpp"

int main() {
  ftsort::bench::run_figure7(3, "c");
  return 0;
}
