// Google-benchmark micro: simulator overhead — how much host time one
// simulated sort costs, and the raw message-passing throughput of the
// coroutine machine. Keeps the evaluation harness honest about its own
// cost.
#include <benchmark/benchmark.h>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftsort;

void BM_MachinePingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    for (int i = 0; i < rounds; ++i) {
      const auto tag = static_cast<sim::Tag>(i);
      if (ctx.id() == 0) {
        ctx.send(1, tag, {1});
        sim::Message m = co_await ctx.recv(1, tag);
        benchmark::DoNotOptimize(m.payload.data());
      } else {
        sim::Message m = co_await ctx.recv(0, tag);
        ctx.send(0, tag, std::move(m.payload));
      }
    }
  };
  for (auto _ : state) {
    auto report = machine.run(program);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}

void BM_EndToEndSort(benchmark::State& state) {
  const auto n = static_cast<cube::Dim>(state.range(0));
  const auto keys_count = static_cast<std::size_t>(state.range(1));
  util::Rng rng(3);
  const auto faults = fault::random_faults(n, 2, rng);
  const auto keys = sort::gen_uniform(keys_count, rng);
  core::FaultTolerantSorter sorter(n, faults);
  for (auto _ : state) {
    auto outcome = sorter.sort(keys);
    benchmark::DoNotOptimize(outcome.sorted.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys_count));
}

}  // namespace

BENCHMARK(BM_MachinePingPong)->Arg(100)->Arg(1000);
BENCHMARK(BM_EndToEndSort)->Args({4, 1'000})->Args({6, 10'000})
    ->Args({6, 100'000});

BENCHMARK_MAIN();
