// Machine-readable benchmark harness: runs pinned-seed end-to-end sorts
// (fig7/table shapes) and kernel microbenchmarks, and writes BENCH_sort.json
// so future changes have a perf trajectory to regress against.
//
// Usage:
//   bench_harness [--smoke] [--out PATH] [--baseline PATH]
//                 [--trace-out PATH] [--metrics-out PATH] [--schema PATH]
//
// `--smoke` shrinks every scenario for a seconds-scale CI run; `--baseline`
// re-parses the emitted JSON (catching malformed output) and compares the
// deterministic counters — comparisons, keys routed, messages, simulated
// makespan, heap allocations — against a committed baseline, exiting
// non-zero on a >20% regression. Wall time of end-to-end scenarios is
// recorded for the trajectory but never gated (machine- and load-
// dependent); the kernel micros' wall time IS gated (+20%, one-sided,
// release builds on matching kernel backends only) because their inner
// loop is exactly the kernel being scored.
//
// Observability: each end-to-end scenario also performs one *separate*
// instrumented run with sim::Metrics enabled — the timed reps (and their
// allocation ledger) stay uninstrumented — and BENCH_sort.json gains a
// per-phase block per scenario. `--metrics-out` writes the flagship
// fig7_q6_r2 scenario's full metrics JSON (sim::write_metrics_json);
// `--schema` validates that JSON against the checked-in
// bench/metrics_schema.json required-keys list; `--trace-out` writes the
// same run's Chrome/Perfetto trace (open at ui.perfetto.dev).
//
// Numbers are meaningful in the `release` preset only (-O3 -DNDEBUG); a
// debug build tags the JSON so a baseline from the wrong build type is
// obvious at review time.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sim/link_stats.hpp"
#include "sort/distribution.hpp"
#include "sort/merge_split.hpp"
#include "util/history.hpp"
#include "util/progress.hpp"
#include "util/rng.hpp"
#include "util/schema.hpp"

// ---------------------------------------------------------------------------
// Counting allocation hook: every operator new in the process bumps one
// relaxed atomic. Replacing the global operators is the one sanctioned way
// to observe allocator traffic without a profiler; keep the hook trivial so
// it never perturbs what it measures.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

// SIGINT/SIGTERM latch: the scenario loop checks it between scenarios
// and flushes a partial BENCH_sort.json instead of dropping the run.
std::atomic<int> g_bench_signal{0};
void bench_on_signal(int sig) { g_bench_signal.store(sig); }
}  // namespace

// GCC models the malloc-backed replacement operator new as malloc itself
// once it inlines these definitions (e.g. through std::function's
// manager), then flags the paired free() in the replacement delete as a
// mismatched-new-delete. This is exactly the sanctioned replacement
// pattern; the diagnostic is a false positive at these definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ftsort::bench {
namespace {

struct Metrics {
  std::string name;
  std::uint64_t wall_ns = 0;      ///< best-of-reps wall time, informational
  double makespan = 0.0;          ///< simulated time (0 for kernel micros)
  /// Detection/recovery split of the makespan: `makespan_detect` is the
  /// last recv_or_timeout expiry (fault detection, timeout-constant
  /// dominated), the rest is real post-recovery sort work. Both zero for
  /// fault-free scenarios and kernel micros.
  double makespan_detect = 0.0;
  double makespan_post_recovery = 0.0;
  std::uint64_t comparisons = 0;
  std::uint64_t keys_routed = 0;  ///< RunReport::keys_sent
  std::uint64_t messages = 0;
  std::uint64_t allocations = 0;  ///< operator-new calls in one timed rep
  std::uint64_t pool_heap_allocations = 0;  ///< pool fresh + grows
  std::uint64_t pool_checkouts = 0;
  /// Report of the separate instrumented run (metrics, phase breakdown);
  /// empty for kernel micros.
  sim::RunReport obs;
  /// Trace of the instrumented run; captured only when --trace-out needs it.
  std::vector<sim::TraceEvent> trace_events;
  /// Cost model the scenario's simulated time was charged under
  /// (end-to-end scenarios only — kernel micros have no simulated time).
  bool has_cost = false;
  sim::CostModel cost;
  /// Kernel backend a micro actually ran on ("scalar"/"simd", after any
  /// degrade); empty for end-to-end scenarios. Wall-time baselines are only
  /// comparable between runs on the same backend.
  std::string kernel_backend;
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  std::uint64_t ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Run `body` `reps` times; keep the fastest rep's wall time and the
/// allocation delta of that same rep (the steady-state cost, not warm-up).
template <typename Body>
void measure(Metrics& m, int reps, Body&& body) {
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const Timer timer;
    body();
    const std::uint64_t ns = timer.ns();
    if (rep == 0 || ns < m.wall_ns) {
      m.wall_ns = ns;
      m.allocations =
          g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    }
  }
}

Metrics run_end_to_end(const std::string& name, cube::Dim n,
                       std::size_t num_faults, std::size_t num_keys,
                       core::SortConfig cfg, std::uint64_t seed, int reps) {
  util::Rng rng(seed);
  const fault::FaultSet faults =
      num_faults == 0 ? fault::FaultSet(n)
                      : fault::random_faults(n, num_faults, rng);
  const auto keys = sort::gen_uniform(num_keys, rng);
  const core::FaultTolerantSorter sorter(n, faults, cfg);

  Metrics m;
  m.name = name;
  m.has_cost = true;
  m.cost = cfg.cost;
  core::SortOutcome outcome;
  measure(m, reps, [&] { outcome = sorter.sort(keys); });
  m.makespan = outcome.report.makespan;
  m.comparisons = outcome.report.comparisons;
  m.keys_routed = outcome.report.keys_sent;
  m.messages = outcome.report.messages;
  m.pool_heap_allocations = outcome.report.pool.heap_allocations();
  m.pool_checkouts = outcome.report.pool.checkouts;

  // One separate instrumented run per scenario: the per-phase block and the
  // exportable trace come from here, so the timed reps above stay free of
  // metrics/trace overhead and the allocation gate keeps measuring the real
  // hot path.
  core::SortConfig obs_cfg = cfg;
  obs_cfg.record_metrics = true;
  obs_cfg.record_trace = true;
  obs_cfg.record_link_stats = true;
  // The sim-time sampler rides the same instrumented run (zero sim-time
  // cost), so the metrics export and `--trace-out` carry a real timeline
  // block rather than the disabled stub.
  obs_cfg.record_timeline = true;
  // Key-lineage custody tracking also rides the instrumented run: the
  // metrics export carries the schema-v6 lineage block (with its exact
  // no-loss/no-dup audit) and the timed reps stay untouched.
  obs_cfg.record_lineage = true;
  // Host-side scheduler counters only mean something on the threaded
  // executor, and only perturb wall time there — charge them to the
  // instrumented run, never the timed reps.
  obs_cfg.profile_host = cfg.executor == core::Executor::Threaded;
  // The wall-clock watchdog rides the instrumented run too (generous
  // deadline): a wedged scenario becomes a black-box dump + abort instead
  // of a CI timeout, and the metrics export carries the full armed
  // watchdog block the schema scan requires. Heartbeats are wall-clock
  // only, so not a single exported sim-time byte moves.
  obs_cfg.watchdog.enabled = true;
  obs_cfg.watchdog.deadline_ms = 120000;
  const core::FaultTolerantSorter obs_sorter(n, faults, obs_cfg);
  core::SortOutcome obs_outcome = obs_sorter.sort(keys);
  m.obs = std::move(obs_outcome.report);
  m.trace_events = std::move(obs_outcome.trace_events);
  for (const sim::Diagnosis::Wait& w : m.obs.diagnosis.waits)
    if (w.expired && w.time > m.makespan_detect) m.makespan_detect = w.time;
  m.makespan_detect = std::min(m.makespan_detect, m.makespan);
  m.makespan_post_recovery = m.makespan - m.makespan_detect;
  return m;
}

/// Pin the process-global kernel backend for one micro's timed reps and
/// restore the scalar default afterwards. Records the backend actually in
/// effect (a Simd request degrades to Scalar off-AVX2) so the wall-time
/// gate can refuse to compare across backends.
class BackendScope {
 public:
  explicit BackendScope(sort::KernelBackend requested)
      : effective_(sort::set_kernel_backend(requested)) {}
  ~BackendScope() { sort::set_kernel_backend(sort::KernelBackend::Scalar); }
  const char* name() const {
    return effective_ == sort::KernelBackend::Simd ? "simd" : "scalar";
  }

 private:
  sort::KernelBackend effective_;
};

Metrics run_micro_merge_split(const std::string& name,
                              sort::KernelBackend backend, std::size_t block,
                              int iters, int reps) {
  util::Rng rng(99);
  auto a = sort::gen_uniform(block, rng);
  auto b = sort::gen_uniform(block, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  Metrics m;
  m.name = name;
  const BackendScope scope(backend);
  m.kernel_backend = scope.name();
  std::vector<sort::Key> out;
  std::uint64_t comparisons = 0;
  measure(m, reps, [&] {
    comparisons = 0;
    for (int i = 0; i < iters; ++i) {
      sort::merge_split_into(a, b, sort::SplitHalf::Lower, out, comparisons);
      sort::merge_split_into(a, b, sort::SplitHalf::Upper, out, comparisons);
    }
  });
  m.comparisons = comparisons;
  return m;
}

Metrics run_micro_pairwise(const std::string& name,
                           sort::KernelBackend backend, std::size_t block,
                           int iters, int reps) {
  util::Rng rng(98);
  const auto a = sort::gen_uniform(block, rng);
  const auto b = sort::gen_uniform(block, rng);

  Metrics m;
  m.name = name;
  const BackendScope scope(backend);
  m.kernel_backend = scope.name();
  std::vector<sort::Key> kept;
  std::vector<sort::Key> returned;
  std::uint64_t comparisons = 0;
  measure(m, reps, [&] {
    comparisons = 0;
    for (int i = 0; i < iters; ++i)
      sort::pairwise_select_rev_into(a, b, sort::SplitHalf::Lower, kept,
                                     returned, comparisons);
  });
  m.comparisons = comparisons;
  return m;
}

// ---------------------------------------------------------------------------
// JSON out. Hand-rolled: the schema is flat and the repo has no JSON
// dependency. Keep writer and parser in lockstep.

void write_json(const std::string& path, const std::vector<Metrics>& all,
                bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"sort\",\n"
      // v1 = PR 2 (flat counters + phases); v2 adds the
      // makespan_detect/makespan_post_recovery split; v3 adds the
      // per-scenario cost_model block and the micros' kernel_backend tag.
      << "  \"schema_version\": " << util::kBenchSchemaVersion << ",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      // The real CMake config when the build system provides it: the old
      // NDEBUG heuristic tagged RelWithDebInfo (-O2) as "release", so the
      // one-sided micro wall gate compared -O2 runs against the -O3
      // baseline and tripped on optimization level, not on regressions.
#ifdef FTSORT_BUILD_TYPE
      << "  \"build\": \"" FTSORT_BUILD_TYPE "\",\n"
#elif defined(NDEBUG)
      << "  \"build\": \"release\",\n"
#else
      << "  \"build\": \"debug\",\n"
#endif
      << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Metrics& m = all[i];
    char makespan[64];
    char detect[64];
    char post[64];
    std::snprintf(makespan, sizeof makespan, "%.17g", m.makespan);
    std::snprintf(detect, sizeof detect, "%.17g", m.makespan_detect);
    std::snprintf(post, sizeof post, "%.17g", m.makespan_post_recovery);
    out << "    {\n"
        << "      \"name\": \"" << m.name << "\",\n";
    if (!m.kernel_backend.empty())
      out << "      \"kernel_backend\": \"" << m.kernel_backend << "\",\n";
    out << "      \"wall_ns\": " << m.wall_ns << ",\n"
        << "      \"makespan\": " << makespan << ",\n"
        << "      \"makespan_detect\": " << detect << ",\n"
        << "      \"makespan_post_recovery\": " << post << ",\n"
        << "      \"comparisons\": " << m.comparisons << ",\n"
        << "      \"keys_routed\": " << m.keys_routed << ",\n"
        << "      \"messages\": " << m.messages << ",\n"
        << "      \"allocations\": " << m.allocations << ",\n"
        << "      \"pool_heap_allocations\": " << m.pool_heap_allocations
        << ",\n"
        << "      \"pool_checkouts\": " << m.pool_checkouts << ",\n"
        << "      \"link_key_hops\": "
        << m.obs.links.grand_total().key_hops;
    // Nested blocks below are placed AFTER every flat field: parse_json
    // bounds a scenario's fields by the first '}' after its "name", which
    // with this layout is the first nested object's close — still past all
    // the gated counters.
    // Cost model the simulated times were charged under — ftdiag refuses
    // to diff scenarios whose models differ.
    if (m.has_cost) {
      char tc[64];
      char tt[64];
      char tsu[64];
      std::snprintf(tc, sizeof tc, "%.17g", m.cost.t_compare);
      std::snprintf(tt, sizeof tt, "%.17g", m.cost.t_transfer);
      std::snprintf(tsu, sizeof tsu, "%.17g", m.cost.t_startup);
      out << ",\n      \"cost_model\": {\"name\": \"" << m.cost.name()
          << "\", \"routing\": \"" << m.cost.mode_name()
          << "\", \"t_compare\": " << tc << ", \"t_transfer\": " << tt
          << ", \"t_startup\": " << tsu << "}";
    }
    // Per-dimension link rollup from the instrumented run: which cube
    // dimension carried the traffic, and how hot its wires ran.
    if (!m.obs.links.empty()) {
      const std::vector<double> util = sim::dimension_utilization(
          m.obs.links, m.obs.cost, m.obs.makespan);
      out << ",\n      \"link_dimensions\": {";
      for (cube::Dim d = 0; d < m.obs.links.dim; ++d) {
        const sim::LinkCell cell = m.obs.links.dim_total(d);
        char busy[64];
        char u[64];
        std::snprintf(busy, sizeof busy, "%.17g",
                      sim::link_busy_time(cell, m.obs.cost));
        std::snprintf(u, sizeof u, "%.17g",
                      util[static_cast<std::size_t>(d)]);
        out << (d != 0 ? ",\n" : "\n") << "        \""
            << static_cast<int>(d) << "\": {\"traversals\": "
            << cell.traversals << ", \"key_hops\": " << cell.key_hops
            << ", \"busy\": " << busy << ", \"utilization\": " << u << "}";
      }
      out << "\n      }";
    }
    // Per-phase columns from the instrumented run. Empty phases are skipped.
    if (!m.obs.metrics.empty()) {
      out << ",\n      \"phases\": {";
      bool first_phase = true;
      for (const sim::PhaseBreakdown::Slice& sl : m.obs.phases.slices) {
        if (sl.counters == sim::PhaseCounters{} && sl.critical_time == 0.0)
          continue;
        char crit[64];
        std::snprintf(crit, sizeof crit, "%.17g", sl.critical_time);
        out << (first_phase ? "\n" : ",\n") << "        \""
            << sim::phase_name(sl.phase) << "\": {\"comparisons\": "
            << sl.counters.comparisons
            << ", \"keys_sent\": " << sl.counters.keys_sent
            << ", \"messages\": " << sl.counters.messages
            << ", \"critical_time\": " << crit << "}";
        first_phase = false;
      }
      out << "\n      }";
    }
    out << "\n    }" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Minimal reader for the exact format write_json emits (plus whitespace
// tolerance). Returns false on anything it cannot understand, which is the
// "malformed JSON" failure the smoke test gates on.
struct ParsedScenario {
  std::string name;
  std::string kernel_backend;  ///< micros only; empty otherwise
  double makespan = 0.0;
  double makespan_detect = 0.0;
  double makespan_post_recovery = 0.0;
  std::uint64_t wall_ns = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t keys_routed = 0;
  std::uint64_t messages = 0;
  std::uint64_t allocations = 0;
  std::uint64_t pool_heap_allocations = 0;
  std::uint64_t pool_checkouts = 0;
  std::uint64_t link_key_hops = 0;
};

bool parse_json(const std::string& path, std::string& mode,
                std::string& build, std::vector<ParsedScenario>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  // Structural sanity: braces and brackets must balance.
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  if (depth != 0 || text.find("\"scenarios\"") == std::string::npos)
    return false;

  const auto string_value = [&](const char* key, std::size_t from,
                                std::size_t bound, std::string& value) {
    const std::size_t k = text.find(std::string("\"") + key + "\"", from);
    if (k == std::string::npos || k >= bound) return false;
    const std::size_t q1 = text.find('"', text.find(':', k));
    const std::size_t q2 =
        q1 == std::string::npos ? std::string::npos : text.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) return false;
    value = text.substr(q1 + 1, q2 - q1 - 1);
    return true;
  };
  if (!string_value("mode", 0, text.size(), mode)) return false;
  // `build` is older-schema-optional: absent reads as empty (never
  // comparable for wall time, which is the safe direction).
  build.clear();
  string_value("build", 0, text.size(), build);

  std::size_t pos = text.find("\"scenarios\"");
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    ParsedScenario s;
    const std::size_t q1 = text.find('"', text.find(':', pos));
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) return false;
    s.name = text.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t object_end = text.find('}', pos);
    if (object_end == std::string::npos) return false;
    string_value("kernel_backend", pos, object_end, s.kernel_backend);

    const auto field = [&](const char* key, double& value) {
      const std::size_t k = text.find(std::string("\"") + key + "\"", pos);
      if (k == std::string::npos || k > object_end) return false;
      value = std::strtod(text.c_str() + text.find(':', k) + 1, nullptr);
      return true;
    };
    double v = 0;
    if (!field("wall_ns", v)) return false;
    s.wall_ns = static_cast<std::uint64_t>(v);
    if (!field("makespan", s.makespan)) return false;
    if (!field("makespan_detect", s.makespan_detect)) return false;
    if (!field("makespan_post_recovery", s.makespan_post_recovery))
      return false;
    if (!field("comparisons", v)) return false;
    s.comparisons = static_cast<std::uint64_t>(v);
    if (!field("keys_routed", v)) return false;
    s.keys_routed = static_cast<std::uint64_t>(v);
    if (!field("messages", v)) return false;
    s.messages = static_cast<std::uint64_t>(v);
    if (!field("allocations", v)) return false;
    s.allocations = static_cast<std::uint64_t>(v);
    if (!field("pool_heap_allocations", v)) return false;
    s.pool_heap_allocations = static_cast<std::uint64_t>(v);
    if (!field("pool_checkouts", v)) return false;
    s.pool_checkouts = static_cast<std::uint64_t>(v);
    if (!field("link_key_hops", v)) return false;
    s.link_key_hops = static_cast<std::uint64_t>(v);
    out.push_back(std::move(s));
    pos = object_end;
  }
  return !out.empty();
}

// ---------------------------------------------------------------------------
// Metrics-JSON schema gate. bench/metrics_schema.json lists the top-level
// keys, per-phase counter fields, and phase names every metrics export must
// contain; the check is a required-keys scan, not a JSON-schema engine —
// enough to catch writer/consumer drift without a JSON dependency.

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Extract the string elements of the JSON array following `"key"`.
std::vector<std::string> string_array(const std::string& text,
                                      const char* key) {
  std::vector<std::string> items;
  const std::size_t pos = text.find(std::string("\"") + key + "\"");
  if (pos == std::string::npos) return items;
  const std::size_t open = text.find('[', pos);
  if (open == std::string::npos) return items;
  const std::size_t close = text.find(']', open);
  if (close == std::string::npos) return items;
  std::size_t q = open;
  while ((q = text.find('"', q + 1)) != std::string::npos && q < close) {
    const std::size_t q2 = text.find('"', q + 1);
    if (q2 == std::string::npos || q2 > close) break;
    items.push_back(text.substr(q + 1, q2 - q - 1));
    q = q2;
  }
  return items;
}

bool validate_metrics_schema(const std::string& metrics_json,
                             const std::string& schema_path) {
  std::string schema;
  if (!read_file(schema_path, schema)) {
    std::fprintf(stderr, "FAIL: cannot read schema %s\n",
                 schema_path.c_str());
    return false;
  }
  bool ok = true;
  long depth = 0;
  for (char c : metrics_json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) break;
  }
  if (depth != 0) {
    std::fprintf(stderr, "SCHEMA: metrics JSON braces do not balance\n");
    ok = false;
  }
  const std::vector<std::string> keys = string_array(schema, "required_keys");
  const std::vector<std::string> phases =
      string_array(schema, "required_phases");
  if (keys.empty() || phases.empty()) {
    std::fprintf(stderr, "FAIL: schema %s lists no required keys\n",
                 schema_path.c_str());
    return false;
  }
  for (const std::string& k : keys)
    if (metrics_json.find("\"" + k + "\"") == std::string::npos) {
      std::fprintf(stderr, "SCHEMA: missing required key \"%s\"\n",
                   k.c_str());
      ok = false;
    }
  for (const std::string& p : phases)
    if (metrics_json.find("\"phase\": \"" + p + "\"") == std::string::npos) {
      std::fprintf(stderr, "SCHEMA: missing phase entry \"%s\"\n", p.c_str());
      ok = false;
    }
  return ok;
}

/// >20% above baseline on any deterministic counter fails the gate. Kernel
/// micros additionally gate their wall time (+20%, one-sided): a micro's
/// inner loop is exactly the kernel, so its wall time IS the deliverable —
/// but only when both runs came from a "release" build on the same kernel
/// backend; anything else (debug/sanitizer builds, Simd degraded to Scalar
/// on a non-AVX2 host) is skipped with a note instead of a bogus failure.
bool check_regressions(const std::vector<ParsedScenario>& current,
                       const std::vector<ParsedScenario>& baseline,
                       const std::string& current_build,
                       const std::string& baseline_build) {
  bool ok = true;
  const bool wall_builds_match =
      current_build == "release" && baseline_build == "release";
  const auto gate = [&](const std::string& scenario, const char* metric,
                        double now, double base) {
    if (base > 0 && now > base * 1.2) {
      std::fprintf(stderr,
                   "REGRESSION %s.%s: %.0f vs baseline %.0f (+%.1f%%)\n",
                   scenario.c_str(), metric, now, base,
                   100.0 * (now / base - 1.0));
      ok = false;
    }
  };
  for (const ParsedScenario& base : baseline) {
    const ParsedScenario* now = nullptr;
    for (const ParsedScenario& s : current)
      if (s.name == base.name) now = &s;
    if (now == nullptr) {
      std::fprintf(stderr, "REGRESSION: scenario %s missing from output\n",
                   base.name.c_str());
      ok = false;
      continue;
    }
    gate(base.name, "makespan", now->makespan, base.makespan);
    // The recovery split: detection time is pinned by the timeout constant,
    // so a post-recovery blow-up is a genuine algorithmic regression even
    // when the total makespan hides it behind a large detect share.
    gate(base.name, "makespan_post_recovery", now->makespan_post_recovery,
         base.makespan_post_recovery);
    gate(base.name, "comparisons", static_cast<double>(now->comparisons),
         static_cast<double>(base.comparisons));
    gate(base.name, "keys_routed", static_cast<double>(now->keys_routed),
         static_cast<double>(base.keys_routed));
    gate(base.name, "messages", static_cast<double>(now->messages),
         static_cast<double>(base.messages));
    gate(base.name, "allocations", static_cast<double>(now->allocations),
         static_cast<double>(base.allocations));
    gate(base.name, "pool_heap_allocations",
         static_cast<double>(now->pool_heap_allocations),
         static_cast<double>(base.pool_heap_allocations));
    // Routing regressions that keys_routed hides (the same keys pushed
    // over longer detours) show up here: this counter is hop-weighted.
    gate(base.name, "link_key_hops", static_cast<double>(now->link_key_hops),
         static_cast<double>(base.link_key_hops));
    if (base.name.rfind("micro_", 0) == 0) {
      if (wall_builds_match && now->kernel_backend == base.kernel_backend) {
        gate(base.name, "wall_ns", static_cast<double>(now->wall_ns),
             static_cast<double>(base.wall_ns));
      } else {
        std::printf("note: %s wall gate skipped (build \"%s\" vs \"%s\", "
                    "backend \"%s\" vs \"%s\")\n",
                    base.name.c_str(), current_build.c_str(),
                    baseline_build.c_str(), now->kernel_backend.c_str(),
                    base.kernel_backend.c_str());
      }
    }
  }
  return ok;
}

int harness_main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sort.json";
  std::string baseline_path;
  std::string trace_path;
  std::string metrics_path;
  std::string schema_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_harness [--smoke] [--out PATH] "
                   "[--baseline PATH] [--trace-out PATH] "
                   "[--metrics-out PATH] [--schema PATH]\n");
      return 2;
    }
  }

  const int reps = smoke ? 2 : 3;
  const std::size_t m_fig7 = smoke ? 3'200 : 32'000;
  const std::size_t m_table = smoke ? 1'000 : 10'000;
  const std::size_t m_recovery = smoke ? 200 : 2'000;
  const std::size_t micro_block = smoke ? 8'192 : 65'536;
  const int micro_iters = smoke ? 20 : 50;

  // Scenario list as (name, thunk) so the loop below owns liveness: the
  // live progress line names the scenario in flight, and SIGINT/SIGTERM
  // between scenarios flushes the completed prefix instead of losing it.
  std::vector<std::pair<std::string, std::function<Metrics()>>> plan;
  {  // Fig. 7 shape: Q_6, r = 2 random faults, full exchange.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::FullExchange;
    plan.emplace_back("fig7_q6_r2", [=] {
      return run_end_to_end("fig7_q6_r2", 6, 2, m_fig7, cfg, 1706, reps);
    });
  }
  {  // Same machine on the threaded executor.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::FullExchange;
    cfg.executor = core::Executor::Threaded;
    plan.emplace_back("fig7_q6_r2_threaded", [=] {
      return run_end_to_end("fig7_q6_r2_threaded", 6, 2, m_fig7, cfg, 1706,
                            reps);
    });
  }
  {  // Table 1 shape: Q_4, 2 faults, the paper's half exchange.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::HalfExchange;
    plan.emplace_back("table1_q4_half_f2", [=] {
      return run_end_to_end("table1_q4_half_f2", 4, 2, m_table, cfg, 1704,
                            reps);
    });
  }
  {  // Online recovery with a mid-run death.
    core::SortConfig cfg;
    cfg.online_recovery = true;
    cfg.injector.kill_node_at(6, 2000.0);
    plan.emplace_back("recovery_q3_kill6", [=] {
      return run_end_to_end("recovery_q3_kill6", 3, 1, m_recovery, cfg, 1703,
                            reps);
    });
  }
  {  // Fig. 7 shape under the cut-through model, paper protocol verbatim:
     // the 350 µs start-up term now dominates the half exchange's
     // 4-message/2-round shape.
    core::SortConfig cfg;
    cfg.cost = sim::CostModel::wormhole();
    cfg.protocol = sort::ExchangeProtocol::HalfExchange;
    cfg.coalesce = sort::CoalescePolicy::Off;
    plan.emplace_back("fig7_q6_r2_wormhole", [=] {
      return run_end_to_end("fig7_q6_r2_wormhole", 6, 2, m_fig7, cfg, 1706,
                            reps);
    });
  }
  {  // Same machine with coalescing engaged (Auto → full exchange under
     // cut-through): same keys per direction, half the messages and rounds.
     // The makespan delta against fig7_q6_r2_wormhole is the measured
     // end-to-end win of the coalescing rewrite.
    core::SortConfig cfg;
    cfg.cost = sim::CostModel::wormhole();
    cfg.protocol = sort::ExchangeProtocol::HalfExchange;
    cfg.coalesce = sort::CoalescePolicy::Auto;
    plan.emplace_back("fig7_q6_r2_wormhole_coalesced", [=] {
      return run_end_to_end("fig7_q6_r2_wormhole_coalesced", 6, 2, m_fig7,
                            cfg, 1706, reps);
    });
  }
  plan.emplace_back("micro_merge_split_into", [=] {
    return run_micro_merge_split("micro_merge_split_into",
                                 sort::KernelBackend::Scalar, micro_block,
                                 micro_iters, reps);
  });
  plan.emplace_back("micro_merge_split_into_simd", [=] {
    return run_micro_merge_split("micro_merge_split_into_simd",
                                 sort::KernelBackend::Simd, micro_block,
                                 micro_iters, reps);
  });
  plan.emplace_back("micro_pairwise_rev_into", [=] {
    return run_micro_pairwise("micro_pairwise_rev_into",
                              sort::KernelBackend::Scalar, micro_block,
                              micro_iters, reps);
  });
  plan.emplace_back("micro_pairwise_rev_into_simd", [=] {
    return run_micro_pairwise("micro_pairwise_rev_into_simd",
                              sort::KernelBackend::Simd, micro_block,
                              micro_iters, reps);
  });

  std::signal(SIGINT, bench_on_signal);
  std::signal(SIGTERM, bench_on_signal);

  std::vector<Metrics> all;
  bool interrupted = false;
  {
    util::ProgressLine progress;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (g_bench_signal.load() != 0) {
        interrupted = true;
        break;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::ostringstream line;
      line << "bench: " << i << "/" << plan.size() << " scenarios done, "
           << "running " << plan[i].first;
      if (i > 0)
        line << ", eta "
             << util::format_eta(elapsed / static_cast<double>(i) *
                                 static_cast<double>(plan.size() - i));
      progress.update(line.str());
      all.push_back(plan[i].second());
    }
  }

  if (interrupted) {
    // Partial flush: the completed prefix is still a valid BENCH_sort.json
    // (fewer scenarios). The history append is skipped — a truncated run
    // would poison the per-scenario trend groups — and the baseline gate
    // never runs. Exit 128+signal, shell convention for a signal death.
    const int sig = g_bench_signal.load();
    write_json(out_path, all, smoke);
    std::fprintf(stderr,
                 "interrupted by signal %d after %zu/%zu scenarios; wrote "
                 "partial %s (history append skipped)\n",
                 sig, all.size(), plan.size(), out_path.c_str());
    return 128 + sig;
  }

  write_json(out_path, all, smoke);

  // Re-parse what we just wrote: a malformed file fails here, not in some
  // future consumer.
  std::vector<ParsedScenario> current;
  std::string current_mode;
  std::string current_build;
  if (!parse_json(out_path, current_mode, current_build, current) ||
      current.size() != all.size()) {
    std::fprintf(stderr, "FAIL: %s is malformed\n", out_path.c_str());
    return 1;
  }
  for (const ParsedScenario& s : current)
    std::printf("%-22s wall=%9.3fms makespan=%12.1f cmp=%9" PRIu64
                " keys=%8" PRIu64 " msgs=%6" PRIu64 " allocs=%8" PRIu64
                " pool_heap=%6" PRIu64 "\n",
                s.name.c_str(), static_cast<double>(s.wall_ns) / 1e6,
                s.makespan, s.comparisons, s.keys_routed, s.messages,
                s.allocations, s.pool_heap_allocations);

  // Host-side scheduler profile of the threaded instrumented run. Printed,
  // never written into the scenario rows: the counters are wall-clock
  // artifacts of this machine, not properties of the algorithm.
  for (const Metrics& m : all)
    if (m.obs.host.enabled) {
      const sim::SchedShardProfile t = m.obs.host.total();
      std::printf("host-profile %-18s mutex_waits=%" PRIu64
                  " mutex_wait_ms=%.3f cv_wakeups=%" PRIu64
                  " spurious=%" PRIu64 " resumed=%" PRIu64
                  " quiescence=%" PRIu64 "/%" PRIu64
                  " pool_contended=%" PRIu64 "\n",
                  m.name.c_str(), t.mutex_waits,
                  static_cast<double>(t.mutex_wait_ns) / 1e6, t.cv_wakeups,
                  t.spurious_wakeups, t.tasks_resumed,
                  m.obs.host.quiescence_events, m.obs.host.quiescence_checks,
                  m.obs.host.pool_contended);
    }

  // Append a one-line summary to BENCH_history.jsonl next to --out, so
  // successive local runs accumulate a perf trajectory that survives
  // BENCH_sort.json being overwritten. Rotation (last-500 trim, the
  // unreadable-file guard) lives in util::append_history_line so tests
  // exercise the exact code the harness runs.
  {
    const std::size_t slash = out_path.find_last_of('/');
    const std::string history_path =
        (slash == std::string::npos ? std::string()
                                    : out_path.substr(0, slash + 1)) +
        "BENCH_history.jsonl";
    std::ostringstream hist;
    hist << "{\"bench\": \"sort\", \"mode\": \""
         << (smoke ? "smoke" : "full") << "\", \"build\": \""
#ifdef FTSORT_BUILD_TYPE
         << FTSORT_BUILD_TYPE
#elif defined(NDEBUG)
         << "release"
#else
         << "debug"
#endif
         << "\", \"scenarios\": [";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Metrics& m = all[i];
      char makespan[64];
      std::snprintf(makespan, sizeof makespan, "%.17g", m.makespan);
      hist << (i != 0 ? ", " : "") << "{\"name\": \"" << m.name
           << "\", \"wall_ns\": " << m.wall_ns
           << ", \"makespan\": " << makespan
           << ", \"comparisons\": " << m.comparisons << "}";
    }
    hist << "]}";
    const util::HistoryAppendResult hres =
        util::append_history_line(history_path, hist.str());
    if (hres.rotated)
      std::printf("history: %s (%zu entries)\n", history_path.c_str(),
                  hres.entries);
    else if (hres.unreadable)
      std::fprintf(stderr,
                   "warning: %s exists but is unreadable; "
                   "skipping history rotation\n",
                   history_path.c_str());
    else
      // An unwritable history path degrades the trajectory, never the
      // bench: the gate's exit code must reflect the counters alone.
      std::fprintf(stderr, "warning: could not write %s\n",
                   history_path.c_str());
  }

  // Observability exports: the flagship fig7_q6_r2 scenario's instrumented
  // run backs both the Perfetto trace and the metrics JSON.
  const Metrics& flagship = all.front();
  if (!trace_path.empty()) {
    std::ostringstream tjson;
    // Counter tracks (per-dimension keys-in-flight / busy time) ride on the
    // instrumented run's cost model; the eviction count annotates whether
    // the export is ring-truncated.
    sim::ChromeTraceOptions topts;
    topts.cost = &flagship.obs.cost;
    topts.trace_dropped = flagship.obs.trace_dropped;
    topts.timeline = &flagship.obs.timeline;
    topts.lineage = &flagship.obs.lineage;
    sim::write_chrome_trace(
        tjson, flagship.trace_events,
        static_cast<std::uint32_t>(flagship.obs.metrics.nodes.size()), topts);
    // Shape-check before writing: a malformed export fails the smoke test
    // here, not when someone loads the file in Perfetto weeks later.
    std::string why;
    if (!sim::validate_chrome_trace(tjson.str(), &why)) {
      std::fprintf(stderr, "FAIL: trace export invalid: %s\n", why.c_str());
      return 1;
    }
    std::ofstream tout(trace_path);
    tout << tjson.str();
    if (!tout) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace: %s (%zu events, validated)\n", trace_path.c_str(),
                flagship.trace_events.size());
  }
  if (!metrics_path.empty() || !schema_path.empty()) {
    std::ostringstream mjson;
    sim::write_metrics_json(mjson, flagship.obs);
    const std::string metrics_json = mjson.str();
    if (!metrics_path.empty()) {
      std::ofstream mout(metrics_path);
      mout << metrics_json;
      if (!mout) {
        std::fprintf(stderr, "FAIL: cannot write %s\n", metrics_path.c_str());
        return 1;
      }
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (!schema_path.empty()) {
      if (!validate_metrics_schema(metrics_json, schema_path)) {
        std::fprintf(stderr, "FAIL: metrics JSON violates %s\n",
                     schema_path.c_str());
        return 1;
      }
      std::printf("metrics schema OK (%s)\n", schema_path.c_str());
    }
  }

  if (!baseline_path.empty()) {
    std::vector<ParsedScenario> baseline;
    std::string baseline_mode;
    std::string baseline_build;
    if (!parse_json(baseline_path, baseline_mode, baseline_build, baseline)) {
      std::fprintf(stderr, "FAIL: baseline %s is malformed\n",
                   baseline_path.c_str());
      return 1;
    }
    if (baseline_mode != current_mode) {
      std::fprintf(stderr,
                   "FAIL: baseline mode \"%s\" != current mode \"%s\" — "
                   "scenario sizes differ, counters are not comparable\n",
                   baseline_mode.c_str(), current_mode.c_str());
      return 1;
    }
    if (!check_regressions(current, baseline, current_build, baseline_build))
      return 1;
    std::printf("baseline check OK (%zu scenarios, +20%% tolerance)\n",
                baseline.size());
  }
  return 0;
}

}  // namespace
}  // namespace ftsort::bench

int main(int argc, char** argv) {
  return ftsort::bench::harness_main(argc, argv);
}
