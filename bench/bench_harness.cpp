// Machine-readable benchmark harness: runs pinned-seed end-to-end sorts
// (fig7/table shapes) and kernel microbenchmarks, and writes BENCH_sort.json
// so future changes have a perf trajectory to regress against.
//
// Usage:
//   bench_harness [--smoke] [--out PATH] [--baseline PATH]
//
// `--smoke` shrinks every scenario for a seconds-scale CI run; `--baseline`
// re-parses the emitted JSON (catching malformed output) and compares the
// deterministic counters — comparisons, keys routed, messages, simulated
// makespan, heap allocations — against a committed baseline, exiting
// non-zero on a >20% regression. Wall time is recorded for the trajectory
// but never gated: it is machine- and load-dependent, while the counters
// only move when the code's actual work changes.
//
// Numbers are meaningful in the `release` preset only (-O3 -DNDEBUG); a
// debug build tags the JSON so a baseline from the wrong build type is
// obvious at review time.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "sort/merge_split.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Counting allocation hook: every operator new in the process bumps one
// relaxed atomic. Replacing the global operators is the one sanctioned way
// to observe allocator traffic without a profiler; keep the hook trivial so
// it never perturbs what it measures.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ftsort::bench {
namespace {

struct Metrics {
  std::string name;
  std::uint64_t wall_ns = 0;      ///< best-of-reps wall time, informational
  double makespan = 0.0;          ///< simulated time (0 for kernel micros)
  std::uint64_t comparisons = 0;
  std::uint64_t keys_routed = 0;  ///< RunReport::keys_sent
  std::uint64_t messages = 0;
  std::uint64_t allocations = 0;  ///< operator-new calls in one timed rep
  std::uint64_t pool_heap_allocations = 0;  ///< pool fresh + grows
  std::uint64_t pool_checkouts = 0;
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  std::uint64_t ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Run `body` `reps` times; keep the fastest rep's wall time and the
/// allocation delta of that same rep (the steady-state cost, not warm-up).
template <typename Body>
void measure(Metrics& m, int reps, Body&& body) {
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const Timer timer;
    body();
    const std::uint64_t ns = timer.ns();
    if (rep == 0 || ns < m.wall_ns) {
      m.wall_ns = ns;
      m.allocations =
          g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    }
  }
}

Metrics run_end_to_end(const std::string& name, cube::Dim n,
                       std::size_t num_faults, std::size_t num_keys,
                       core::SortConfig cfg, std::uint64_t seed, int reps) {
  util::Rng rng(seed);
  const fault::FaultSet faults =
      num_faults == 0 ? fault::FaultSet(n)
                      : fault::random_faults(n, num_faults, rng);
  const auto keys = sort::gen_uniform(num_keys, rng);
  const core::FaultTolerantSorter sorter(n, faults, cfg);

  Metrics m;
  m.name = name;
  core::SortOutcome outcome;
  measure(m, reps, [&] { outcome = sorter.sort(keys); });
  m.makespan = outcome.report.makespan;
  m.comparisons = outcome.report.comparisons;
  m.keys_routed = outcome.report.keys_sent;
  m.messages = outcome.report.messages;
  m.pool_heap_allocations = outcome.report.pool.heap_allocations();
  m.pool_checkouts = outcome.report.pool.checkouts;
  return m;
}

Metrics run_micro_merge_split(std::size_t block, int iters, int reps) {
  util::Rng rng(99);
  auto a = sort::gen_uniform(block, rng);
  auto b = sort::gen_uniform(block, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  Metrics m;
  m.name = "micro_merge_split_into";
  std::vector<sort::Key> out;
  std::uint64_t comparisons = 0;
  measure(m, reps, [&] {
    comparisons = 0;
    for (int i = 0; i < iters; ++i) {
      sort::merge_split_into(a, b, sort::SplitHalf::Lower, out, comparisons);
      sort::merge_split_into(a, b, sort::SplitHalf::Upper, out, comparisons);
    }
  });
  m.comparisons = comparisons;
  return m;
}

Metrics run_micro_pairwise(std::size_t block, int iters, int reps) {
  util::Rng rng(98);
  const auto a = sort::gen_uniform(block, rng);
  const auto b = sort::gen_uniform(block, rng);

  Metrics m;
  m.name = "micro_pairwise_rev_into";
  std::vector<sort::Key> kept;
  std::vector<sort::Key> returned;
  std::uint64_t comparisons = 0;
  measure(m, reps, [&] {
    comparisons = 0;
    for (int i = 0; i < iters; ++i)
      sort::pairwise_select_rev_into(a, b, sort::SplitHalf::Lower, kept,
                                     returned, comparisons);
  });
  m.comparisons = comparisons;
  return m;
}

// ---------------------------------------------------------------------------
// JSON out. Hand-rolled: the schema is flat and the repo has no JSON
// dependency. Keep writer and parser in lockstep.

void write_json(const std::string& path, const std::vector<Metrics>& all,
                bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"sort\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
#ifdef NDEBUG
      << "  \"build\": \"release\",\n"
#else
      << "  \"build\": \"debug\",\n"
#endif
      << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Metrics& m = all[i];
    char makespan[64];
    std::snprintf(makespan, sizeof makespan, "%.17g", m.makespan);
    out << "    {\n"
        << "      \"name\": \"" << m.name << "\",\n"
        << "      \"wall_ns\": " << m.wall_ns << ",\n"
        << "      \"makespan\": " << makespan << ",\n"
        << "      \"comparisons\": " << m.comparisons << ",\n"
        << "      \"keys_routed\": " << m.keys_routed << ",\n"
        << "      \"messages\": " << m.messages << ",\n"
        << "      \"allocations\": " << m.allocations << ",\n"
        << "      \"pool_heap_allocations\": " << m.pool_heap_allocations
        << ",\n"
        << "      \"pool_checkouts\": " << m.pool_checkouts << "\n"
        << "    }" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Minimal reader for the exact format write_json emits (plus whitespace
// tolerance). Returns false on anything it cannot understand, which is the
// "malformed JSON" failure the smoke test gates on.
struct ParsedScenario {
  std::string name;
  double makespan = 0.0;
  std::uint64_t wall_ns = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t keys_routed = 0;
  std::uint64_t messages = 0;
  std::uint64_t allocations = 0;
  std::uint64_t pool_heap_allocations = 0;
  std::uint64_t pool_checkouts = 0;
};

bool parse_json(const std::string& path, std::string& mode,
                std::vector<ParsedScenario>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  // Structural sanity: braces and brackets must balance.
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  if (depth != 0 || text.find("\"scenarios\"") == std::string::npos)
    return false;

  const std::size_t mode_key = text.find("\"mode\"");
  if (mode_key == std::string::npos) return false;
  const std::size_t mq1 = text.find('"', text.find(':', mode_key));
  const std::size_t mq2 = text.find('"', mq1 + 1);
  if (mq1 == std::string::npos || mq2 == std::string::npos) return false;
  mode = text.substr(mq1 + 1, mq2 - mq1 - 1);

  std::size_t pos = text.find("\"scenarios\"");
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    ParsedScenario s;
    const std::size_t q1 = text.find('"', text.find(':', pos));
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) return false;
    s.name = text.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t object_end = text.find('}', pos);
    if (object_end == std::string::npos) return false;

    const auto field = [&](const char* key, double& value) {
      const std::size_t k = text.find(std::string("\"") + key + "\"", pos);
      if (k == std::string::npos || k > object_end) return false;
      value = std::strtod(text.c_str() + text.find(':', k) + 1, nullptr);
      return true;
    };
    double v = 0;
    if (!field("wall_ns", v)) return false;
    s.wall_ns = static_cast<std::uint64_t>(v);
    if (!field("makespan", s.makespan)) return false;
    if (!field("comparisons", v)) return false;
    s.comparisons = static_cast<std::uint64_t>(v);
    if (!field("keys_routed", v)) return false;
    s.keys_routed = static_cast<std::uint64_t>(v);
    if (!field("messages", v)) return false;
    s.messages = static_cast<std::uint64_t>(v);
    if (!field("allocations", v)) return false;
    s.allocations = static_cast<std::uint64_t>(v);
    if (!field("pool_heap_allocations", v)) return false;
    s.pool_heap_allocations = static_cast<std::uint64_t>(v);
    if (!field("pool_checkouts", v)) return false;
    s.pool_checkouts = static_cast<std::uint64_t>(v);
    out.push_back(std::move(s));
    pos = object_end;
  }
  return !out.empty();
}

/// >20% above baseline on any deterministic counter fails the gate.
bool check_regressions(const std::vector<ParsedScenario>& current,
                       const std::vector<ParsedScenario>& baseline) {
  bool ok = true;
  const auto gate = [&](const std::string& scenario, const char* metric,
                        double now, double base) {
    if (base > 0 && now > base * 1.2) {
      std::fprintf(stderr,
                   "REGRESSION %s.%s: %.0f vs baseline %.0f (+%.1f%%)\n",
                   scenario.c_str(), metric, now, base,
                   100.0 * (now / base - 1.0));
      ok = false;
    }
  };
  for (const ParsedScenario& base : baseline) {
    const ParsedScenario* now = nullptr;
    for (const ParsedScenario& s : current)
      if (s.name == base.name) now = &s;
    if (now == nullptr) {
      std::fprintf(stderr, "REGRESSION: scenario %s missing from output\n",
                   base.name.c_str());
      ok = false;
      continue;
    }
    gate(base.name, "makespan", now->makespan, base.makespan);
    gate(base.name, "comparisons", static_cast<double>(now->comparisons),
         static_cast<double>(base.comparisons));
    gate(base.name, "keys_routed", static_cast<double>(now->keys_routed),
         static_cast<double>(base.keys_routed));
    gate(base.name, "messages", static_cast<double>(now->messages),
         static_cast<double>(base.messages));
    gate(base.name, "allocations", static_cast<double>(now->allocations),
         static_cast<double>(base.allocations));
    gate(base.name, "pool_heap_allocations",
         static_cast<double>(now->pool_heap_allocations),
         static_cast<double>(base.pool_heap_allocations));
  }
  return ok;
}

int harness_main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sort.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_harness [--smoke] [--out PATH] "
                   "[--baseline PATH]\n");
      return 2;
    }
  }

  const int reps = smoke ? 2 : 3;
  const std::size_t m_fig7 = smoke ? 3'200 : 32'000;
  const std::size_t m_table = smoke ? 1'000 : 10'000;
  const std::size_t m_recovery = smoke ? 200 : 2'000;
  const std::size_t micro_block = smoke ? 8'192 : 65'536;
  const int micro_iters = smoke ? 20 : 50;

  std::vector<Metrics> all;

  {  // Fig. 7 shape: Q_6, r = 2 random faults, full exchange.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::FullExchange;
    all.push_back(
        run_end_to_end("fig7_q6_r2", 6, 2, m_fig7, cfg, 1706, reps));
  }
  {  // Same machine on the threaded executor.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::FullExchange;
    cfg.executor = core::Executor::Threaded;
    all.push_back(run_end_to_end("fig7_q6_r2_threaded", 6, 2, m_fig7, cfg,
                                 1706, reps));
  }
  {  // Table 1 shape: Q_4, 2 faults, the paper's half exchange.
    core::SortConfig cfg;
    cfg.protocol = sort::ExchangeProtocol::HalfExchange;
    all.push_back(
        run_end_to_end("table1_q4_half_f2", 4, 2, m_table, cfg, 1704, reps));
  }
  {  // Online recovery with a mid-run death.
    core::SortConfig cfg;
    cfg.online_recovery = true;
    cfg.injector.kill_node_at(6, 2000.0);
    all.push_back(run_end_to_end("recovery_q3_kill6", 3, 1, m_recovery, cfg,
                                 1703, reps));
  }
  all.push_back(run_micro_merge_split(micro_block, micro_iters, reps));
  all.push_back(run_micro_pairwise(micro_block, micro_iters, reps));

  write_json(out_path, all, smoke);

  // Re-parse what we just wrote: a malformed file fails here, not in some
  // future consumer.
  std::vector<ParsedScenario> current;
  std::string current_mode;
  if (!parse_json(out_path, current_mode, current) ||
      current.size() != all.size()) {
    std::fprintf(stderr, "FAIL: %s is malformed\n", out_path.c_str());
    return 1;
  }
  for (const ParsedScenario& s : current)
    std::printf("%-22s wall=%9.3fms makespan=%12.1f cmp=%9" PRIu64
                " keys=%8" PRIu64 " msgs=%6" PRIu64 " allocs=%8" PRIu64
                " pool_heap=%6" PRIu64 "\n",
                s.name.c_str(), static_cast<double>(s.wall_ns) / 1e6,
                s.makespan, s.comparisons, s.keys_routed, s.messages,
                s.allocations, s.pool_heap_allocations);

  if (!baseline_path.empty()) {
    std::vector<ParsedScenario> baseline;
    std::string baseline_mode;
    if (!parse_json(baseline_path, baseline_mode, baseline)) {
      std::fprintf(stderr, "FAIL: baseline %s is malformed\n",
                   baseline_path.c_str());
      return 1;
    }
    if (baseline_mode != current_mode) {
      std::fprintf(stderr,
                   "FAIL: baseline mode \"%s\" != current mode \"%s\" — "
                   "scenario sizes differ, counters are not comparable\n",
                   baseline_mode.c_str(), current_mode.c_str());
      return 1;
    }
    if (!check_regressions(current, baseline)) return 1;
    std::printf("baseline check OK (%zu scenarios, +20%% tolerance)\n",
                baseline.size());
  }
  return 0;
}

}  // namespace
}  // namespace ftsort::bench

int main(int argc, char** argv) {
  return ftsort::bench::harness_main(argc, argv);
}
