// Monte Carlo campaign bench: drives campaign::run_campaign over the
// worker pool, reports trials/sec, and exports the schema-v4 campaign
// JSON (campaign/report.hpp).
//
// Usage:
//   bench_campaign [--smoke] [--out PATH] [--baseline PATH]
//                  [--schema PATH] [--workers N]
//
// `--smoke` shrinks the universe for a seconds-scale CI run; `--baseline`
// compares the per-bucket outcome counts against the checked-in
// bench/BENCH_campaign_baseline.json *exactly* — the campaign is
// deterministic in its seed, so the gate has no tolerance band: any
// outcome drift means the sampler, the recovery engine, or the simulator
// changed, and the baseline must be regenerated deliberately. `--schema`
// validates the export against the bench/campaign_schema.json
// required-keys list, same discipline as the metrics schema gate.
//
// Wall-clock trials/sec is meaningful in the `release` preset only; the
// smoke gate reads deterministic counters, so it is safe in any build.
//
// Exit codes: 0 clean, 1 gate failure, 2 usage error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace {

using namespace ftsort;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<std::string> string_array(const std::string& text,
                                      const char* key) {
  std::vector<std::string> items;
  const std::size_t pos = text.find(std::string("\"") + key + "\"");
  if (pos == std::string::npos) return items;
  const std::size_t open = text.find('[', pos);
  if (open == std::string::npos) return items;
  const std::size_t close = text.find(']', open);
  if (close == std::string::npos) return items;
  std::size_t q = open;
  while ((q = text.find('"', q + 1)) != std::string::npos && q < close) {
    const std::size_t q2 = text.find('"', q + 1);
    if (q2 == std::string::npos || q2 > close) break;
    items.push_back(text.substr(q + 1, q2 - q - 1));
    q = q2;
  }
  return items;
}

bool validate_schema(const std::string& json, const std::string& schema_path) {
  std::string schema;
  if (!read_file(schema_path, schema)) {
    std::fprintf(stderr, "FAIL: cannot read schema %s\n", schema_path.c_str());
    return false;
  }
  bool ok = true;
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) break;
  }
  if (depth != 0) {
    std::fprintf(stderr, "SCHEMA: campaign JSON braces do not balance\n");
    ok = false;
  }
  const std::vector<std::string> keys = string_array(schema, "required_keys");
  const std::vector<std::string> outcomes =
      string_array(schema, "required_outcomes");
  if (keys.empty() || outcomes.empty()) {
    std::fprintf(stderr, "FAIL: schema %s lists no required keys\n",
                 schema_path.c_str());
    return false;
  }
  for (const std::string& k : keys)
    if (json.find("\"" + k + "\"") == std::string::npos) {
      std::fprintf(stderr, "SCHEMA: missing required key \"%s\"\n", k.c_str());
      ok = false;
    }
  for (const std::string& o : outcomes)
    if (json.find("\"" + o + "\"") == std::string::npos) {
      std::fprintf(stderr, "SCHEMA: missing outcome class \"%s\"\n",
                   o.c_str());
      ok = false;
    }
  return ok;
}

/// The six per-bucket outcome counts, extracted in bucket order. The
/// exact-equality gate compares these and nothing else: makespans shift
/// whenever the cost model is retuned, but an outcome flip means the
/// *behaviour* of recovery under this fault universe changed.
struct BucketCounts {
  long r = -1;
  long counts[6] = {0, 0, 0, 0, 0, 0};
  bool operator==(const BucketCounts&) const = default;
};

long int_field(const std::string& obj, const char* key, long fallback) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtol(obj.c_str() + at + needle.size(), nullptr, 10);
}

std::vector<BucketCounts> parse_bucket_counts(const std::string& json) {
  static constexpr const char* kFields[6] = {"completed",  "recovered",
                                             "degraded",   "deadlocked",
                                             "corrupt",    "failed"};
  std::vector<BucketCounts> rows;
  std::size_t pos = json.find("\"buckets\": [");
  if (pos == std::string::npos) return rows;
  const std::size_t stop = json.find("\n  ]", pos);
  while (true) {
    pos = json.find("{\"r\": ", pos);
    if (pos == std::string::npos || (stop != std::string::npos && pos >= stop))
      break;
    const std::size_t end = json.find("}}", pos);
    if (end == std::string::npos) break;
    const std::string obj = json.substr(pos, end - pos);
    BucketCounts row;
    row.r = int_field(obj, "r", -1);
    for (int i = 0; i < 6; ++i)
      row.counts[i] = int_field(obj, kFields[i], -1);
    rows.push_back(row);
    pos = end + 2;
  }
  return rows;
}

bool check_baseline(const std::string& current_json,
                    const std::string& baseline_path) {
  std::string baseline;
  if (!read_file(baseline_path, baseline)) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                 baseline_path.c_str());
    return false;
  }
  const std::vector<BucketCounts> cur = parse_bucket_counts(current_json);
  const std::vector<BucketCounts> base = parse_bucket_counts(baseline);
  if (cur.empty() || base.empty()) {
    std::fprintf(stderr, "FAIL: could not parse bucket counts (%zu vs %zu)\n",
                 cur.size(), base.size());
    return false;
  }
  if (cur == base) return true;
  std::fprintf(stderr,
               "FAIL: per-bucket outcome counts diverged from %s "
               "(deterministic campaign — regenerate the baseline only for "
               "an intended behaviour change)\n",
               baseline_path.c_str());
  for (std::size_t i = 0; i < cur.size() || i < base.size(); ++i) {
    const BucketCounts c = i < cur.size() ? cur[i] : BucketCounts{};
    const BucketCounts b = i < base.size() ? base[i] : BucketCounts{};
    if (c == b) continue;
    std::fprintf(stderr,
                 "  r=%ld: completed %ld/%ld recovered %ld/%ld degraded "
                 "%ld/%ld deadlocked %ld/%ld corrupt %ld/%ld failed %ld/%ld "
                 "(current/baseline)\n",
                 c.r, c.counts[0], b.counts[0], c.counts[1], b.counts[1],
                 c.counts[2], b.counts[2], c.counts[3], b.counts[3],
                 c.counts[4], b.counts[4], c.counts[5], b.counts[5]);
  }
  return false;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_campaign [--smoke] [--out PATH] "
               "[--baseline PATH] [--schema PATH] [--workers N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  std::string baseline_path;
  std::string schema_path;
  unsigned workers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      const long w = std::strtol(argv[++i], nullptr, 10);
      if (w < 1) return usage();
      workers = static_cast<unsigned>(w);
    } else {
      return usage();
    }
  }

  campaign::CampaignConfig cfg;
  cfg.seed = 20260807;
  cfg.workers = workers;
  if (smoke) {
    // Seconds-scale universe: Q_5, 10 scenarios x r in 0..2 = 30 trials.
    cfg.universe.n = 5;
    cfg.universe.r_max = 2;
    cfg.universe.scenarios = 10;
    cfg.universe.num_keys = 128;
  } else {
    // The acceptance campaign: Q_7, 125 scenarios x r in 0..3 = 500 trials.
    cfg.universe.n = 7;
    cfg.universe.r_max = 3;
    cfg.universe.scenarios = 125;
    cfg.universe.num_keys = 256;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();

  std::fputs(campaign::campaign_summary(report).c_str(), stdout);
  std::printf("trials/sec: %.2f (%zu trials, %.2fs wall, %u worker(s))\n",
              secs > 0.0 ? static_cast<double>(report.trials.size()) / secs
                         : 0.0,
              report.trials.size(), secs, workers);
  if (!report.conserves_trials()) {
    std::fprintf(stderr, "FAIL: trial-count conservation violated\n");
    return 1;
  }
  if (!report.completion_monotone()) {
    std::fprintf(stderr,
                 "FAIL: completion probability not monotone in r\n");
    return 1;
  }

  std::ostringstream json;
  campaign::write_campaign_json(json, report);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!schema_path.empty() && !validate_schema(json.str(), schema_path))
    return 1;
  if (!baseline_path.empty() && !check_baseline(json.str(), baseline_path))
    return 1;
  return 0;
}
