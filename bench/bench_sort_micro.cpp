// Google-benchmark micro: sequential sorting kernels executed inside each
// simulated processor — heapsort (the paper's Step 3 choice) against
// std::sort, the merge-split kernels, and the unimodal repair sort.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "sort/bitonic_network.hpp"
#include "sort/merge_split.hpp"
#include "sort/sequential.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftsort;
using sort::Key;

void BM_Heapsort(benchmark::State& state) {
  util::Rng rng(1);
  const auto base =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto keys = base;
    std::uint64_t comparisons = 0;
    sort::heapsort(keys, comparisons);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StdSort(benchmark::State& state) {
  util::Rng rng(1);
  const auto base =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto keys = base;
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MergeSplitFull(benchmark::State& state) {
  util::Rng rng(2);
  auto a = sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  auto b = sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    std::uint64_t comparisons = 0;
    auto lower =
        sort::merge_split_full(a, b, sort::SplitHalf::Lower, comparisons);
    benchmark::DoNotOptimize(lower.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PairwiseSelect(benchmark::State& state) {
  util::Rng rng(3);
  const auto a =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  const auto b =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    std::uint64_t comparisons = 0;
    auto split =
        sort::pairwise_select(a, b, sort::SplitHalf::Lower, comparisons);
    benchmark::DoNotOptimize(split.kept.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MergeSplitInto(benchmark::State& state) {
  util::Rng rng(2);
  auto a = sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  auto b = sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<Key> out;
  for (auto _ : state) {
    std::uint64_t comparisons = 0;
    sort::merge_split_into(a, b, sort::SplitHalf::Lower, out, comparisons);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PairwiseSelectInto(benchmark::State& state) {
  util::Rng rng(3);
  const auto a =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  const auto b =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Key> kept;
  std::vector<Key> returned;
  for (auto _ : state) {
    std::uint64_t comparisons = 0;
    sort::pairwise_select_into(a, b, sort::SplitHalf::Lower, kept, returned,
                               comparisons);
    benchmark::DoNotOptimize(kept.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PairwiseSelectRevInto(benchmark::State& state) {
  util::Rng rng(3);
  const auto a =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  const auto b =
      sort::gen_uniform(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Key> kept;
  std::vector<Key> returned;
  for (auto _ : state) {
    std::uint64_t comparisons = 0;
    sort::pairwise_select_rev_into(a, b, sort::SplitHalf::Lower, kept,
                                   returned, comparisons);
    benchmark::DoNotOptimize(kept.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SortUnimodal(benchmark::State& state) {
  const auto base =
      sort::gen_organ_pipe(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto keys = base;
    std::uint64_t comparisons = 0;
    sort::sort_unimodal(keys, comparisons);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BitonicNetworkSequential(benchmark::State& state) {
  util::Rng rng(4);
  const auto base =
      sort::gen_uniform(std::size_t{1} << state.range(0), rng);
  for (auto _ : state) {
    auto keys = base;
    std::uint64_t comparisons = 0;
    sort::bitonic_sort_sequential(keys, comparisons);
    benchmark::DoNotOptimize(keys.data());
  }
}

}  // namespace

BENCHMARK(BM_Heapsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_StdSort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_MergeSplitFull)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_MergeSplitInto)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_PairwiseSelect)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_PairwiseSelectInto)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_PairwiseSelectRevInto)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_SortUnimodal)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_BitonicNetworkSequential)->Arg(10)->Arg(14);

BENCHMARK_MAIN();
