// Shared runner for the Figure 7 reproductions: execution time of the
// proposed fault-tolerant sort on Q_n with r = 1..n-1 faults (thin lines in
// the paper) against plain bitonic sort on fault-free subcubes Q_t (thick
// lines — the outcomes the MFS reconfiguration can offer).
//
// Times are the simulator's logical makespans under the NCUBE-calibrated
// cost model; the paper's absolute milliseconds are not reproducible
// (different constants), but the orderings and crossovers are.
#pragma once

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "baseline/mfs_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ftsort::bench {

inline void run_figure7(cube::Dim n, const std::string& figure_label,
                        int trials_per_r = 3) {
  const std::vector<std::size_t> key_counts{3'200, 10'000, 32'000, 100'000,
                                            320'000};

  std::cout << "=== Figure 7(" << figure_label
            << "): execution time vs M on Q_" << n << " ("
            << cube::num_nodes(n) << " processors) ===\n"
            << "thin lines: proposed algorithm with r faults (mean of "
            << trials_per_r << " random placements); thick lines: plain "
            << "bitonic sort on a fault-free Q_t, the best the "
            << "max-fault-free-subcube method can use.\ntimes in "
            << "simulated milliseconds.\n\n";

  std::vector<std::string> headers{"M"};
  for (int r = 1; r < n; ++r)
    headers.push_back("ours r=" + std::to_string(r));
  const cube::Dim t_low = std::max(n - 3, 1);
  for (cube::Dim t = n; t >= t_low; --t)
    headers.push_back("Q_" + std::to_string(t));
  util::Table table(headers,
                    std::vector<util::Align>(headers.size(),
                                             util::Align::Right));

  // Fault placements are fixed across M so each thin line is one system.
  std::vector<std::vector<core::FaultTolerantSorter>> sorters;
  util::Rng rng(1700 + static_cast<std::uint64_t>(n));
  for (int r = 1; r < n; ++r) {
    std::vector<core::FaultTolerantSorter> per_r;
    for (int trial = 0; trial < trials_per_r; ++trial)
      per_r.emplace_back(
          n, fault::random_faults(n, static_cast<std::size_t>(r), rng));
    sorters.push_back(std::move(per_r));
  }

  std::vector<double> ours_at_max(static_cast<std::size_t>(n), 0.0);
  std::vector<double> subcube_at_max(static_cast<std::size_t>(n + 1), 0.0);

  for (std::size_t m : key_counts) {
    const auto keys = sort::gen_uniform(m, rng);
    std::vector<std::string> row{std::to_string(m)};
    for (int r = 1; r < n; ++r) {
      util::OnlineStats stats;
      for (auto& sorter : sorters[static_cast<std::size_t>(r - 1)])
        stats.add(sorter.sort(keys).report.makespan);
      row.push_back(util::Table::fixed(stats.mean() / 1000.0, 1));
      ours_at_max[static_cast<std::size_t>(r)] = stats.mean();
    }
    for (cube::Dim t = n; t >= t_low; --t) {
      const auto result =
          baseline::mfs_bitonic_sort(t, fault::FaultSet(t), keys);
      row.push_back(util::Table::fixed(result.report.makespan / 1000.0, 1));
      subcube_at_max[static_cast<std::size_t>(t)] = result.report.makespan;
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();

  // Shape checks at the largest M — the paper's qualitative claims.
  std::cout << "\nshape checks at M = " << key_counts.back() << ":\n";
  if (n >= 2) {
    for (int r = 1; r <= std::min(2, n - 1); ++r) {
      const bool wins = ours_at_max[static_cast<std::size_t>(r)] <
                        subcube_at_max[static_cast<std::size_t>(n - 1)];
      std::cout << "  ours(r=" << r << ") < fault-free Q_" << n - 1
                << ": " << (wins ? "yes" : "NO") << "\n";
    }
  }
  if (n >= 3) {
    for (int r = 3; r < n; ++r) {
      const bool wins = ours_at_max[static_cast<std::size_t>(r)] <
                        subcube_at_max[static_cast<std::size_t>(n - 2)];
      std::cout << "  ours(r=" << r << ") < fault-free Q_" << n - 2
                << ": " << (wins ? "yes" : "NO") << "\n";
    }
  }
}

}  // namespace ftsort::bench
