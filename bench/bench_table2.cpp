// Table 2 of the paper: processor utilization of the proposed partition vs
// the maximum-dimensional fault-free subcube (MFS) reconfiguration.
//
// Utilization = (processors actually sorting) / (healthy processors).
// Best and worst cases are taken over fault placements: exhaustively where
// feasible (r <= 2), otherwise over 10,000 random placements. The paper's
// running example: n = 6, r = 4 gives 100% (best) / 93.3% (worst) for the
// proposed scheme vs 53.3% / 26.6% for MFS.
#include <iostream>
#include <vector>

#include "baseline/max_subcube.hpp"
#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ftsort;

struct Extremes {
  util::OnlineStats ours;
  util::OnlineStats mfs;

  void observe(const fault::FaultSet& faults) {
    const auto plan = partition::Plan::build(faults);
    ours.add(plan.utilization_percent());
    const auto max_sub = baseline::find_max_fault_free_subcube(faults);
    mfs.add(max_sub->utilization_percent);
  }
};

/// Enumerate all C(N, r) fault placements when tractable.
void exhaustive(cube::Dim n, std::size_t r, Extremes& extremes) {
  const cube::NodeId size = cube::num_nodes(n);
  std::vector<cube::NodeId> faults(r);
  const auto recurse = [&](auto&& self, std::size_t depth,
                           cube::NodeId start) -> void {
    if (depth == r) {
      extremes.observe(fault::FaultSet(
          n, std::vector<cube::NodeId>(faults.begin(), faults.end())));
      return;
    }
    for (cube::NodeId u = start; u < size; ++u) {
      faults[depth] = u;
      self(self, depth + 1, u + 1);
    }
  };
  recurse(recurse, 0, 0);
}

}  // namespace

int main() {
  constexpr int kTrials = 10'000;
  std::cout << "=== Table 2: processor utilization, proposed vs maximum "
               "fault-free subcube ===\n\n";

  util::Table table({"n", "r", "ours best", "ours worst", "MFS best",
                     "MFS worst", "placements"},
                    std::vector<util::Align>(7, util::Align::Right));

  util::Rng rng(64);
  for (cube::Dim n = 3; n <= 6; ++n) {
    for (std::size_t r = 1; r + 1 <= static_cast<std::size_t>(n); ++r) {
      Extremes extremes;
      const double combinations =
          r <= 2 ? (r == 1 ? cube::num_nodes(n)
                           : cube::num_nodes(n) *
                                 (cube::num_nodes(n) - 1) / 2.0)
                 : -1.0;
      std::string placements;
      if (combinations > 0 && combinations <= 4096) {
        exhaustive(n, r, extremes);
        placements = "all " + std::to_string(
                                  static_cast<long long>(combinations));
      } else {
        for (int trial = 0; trial < kTrials; ++trial)
          extremes.observe(fault::random_faults(n, r, rng));
        placements = std::to_string(kTrials) + " random";
      }
      table.add_row({std::to_string(n), std::to_string(r),
                     util::Table::percent(extremes.ours.max(), 1),
                     util::Table::percent(extremes.ours.min(), 1),
                     util::Table::percent(extremes.mfs.max(), 1),
                     util::Table::percent(extremes.mfs.min(), 1),
                     placements});
    }
  }
  std::cout << table.to_string();
  std::cout << "\npaper reference (n=6, r=4): proposed 100%/93.3%, MFS "
               "53.3%/26.6%. The proposed partition must dominate MFS in "
               "every cell.\n";
  return 0;
}
