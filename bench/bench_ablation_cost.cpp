// Ablation: sensitivity of the Figure 7 conclusions to the cost-model
// ratio t_s/r : t_c and to the Step 8 variant.
//
// The paper reports absolute NCUBE/7 milliseconds without stating its
// constants; this bench shows for which communication/computation ratios
// its headline orderings hold. Entries are time ratios  proposed / best
// fault-free subcube the baseline could use  (< 1 means the proposed
// algorithm wins, as the paper claims).
#include <iostream>

#include "baseline/mfs_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftsort;

  std::cout << "=== Ablation: cost-ratio sensitivity of the Fig. 7 "
               "orderings (Q_6, 320,000 keys) ===\n"
            << "cells: time(ours, r) / time(bitonic on fault-free Q_t); "
               "< 1 reproduces the paper's claim.\n\n";

  util::Rng rng(42);
  const auto keys = sort::gen_uniform(320'000, rng);
  const auto faults2 = fault::random_faults(6, 2, rng);
  const auto faults5 = fault::random_faults(6, 5, rng);

  util::Table table({"t_s/r : t_c", "step 8", "r=2 vs Q_5", "r=5 vs Q_4"},
                    {util::Align::Left, util::Align::Left,
                     util::Align::Right, util::Align::Right});

  for (const double ratio : {0.5, 1.0, 4.0, 16.0}) {
    const sim::CostModel cost = sim::CostModel::ncube7_ratio(ratio);
    const double q5 =
        baseline::mfs_bitonic_sort(5, fault::FaultSet(5), keys,
                                   fault::FaultModel::Partial, cost)
            .report.makespan;
    const double q4 =
        baseline::mfs_bitonic_sort(4, fault::FaultSet(4), keys,
                                   fault::FaultModel::Partial, cost)
            .report.makespan;
    for (const auto step8 :
         {core::Step8Mode::BitonicMerge, core::Step8Mode::FullSort}) {
      core::SortConfig config;
      config.cost = cost;
      config.step8 = step8;
      const double ours2 =
          core::FaultTolerantSorter(6, faults2, config)
              .sort(keys)
              .report.makespan;
      const double ours5 =
          core::FaultTolerantSorter(6, faults5, config)
              .sort(keys)
              .report.makespan;
      table.add_row({util::Table::fixed(ratio, 1) + " : 1",
                     step8 == core::Step8Mode::BitonicMerge
                         ? "merge"
                         : "full sort (paper formula)",
                     util::Table::fixed(ours2 / q5, 3),
                     util::Table::fixed(ours5 / q4, 3)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nreading: with the merge variant the proposed algorithm "
               "wins through communication/computation ratios of at least "
               "4:1 (NCUBE territory) and only loses the hardest case "
               "(r=5 vs Q_4) when links are 16x slower than compares; the "
               "literal full re-sort already loses at 4:1, which is why "
               "the paper's own formula cannot explain its Figure 7.\n";
  return 0;
}
