// Figure 7 re-run under both routing models: store-and-forward (the
// paper's NCUBE/7) versus calibrated cut-through (wormhole), with the
// shift attributed phase by phase.
//
// The pair that isolates routing is ncube7_with_startup vs wormhole —
// identical constants (t_c=2, t_t=8, t_s=350), only the per-hop term
// changes from h*(t_s + k*t_t) to h*t_s + k*t_t. Plain ncube7 (t_s=0)
// is printed as the paper-default anchor; at t_s=0 the two modes only
// differ by the pipelining of the body, so the wormhole columns show
// how much of the multi-hop tax is start-up replication vs body
// store-and-forwarding. The coalesced column adds the half->full
// exchange rewrite (CoalescePolicy::Auto under cut-through): same keys
// per direction, half the messages and rounds.
//
// Output feeds the "Fig. 7 under cut-through" table in EXPERIMENTS.md.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/phase.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftsort;

constexpr cube::Dim kN = 6;          // Q_6, as in Figure 7
constexpr std::size_t kFaults = 2;   // r = 2
constexpr std::uint64_t kSeed = 1706;  // matches bench_harness fig7_q6_r2*

core::SortOutcome run_once(const fault::FaultSet& faults,
                           const std::vector<sim::Key>& keys,
                           const sim::CostModel& cost,
                           sort::CoalescePolicy coalesce, bool instrument) {
  core::SortConfig cfg;
  cfg.cost = cost;
  cfg.protocol = sort::ExchangeProtocol::HalfExchange;
  cfg.coalesce = coalesce;
  cfg.record_metrics = instrument;
  cfg.record_trace = instrument;
  const core::FaultTolerantSorter sorter(kN, faults, cfg);
  return sorter.sort(keys);
}

std::string ms(double sim_time) { return util::Table::fixed(sim_time, 0); }

}  // namespace

int main() {
  std::cout << "=== Figure 7 under cut-through: Q_6, r=2, seed " << kSeed
            << " ===\n"
            << "half-exchange configured throughout; 'wormhole+coalesce' is "
               "CoalescePolicy::Auto\n(engages under cut-through, rewriting "
               "each split exchange to one full-exchange\nmessage per "
               "direction).\n\n";

  util::Rng rng(kSeed);
  const fault::FaultSet faults = fault::random_faults(kN, kFaults, rng);

  const sim::CostModel saf0 = sim::CostModel::ncube7();
  const sim::CostModel saf = sim::CostModel::ncube7_with_startup();
  const sim::CostModel ct = sim::CostModel::wormhole();

  util::Table sweep({"keys", "ncube7 (t_s=0)", "saf (t_s=350)", "wormhole",
                     "wormhole+coalesce", "ct/saf"},
                    {util::Align::Right, util::Align::Right, util::Align::Right,
                     util::Align::Right, util::Align::Right,
                     util::Align::Right});
  for (const std::size_t m : {32'000u, 100'000u, 320'000u}) {
    util::Rng krng(kSeed + m);
    const auto keys = sort::gen_uniform(m, krng);
    const double t0 =
        run_once(faults, keys, saf0, sort::CoalescePolicy::Off, false)
            .report.makespan;
    const double t_saf =
        run_once(faults, keys, saf, sort::CoalescePolicy::Off, false)
            .report.makespan;
    const double t_ct =
        run_once(faults, keys, ct, sort::CoalescePolicy::Off, false)
            .report.makespan;
    const double t_ctc =
        run_once(faults, keys, ct, sort::CoalescePolicy::Auto, false)
            .report.makespan;
    sweep.add_row({std::to_string(m), ms(t0), ms(t_saf), ms(t_ct), ms(t_ctc),
                   util::Table::fixed(t_ctc / t_saf, 3)});
  }
  std::cout << sweep.to_string() << '\n';

  // Phase-by-phase attribution of the shift at the Figure 7 maximum
  // (320,000 keys): where on the critical path the cut-through +
  // coalescing win lands, split into communication and computation.
  util::Rng krng(kSeed + 320'000u);
  const auto keys = sort::gen_uniform(320'000, krng);
  const auto obs_saf =
      run_once(faults, keys, saf, sort::CoalescePolicy::Off, true);
  const auto obs_ctc =
      run_once(faults, keys, ct, sort::CoalescePolicy::Auto, true);

  util::Table phases({"phase", "saf crit", "saf comm", "saf compute",
                      "ct+co crit", "ct+co comm", "ct+co compute", "delta"},
                     {util::Align::Left, util::Align::Right, util::Align::Right,
                      util::Align::Right, util::Align::Right,
                      util::Align::Right, util::Align::Right,
                      util::Align::Right});
  const auto& a = obs_saf.report.phases.slices;
  const auto& b = obs_ctc.report.phases.slices;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i].critical_time == 0.0 && b[i].critical_time == 0.0) continue;
    phases.add_row({sim::phase_name(a[i].phase), ms(a[i].critical_time),
                    ms(a[i].critical_comm), ms(a[i].critical_compute),
                    ms(b[i].critical_time), ms(b[i].critical_comm),
                    ms(b[i].critical_compute),
                    ms(b[i].critical_time - a[i].critical_time)});
  }
  phases.add_row({"makespan", ms(obs_saf.report.makespan), "", "",
                  ms(obs_ctc.report.makespan), "", "",
                  ms(obs_ctc.report.makespan - obs_saf.report.makespan)});
  std::cout << phases.to_string();
  std::cout << "\nreading: most of the shift is communication — multi-hop "
               "routes stop paying h\ncopies of the 350-cycle start-up under "
               "cut-through, and coalescing halves the\nmessage count in the "
               "exchange phases outright. The exchange-phase compute\ncolumns "
               "shrink too: a full exchange merges to the keep-side only "
               "(<= b\ncomparisons) where the split exchange's two "
               "half-merges cost ~2b, and the\ncritical-path walk reroutes "
               "through the now-cheaper nodes.\n";
  return 0;
}
