// Unit tests for the statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace ftsort::util {
namespace {

TEST(OnlineStats, EmptyIsZeroed) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, SingleSamplePercentiles) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);
}

TEST(SampleSet, RejectsOutOfRangePercentile) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), ContractViolation);
  EXPECT_THROW(s.percentile(101.0), ContractViolation);
}

TEST(SampleSet, EmptyStatsThrow) {
  SampleSet s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(SampleSet, SortingIsStableAcrossInsertions) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(5.0);  // cache must refresh
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Histogram, CountsAndPercents) {
  Histogram h;
  h.add(2);
  h.add(2);
  h.add(3);
  h.add(4, 6);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(4), 6u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_NEAR(h.percent(4), 100.0 * 6 / 9, 1e-12);
}

TEST(Histogram, EmptyPercentIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percent(1), 0.0);
}

TEST(Histogram, ToStringListsBinsInOrder) {
  Histogram h;
  h.add(5);
  h.add(1);
  h.add(5);
  EXPECT_EQ(h.to_string(), "{1: 1, 5: 2}");
}

}  // namespace
}  // namespace ftsort::util
