// Tests for the binomial-tree / recursive-doubling collectives.
#include <gtest/gtest.h>

#include <numeric>

#include "sort/collectives.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

using Blocks = std::vector<std::vector<Key>>;

/// Run one collective across a fault-free identity cube of dimension s.
template <typename PerNode>
void run_on_cube(cube::Dim s, PerNode&& per_node) {
  sim::Machine machine(s, fault::FaultSet(s));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    co_await per_node(ctx);
  };
  machine.run(program);
}

TEST(Broadcast, EveryRankReceivesRootData) {
  for (cube::Dim s = 0; s <= 5; ++s) {
    for (cube::NodeId root = 0; root < cube::num_nodes(s);
         root += (s >= 4 ? 5 : 1)) {
      const LogicalCube lc = LogicalCube::identity(s);
      const std::vector<Key> payload{7, 8, 9};
      Blocks results(lc.size());
      run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
        std::vector<Key> data =
            ctx.id() == root ? payload : std::vector<Key>{};
        results[ctx.id()] = co_await broadcast(ctx, lc, ctx.id(), root,
                                               std::move(data), 0);
      });
      for (cube::NodeId u = 0; u < lc.size(); ++u)
        EXPECT_EQ(results[u], payload) << "s=" << s << " root=" << root;
    }
  }
}

TEST(Broadcast, RoundCountIsLogarithmic) {
  const LogicalCube lc = LogicalCube::identity(4);
  sim::Machine machine(4, fault::FaultSet(4));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    std::vector<Key> data = ctx.id() == 0 ? std::vector<Key>{1} : std::vector<Key>{};
    auto out = co_await broadcast(ctx, lc, ctx.id(), 0, std::move(data), 0);
    (void)out;
  };
  const auto report = machine.run(program);
  EXPECT_EQ(report.messages, 15u);  // one per non-root rank
}

TEST(Scatter, EveryRankGetsItsBlock) {
  util::Rng rng(1);
  for (cube::Dim s = 1; s <= 5; ++s) {
    for (cube::NodeId root : {cube::NodeId{0},
                              cube::NodeId(cube::num_nodes(s) - 1)}) {
      const LogicalCube lc = LogicalCube::identity(s);
      Blocks input(lc.size());
      for (cube::NodeId u = 0; u < lc.size(); ++u)
        input[u] = {static_cast<Key>(u * 10), static_cast<Key>(u * 10 + 1)};
      Blocks results(lc.size());
      run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
        Blocks mine = ctx.id() == root ? input : Blocks{};
        results[ctx.id()] = co_await scatter(ctx, lc, ctx.id(), root,
                                             std::move(mine), 0);
      });
      for (cube::NodeId u = 0; u < lc.size(); ++u)
        EXPECT_EQ(results[u], input[u]) << "s=" << s << " root=" << root;
    }
  }
}

TEST(Gather, RootCollectsInLogicalOrder) {
  for (cube::Dim s = 1; s <= 5; ++s) {
    for (cube::NodeId root : {cube::NodeId{0}, cube::NodeId{1}}) {
      const LogicalCube lc = LogicalCube::identity(s);
      std::vector<Key> at_root;
      run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
        std::vector<Key> mine{static_cast<Key>(ctx.id() * 2),
                              static_cast<Key>(ctx.id() * 2 + 1)};
        auto out =
            co_await gather(ctx, lc, ctx.id(), root, std::move(mine), 0);
        if (ctx.id() == root) at_root = std::move(out);
      });
      ASSERT_EQ(at_root.size(), 2 * lc.size());
      for (std::size_t i = 0; i < at_root.size(); ++i)
        EXPECT_EQ(at_root[i], static_cast<Key>(i)) << "s=" << s;
    }
  }
}

TEST(GatherScatter, RoundTrip) {
  util::Rng rng(2);
  const cube::Dim s = 4;
  const LogicalCube lc = LogicalCube::identity(s);
  Blocks original(lc.size());
  for (auto& block : original) block = gen_uniform(3, rng);
  Blocks scattered(lc.size());
  std::vector<Key> gathered;
  run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    Blocks mine = ctx.id() == 0 ? original : Blocks{};
    scattered[ctx.id()] =
        co_await scatter(ctx, lc, ctx.id(), 0, std::move(mine), 0);
    auto out = co_await gather(ctx, lc, ctx.id(), 0,
                               scattered[ctx.id()], 100);
    if (ctx.id() == 0) gathered = std::move(out);
  });
  std::vector<Key> expect;
  for (const auto& block : original)
    expect.insert(expect.end(), block.begin(), block.end());
  EXPECT_EQ(gathered, expect);
}

TEST(GatherScatter, SteadyStateReusesPooledWireBuffers) {
  // Scatter stages its per-round wire through a reused scratch vector and
  // a pooled span-send, and leaf receivers steal the payload outright.
  // Iterating the round trip must therefore settle into recycled buffers:
  // almost all checkouts after the warm-up iteration come from the free
  // list, not the heap.
  const cube::Dim s = 4;
  const LogicalCube lc = LogicalCube::identity(s);
  sim::Machine machine(s, fault::FaultSet(s));
  Blocks input(lc.size());
  for (cube::NodeId u = 0; u < lc.size(); ++u)
    input[u] = {static_cast<Key>(u * 3), static_cast<Key>(u * 3 + 1),
                static_cast<Key>(u * 3 + 2)};
  constexpr int kIters = 4;
  std::vector<Key> gathered;
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    for (int iter = 0; iter < kIters; ++iter) {
      const sim::Tag base = static_cast<sim::Tag>(iter * 100);
      Blocks mine = ctx.id() == 0 ? input : Blocks{};
      auto block =
          co_await scatter(ctx, lc, ctx.id(), 0, std::move(mine), base);
      auto out = co_await gather(ctx, lc, ctx.id(), 0, std::move(block),
                                 base + 50);
      if (ctx.id() == 0) gathered = std::move(out);
    }
  };
  machine.run(program);
  std::vector<Key> expect;
  for (const auto& block : input)
    expect.insert(expect.end(), block.begin(), block.end());
  EXPECT_EQ(gathered, expect);

  const sim::PoolStats pool = machine.pool_stats();
  ASSERT_GT(pool.checkouts, 0u);
  // New heap vectors appear in the warm-up iteration only: every later
  // checkout is served from the free list (some recycled buffers still
  // regrow, because the LIFO free list does not match by size).
  EXPECT_LE(pool.fresh, pool.checkouts / static_cast<std::uint64_t>(kIters))
      << "checkouts=" << pool.checkouts << " fresh=" << pool.fresh
      << " grows=" << pool.grows;
  EXPECT_LT(pool.heap_allocations(), pool.checkouts / 2)
      << "checkouts=" << pool.checkouts << " fresh=" << pool.fresh
      << " grows=" << pool.grows;
}

TEST(AllGather, EveryRankHoldsEverything) {
  for (cube::Dim s = 0; s <= 4; ++s) {
    const LogicalCube lc = LogicalCube::identity(s);
    Blocks results(lc.size());
    run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
      std::vector<Key> mine{static_cast<Key>(ctx.id())};
      results[ctx.id()] =
          co_await all_gather(ctx, lc, ctx.id(), std::move(mine), 0);
    });
    std::vector<Key> expect(lc.size());
    std::iota(expect.begin(), expect.end(), Key{0});
    for (cube::NodeId u = 0; u < lc.size(); ++u)
      EXPECT_EQ(results[u], expect) << "s=" << s;
  }
}

TEST(Reduce, SumMinMax) {
  const cube::Dim s = 3;
  const LogicalCube lc = LogicalCube::identity(s);
  for (const auto op : {ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max}) {
    std::vector<Key> at_root;
    run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
      // Vector of two elements: id and -id.
      std::vector<Key> mine{static_cast<Key>(ctx.id()),
                            -static_cast<Key>(ctx.id())};
      auto out =
          co_await reduce(ctx, lc, ctx.id(), 0, std::move(mine), op, 0);
      if (ctx.id() == 0) at_root = std::move(out);
    });
    ASSERT_EQ(at_root.size(), 2u);
    switch (op) {
      case ReduceOp::Sum:
        EXPECT_EQ(at_root[0], 28);   // 0+1+...+7
        EXPECT_EQ(at_root[1], -28);
        break;
      case ReduceOp::Min:
        EXPECT_EQ(at_root[0], 0);
        EXPECT_EQ(at_root[1], -7);
        break;
      case ReduceOp::Max:
        EXPECT_EQ(at_root[0], 7);
        EXPECT_EQ(at_root[1], 0);
        break;
    }
  }
}

TEST(Reduce, NonZeroRoot) {
  const cube::Dim s = 3;
  const LogicalCube lc = LogicalCube::identity(s);
  std::vector<Key> at_root;
  run_on_cube(s, [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    std::vector<Key> mine{1};
    auto out = co_await reduce(ctx, lc, ctx.id(), 5, std::move(mine),
                               ReduceOp::Sum, 0);
    if (ctx.id() == 5) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), 1u);
  EXPECT_EQ(at_root[0], 8);
}

TEST(Collectives, WorkOnRemappedSubcube) {
  // A collective over a re-mapped logical cube (the upper half of Q_4,
  // reversed) must behave identically to the identity mapping.
  const cube::Dim s = 3;
  LogicalCube lc;
  lc.s = s;
  for (cube::NodeId u = 0; u < 8; ++u)
    lc.phys.push_back(15 - u);  // logical i -> physical 15-i
  std::vector<Key> at_root;
  sim::Machine machine(4, fault::FaultSet(4));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() < 8) co_return;  // lower half idles
    const cube::NodeId logical = 15 - ctx.id();
    std::vector<Key> mine{static_cast<Key>(logical)};
    auto out = co_await gather(ctx, lc, logical, 0, std::move(mine), 0);
    if (logical == 0) at_root = std::move(out);
  };
  machine.run(program);
  ASSERT_EQ(at_root.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(at_root[i], static_cast<Key>(i));
}

TEST(Collectives, RejectDeadCube) {
  LogicalCube lc = LogicalCube::identity(2);
  lc.dead0 = true;
  sim::Machine machine(2, fault::FaultSet(2, {0}));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    std::vector<Key> data{1};
    auto out =
        co_await broadcast(ctx, lc, ctx.id(), 1, std::move(data), 0);
    (void)out;
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(Collectives, TagSpan) {
  EXPECT_EQ(collective_tag_span(0), 0u);
  EXPECT_EQ(collective_tag_span(5), 5u);
}

}  // namespace
}  // namespace ftsort::sort
