// Unit tests for the table renderer and CLI parser.
#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace ftsort::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"}, {Align::Left, Align::Right});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "1000"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Right-aligned numbers share their final column.
  const auto line1_pos = out.find("alpha");
  const auto one = out.find(" 1\n");
  EXPECT_NE(one, std::string::npos);
  EXPECT_GT(one, line1_pos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, IndentPrefixesEveryLine) {
  Table t({"h"});
  t.add_row({"x"});
  const std::string out = t.to_string(2);
  for (std::size_t pos = 0; pos < out.size();) {
    EXPECT_EQ(out.substr(pos, 2), "  ");
    pos = out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::percent(93.85), "93.85%");
  EXPECT_EQ(Table::percent(50.0, 1), "50.0%");
  EXPECT_EQ(Table::integer(-12), "-12");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Cli, ParsesLongOptionsBothForms) {
  CliParser cli("prog", "test");
  cli.add_int("n", 4, "dimension");
  cli.add_string("mode", "fast", "mode");
  const char* argv[] = {"prog", "--n", "6", "--mode=slow"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.integer("n"), 6);
  EXPECT_EQ(cli.str("mode"), "slow");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "test");
  cli.add_int("n", 4, "dimension");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.integer("n"), 4);
  EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, FlagsToggleOn) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, NonIntegerValueFails) {
  CliParser cli("prog", "test");
  cli.add_int("n", 4, "dimension");
  const char* argv[] = {"prog", "--n", "six"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
  CliParser cli("prog", "test");
  cli.add_int("n", 4, "dimension");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, HelpReturnsFalseAndPrintsUsage) {
  CliParser cli("prog", "summary text");
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("summary text"), std::string::npos);
}

TEST(Cli, UsageListsOptionsWithDefaults) {
  CliParser cli("prog", "test");
  cli.add_int("keys", 1000, "number of keys");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--keys <1000>"), std::string::npos);
  EXPECT_NE(usage.find("number of keys"), std::string::npos);
}

}  // namespace
}  // namespace ftsort::util
