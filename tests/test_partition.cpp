// Unit tests for the partition algorithm (checking tree, mincut, Ψ).
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/scenario.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace ftsort::partition {
namespace {

TEST(CheckingTree, EmptyAndSingleFaultNeedNoCuts) {
  EXPECT_TRUE(is_single_fault_structure(fault::FaultSet(4), {}));
  EXPECT_TRUE(is_single_fault_structure(fault::FaultSet(4, {9}), {}));
}

TEST(CheckingTree, TwoFaultsNeedSeparatingDimension) {
  // Faults 0 and 6 (differ in dims 1, 2).
  const fault::FaultSet faults(3, {0, 6});
  EXPECT_FALSE(is_single_fault_structure(faults, {}));
  const std::vector<cube::Dim> d0{0};
  EXPECT_FALSE(is_single_fault_structure(faults, d0));
  const std::vector<cube::Dim> d1{1};
  EXPECT_TRUE(is_single_fault_structure(faults, d1));
  const std::vector<cube::Dim> d2{2};
  EXPECT_TRUE(is_single_fault_structure(faults, d2));
}

TEST(CheckingTree, PaperFigure3Example) {
  // Q_4 with faults {0, 6, 9}: D = (1, 3) builds F_4^2.
  const fault::FaultSet faults(4, {0, 6, 9});
  const std::vector<cube::Dim> cuts{1, 3};
  EXPECT_TRUE(is_single_fault_structure(faults, cuts));
  // Dimension 1 alone leaves {0, 9} together.
  const std::vector<cube::Dim> d1{1};
  EXPECT_FALSE(is_single_fault_structure(faults, d1));
}

TEST(PartitionSearch, FaultFreeGivesMincutZero) {
  const auto result = find_cutting_set(fault::FaultSet(5));
  EXPECT_EQ(result.mincut, 0);
  ASSERT_EQ(result.cutting_set.size(), 1u);
  EXPECT_TRUE(result.cutting_set[0].empty());
}

TEST(PartitionSearch, SingleFaultGivesMincutZero) {
  const auto result = find_cutting_set(fault::FaultSet(5, {17}));
  EXPECT_EQ(result.mincut, 0);
}

TEST(PartitionSearch, TwoFaultsGiveMincutOne) {
  // Any two distinct faults are separated by one cut along any differing
  // dimension; Ψ holds exactly those dimensions.
  const fault::FaultSet faults(4, {0b0101, 0b0110});
  const auto result = find_cutting_set(faults);
  EXPECT_EQ(result.mincut, 1);
  std::vector<std::vector<cube::Dim>> expected{{0}, {1}};
  EXPECT_EQ(result.cutting_set, expected);
}

TEST(PartitionSearch, PaperExample1FullCuttingSet) {
  // Q_5, faults {00011, 00101, 10000, 11000} = {3, 5, 16, 24}:
  // Ψ = {(0,1,3), (0,2,3), (1,2,3), (1,3,4), (2,3,4)}, mincut = 3.
  const fault::FaultSet faults(5, {3, 5, 16, 24});
  const auto result = find_cutting_set(faults);
  EXPECT_EQ(result.mincut, 3);
  const std::vector<std::vector<cube::Dim>> expected{
      {0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {1, 3, 4}, {2, 3, 4}};
  EXPECT_EQ(result.cutting_set, expected);
}

TEST(PartitionSearch, EverySequenceInPsiIsValidAndMinimal) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = fault::random_faults(6, 5, rng);
    const auto result = find_cutting_set(faults);
    for (const auto& cuts : result.cutting_set) {
      EXPECT_EQ(static_cast<int>(cuts.size()), result.mincut);
      EXPECT_TRUE(is_single_fault_structure(faults, cuts));
      EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
    }
  }
}

TEST(PartitionSearch, MincutMatchesBruteForce) {
  // Exhaustive verification against all dimension subsets on Q_5.
  util::Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto result = find_cutting_set(faults);
    int brute = 5;
    std::vector<std::vector<cube::Dim>> all_minimal;
    for (std::uint32_t mask = 0; mask < 32; ++mask) {
      std::vector<cube::Dim> cuts;
      for (cube::Dim d = 0; d < 5; ++d)
        if (mask & (1u << d)) cuts.push_back(d);
      if (!is_single_fault_structure(faults, cuts)) continue;
      if (static_cast<int>(cuts.size()) < brute) {
        brute = static_cast<int>(cuts.size());
        all_minimal.clear();
      }
      if (static_cast<int>(cuts.size()) == brute)
        all_minimal.push_back(cuts);
    }
    EXPECT_EQ(result.mincut, brute) << faults.to_string();
    auto got = result.cutting_set;
    std::sort(got.begin(), got.end());
    std::sort(all_minimal.begin(), all_minimal.end());
    EXPECT_EQ(got, all_minimal) << faults.to_string();
  }
}

TEST(PartitionSearch, PaperBoundMincutAtMostNMinus2) {
  // For r <= n-1 the paper guarantees a partition with at most n-2 cuts.
  util::Rng rng(3);
  for (cube::Dim n = 3; n <= 6; ++n)
    for (int trial = 0; trial < 100; ++trial) {
      const auto faults =
          fault::random_faults(n, static_cast<std::size_t>(n - 1), rng);
      const auto result = find_cutting_set(faults);
      EXPECT_LE(result.mincut, n - 2) << faults.to_string();
    }
}

TEST(PartitionSearch, MincutAtMostRMinus1) {
  // Separating r faults pairwise never needs more than r-1 cuts.
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    for (std::size_t r = 2; r <= 5; ++r) {
      const auto faults = fault::random_faults(6, r, rng);
      const auto result = find_cutting_set(faults);
      EXPECT_LE(result.mincut, static_cast<int>(r) - 1);
    }
  }
}

TEST(PartitionSearch, TreeTraversalIsBounded) {
  // The cutting-dimension tree has at most 2^n - 1 nodes.
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(6, 5, rng);
    const auto result = find_cutting_set(faults);
    EXPECT_LE(result.tree_nodes_visited, 63u);
    EXPECT_LE(result.fault_checks, 5u * 64u);  // O(rN)
  }
}

TEST(PartitionSearch, AdversarialClusterNeedsManyCuts) {
  // All faults packed in one tiny subcube force larger mincut values than
  // typical random placements.
  util::Rng rng(6);
  const auto faults = fault::clustered_faults(6, 4, 2, rng);
  const auto result = find_cutting_set(faults);
  EXPECT_GE(result.mincut, 2);  // 4 faults in a Q_2 need both its dims cut
}

TEST(PartitionSearch, AntipodalFaultsSeparableEverywhere) {
  const fault::FaultSet faults(4, {0b0000, 0b1111});
  const auto result = find_cutting_set(faults);
  EXPECT_EQ(result.mincut, 1);
  EXPECT_EQ(result.cutting_set.size(), 4u);  // any single dimension works
}

}  // namespace
}  // namespace ftsort::partition
