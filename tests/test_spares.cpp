// Tests for the spare-allocation hardware baseline.
#include <gtest/gtest.h>

#include "baseline/spare_allocation.hpp"
#include "fault/scenario.hpp"
#include "util/rng.hpp"

namespace ftsort::baseline {
namespace {

TEST(SpareScheme, ModuleArithmetic) {
  const auto scheme = fine_spares(6);  // g = 4 on 64 nodes
  EXPECT_EQ(scheme.modules(), 16u);
  EXPECT_EQ(scheme.spares(), 16u);
  EXPECT_EQ(scheme.module_of(0), 0u);
  EXPECT_EQ(scheme.module_of(3), 0u);
  EXPECT_EQ(scheme.module_of(4), 1u);
  EXPECT_EQ(scheme.module_of(63), 15u);
}

TEST(SpareScheme, SurvivesSingleFaultAnywhere) {
  const auto scheme = medium_spares(5);
  for (cube::NodeId f = 0; f < 32; ++f)
    EXPECT_TRUE(scheme.survives(fault::FaultSet(5, {f})));
}

TEST(SpareScheme, DiesOnTwoFaultsInOneModule) {
  const auto scheme = fine_spares(4);  // modules of 4
  EXPECT_FALSE(scheme.survives(fault::FaultSet(4, {0, 1})));
  EXPECT_TRUE(scheme.survives(fault::FaultSet(4, {0, 4})));
}

TEST(SpareScheme, FaultFreeAlwaysSurvives) {
  EXPECT_TRUE(coarse_spares(6).survives(fault::FaultSet(6)));
}

TEST(SpareScheme, SiliconUtilizationMatchesFormula) {
  const auto scheme = fine_spares(6);
  EXPECT_NEAR(scheme.silicon_utilization(), 64.0 / 80.0, 1e-12);
}

TEST(SurvivalProbability, OneIsCertainZeroFaults) {
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(
      survival_probability(medium_spares(6), 0, 100, rng), 1.0);
}

TEST(SurvivalProbability, DecreasesWithFaultsAndModuleSize) {
  util::Rng rng(2);
  const auto fine = fine_spares(6);
  const auto coarse = coarse_spares(6);
  const double fine_r2 = survival_probability(fine, 2, 4000, rng);
  const double fine_r5 = survival_probability(fine, 5, 4000, rng);
  const double coarse_r2 = survival_probability(coarse, 2, 4000, rng);
  EXPECT_GT(fine_r2, fine_r5);     // more faults, less survival
  EXPECT_GT(fine_r2, coarse_r2);   // smaller modules survive better
  // Analytic check for r = 2: P(different modules) = 1 - (g-1)/(N-1).
  EXPECT_NEAR(fine_r2, 1.0 - 3.0 / 63.0, 0.02);
  EXPECT_NEAR(coarse_r2, 1.0 - 15.0 / 63.0, 0.02);
}

TEST(SpareScheme, PresetsRequireLargeEnoughCube) {
  EXPECT_THROW(coarse_spares(3), ContractViolation);
  EXPECT_NO_THROW(fine_spares(2));
}

}  // namespace
}  // namespace ftsort::baseline
