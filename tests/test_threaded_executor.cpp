// Tests for the MIMD (thread-per-node) executor: identical results and
// logical times to the deterministic scheduler, plus its stall detection.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

TEST(ThreadedExecutor, PingPongMatchesSequential) {
  const auto make_program = [](std::vector<sim::Key>& sink) {
    return [&sink](sim::NodeCtx& ctx) -> sim::Task<void> {
      if (ctx.id() == 0) {
        ctx.send(1, 1, {5, 6, 7});
        sim::Message reply = co_await ctx.recv(1, 2);
        sink = reply.payload.vec();
      } else {
        sim::Message msg = co_await ctx.recv(0, 1);
        ctx.send(0, 2, std::move(msg.payload));
      }
    };
  };
  std::vector<sim::Key> seq_sink;
  std::vector<sim::Key> thr_sink;
  sim::Machine a(1, fault::FaultSet(1));
  const auto seq = a.run(make_program(seq_sink));
  sim::Machine b(1, fault::FaultSet(1));
  const auto thr = b.run_threaded(make_program(thr_sink));
  EXPECT_EQ(seq_sink, thr_sink);
  EXPECT_DOUBLE_EQ(seq.makespan, thr.makespan);
  EXPECT_EQ(seq.messages, thr.messages);
  EXPECT_EQ(seq.keys_sent, thr.keys_sent);
}

TEST(ThreadedExecutor, AllToAllExchangeCompletes) {
  // Every node sends to every other node and receives from every other
  // node — maximal mailbox contention.
  const cube::Dim n = 4;
  sim::Machine machine(n, fault::FaultSet(n));
  std::vector<std::uint64_t> sums(cube::num_nodes(n), 0);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    for (cube::NodeId v = 0; v < cube::num_nodes(n); ++v)
      if (v != ctx.id())
        ctx.send(v, 7, {static_cast<sim::Key>(ctx.id())});
    for (cube::NodeId v = 0; v < cube::num_nodes(n); ++v) {
      if (v == ctx.id()) continue;
      sim::Message msg = co_await ctx.recv(v, 7);
      sums[ctx.id()] += static_cast<std::uint64_t>(msg.payload[0]);
    }
  };
  const auto report = machine.run_threaded(program);
  const std::uint64_t total = (16 * 15) / 2;  // sum of all ids
  for (cube::NodeId u = 0; u < cube::num_nodes(n); ++u)
    EXPECT_EQ(sums[u], total - u);
  EXPECT_EQ(report.messages, 16u * 15u);
}

TEST(ThreadedExecutor, StallDetection) {
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    sim::Message msg = co_await ctx.recv(ctx.id() ^ 1u, 9);  // never sent
    (void)msg;
  };
  EXPECT_THROW(
      machine.run_threaded(program, std::chrono::milliseconds(200)),
      sim::DeadlockError);
}

TEST(ThreadedExecutor, NodeExceptionPropagates) {
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 1) throw std::runtime_error("thread boom");
    co_return;
  };
  EXPECT_THROW(machine.run_threaded(program), std::runtime_error);
}

TEST(ThreadedExecutor, FullSortMatchesSequentialExactly) {
  util::Rng rng(31);
  const auto faults = fault::random_faults(5, 3, rng);
  const auto keys = sort::gen_uniform(2'000, rng);
  core::SortConfig seq_cfg;
  core::SortConfig thr_cfg;
  thr_cfg.executor = core::Executor::Threaded;
  const auto seq = core::FaultTolerantSorter(5, faults, seq_cfg).sort(keys);
  const auto thr = core::FaultTolerantSorter(5, faults, thr_cfg).sort(keys);
  EXPECT_EQ(seq.sorted, thr.sorted);
  EXPECT_DOUBLE_EQ(seq.report.makespan, thr.report.makespan);
  EXPECT_EQ(seq.report.messages, thr.report.messages);
  EXPECT_EQ(seq.report.comparisons, thr.report.comparisons);
  EXPECT_EQ(seq.report.node_clocks, thr.report.node_clocks);
}

TEST(ThreadedExecutor, SixtyFourThreadsSortQ6) {
  util::Rng rng(32);
  const auto faults = fault::random_faults(6, 5, rng);
  const auto keys = sort::gen_uniform(4'000, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  core::SortConfig cfg;
  cfg.executor = core::Executor::Threaded;
  const auto outcome =
      core::FaultTolerantSorter(6, faults, cfg).sort(keys);
  EXPECT_EQ(outcome.sorted, expected);
}

TEST(ThreadedExecutor, MachineReusableAcrossExecutors) {
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) ctx.send(1, 1, {1});
    else {
      sim::Message m = co_await ctx.recv(0, 1);
      (void)m;
    }
  };
  const auto a = machine.run(program);
  const auto b = machine.run_threaded(program);
  const auto c = machine.run(program);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.makespan, c.makespan);
}

}  // namespace
}  // namespace ftsort
