// Link-telemetry suite: the per-link traffic matrix (sim/link_stats.hpp),
// its conservation invariant against the aggregate key_hops scalar, the
// derived busy/utilisation rollups, and the §3 heuristic audit comparing
// the selection formula's predicted re-index overhead with what routing
// actually measured.
//
// Everything here is logical (integer counters charged from message
// causality), so every assertion must hold byte-identically on both
// executors; the registry's cross-thread charging discipline is TSan'd via
// the tsan preset's test filter.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// ---------------------------------------------------------------------------
// Registry mechanics on a hand-built machine: the path walk decomposes a
// multi-hop e-cube message into one charge per (source node, dimension).

TEST(LinkStatsRegistry, PathWalkChargesEachTraversedLink) {
  sim::Machine machine(3, fault::FaultSet(3));  // Q_3, fault-free
  machine.link_stats().enable(machine.size(), machine.dim());
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      const std::vector<sim::Key> payload{1, 2, 3, 4, 5};
      ctx.send(7, 9, std::span<const sim::Key>(payload));
    } else if (ctx.id() == 7) {
      const sim::Message m = co_await ctx.recv(0, 9);
      (void)m;
    }
    co_return;
  };
  const sim::RunReport report = machine.run(program);

  // e-cube 0 -> 7 corrects dimensions upward: 0 -> 1 -> 3 -> 7.
  const sim::LinkStatsSnapshot& snap = report.links;
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap.at(0, 0).traversals, 1u);
  EXPECT_EQ(snap.at(0, 0).key_hops, 5u);
  EXPECT_EQ(snap.at(1, 1).traversals, 1u);
  EXPECT_EQ(snap.at(1, 1).key_hops, 5u);
  EXPECT_EQ(snap.at(3, 2).traversals, 1u);
  EXPECT_EQ(snap.at(3, 2).key_hops, 5u);
  EXPECT_EQ(snap.grand_total().traversals, 3u);
  EXPECT_EQ(snap.grand_total().key_hops, report.key_hops);
  EXPECT_EQ(report.key_hops, 15u);  // 5 keys x 3 hops

  // Unattributed phase carries the charge; per-phase slices telescope.
  const sim::LinkCell total = snap.grand_total();
  const auto p = static_cast<std::size_t>(sim::Phase::Unattributed);
  EXPECT_EQ(total.phase_traversals[p], 3u);
  EXPECT_EQ(total.phase_key_hops[p], 15u);

  // Derived busy time under ncube7 (t_startup = 0): keys x t_transfer.
  EXPECT_DOUBLE_EQ(sim::link_busy_time(snap.at(0, 0), machine.cost()), 40.0);
  const std::vector<double> util =
      sim::dimension_utilization(snap, machine.cost(), report.makespan);
  ASSERT_EQ(util.size(), 3u);
  for (const double u : util) EXPECT_GT(u, 0.0);
}

TEST(LinkStatsRegistry, OffByDefaultLeavesReportEmpty) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(400, rng);
  const core::FaultTolerantSorter sorter(6, faults, core::SortConfig{});
  const core::SortOutcome out = sorter.sort(keys);
  EXPECT_TRUE(out.report.links.empty());
  EXPECT_FALSE(out.report.reindex_audit.enabled);
}

// ---------------------------------------------------------------------------
// Conservation invariant on the bench flagship (fig7, Q6 r=2): the traffic
// matrix's key-hop total equals the aggregate scalar exactly, dimension
// totals telescope, and per-phase link charges match the metrics registry's
// per-phase key_hops — all on both executors, byte-identically.

core::SortOutcome run_pinned_fig7(core::Executor exec) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_link_stats = true;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

TEST(LinkStatsConservation, TrafficMatrixSumsToKeyHopsScalar) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    const core::SortOutcome out = run_pinned_fig7(exec);
    const sim::LinkStatsSnapshot& snap = out.report.links;
    ASSERT_FALSE(snap.empty());

    EXPECT_EQ(snap.grand_total().key_hops, out.report.key_hops);

    std::uint64_t by_dims = 0;
    for (cube::Dim d = 0; d < snap.dim; ++d)
      by_dims += snap.dim_total(d).key_hops;
    EXPECT_EQ(by_dims, out.report.key_hops);

    // Phase-sliced conservation against the metrics registry: a phase's
    // key_hops (payload x hops summed at send) equals the keys the phase
    // pushed across links.
    for (std::size_t p = 0; p < sim::kPhaseCount; ++p) {
      const sim::Phase phase = static_cast<sim::Phase>(p);
      EXPECT_EQ(snap.grand_total().phase_key_hops[p],
                out.report.metrics.total(phase).key_hops)
          << "phase " << sim::phase_name(phase);
    }
  }
}

TEST(LinkStatsConservation, ExecutorsProduceIdenticalMatrices) {
  const core::SortOutcome seq = run_pinned_fig7(core::Executor::Sequential);
  const core::SortOutcome thr = run_pinned_fig7(core::Executor::Threaded);
  EXPECT_TRUE(seq.report.links == thr.report.links);
  EXPECT_TRUE(seq.report.reindex_audit == thr.report.reindex_audit);
}

// Conservation must survive message drops: the recovery flagship kills
// node 6 mid-run, so some posts are charged and then dropped — both the
// scalar and the matrix count them (each charges before its drop check).
TEST(LinkStatsConservation, HoldsAcrossDropsAndRecovery) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    util::Rng rng(1703);
    const fault::FaultSet faults = fault::random_faults(3, 1, rng);
    const auto keys = sort::gen_uniform(200, rng);
    core::SortConfig cfg;
    cfg.executor = exec;
    cfg.online_recovery = true;
    cfg.injector.kill_node_at(6, 2000.0);
    cfg.record_link_stats = true;
    const core::FaultTolerantSorter sorter(3, faults, cfg);
    const core::SortOutcome out = sorter.sort(keys);
    ASSERT_GT(out.report.messages_dropped, 0u);
    EXPECT_EQ(out.report.links.grand_total().key_hops, out.report.key_hops);
  }
}

// ---------------------------------------------------------------------------
// §3 heuristic audit on the paper's Example 2 (Q5, faults {3,5,16,24}):
// Ψ holds five candidates with predicted totals 3,3,4,3,3; the heuristic
// picks D_1 = (0,1,3) with h = (2,1,0). The audit must (a) reproduce those
// predictions, (b) measure exactly the predicted extra hops within the
// formula's scope, and (c) show the pick is never beaten by a rejected
// candidate when each is actually run.

const fault::FaultSet& example2_faults() {
  static const fault::FaultSet faults(5, {3, 5, 16, 24});
  return faults;
}

core::SortOutcome run_example2(const partition::Plan& plan) {
  util::Rng rng(42);
  const auto keys = sort::gen_uniform(720, rng);
  core::SortConfig cfg;
  cfg.record_link_stats = true;
  const core::FaultTolerantSorter sorter(plan, cfg);
  return sorter.sort(keys);
}

TEST(LinkStatsAudit, MeasuredReindexHopsMatchChosenPrediction) {
  const partition::Plan plan = partition::Plan::build(example2_faults());
  ASSERT_GT(plan.search().cutting_set.size(), 1u) << "need a multi-candidate Psi";
  const core::SortOutcome out = run_example2(plan);

  const sim::ReindexAudit& audit = out.report.reindex_audit;
  ASSERT_TRUE(audit.enabled);
  ASSERT_EQ(audit.candidates.size(), plan.search().cutting_set.size());

  // Exactly one chosen candidate, and it is the argmin of the predictions.
  std::size_t chosen_count = 0;
  const sim::ReindexAudit::Candidate* chosen = nullptr;
  for (const auto& c : audit.candidates) {
    if (c.chosen) {
      ++chosen_count;
      chosen = &c;
    }
  }
  ASSERT_EQ(chosen_count, 1u);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->cuts, (std::vector<cube::Dim>{0, 1, 3}));
  EXPECT_EQ(chosen->predicted_h, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(chosen->predicted_total, 3);
  for (const auto& c : audit.candidates)
    EXPECT_LE(chosen->predicted_total, c.predicted_total);

  // Within the formula's scope (fault-carrying pairs) the measurement is
  // exact: re-indexed partners are 1 + HD(FP, FP') hops apart under e-cube
  // routing, so every predicted h_i is realised, no more, no less.
  EXPECT_EQ(audit.measured_h, chosen->predicted_h);
  EXPECT_EQ(audit.measured_total, chosen->predicted_total);

  // The true per-dimension cost (dangling pairs included) dominates the
  // formula's scope cell-wise — the gap is overhead §3 does not model.
  ASSERT_EQ(audit.measured_all_h.size(), audit.measured_h.size());
  for (std::size_t j = 0; j < audit.measured_h.size(); ++j)
    EXPECT_GE(audit.measured_all_h[j], audit.measured_h[j]);
  EXPECT_GE(audit.measured_all_total, audit.measured_total);
}

TEST(LinkStatsAudit, ChosenCandidateNeverBeatenWhenRejectedOnesRun) {
  const partition::Plan plan = partition::Plan::build(example2_faults());
  const auto& psi = plan.search().cutting_set;
  ASSERT_GT(psi.size(), 1u);
  const std::size_t beta = plan.selection().beta;

  std::vector<int> measured_totals;
  for (const std::vector<cube::Dim>& cuts : psi) {
    // Pin each candidate in turn (the ablation path) and actually sort.
    const partition::Plan pinned =
        partition::Plan::build_with_cuts(example2_faults(), cuts);
    const core::SortOutcome out = run_example2(pinned);
    const sim::ReindexAudit& audit = out.report.reindex_audit;
    ASSERT_TRUE(audit.enabled);
    ASSERT_EQ(audit.candidates.size(), 1u);
    // Formula exactness holds for every pinned candidate, not just the
    // winner: measurement reproduces that candidate's own prediction.
    EXPECT_EQ(audit.measured_h, audit.candidates[0].predicted_h);
    EXPECT_EQ(audit.measured_total, audit.candidates[0].predicted_total);
    measured_totals.push_back(audit.measured_total);
  }

  // The heuristic's pick is at least as good as every rejected candidate
  // on the *measured* objective.
  for (const int total : measured_totals)
    EXPECT_LE(measured_totals[beta], total);
  // Example 2's costs: D_3 is strictly worse, so the audit distinguishes.
  EXPECT_EQ(measured_totals, (std::vector<int>{3, 3, 4, 3, 3}));
}

}  // namespace
}  // namespace ftsort
