// Unit tests for the merge-split kernels, including the identity the
// half-exchange protocol relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cost_model.hpp"
#include "sort/distribution.hpp"
#include "sort/merge_split.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

TEST(MergeSplitFull, BasicLowerUpper) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{1, 4, 7};
  const std::vector<Key> b{2, 3, 9};
  EXPECT_EQ(merge_split_full(a, b, SplitHalf::Lower, comparisons),
            (std::vector<Key>{1, 2, 3}));
  EXPECT_EQ(merge_split_full(a, b, SplitHalf::Upper, comparisons),
            (std::vector<Key>{4, 7, 9}));
}

TEST(MergeSplitFull, ComplementaryHalvesPartitionUnion) {
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = gen_uniform(17, rng);
    auto b = gen_uniform(17, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::uint64_t comparisons = 0;
    const auto lower = merge_split_full(a, b, SplitHalf::Lower, comparisons);
    const auto upper = merge_split_full(b, a, SplitHalf::Upper, comparisons);
    std::vector<Key> expected;
    expected.insert(expected.end(), a.begin(), a.end());
    expected.insert(expected.end(), b.begin(), b.end());
    std::sort(expected.begin(), expected.end());
    std::vector<Key> got = lower;
    got.insert(got.end(), upper.begin(), upper.end());
    EXPECT_EQ(got, expected);  // lower then upper == sorted union
  }
}

TEST(MergeSplitFull, ResultsAreAscending) {
  util::Rng rng(2);
  auto a = gen_few_distinct(25, 4, rng);
  auto b = gen_few_distinct(25, 4, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::uint64_t comparisons = 0;
  EXPECT_TRUE(is_ascending(
      merge_split_full(a, b, SplitHalf::Lower, comparisons)));
  EXPECT_TRUE(is_ascending(
      merge_split_full(a, b, SplitHalf::Upper, comparisons)));
}

TEST(MergeSplitFull, UnequalSizesKeepOwnSize) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> mine{5, 6};
  const std::vector<Key> theirs{1, 2, 3, 4};
  EXPECT_EQ(merge_split_full(mine, theirs, SplitHalf::Lower, comparisons),
            (std::vector<Key>{1, 2}));
  EXPECT_EQ(merge_split_full(mine, theirs, SplitHalf::Upper, comparisons),
            (std::vector<Key>{5, 6}));
}

TEST(MergeSplitFull, EmptyInputs) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> empty;
  const std::vector<Key> some{1, 2};
  EXPECT_TRUE(
      merge_split_full(empty, some, SplitHalf::Lower, comparisons).empty());
  EXPECT_EQ(merge_split_full(some, empty, SplitHalf::Lower, comparisons),
            some);
  EXPECT_EQ(comparisons, 0u);
}

TEST(MergeSplitFull, LinearComparisonBudget) {
  util::Rng rng(3);
  auto a = gen_uniform(100, rng);
  auto b = gen_uniform(100, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::uint64_t comparisons = 0;
  merge_split_full(a, b, SplitHalf::Lower, comparisons);
  EXPECT_LE(comparisons, 100u);  // stops after producing |mine| keys
}

TEST(PairwiseIdentity, ReversedPairingYieldsExactSplit) {
  // The identity behind the paper's half-exchange: for equal-length
  // ascending blocks A, B, { min(A[k], B[b-1-k]) } is exactly the multiset
  // of the b smallest keys of A ∪ B.
  util::Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t b = 1 + rng.below(40);
    auto A = gen_uniform(b, rng);
    auto B = gen_uniform(b, rng);
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    std::vector<Key> mins;
    std::vector<Key> maxs;
    for (std::size_t k = 0; k < b; ++k) {
      mins.push_back(std::min(A[k], B[b - 1 - k]));
      maxs.push_back(std::max(A[k], B[b - 1 - k]));
    }
    std::vector<Key> all;
    all.insert(all.end(), A.begin(), A.end());
    all.insert(all.end(), B.begin(), B.end());
    std::sort(all.begin(), all.end());
    std::sort(mins.begin(), mins.end());
    std::sort(maxs.begin(), maxs.end());
    EXPECT_TRUE(std::equal(mins.begin(), mins.end(), all.begin()));
    EXPECT_TRUE(std::equal(maxs.begin(), maxs.end(),
                           all.begin() + static_cast<std::ptrdiff_t>(b)));
  }
}

TEST(PairwiseSelect, SplitsWinnersFromLosers) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{3, 8, 1};
  const std::vector<Key> b{5, 2, 9};
  const auto lower = pairwise_select(a, b, SplitHalf::Lower, comparisons);
  EXPECT_EQ(lower.kept, (std::vector<Key>{3, 2, 1}));
  EXPECT_EQ(lower.returned, (std::vector<Key>{5, 8, 9}));
  const auto upper = pairwise_select(a, b, SplitHalf::Upper, comparisons);
  EXPECT_EQ(upper.kept, (std::vector<Key>{5, 8, 9}));
  EXPECT_EQ(upper.returned, (std::vector<Key>{3, 2, 1}));
  EXPECT_EQ(comparisons, 6u);
}

TEST(PairwiseSelect, RejectsMismatchedLengths) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{1};
  const std::vector<Key> b{1, 2};
  EXPECT_THROW(pairwise_select(a, b, SplitHalf::Lower, comparisons),
               ContractViolation);
}

TEST(PairwiseSelect, EmptyIsEmpty) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> empty;
  const auto split =
      pairwise_select(empty, empty, SplitHalf::Lower, comparisons);
  EXPECT_TRUE(split.kept.empty());
  EXPECT_TRUE(split.returned.empty());
}

TEST(PairwiseSelect, DummiesLoseEveryComparison) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{1, sim::kDummyKey};
  const std::vector<Key> b{sim::kDummyKey, 2};
  const auto split = pairwise_select(a, b, SplitHalf::Lower, comparisons);
  EXPECT_EQ(split.kept, (std::vector<Key>{1, 2}));
  EXPECT_EQ(split.returned,
            (std::vector<Key>{sim::kDummyKey, sim::kDummyKey}));
}

// The scratch-buffer kernels must be drop-in replacements for the
// allocating reference kernels: byte-identical output AND an identical
// comparison count (the simulator's RunReport checksums depend on both).
TEST(MergeSplitInto, MatchesReferenceBitForBit) {
  util::Rng rng(11);
  std::vector<Key> out;  // reused across every trial: exercises capacity reuse
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t na = 1 + static_cast<std::size_t>(trial) % 33;
    const std::size_t nb = 1 + static_cast<std::size_t>(trial * 7) % 33;
    auto a = gen_uniform(na, rng);
    auto b = gen_uniform(nb, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    for (const SplitHalf keep : {SplitHalf::Lower, SplitHalf::Upper}) {
      std::uint64_t c_ref = 0;
      std::uint64_t c_into = 0;
      const auto ref = merge_split_full(a, b, keep, c_ref);
      merge_split_into(a, b, keep, out, c_into);
      ASSERT_EQ(out, ref);
      ASSERT_EQ(c_into, c_ref);
    }
  }
}

TEST(MergeSplitInto, SteadyStateDoesNotReallocate) {
  util::Rng rng(12);
  auto a = gen_uniform(64, rng);
  auto b = gen_uniform(64, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::uint64_t c = 0;
  std::vector<Key> out;
  merge_split_into(a, b, SplitHalf::Lower, out, c);
  const Key* warm = out.data();
  const std::size_t cap = out.capacity();
  for (int i = 0; i < 16; ++i)
    merge_split_into(a, b, i % 2 ? SplitHalf::Lower : SplitHalf::Upper, out,
                     c);
  EXPECT_EQ(out.data(), warm);       // same storage after warm-up
  EXPECT_EQ(out.capacity(), cap);
}

TEST(PairwiseSelectInto, MatchesReferenceBitForBit) {
  util::Rng rng(13);
  std::vector<Key> kept;
  std::vector<Key> returned;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(trial) % 40;
    auto a = gen_uniform(n, rng);
    auto b = gen_uniform(n, rng);
    for (const SplitHalf keep : {SplitHalf::Lower, SplitHalf::Upper}) {
      std::uint64_t c_ref = 0;
      std::uint64_t c_into = 0;
      const auto ref = pairwise_select(a, b, keep, c_ref);
      pairwise_select_into(a, b, keep, kept, returned, c_into);
      ASSERT_EQ(kept, ref.kept);
      ASSERT_EQ(returned, ref.returned);
      ASSERT_EQ(c_into, c_ref);
    }
  }
}

TEST(PairwiseSelectRevInto, EquivalentToReversedCopy) {
  util::Rng rng(14);
  std::vector<Key> kept;
  std::vector<Key> returned;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(trial) % 40;
    auto a = gen_uniform(n, rng);
    auto b = gen_uniform(n, rng);
    std::vector<Key> b_rev(b.rbegin(), b.rend());
    for (const SplitHalf keep : {SplitHalf::Lower, SplitHalf::Upper}) {
      std::uint64_t c_ref = 0;
      std::uint64_t c_into = 0;
      const auto ref = pairwise_select(a, b_rev, keep, c_ref);
      pairwise_select_rev_into(a, b, keep, kept, returned, c_into);
      ASSERT_EQ(kept, ref.kept);
      ASSERT_EQ(returned, ref.returned);
      ASSERT_EQ(c_into, c_ref);
    }
  }
}

// ---------------------------------------------------------------------------
// Exchange coalescing: the protocol rewrite is a pure function of the
// configured protocol, the policy, and the cost model's routing mode.

TEST(ResolveProtocol, AutoEngagesOnlyUnderCutThrough) {
  const sim::CostModel saf = sim::CostModel::ncube7();
  const sim::CostModel ct = sim::CostModel::wormhole();
  using EP = ExchangeProtocol;
  using CP = CoalescePolicy;
  // Full exchange is already the coalesced form — nothing to rewrite.
  EXPECT_EQ(resolve_protocol(EP::FullExchange, CP::Off, saf),
            EP::FullExchange);
  EXPECT_EQ(resolve_protocol(EP::FullExchange, CP::Auto, ct),
            EP::FullExchange);
  // Off never rewrites, On always does, Auto keys off the routing mode.
  EXPECT_EQ(resolve_protocol(EP::HalfExchange, CP::Off, ct),
            EP::HalfExchange);
  EXPECT_EQ(resolve_protocol(EP::HalfExchange, CP::On, saf),
            EP::FullExchange);
  EXPECT_EQ(resolve_protocol(EP::HalfExchange, CP::Auto, saf),
            EP::HalfExchange);
  EXPECT_EQ(resolve_protocol(EP::HalfExchange, CP::Auto, ct),
            EP::FullExchange);
}

// ---------------------------------------------------------------------------
// Scalar-vs-SIMD kernel equivalence. The vectorized kernels must be
// indistinguishable from the scalar oracle: byte-identical output AND an
// identical comparison count, over random, duplicate-heavy, presorted,
// disjoint-range, and odd-sized inputs. On hosts without AVX2 the Simd
// request degrades to Scalar and these sweeps compare scalar to itself —
// still a valid (if vacuous) run, so no skip.

/// Restores the process-global kernel backend on scope exit so a failing
/// ASSERT cannot leak a Simd default into unrelated tests.
class KernelBackendGuard {
 public:
  KernelBackendGuard() : prev_(active_kernel_backend()) {}
  ~KernelBackendGuard() { set_kernel_backend(prev_); }

 private:
  KernelBackend prev_;
};

/// One ascending input drawn from an adversarial family.
std::vector<Key> sorted_family(int family, std::size_t n, util::Rng& rng) {
  std::vector<Key> v;
  switch (family) {
    case 0:  // uniform random
      v = gen_uniform(n, rng);
      break;
    case 1:  // duplicate-heavy: long tie runs stress tie-insensitivity
      v = gen_few_distinct(n, 3, rng);
      break;
    case 2:  // all equal
      v.assign(n, 42);
      break;
    case 3:  // presorted dense ramp
      for (std::size_t i = 0; i < n; ++i)
        v.push_back(static_cast<Key>(i + rng.below(2)));
      break;
    case 4:  // disjoint low range: exhausts the other input immediately
      for (std::size_t i = 0; i < n; ++i)
        v.push_back(static_cast<Key>(rng.below(1000)));
      break;
    case 5:  // disjoint high range
      for (std::size_t i = 0; i < n; ++i)
        v.push_back(static_cast<Key>(1'000'000'000 + rng.below(1000)));
      break;
    default:  // dummy-key tail, as left behind by padded exchanges
      v = gen_uniform(n, rng);
      std::sort(v.begin(), v.end());
      for (std::size_t i = n - std::min(n, n / 3); i < n; ++i)
        v[i] = sim::kDummyKey;
      break;
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(KernelBackends, MergeSplitScalarAndSimdMatchBitForBit) {
  KernelBackendGuard guard;
  util::Rng rng(77);
  std::vector<Key> ref;
  std::vector<Key> out;
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                               12, 15, 16, 17, 31, 33, 100};
  for (const std::size_t na : sizes) {
    for (const std::size_t nb : sizes) {
      for (int fa = 0; fa < 7; ++fa) {
        for (int fb = 0; fb < 7; ++fb) {
          const auto a = sorted_family(fa, na, rng);
          const auto b = sorted_family(fb, nb, rng);
          for (const SplitHalf keep : {SplitHalf::Lower, SplitHalf::Upper}) {
            std::uint64_t c_ref = 0;
            std::uint64_t c_out = 0;
            set_kernel_backend(KernelBackend::Scalar);
            merge_split_into(a, b, keep, ref, c_ref);
            set_kernel_backend(KernelBackend::Simd);
            merge_split_into(a, b, keep, out, c_out);
            ASSERT_EQ(out, ref) << "na=" << na << " nb=" << nb
                                << " fa=" << fa << " fb=" << fb;
            ASSERT_EQ(c_out, c_ref) << "na=" << na << " nb=" << nb
                                    << " fa=" << fa << " fb=" << fb;
          }
        }
      }
    }
  }
}

TEST(KernelBackends, PairwiseScalarAndSimdMatchBitForBit) {
  KernelBackendGuard guard;
  util::Rng rng(78);
  std::vector<Key> kept_ref;
  std::vector<Key> ret_ref;
  std::vector<Key> kept;
  std::vector<Key> ret;
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 13u, 16u, 31u, 64u}) {
    for (int trial = 0; trial < 8; ++trial) {
      auto a = gen_uniform(n, rng);
      auto b = gen_uniform(n, rng);
      // Sprinkle dummy keys — they must lose every comparison in both
      // backends (they are plain max-valued keys, nothing special-cased).
      for (auto& k : a)
        if (rng.below(5) == 0) k = sim::kDummyKey;
      for (auto& k : b)
        if (rng.below(5) == 0) k = sim::kDummyKey;
      for (const SplitHalf keep : {SplitHalf::Lower, SplitHalf::Upper}) {
        std::uint64_t c_ref = 0;
        std::uint64_t c_out = 0;
        set_kernel_backend(KernelBackend::Scalar);
        pairwise_select_into(a, b, keep, kept_ref, ret_ref, c_ref);
        set_kernel_backend(KernelBackend::Simd);
        pairwise_select_into(a, b, keep, kept, ret, c_out);
        ASSERT_EQ(kept, kept_ref) << "n=" << n;
        ASSERT_EQ(ret, ret_ref) << "n=" << n;
        ASSERT_EQ(c_out, c_ref) << "n=" << n;
        c_ref = c_out = 0;
        set_kernel_backend(KernelBackend::Scalar);
        pairwise_select_rev_into(a, b, keep, kept_ref, ret_ref, c_ref);
        set_kernel_backend(KernelBackend::Simd);
        pairwise_select_rev_into(a, b, keep, kept, ret, c_out);
        ASSERT_EQ(kept, kept_ref) << "rev n=" << n;
        ASSERT_EQ(ret, ret_ref) << "rev n=" << n;
        ASSERT_EQ(c_out, c_ref) << "rev n=" << n;
      }
    }
  }
}

TEST(KernelBackends, SimdRequestDegradesCleanlyWhenUnavailable) {
  KernelBackendGuard guard;
  const KernelBackend effective = set_kernel_backend(KernelBackend::Simd);
  EXPECT_EQ(effective, simd_kernels_available() ? KernelBackend::Simd
                                                : KernelBackend::Scalar);
  EXPECT_EQ(active_kernel_backend(), effective);
  EXPECT_EQ(set_kernel_backend(KernelBackend::Scalar),
            KernelBackend::Scalar);
  EXPECT_EQ(active_kernel_backend(), KernelBackend::Scalar);
}

}  // namespace
}  // namespace ftsort::sort
