// Campaign engine (src/campaign): determinism is the headline contract.
// Same seed -> byte-identical CampaignReport JSON regardless of worker
// count; any trial replays in isolation from (seed, index) and reproduces
// its outcome and structured Diagnosis on both executors; and the
// statistical invariants (trial-count conservation, monotone
// non-increasing completion probability in r) hold as hard asserts, not
// anecdotes. The `ftdiag campaign` reader's 0/1/2 exit-code contract is
// pinned here too, against JSON this very engine emitted.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "tools/ftdiag.hpp"

namespace ftsort {
namespace {

/// Small pinned universe: Q_4, 8 scenarios x r in 0..2 = 24 trials.
/// Seed chosen so the empirical completion curve is strictly informative
/// (every bucket populated, some degradations) — asserted below.
campaign::CampaignConfig small_config() {
  campaign::CampaignConfig cfg;
  cfg.universe.n = 4;
  cfg.universe.r_max = 2;
  cfg.universe.scenarios = 8;
  cfg.universe.num_keys = 96;
  cfg.seed = 20260807;
  return cfg;
}

std::string to_json(const campaign::CampaignReport& report) {
  std::ostringstream os;
  campaign::write_campaign_json(os, report);
  return os.str();
}

std::string write_temp(const char* name, const std::string& text) {
  const std::string path = std::string("campaign_test_") + name + ".json";
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(Campaign, WorkerCountNeverChangesTheReportBytes) {
  campaign::CampaignConfig cfg = small_config();
  cfg.workers = 1;
  const campaign::CampaignReport one = campaign::run_campaign(cfg);
  cfg.workers = 3;
  const campaign::CampaignReport three = campaign::run_campaign(cfg);
  cfg.workers = 8;
  const campaign::CampaignReport eight = campaign::run_campaign(cfg);

  EXPECT_EQ(one, three);
  EXPECT_EQ(one, eight);
  const std::string json = to_json(one);
  EXPECT_EQ(json, to_json(three));
  EXPECT_EQ(json, to_json(eight));

  // The report is informative, not degenerate: every bucket ran its
  // trials, something recovered, something degraded.
  ASSERT_EQ(one.buckets.size(), 3u);
  EXPECT_TRUE(one.conserves_trials());
  EXPECT_TRUE(one.completion_monotone());
  EXPECT_EQ(one.buckets[0].completed, 8u);
  std::uint32_t recovered = 0;
  std::uint32_t degraded = 0;
  for (const campaign::BucketStats& b : one.buckets) {
    recovered += b.recovered;
    degraded += b.degraded;
  }
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(degraded, 0u);
}

TEST(Campaign, SameSeedSameReportAcrossRuns) {
  const campaign::CampaignConfig cfg = small_config();
  EXPECT_EQ(to_json(campaign::run_campaign(cfg)),
            to_json(campaign::run_campaign(cfg)));
}

TEST(Campaign, DifferentSeedsDifferentUniverses) {
  campaign::CampaignConfig cfg = small_config();
  const campaign::CampaignReport a = campaign::run_campaign(cfg);
  cfg.seed += 1;
  const campaign::CampaignReport b = campaign::run_campaign(cfg);
  EXPECT_NE(to_json(a), to_json(b));
}

// Every trial replays from (seed, index) alone: re-running it in
// isolation reproduces the campaign row bit for bit — outcome, counters,
// and the full structured Diagnosis — on the sequential executor the
// campaign used AND on the threaded one (logical results are
// executor-independent).
TEST(Campaign, TrialReplayReproducesDiagnosisOnBothExecutors) {
  const campaign::CampaignConfig cfg = small_config();
  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  const sim::SimTime envelope = report.meta.envelope;

  // Replay every faulty trial of the first three scenarios plus every
  // degraded trial in the campaign (those carry the richest Diagnosis).
  std::vector<std::uint32_t> indices;
  for (const campaign::TrialResult& t : report.trials)
    if ((t.scenario < 3 && t.r > 0) ||
        t.outcome == core::RunOutcome::Degraded)
      indices.push_back(t.index);
  ASSERT_FALSE(indices.empty());

  for (const std::uint32_t idx : indices) {
    const campaign::TrialResult& row = report.trials[idx];
    const campaign::TrialResult seq = campaign::run_trial(
        cfg, envelope, idx, core::Executor::Sequential);
    EXPECT_EQ(seq, row) << "sequential replay diverged at trial " << idx;
    const campaign::TrialResult thr =
        campaign::run_trial(cfg, envelope, idx, core::Executor::Threaded);
    EXPECT_EQ(thr.outcome, row.outcome) << "trial " << idx;
    EXPECT_EQ(thr.diagnosis, row.diagnosis) << "trial " << idx;
    EXPECT_EQ(thr, row) << "threaded replay diverged at trial " << idx;
  }
}

TEST(Campaign, ExecutorChoiceChangesMetaOnly) {
  campaign::CampaignConfig cfg = small_config();
  // Trim to the first scenarios to keep the threaded sweep cheap.
  cfg.universe.scenarios = 2;
  const campaign::CampaignReport seq = campaign::run_campaign(cfg);
  cfg.executor = core::Executor::Threaded;
  const campaign::CampaignReport thr = campaign::run_campaign(cfg);
  EXPECT_EQ(seq.meta.executor, "sequential");
  EXPECT_EQ(thr.meta.executor, "threaded");
  EXPECT_EQ(seq.trials, thr.trials);
  EXPECT_EQ(seq.buckets, thr.buckets);
}

// ---------------------------------------------------------------------------
// ftdiag campaign: reader + exit-code contract (0 clean, 1 regression,
// 2 usage/parse error), against JSON the engine itself emitted.

TEST(CampaignFtdiag, ReportModeReadsBackTheEngineExport) {
  const campaign::CampaignReport report =
      campaign::run_campaign(small_config());
  const tools::CampaignCliResult res = tools::campaign_report(to_json(report));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.monotone);
  EXPECT_NE(res.text.find("Q_4"), std::string::npos) << res.text;
  EXPECT_NE(res.text.find("monotone non-increasing"), std::string::npos)
      << res.text;
}

TEST(CampaignFtdiag, DiffFlagsReliabilityDriftAndExitCodesMatchContract) {
  const campaign::CampaignReport report =
      campaign::run_campaign(small_config());
  const std::string json = to_json(report);

  // Synthetic drift: bucket r=1 loses two completions to degradation.
  campaign::CampaignReport drifted = report;
  ASSERT_GE(drifted.buckets[1].completed, 2u);
  drifted.buckets[1].completed -= 2;
  drifted.buckets[1].degraded += 2;
  drifted.buckets[1].completion_probability =
      static_cast<double>(drifted.buckets[1].completed +
                          drifted.buckets[1].recovered) /
      static_cast<double>(drifted.buckets[1].trials);
  const std::string drifted_json = to_json(drifted);

  const tools::CampaignCliResult same = tools::campaign_diff(json, json, 0.0);
  ASSERT_TRUE(same.ok) << same.error;
  EXPECT_EQ(same.regressions, 0u);

  const tools::CampaignCliResult diff =
      tools::campaign_diff(json, drifted_json, 0.0);
  ASSERT_TRUE(diff.ok) << diff.error;
  EXPECT_EQ(diff.regressions, 1u);
  ASSERT_EQ(diff.deltas.size(), report.buckets.size());
  EXPECT_TRUE(diff.deltas[1].regression);
  EXPECT_LT(diff.deltas[1].prob_delta_pts, 0.0);
  EXPECT_NE(diff.text.find("REGRESSION"), std::string::npos) << diff.text;

  // A wide-enough threshold absorbs the drift.
  const tools::CampaignCliResult lax =
      tools::campaign_diff(json, drifted_json, 90.0);
  ASSERT_TRUE(lax.ok);
  EXPECT_EQ(lax.regressions, 0u);

  // Exit codes through the real CLI: 0 clean, 1 regression, 2 parse/usage.
  const std::string pa = write_temp("base", json);
  const std::string pb = write_temp("drift", drifted_json);
  const std::string pg = write_temp("garbage", "not json at all");
  std::ostringstream out;
  std::ostringstream err;
  const char* report_args[] = {"ftdiag", "campaign", pa.c_str()};
  EXPECT_EQ(tools::run_cli(3, report_args, out, err), 0);
  const char* same_args[] = {"ftdiag", "campaign", pa.c_str(), pa.c_str()};
  EXPECT_EQ(tools::run_cli(4, same_args, out, err), 0);
  const char* drift_args[] = {"ftdiag", "campaign", pa.c_str(), pb.c_str()};
  EXPECT_EQ(tools::run_cli(4, drift_args, out, err), 1);
  const char* lax_args[] = {"ftdiag",      "campaign", pa.c_str(),
                            pb.c_str(),    "--threshold", "90"};
  EXPECT_EQ(tools::run_cli(6, lax_args, out, err), 0);
  const char* garbage_args[] = {"ftdiag", "campaign", pg.c_str()};
  EXPECT_EQ(tools::run_cli(3, garbage_args, out, err), 2);
  const char* missing_args[] = {"ftdiag", "campaign", "no_such_file.json"};
  EXPECT_EQ(tools::run_cli(3, missing_args, out, err), 2);
  const char* bare_args[] = {"ftdiag", "campaign"};
  EXPECT_EQ(tools::run_cli(2, bare_args, out, err), 2);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  std::remove(pg.c_str());
}

// ---------------------------------------------------------------------------
// The acceptance campaign: 500 trials on Q_7, r in 0..3, threaded worker
// pool vs single worker -> byte-identical schema-v7 JSON with a monotone
// completion curve. (Suite named MonteCarlo, not Campaign: the tsan
// preset includes Campaign.* by name, and this sweep is too large to run
// under instrumentation — the small Campaign.* tests above give tsan the
// same worker-pool coverage.)

const char* const kSchemaV7RequiredKeys[] = {
    // v7: the watchdog rollup, per-trial trip counters, and the partial
    // (interrupted-sweep) flag.
    "watchdog",      "trips",                "near_misses",
    "watchdog_trips",                        "watchdog_near_misses",
    "partial",
    // v6: the campaign-wide and per-trial key-lineage audit verdicts.
    "lineage",       "audited",              "lineage_checked",
    "lineage_ok",    "lineage_lost",         "lineage_duplicated",
    "campaign",      "schema_version",       "n",
    "r_max",         "scenarios",            "trials",
    "seed",          "num_keys",             "executor",
    "link_cut_probability",                  "envelope",
    "outcomes",      "buckets",              "completion_probability",
    "mean_makespan", "min_makespan",         "max_makespan",
    "mean_detect",   "mean_slowdown",        "hotspot_p50",
    "hotspot_p90",   "hotspot_max",          "roots",
    "detect_latency_p50",                    "detect_latency_p90",
    "rollcall_latency_p50",                  "rollcall_latency_p90",
    "salvage_latency_p50",                   "salvage_latency_p90",
    "restart_latency_p50",                   "restart_latency_p90",
    "trials_detail", "index",                "scenario",
    "outcome",       "root",                 "makespan",
    "detect",        "deaths",               "timeouts",
    "comparisons",   "messages",             "key_hops",
    "hotspot_share", "detect_latency",       "rollcall_latency",
    "salvage_latency",                       "restart_latency"};

TEST(MonteCarlo, AcceptanceFiveHundredTrialCampaignQ7) {
  campaign::CampaignConfig cfg;
  cfg.universe.n = 7;
  cfg.universe.r_max = 3;
  cfg.universe.scenarios = 125;  // x 4 buckets = 500 trials
  cfg.universe.num_keys = 256;
  cfg.seed = 20260807;

  cfg.workers = 1;
  const campaign::CampaignReport single = campaign::run_campaign(cfg);
  cfg.workers = 8;
  const campaign::CampaignReport pooled = campaign::run_campaign(cfg);

  ASSERT_EQ(single.trials.size(), 500u);
  EXPECT_EQ(single, pooled);
  const std::string json = to_json(single);
  EXPECT_EQ(json, to_json(pooled));

  EXPECT_TRUE(single.conserves_trials());
  EXPECT_TRUE(single.completion_monotone());
  // v6: every completing trial ran the custody audit and passed — a
  // nonzero gap here is a data-loss bug the value comparison missed.
  EXPECT_GT(single.lineage_audited, 0u);
  EXPECT_EQ(single.lineage_ok, single.lineage_audited);
  EXPECT_DOUBLE_EQ(single.buckets[0].completion_probability, 1.0);
  // The campaign is informative at every r: faults actually bite.
  for (std::size_t r = 1; r < single.buckets.size(); ++r)
    EXPECT_GT(single.buckets[r].recovered + single.buckets[r].degraded, 0u)
        << "r=" << r;
  // Buckets with recovered trials carry a non-trivial recovery-latency
  // decomposition (v5); bucket 0 never recovers, so its percentiles are
  // identically zero.
  EXPECT_EQ(single.buckets[0].detect_latency_p50, 0.0);
  EXPECT_EQ(single.buckets[0].restart_latency_p90, 0.0);
  for (const campaign::BucketStats& b : single.buckets) {
    if (b.recovered == 0) continue;
    EXPECT_GT(b.detect_latency_p90, 0.0) << "r=" << b.r;
    EXPECT_GT(b.restart_latency_p90, 0.0) << "r=" << b.r;
  }

  // Schema v7: every required key present, braces balanced.
  for (const char* key : kSchemaV7RequiredKeys)
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing schema key " << key;
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0l);
  }
  EXPECT_EQ(depth, 0l);

  // And the ftdiag reader agrees with the engine's own invariants.
  const tools::CampaignCliResult res = tools::campaign_report(json);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.monotone);
}

}  // namespace
}  // namespace ftsort
