// Parameterized property sweeps: the end-to-end invariants of the
// fault-tolerant sorter across the (n, r, M, pattern, protocol, model)
// space, plus timing-model invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baseline/mfs_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

using core::FaultTolerantSorter;
using core::SortConfig;
using sort::ExchangeProtocol;
using sort::Key;

enum class Pattern { Uniform, Sorted, Reverse, FewDistinct, OrganPipe };

std::vector<Key> make_keys(Pattern pattern, std::size_t count,
                           util::Rng& rng) {
  switch (pattern) {
    case Pattern::Uniform: return sort::gen_uniform(count, rng);
    case Pattern::Sorted: return sort::gen_sorted(count);
    case Pattern::Reverse: return sort::gen_reverse(count);
    case Pattern::FewDistinct:
      return sort::gen_few_distinct(count, 5, rng);
    case Pattern::OrganPipe: return sort::gen_organ_pipe(count);
  }
  return {};
}

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Uniform: return "Uniform";
    case Pattern::Sorted: return "Sorted";
    case Pattern::Reverse: return "Reverse";
    case Pattern::FewDistinct: return "FewDistinct";
    case Pattern::OrganPipe: return "OrganPipe";
  }
  return "?";
}

// ---------------------------------------------------------------------
// Sweep 1: (n, r) grid — every cube size and fault count the paper's
// evaluation covers, three random fault placements each.
// ---------------------------------------------------------------------

class NrSweep : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NrSweep, SortsAndKeepsInvariants) {
  const auto [n, r] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 100 + r));
  for (int trial = 0; trial < 3; ++trial) {
    const auto faults =
        fault::random_faults(n, static_cast<std::size_t>(r), rng);
    const auto keys = sort::gen_uniform(50 * (1u << n) / 4 + 7, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());

    FaultTolerantSorter sorter(n, faults);
    const auto outcome = sorter.sort(keys);
    ASSERT_EQ(outcome.sorted, expected) << sorter.plan().to_string();

    // Structural invariants from the paper.
    const auto& plan = sorter.plan();
    EXPECT_LE(plan.search().mincut, std::max(0, r - 1));
    if (r >= 1) {
      EXPECT_EQ(plan.live_count(),
                cube::num_nodes(n) - plan.num_subcubes());
    }
    EXPECT_LE(plan.dangling_count(), cube::num_nodes(n) / 4);
    EXPECT_GE(plan.utilization_percent(), 75.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperConfigs, NrSweep,
    testing::Values(
        std::tuple{3, 0}, std::tuple{3, 1}, std::tuple{3, 2},
        std::tuple{4, 0}, std::tuple{4, 1}, std::tuple{4, 2},
        std::tuple{4, 3}, std::tuple{5, 0}, std::tuple{5, 1},
        std::tuple{5, 2}, std::tuple{5, 3}, std::tuple{5, 4},
        std::tuple{6, 0}, std::tuple{6, 1}, std::tuple{6, 2},
        std::tuple{6, 3}, std::tuple{6, 4}, std::tuple{6, 5}),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "r" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: key patterns x protocols.
// ---------------------------------------------------------------------

class PatternSweep
    : public testing::TestWithParam<std::tuple<Pattern, ExchangeProtocol>> {
};

TEST_P(PatternSweep, SortsAdversarialInputs) {
  const auto [pattern, protocol] = GetParam();
  util::Rng rng(42);
  const auto faults = fault::random_faults(5, 3, rng);
  SortConfig config;
  config.protocol = protocol;
  FaultTolerantSorter sorter(5, faults, config);
  for (std::size_t count : {0u, 1u, 17u, 96u, 321u}) {
    const auto keys = make_keys(pattern, count, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorter.sort(keys).sorted, expected)
        << pattern_name(pattern) << " count=" << count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsTimesProtocols, PatternSweep,
    testing::Combine(testing::Values(Pattern::Uniform, Pattern::Sorted,
                                     Pattern::Reverse,
                                     Pattern::FewDistinct,
                                     Pattern::OrganPipe),
                     testing::Values(ExchangeProtocol::HalfExchange,
                                     ExchangeProtocol::FullExchange)),
    [](const auto& param_info) {
      return std::string(pattern_name(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) == ExchangeProtocol::HalfExchange
                  ? "Half"
                  : "Full");
    });

// ---------------------------------------------------------------------
// Sweep 3: fault scenario families.
// ---------------------------------------------------------------------

class ScenarioSweep : public testing::TestWithParam<int> {};

TEST_P(ScenarioSweep, SortsUnderStructuredFaults) {
  const int family = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(family) + 7);
  for (int trial = 0; trial < 5; ++trial) {
    fault::FaultSet faults = [&] {
      switch (family) {
        case 0: return fault::clustered_faults(6, 4, 2, rng);
        case 1: return fault::spread_faults(6, 5, rng);
        case 2: return fault::chain_faults(6, 5, rng);
        default: return fault::random_faults(6, 5, rng);
      }
    }();
    const auto keys = sort::gen_uniform(300, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    FaultTolerantSorter sorter(6, faults);
    EXPECT_EQ(sorter.sort(keys).sorted, expected)
        << faults.to_string();
  }
}

std::string family_name(const testing::TestParamInfo<int>& param_info) {
  static constexpr const char* kNames[] = {"Clustered", "Spread", "Chain",
                                           "Random"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(FaultFamilies, ScenarioSweep,
                         testing::Range(0, 4), family_name);

// ---------------------------------------------------------------------
// Sweep 4: the full configuration matrix — every combination of exchange
// protocol, Step 8 mode, fault model, and host-I/O accounting must sort
// and agree on the result.
// ---------------------------------------------------------------------

class ConfigMatrix
    : public testing::TestWithParam<
          std::tuple<ExchangeProtocol, core::Step8Mode, fault::FaultModel,
                     bool>> {};

TEST_P(ConfigMatrix, SortsIdentically) {
  const auto [protocol, step8, model, host_io] = GetParam();
  util::Rng rng(99);
  const auto faults = fault::random_faults(5, 4, rng);
  const auto keys = sort::gen_uniform(777, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  SortConfig config;
  config.protocol = protocol;
  config.step8 = step8;
  config.model = model;
  config.charge_host_io = host_io;
  FaultTolerantSorter sorter(5, faults, config);
  const auto outcome = sorter.sort(keys);
  EXPECT_EQ(outcome.sorted, expected);
  EXPECT_GT(outcome.report.makespan, 0.0);
}

std::string config_name(
    const testing::TestParamInfo<
        std::tuple<ExchangeProtocol, core::Step8Mode, fault::FaultModel,
                   bool>>& param_info) {
  const auto [protocol, step8, model, host_io] = param_info.param;
  std::string name =
      protocol == ExchangeProtocol::HalfExchange ? "Half" : "Full";
  name += step8 == core::Step8Mode::BitonicMerge ? "Merge" : "Sort";
  name += model == fault::FaultModel::Partial ? "Partial" : "Total";
  name += host_io ? "HostIo" : "NoHost";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrix,
    testing::Combine(testing::Values(ExchangeProtocol::HalfExchange,
                                     ExchangeProtocol::FullExchange),
                     testing::Values(core::Step8Mode::BitonicMerge,
                                     core::Step8Mode::FullSort),
                     testing::Values(fault::FaultModel::Partial,
                                     fault::FaultModel::Total),
                     testing::Bool()),
    config_name);

// ---------------------------------------------------------------------
// Sweep 5: timing-model invariants.
// ---------------------------------------------------------------------

TEST(TimingInvariants, MakespanGrowsWithKeyCount) {
  util::Rng rng(1);
  const auto faults = fault::random_faults(5, 2, rng);
  FaultTolerantSorter sorter(5, faults);
  double previous = 0.0;
  for (std::size_t m : {1'000u, 4'000u, 16'000u, 64'000u}) {
    const auto keys = sort::gen_uniform(m, rng);
    const auto outcome = sorter.sort(keys);
    EXPECT_GT(outcome.report.makespan, previous);
    previous = outcome.report.makespan;
  }
}

TEST(TimingInvariants, MakespanIsDeterministic) {
  util::Rng rng(2);
  const auto faults = fault::random_faults(6, 3, rng);
  const auto keys = sort::gen_uniform(5'000, rng);
  FaultTolerantSorter sorter(6, faults);
  const auto a = sorter.sort(keys);
  const auto b = sorter.sort(keys);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.messages, b.report.messages);
  EXPECT_EQ(a.report.comparisons, b.report.comparisons);
}

TEST(TimingInvariants, TotalFaultModelNeverCheaper) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto keys = sort::gen_uniform(2'000, rng);
    SortConfig partial;
    partial.model = fault::FaultModel::Partial;
    SortConfig total;
    total.model = fault::FaultModel::Total;
    const auto tp = FaultTolerantSorter(5, faults, partial).sort(keys);
    const auto tt = FaultTolerantSorter(5, faults, total).sort(keys);
    EXPECT_EQ(tp.sorted, tt.sorted);
    EXPECT_GE(tt.report.makespan, tp.report.makespan - 1e-9);
  }
}

TEST(TimingInvariants, NodeClocksNeverExceedMakespan) {
  util::Rng rng(4);
  const auto faults = fault::random_faults(5, 3, rng);
  const auto keys = sort::gen_uniform(1'000, rng);
  FaultTolerantSorter sorter(5, faults);
  const auto outcome = sorter.sort(keys);
  for (double clock : outcome.report.node_clocks)
    EXPECT_LE(clock, outcome.report.makespan);
}

TEST(TimingInvariants, StartupCostRaisesMakespan) {
  util::Rng rng(5);
  const auto faults = fault::random_faults(5, 2, rng);
  const auto keys = sort::gen_uniform(2'000, rng);
  SortConfig plain;
  SortConfig with_startup;
  with_startup.cost = sim::CostModel::ncube7_with_startup();
  const auto a = FaultTolerantSorter(5, faults, plain).sort(keys);
  const auto b = FaultTolerantSorter(5, faults, with_startup).sort(keys);
  EXPECT_GT(b.report.makespan, a.report.makespan);
}

TEST(TimingInvariants, ProposedBeatsBaselineWithTwoFaultsLargeM) {
  // The headline Figure 7 claim: on Q_6 with r = 2, the proposed sorter
  // beats plain bitonic on the surviving Q_4 (the baseline's worst case)
  // and on Q_5 (its best case) once M is large.
  util::Rng rng(6);
  const fault::FaultSet faults(6, {0, 63});  // antipodal: baseline gets Q_4
  const auto keys = sort::gen_uniform(64'000, rng);
  FaultTolerantSorter sorter(6, faults);
  const auto ours = sorter.sort(keys);
  const auto baseline = baseline::mfs_bitonic_sort(6, faults, keys);
  EXPECT_EQ(baseline.reconfiguration.subcube.dim(), 4);
  EXPECT_LT(ours.report.makespan, baseline.report.makespan);
}

TEST(TimingInvariants, TraceCapturesWhenRequested) {
  util::Rng rng(7);
  const auto faults = fault::random_faults(4, 2, rng);
  const auto keys = sort::gen_uniform(64, rng);
  SortConfig config;
  config.record_trace = true;
  FaultTolerantSorter sorter(4, faults, config);
  const auto outcome = sorter.sort(keys);
  EXPECT_FALSE(outcome.trace.empty());
  EXPECT_NE(outcome.trace.find("send"), std::string::npos);
}

}  // namespace
}  // namespace ftsort
