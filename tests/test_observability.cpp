// Observability suite: per-node per-phase metrics, phase spans, the
// critical-path breakdown, per-run pool deltas, and the JSON exporters.
//
// The metrics registry and span taxonomy are logical (charged from message
// causality, never host scheduling), so everything asserted here must hold
// byte-identically on both executors; the concurrency tests run under TSan
// via the tsan preset's test filter.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// ---------------------------------------------------------------------------
// Trace thread-safety: record() runs on every node thread of the MIMD
// executor while a monitoring thread may size/snapshot/clear. TSan is the
// real assertion here; the test only has to provoke the interleavings.

TEST(ObservabilityTrace, ConcurrentRecordSnapshotClearIsRaceFree) {
  sim::Trace trace;
  trace.enable();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&trace, t] {
      for (int i = 0; i < 5'000; ++i)
        trace.record({static_cast<double>(i),
                      static_cast<cube::NodeId>(t),
                      sim::EventKind::Compute, 0, 0, 1, 0});
    });
  std::thread reader([&trace] {
    for (int i = 0; i < 400; ++i) {
      (void)trace.size();
      const auto copy = trace.snapshot();
      if (copy.size() > 10'000) trace.clear();
    }
  });
  for (std::thread& th : writers) th.join();
  reader.join();
  EXPECT_LE(trace.snapshot().size(), 20'000u);
}

// ---------------------------------------------------------------------------
// Span mechanics: spans switch the ambient phase, nest, restore on exit,
// charge no simulated time, and span_if_unattributed defers to an already
// engaged step-level span.

TEST(ObservabilityTrace, SpansNestAndRestoreAmbientPhase) {
  sim::Machine machine(1, fault::FaultSet(1));  // Q_1: two nodes
  machine.trace().enable();
  machine.metrics().enable(machine.size());
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    EXPECT_EQ(ctx.phase(), sim::Phase::Unattributed);
    {
      const sim::PhaseSpan outer = ctx.span(sim::Phase::LocalSort);
      EXPECT_EQ(ctx.phase(), sim::Phase::LocalSort);
      ctx.charge_compares(10);
      {
        const sim::PhaseSpan inner = ctx.span(sim::Phase::MergeExchange);
        EXPECT_EQ(ctx.phase(), sim::Phase::MergeExchange);
        ctx.charge_compares(5);
      }
      EXPECT_EQ(ctx.phase(), sim::Phase::LocalSort);
      // The ambient phase is already set, so this span must not engage.
      const sim::PhaseSpan kept =
          ctx.span_if_unattributed(sim::Phase::Collective);
      ctx.charge_compares(1);
    }
    EXPECT_EQ(ctx.phase(), sim::Phase::Unattributed);
    ctx.charge_compares(2);
    co_return;
  };
  const sim::RunReport report = machine.run(program);

  const sim::MetricsSnapshot& m = report.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_EQ(m.total(sim::Phase::LocalSort).comparisons, 22u);
  EXPECT_EQ(m.total(sim::Phase::MergeExchange).comparisons, 10u);
  EXPECT_EQ(m.total(sim::Phase::Collective).comparisons, 0u);
  EXPECT_EQ(m.total(sim::Phase::Unattributed).comparisons, 4u);
  EXPECT_EQ(m.grand_total().comparisons, report.comparisons);

  // Two nested spans per node appear as balanced begin/end events, and a
  // span costs nothing: the report must match an uninstrumented run.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const sim::TraceEvent& ev : machine.trace().snapshot()) {
    begins += ev.kind == sim::EventKind::SpanBegin;
    ends += ev.kind == sim::EventKind::SpanEnd;
  }
  EXPECT_EQ(begins, 4u);
  EXPECT_EQ(ends, 4u);

  sim::Machine plain(1, fault::FaultSet(1));
  const auto bare = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    ctx.charge_compares(18);
    co_return;
  };
  const sim::RunReport plain_report = plain.run(bare);
  EXPECT_DOUBLE_EQ(report.makespan, plain_report.makespan);
}

// ---------------------------------------------------------------------------
// The pinned fig7 scenario (bench_harness's flagship): per-phase totals must
// sum exactly to the RunReport aggregates on both executors, and the two
// executors must produce byte-identical snapshots and breakdowns.

core::SortOutcome run_pinned_fig7(core::Executor exec) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

TEST(ObservabilityMetrics, PhaseTotalsSumToReportAggregates) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    const core::SortOutcome out = run_pinned_fig7(exec);
    const sim::PhaseCounters grand = out.report.metrics.grand_total();
    EXPECT_EQ(grand.comparisons, out.report.comparisons);
    EXPECT_EQ(grand.keys_sent, out.report.keys_sent);
    EXPECT_EQ(grand.key_hops, out.report.key_hops);
    EXPECT_EQ(grand.messages, out.report.messages);
    EXPECT_EQ(grand.messages_dropped, out.report.messages_dropped);
    EXPECT_EQ(grand.timeouts, out.report.timeouts);

    // The breakdown's slices are the same totals, phase by phase.
    sim::PhaseCounters from_slices;
    for (const sim::PhaseBreakdown::Slice& s : out.report.phases.slices)
      from_slices += s.counters;
    EXPECT_TRUE(from_slices == grand);
  }
}

TEST(ObservabilityMetrics, ExecutorsProduceIdenticalSnapshots) {
  const core::SortOutcome seq = run_pinned_fig7(core::Executor::Sequential);
  const core::SortOutcome thr = run_pinned_fig7(core::Executor::Threaded);
  EXPECT_TRUE(seq.report.metrics == thr.report.metrics);
  EXPECT_TRUE(seq.report.phases == thr.report.phases);
  EXPECT_DOUBLE_EQ(seq.report.makespan, thr.report.makespan);
}

// Golden breakdown for the pinned scenario. These values are behavior: a
// diff means either the algorithm's work moved between phases or the
// attribution rules changed — both belong in a review, not in noise.
TEST(ObservabilityMetrics, GoldenPhaseBreakdownFig7) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  const sim::PhaseBreakdown& bd = out.report.phases;
  ASSERT_FALSE(bd.empty());
  ASSERT_TRUE(bd.has_critical_path);

  const auto& local = bd.of(sim::Phase::LocalSort);
  EXPECT_EQ(local.counters.comparisons, 27'075u);
  EXPECT_EQ(local.counters.messages, 0u);
  EXPECT_DOUBLE_EQ(local.critical_time, 860.0);

  const auto& subcube = bd.of(sim::Phase::SubcubeSort);
  EXPECT_EQ(subcube.counters.comparisons, 46'800u);
  EXPECT_EQ(subcube.counters.keys_sent, 46'800u);
  EXPECT_EQ(subcube.counters.messages, 900u);
  EXPECT_DOUBLE_EQ(subcube.critical_time, 7'838.0);

  const auto& merge = bd.of(sim::Phase::MergeExchange);
  EXPECT_EQ(merge.counters.comparisons, 3'224u);
  EXPECT_EQ(merge.counters.keys_sent, 3'224u);
  EXPECT_EQ(merge.counters.messages, 62u);
  EXPECT_DOUBLE_EQ(merge.critical_time, 1'768.0);

  const auto& resort = bd.of(sim::Phase::Resort);
  EXPECT_EQ(resort.counters.comparisons, 15'600u);
  EXPECT_EQ(resort.counters.keys_sent, 17'160u);
  EXPECT_EQ(resort.counters.messages, 330u);
  EXPECT_DOUBLE_EQ(resort.critical_time, 4'264.0);

  // Nothing leaks into the catch-all bucket, and the walk telescopes to the
  // makespan exactly.
  EXPECT_TRUE(bd.of(sim::Phase::Unattributed).counters ==
              sim::PhaseCounters{});
  EXPECT_DOUBLE_EQ(bd.of(sim::Phase::Unattributed).critical_time, 0.0);
  EXPECT_DOUBLE_EQ(bd.critical_total, out.report.makespan);
  EXPECT_DOUBLE_EQ(out.report.makespan, 14'730.0);
}

TEST(ObservabilityMetrics, OffByDefaultLeavesReportEmpty) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(400, rng);
  const core::FaultTolerantSorter sorter(6, faults, core::SortConfig{});
  const core::SortOutcome out = sorter.sort(keys);
  EXPECT_TRUE(out.report.metrics.empty());
  EXPECT_TRUE(out.report.phases.empty());
  EXPECT_TRUE(out.trace_events.empty());
}

// ---------------------------------------------------------------------------
// Pool accounting: RunReport::pool is cumulative over the Machine's
// lifetime (the documented footgun); pool_delta is this run's slice.

TEST(ObservabilityPool, PoolDeltaIsPerRunWhilePoolIsCumulative) {
  sim::Machine machine(2, fault::FaultSet(2));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      // The span overload copies through the sender's buffer pool (the
      // vector&& overload adopts storage and would bypass it).
      const std::vector<sim::Key> payload{1, 2, 3};
      ctx.send(1, 1, std::span<const sim::Key>(payload));
    } else if (ctx.id() == 1) {
      const sim::Message m = co_await ctx.recv(0, 1);
      (void)m;
    }
    co_return;
  };
  const sim::RunReport r1 = machine.run(program);
  const sim::RunReport r2 = machine.run(program);
  ASSERT_GT(r1.pool.checkouts, 0u);
  // Identical runs, identical per-run deltas...
  EXPECT_EQ(r1.pool_delta.checkouts, r2.pool_delta.checkouts);
  EXPECT_EQ(r1.pool_delta.returns, r2.pool_delta.returns);
  // ...while the raw PoolStats keep growing across runs.
  EXPECT_EQ(r2.pool.checkouts,
            r1.pool.checkouts + r2.pool_delta.checkouts);
  EXPECT_GT(r2.pool.checkouts, r1.pool.checkouts);
}

// ---------------------------------------------------------------------------
// Exporters: structurally valid JSON with the shapes CI's schema gate and
// Perfetto both rely on.

bool braces_balance(const std::string& text) {
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(ObservabilityExport, ChromeTraceIsWellFormed) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  ASSERT_FALSE(out.trace_events.empty());
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 64);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);  // span begin
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);  // span end
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);  // flow finish
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(ObservabilityExport, MetricsJsonContainsEveryPhaseAndKey) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  // Stable shape: every phase appears even when all-zero (this is what
  // bench/metrics_schema.json pins for external consumers).
  for (std::size_t p = 0; p < sim::kPhaseCount; ++p)
    EXPECT_NE(json.find(std::string("\"phase\": \"") +
                        sim::phase_name(static_cast<sim::Phase>(p)) + "\""),
              std::string::npos)
        << sim::phase_name(static_cast<sim::Phase>(p));
  for (const char* key :
       {"schema_version", "makespan", "totals", "pool_delta",
        "critical_path", "phases", "msg_size_hist", "critical_time",
        "critical_comm", "critical_compute", "recv_wait", "send_busy"})
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
}

}  // namespace
}  // namespace ftsort
