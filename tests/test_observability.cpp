// Observability suite: per-node per-phase metrics, phase spans, the
// critical-path breakdown, per-run pool deltas, and the JSON exporters.
//
// The metrics registry and span taxonomy are logical (charged from message
// causality, never host scheduling), so everything asserted here must hold
// byte-identically on both executors; the concurrency tests run under TSan
// via the tsan preset's test filter.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// ---------------------------------------------------------------------------
// Trace thread-safety: record() runs on every node thread of the MIMD
// executor while a monitoring thread may size/snapshot/clear. TSan is the
// real assertion here; the test only has to provoke the interleavings.

TEST(ObservabilityTrace, ConcurrentRecordSnapshotClearIsRaceFree) {
  sim::Trace trace;
  trace.enable();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&trace, t] {
      for (int i = 0; i < 5'000; ++i)
        trace.record({static_cast<double>(i),
                      static_cast<cube::NodeId>(t),
                      sim::EventKind::Compute, 0, 0, 1, 0});
    });
  std::thread reader([&trace] {
    for (int i = 0; i < 400; ++i) {
      (void)trace.size();
      const auto copy = trace.snapshot();
      if (copy.size() > 10'000) trace.clear();
    }
  });
  for (std::thread& th : writers) th.join();
  reader.join();
  EXPECT_LE(trace.snapshot().size(), 20'000u);
}

// ---------------------------------------------------------------------------
// Span mechanics: spans switch the ambient phase, nest, restore on exit,
// charge no simulated time, and span_if_unattributed defers to an already
// engaged step-level span.

TEST(ObservabilityTrace, SpansNestAndRestoreAmbientPhase) {
  sim::Machine machine(1, fault::FaultSet(1));  // Q_1: two nodes
  machine.trace().enable();
  machine.metrics().enable(machine.size());
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    EXPECT_EQ(ctx.phase(), sim::Phase::Unattributed);
    {
      const sim::PhaseSpan outer = ctx.span(sim::Phase::LocalSort);
      EXPECT_EQ(ctx.phase(), sim::Phase::LocalSort);
      ctx.charge_compares(10);
      {
        const sim::PhaseSpan inner = ctx.span(sim::Phase::MergeExchange);
        EXPECT_EQ(ctx.phase(), sim::Phase::MergeExchange);
        ctx.charge_compares(5);
      }
      EXPECT_EQ(ctx.phase(), sim::Phase::LocalSort);
      // The ambient phase is already set, so this span must not engage.
      const sim::PhaseSpan kept =
          ctx.span_if_unattributed(sim::Phase::Collective);
      ctx.charge_compares(1);
    }
    EXPECT_EQ(ctx.phase(), sim::Phase::Unattributed);
    ctx.charge_compares(2);
    co_return;
  };
  const sim::RunReport report = machine.run(program);

  const sim::MetricsSnapshot& m = report.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_EQ(m.total(sim::Phase::LocalSort).comparisons, 22u);
  EXPECT_EQ(m.total(sim::Phase::MergeExchange).comparisons, 10u);
  EXPECT_EQ(m.total(sim::Phase::Collective).comparisons, 0u);
  EXPECT_EQ(m.total(sim::Phase::Unattributed).comparisons, 4u);
  EXPECT_EQ(m.grand_total().comparisons, report.comparisons);

  // Two nested spans per node appear as balanced begin/end events, and a
  // span costs nothing: the report must match an uninstrumented run.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const sim::TraceEvent& ev : machine.trace().snapshot()) {
    begins += ev.kind == sim::EventKind::SpanBegin;
    ends += ev.kind == sim::EventKind::SpanEnd;
  }
  EXPECT_EQ(begins, 4u);
  EXPECT_EQ(ends, 4u);

  sim::Machine plain(1, fault::FaultSet(1));
  const auto bare = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    ctx.charge_compares(18);
    co_return;
  };
  const sim::RunReport plain_report = plain.run(bare);
  EXPECT_DOUBLE_EQ(report.makespan, plain_report.makespan);
}

// ---------------------------------------------------------------------------
// The pinned fig7 scenario (bench_harness's flagship): per-phase totals must
// sum exactly to the RunReport aggregates on both executors, and the two
// executors must produce byte-identical snapshots and breakdowns.

core::SortOutcome run_pinned_fig7(core::Executor exec) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_link_stats = true;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

TEST(ObservabilityMetrics, PhaseTotalsSumToReportAggregates) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    const core::SortOutcome out = run_pinned_fig7(exec);
    const sim::PhaseCounters grand = out.report.metrics.grand_total();
    EXPECT_EQ(grand.comparisons, out.report.comparisons);
    EXPECT_EQ(grand.keys_sent, out.report.keys_sent);
    EXPECT_EQ(grand.key_hops, out.report.key_hops);
    EXPECT_EQ(grand.messages, out.report.messages);
    EXPECT_EQ(grand.messages_dropped, out.report.messages_dropped);
    EXPECT_EQ(grand.timeouts, out.report.timeouts);

    // The breakdown's slices are the same totals, phase by phase.
    sim::PhaseCounters from_slices;
    for (const sim::PhaseBreakdown::Slice& s : out.report.phases.slices)
      from_slices += s.counters;
    EXPECT_TRUE(from_slices == grand);
  }
}

TEST(ObservabilityMetrics, ExecutorsProduceIdenticalSnapshots) {
  const core::SortOutcome seq = run_pinned_fig7(core::Executor::Sequential);
  const core::SortOutcome thr = run_pinned_fig7(core::Executor::Threaded);
  EXPECT_TRUE(seq.report.metrics == thr.report.metrics);
  EXPECT_TRUE(seq.report.phases == thr.report.phases);
  EXPECT_DOUBLE_EQ(seq.report.makespan, thr.report.makespan);
}

// Golden breakdown for the pinned scenario. These values are behavior: a
// diff means either the algorithm's work moved between phases or the
// attribution rules changed — both belong in a review, not in noise.
TEST(ObservabilityMetrics, GoldenPhaseBreakdownFig7) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  const sim::PhaseBreakdown& bd = out.report.phases;
  ASSERT_FALSE(bd.empty());
  ASSERT_TRUE(bd.has_critical_path);

  const auto& local = bd.of(sim::Phase::LocalSort);
  EXPECT_EQ(local.counters.comparisons, 27'075u);
  EXPECT_EQ(local.counters.messages, 0u);
  EXPECT_DOUBLE_EQ(local.critical_time, 860.0);

  const auto& subcube = bd.of(sim::Phase::SubcubeSort);
  EXPECT_EQ(subcube.counters.comparisons, 46'800u);
  EXPECT_EQ(subcube.counters.keys_sent, 46'800u);
  EXPECT_EQ(subcube.counters.messages, 900u);
  EXPECT_DOUBLE_EQ(subcube.critical_time, 7'838.0);

  const auto& merge = bd.of(sim::Phase::MergeExchange);
  EXPECT_EQ(merge.counters.comparisons, 3'224u);
  EXPECT_EQ(merge.counters.keys_sent, 3'224u);
  EXPECT_EQ(merge.counters.messages, 62u);
  EXPECT_DOUBLE_EQ(merge.critical_time, 1'768.0);

  const auto& resort = bd.of(sim::Phase::Resort);
  EXPECT_EQ(resort.counters.comparisons, 15'600u);
  EXPECT_EQ(resort.counters.keys_sent, 17'160u);
  EXPECT_EQ(resort.counters.messages, 330u);
  EXPECT_DOUBLE_EQ(resort.critical_time, 4'264.0);

  // Nothing leaks into the catch-all bucket, and the walk telescopes to the
  // makespan exactly.
  EXPECT_TRUE(bd.of(sim::Phase::Unattributed).counters ==
              sim::PhaseCounters{});
  EXPECT_DOUBLE_EQ(bd.of(sim::Phase::Unattributed).critical_time, 0.0);
  EXPECT_DOUBLE_EQ(bd.critical_total, out.report.makespan);
  EXPECT_DOUBLE_EQ(out.report.makespan, 14'730.0);
}

TEST(ObservabilityMetrics, OffByDefaultLeavesReportEmpty) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(400, rng);
  const core::FaultTolerantSorter sorter(6, faults, core::SortConfig{});
  const core::SortOutcome out = sorter.sort(keys);
  EXPECT_TRUE(out.report.metrics.empty());
  EXPECT_TRUE(out.report.phases.empty());
  EXPECT_TRUE(out.trace_events.empty());
}

// ---------------------------------------------------------------------------
// Pool accounting: RunReport::pool is cumulative over the Machine's
// lifetime (the documented footgun); pool_delta is this run's slice.

TEST(ObservabilityPool, PoolDeltaIsPerRunWhilePoolIsCumulative) {
  sim::Machine machine(2, fault::FaultSet(2));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      // The span overload copies through the sender's buffer pool (the
      // vector&& overload adopts storage and would bypass it).
      const std::vector<sim::Key> payload{1, 2, 3};
      ctx.send(1, 1, std::span<const sim::Key>(payload));
    } else if (ctx.id() == 1) {
      const sim::Message m = co_await ctx.recv(0, 1);
      (void)m;
    }
    co_return;
  };
  const sim::RunReport r1 = machine.run(program);
  const sim::RunReport r2 = machine.run(program);
  ASSERT_GT(r1.pool.checkouts, 0u);
  // Identical runs, identical per-run deltas...
  EXPECT_EQ(r1.pool_delta.checkouts, r2.pool_delta.checkouts);
  EXPECT_EQ(r1.pool_delta.returns, r2.pool_delta.returns);
  // ...while the raw PoolStats keep growing across runs.
  EXPECT_EQ(r2.pool.checkouts,
            r1.pool.checkouts + r2.pool_delta.checkouts);
  EXPECT_GT(r2.pool.checkouts, r1.pool.checkouts);
}

// ---------------------------------------------------------------------------
// Exporters: structurally valid JSON with the shapes CI's schema gate and
// Perfetto both rely on.

bool braces_balance(const std::string& text) {
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(ObservabilityExport, ChromeTraceIsWellFormed) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  ASSERT_FALSE(out.trace_events.empty());
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 64);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);  // span begin
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);  // span end
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);  // flow finish
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(ObservabilityExport, CounterTracksDecomposeTrafficPerDimension) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  ASSERT_FALSE(out.trace_events.empty());
  sim::ChromeTraceOptions opts;
  opts.cost = &out.report.cost;
  opts.trace_dropped = out.report.trace_dropped;
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 64, opts);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  // Both counter tracks present, sampled with "C" events, one series per
  // cube dimension.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"keys_in_flight\""), std::string::npos);
  EXPECT_NE(json.find("\"link_busy_us\""), std::string::npos);
  for (int d = 0; d < 6; ++d)
    EXPECT_NE(json.find("\"dim" + std::to_string(d) + "\""),
              std::string::npos)
        << d;
  // Eviction annotation rides as metadata (count 0: complete export).
  EXPECT_NE(json.find("\"trace_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  // The plain overload emits no counters.
  std::ostringstream plain;
  sim::write_chrome_trace(plain, out.trace_events, 64);
  EXPECT_EQ(plain.str().find("\"ph\": \"C\""), std::string::npos);
}

TEST(ObservabilityExport, ValidatorAcceptsCounterTracks) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  sim::ChromeTraceOptions opts;
  opts.cost = &out.report.cost;
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 64, opts);
  std::string error;
  EXPECT_TRUE(sim::validate_chrome_trace(os.str(), &error)) << error;
  // A counter needs its timestamp: stripping "ts" must fail validation.
  EXPECT_FALSE(sim::validate_chrome_trace(
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["
      "{\"name\": \"keys_in_flight\", \"ph\": \"C\", \"pid\": 0, "
      "\"args\": {\"dim0\": 1}}]}"));
}

TEST(ObservabilityExport, MetricsJsonContainsEveryPhaseAndKey) {
  const core::SortOutcome out = run_pinned_fig7(core::Executor::Sequential);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  // Stable shape: every phase appears even when all-zero (this is what
  // bench/metrics_schema.json pins for external consumers).
  for (std::size_t p = 0; p < sim::kPhaseCount; ++p)
    EXPECT_NE(json.find(std::string("\"phase\": \"") +
                        sim::phase_name(static_cast<sim::Phase>(p)) + "\""),
              std::string::npos)
        << sim::phase_name(static_cast<sim::Phase>(p));
  for (const char* key :
       {"schema_version", "makespan", "makespan_detect",
        "makespan_post_recovery", "totals", "pool_delta", "trace_dropped",
        "diagnosis", "host_profile", "critical_path", "phases",
        "msg_size_hist", "critical_time", "critical_comm",
        "critical_compute", "recv_wait", "send_busy",
        // v3: per-dimension link rollup and the §3 re-index audit.
        "links", "per_dimension", "traversals", "key_hops", "busy",
        "utilization", "reindex_audit", "measured_h", "measured_total",
        "measured_all_h", "measured_all_total", "candidates", "predicted_h",
        "predicted_total", "chosen",
        // v4: the active cost model, so ftdiag can refuse cross-model diffs.
        "cost_model", "routing", "t_compare", "t_transfer", "t_startup",
        // v5: recovery-latency decomposition and the sim-time sampler
        // (enabled:false stubs here — this run recorded neither).
        "recovery_latency", "timeline",
        // v6: key-lineage custody audit (enabled:false stub here).
        "lineage",
        // v7: wall-clock watchdog verdict (enabled:false stub here).
        "watchdog"})
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"watchdog\": {\"enabled\": false}"),
            std::string::npos);
  EXPECT_NE(json.find("\"cost_model\": {\"name\": \"ncube7\", \"routing\": "
                      "\"store_and_forward\""),
            std::string::npos);
  EXPECT_NE(json.find("\"links\": {\"enabled\": true"), std::string::npos);
}

TEST(ObservabilityExport, MetricsJsonStubsLinkBlocksWhenDisabled) {
  // Without record_link_stats the v3 blocks collapse to enabled:false
  // stubs, keeping the document shape parseable for every consumer.
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(400, rng);
  core::SortConfig cfg;
  cfg.record_metrics = true;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  const core::SortOutcome out = sorter.sort(keys);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const std::string json = os.str();
  EXPECT_TRUE(braces_balance(json));
  EXPECT_NE(json.find("\"links\": {\"enabled\": false}"), std::string::npos);
  EXPECT_NE(json.find("\"reindex_audit\": {\"enabled\": false}"),
            std::string::npos);
  // v5 blocks stub out the same way when nothing was recorded.
  EXPECT_NE(json.find("\"recovery_latency\": {\"enabled\": false}"),
            std::string::npos);
  EXPECT_NE(json.find("\"timeline\": {\"enabled\": false}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder: the trace is a bounded ring (capacity 0 = unbounded)
// sharded per node; evictions keep the newest events, are counted, and
// never perturb logical results.

TEST(FlightRecorder, BoundedRingKeepsNewestAndCountsDrops) {
  sim::Trace trace;
  trace.enable();
  trace.set_capacity(8);
  for (int i = 0; i < 20; ++i)
    trace.record({static_cast<double>(i), 0, sim::EventKind::Compute, 0, 0,
                  1, 0});
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.dropped(), 12u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  // Overwrite-oldest: the survivors are the last 8 records.
  EXPECT_DOUBLE_EQ(events.front().time, 12.0);
  EXPECT_DOUBLE_EQ(events.back().time, 19.0);
}

TEST(FlightRecorder, ShardedSnapshotMergesInRecordOrder) {
  sim::Trace trace;
  trace.enable();
  trace.reshard(4);
  for (int i = 0; i < 12; ++i)
    trace.record({static_cast<double>(i), static_cast<cube::NodeId>(i % 4),
                  sim::EventKind::Compute, 0, 0, 1, 0});
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 12u);
  // The global sequence stamp restores record order across shards.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(i));
}

TEST(FlightRecorder, TruncatedRecorderLeavesGoldenReportIntact) {
  const core::SortOutcome full = run_pinned_fig7(core::Executor::Sequential);
  ASSERT_EQ(full.report.trace_dropped, 0u);

  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.trace_capacity = 16;  // tiny ring: most events evicted
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  const core::SortOutcome cut = sorter.sort(keys);

  EXPECT_GT(cut.report.trace_dropped, 0u);
  EXPECT_LT(cut.trace_events.size(), full.trace_events.size());
  // Eviction degrades only attribution; every logical result and metric
  // charged outside the trace is untouched.
  EXPECT_DOUBLE_EQ(cut.report.makespan, full.report.makespan);
  EXPECT_EQ(cut.report.comparisons, full.report.comparisons);
  EXPECT_EQ(cut.report.messages, full.report.messages);
  EXPECT_EQ(cut.report.keys_sent, full.report.keys_sent);
  EXPECT_TRUE(cut.report.metrics == full.report.metrics);
}

TEST(FlightRecorder, RecorderOnOffLeavesReportIdentical) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(800, rng);
  core::SortConfig off;
  core::SortConfig on;
  on.record_trace = true;
  on.trace_capacity = 32;
  const core::SortOutcome a =
      core::FaultTolerantSorter(6, faults, off).sort(keys);
  const core::SortOutcome b =
      core::FaultTolerantSorter(6, faults, on).sort(keys);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.comparisons, b.report.comparisons);
  EXPECT_EQ(a.report.messages, b.report.messages);
  EXPECT_EQ(a.report.keys_sent, b.report.keys_sent);
  EXPECT_EQ(a.sorted, b.sorted);
}

// ---------------------------------------------------------------------------
// Host profiling: wall-clock scheduler counters populate on the threaded
// executor, and — being charged outside simulated time — never move a
// single logical result.

TEST(ObservabilityHost, ProfilingPopulatesCountersWithoutChangingResults) {
  const core::SortOutcome plain = run_pinned_fig7(core::Executor::Threaded);
  EXPECT_FALSE(plain.report.host.enabled);

  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = core::Executor::Threaded;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.profile_host = true;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  const core::SortOutcome profiled = sorter.sort(keys);

  ASSERT_TRUE(profiled.report.host.enabled);
  const sim::SchedShardProfile total = profiled.report.host.total();
  EXPECT_GT(total.tasks_resumed, 0u);
  EXPECT_GT(total.cv_wakeups + total.spurious_wakeups, 0u);
  EXPECT_EQ(profiled.report.host.shards.size(), 64u);

  // Wall-clock observation, logical silence: every simulated-time and
  // traffic field matches the unprofiled run exactly.
  EXPECT_DOUBLE_EQ(profiled.report.makespan, plain.report.makespan);
  EXPECT_EQ(profiled.report.comparisons, plain.report.comparisons);
  EXPECT_EQ(profiled.report.messages, plain.report.messages);
  EXPECT_EQ(profiled.report.keys_sent, plain.report.keys_sent);
  EXPECT_TRUE(profiled.report.metrics == plain.report.metrics);
  EXPECT_EQ(profiled.sorted, plain.sorted);
}

// ---------------------------------------------------------------------------
// Trace schema: the Perfetto export passes the structural validator, and
// the validator actually rejects broken documents.

core::SortOutcome run_pinned_recovery(core::Executor exec) {
  util::Rng rng(1703);
  const fault::FaultSet faults = fault::random_faults(3, 1, rng);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.executor = exec;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  cfg.record_metrics = true;
  cfg.record_trace = true;
  const core::FaultTolerantSorter sorter(3, faults, cfg);
  return sorter.sort(keys);
}

TEST(TraceSchema, ChromeTraceExportValidates) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  ASSERT_FALSE(out.trace_events.empty());
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 8);
  const std::string json = os.str();
  std::string error;
  EXPECT_TRUE(sim::validate_chrome_trace(json, &error)) << error;
  // Fault instants carry their phase so ftdiag explain can reconstruct
  // the causal chain offline.
  EXPECT_NE(json.find("\"kill\""), std::string::npos);
  EXPECT_NE(json.find("\"timeout\""), std::string::npos);
}

TEST(TraceSchema, ValidatorRejectsBrokenDocuments) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 8);
  const std::string json = os.str();

  EXPECT_FALSE(sim::validate_chrome_trace("{}"));
  EXPECT_FALSE(sim::validate_chrome_trace(json.substr(0, json.size() / 2)));
  // Flip one span end into a begin: per-track balance must catch it.
  std::string unbalanced = json;
  const std::size_t at = unbalanced.find("\"ph\": \"E\"");
  ASSERT_NE(at, std::string::npos);
  unbalanced[at + 8] = 'B';
  std::string why;
  EXPECT_FALSE(sim::validate_chrome_trace(unbalanced, &why));
  EXPECT_FALSE(why.empty());
}

// ---------------------------------------------------------------------------
// Diagnosis: a recovered run still explains the fault it survived, the
// same way on both executors.

TEST(Diagnosis, RecoveryRunNamesInjectedKillAcrossExecutors) {
  const core::SortOutcome seq =
      run_pinned_recovery(core::Executor::Sequential);
  const core::SortOutcome thr = run_pinned_recovery(core::Executor::Threaded);
  ASSERT_FALSE(seq.sorted.empty());
  const sim::Diagnosis& diag = seq.report.diagnosis;
  ASSERT_TRUE(diag.triggered());
  EXPECT_EQ(diag.kind, sim::Diagnosis::Kind::TimeoutBurst);
  EXPECT_EQ(diag.root_kind, sim::Diagnosis::RootKind::NodeKill);
  EXPECT_EQ(diag.root_node, 6u);
  // The victim's own logical clock at death (it lags the global schedule
  // time of the kill), deterministic across executors.
  EXPECT_GT(diag.root_time, 0.0);
  EXPECT_FALSE(diag.waits.empty());
  EXPECT_FALSE(diag.stalled.empty());
  EXPECT_NE(diag.to_string().find("injected kill of node 6"),
            std::string::npos)
      << diag.to_string();
  // Same logical evidence, same explanation, either executor.
  EXPECT_TRUE(diag == thr.report.diagnosis);
  EXPECT_EQ(diag.to_string(), thr.report.diagnosis.to_string());
}

TEST(Diagnosis, EvictionDegradesSilentPeerVerdict) {
  // Only wait edges survived the ring; the event that would name the real
  // root may be among the evicted ones.
  sim::DiagnosisInput in;
  in.waits.push_back({/*node=*/2, /*src=*/5, /*tag=*/7, /*time=*/100.0,
                      sim::Phase::MergeExchange, /*expired=*/true});
  in.waits.push_back({/*node=*/3, /*src=*/2, /*tag=*/7, /*time=*/120.0,
                      sim::Phase::MergeExchange, /*expired=*/false});

  sim::DiagnosisInput complete = in;
  const sim::Diagnosis trusted =
      sim::diagnose(std::move(complete), sim::Diagnosis::Kind::TimeoutBurst);
  EXPECT_EQ(trusted.root_kind, sim::Diagnosis::RootKind::MissingPartner);
  EXPECT_EQ(trusted.trace_dropped, 0u);

  in.trace_dropped = 41;
  const sim::Diagnosis degraded =
      sim::diagnose(std::move(in), sim::Diagnosis::Kind::TimeoutBurst);
  EXPECT_EQ(degraded.root_kind, sim::Diagnosis::RootKind::Evicted);
  EXPECT_EQ(degraded.trace_dropped, 41u);
  // Same wait-for closure either way: eviction changes the confidence of
  // the verdict, not the stalled set.
  EXPECT_EQ(degraded.stalled, trusted.stalled);
  EXPECT_NE(degraded.to_string().find("root evicted (trace_dropped=41)"),
            std::string::npos)
      << degraded.to_string();
  EXPECT_EQ(std::string("evicted"),
            sim::diagnosis_root_kind_name(sim::Diagnosis::RootKind::Evicted));
}

TEST(Diagnosis, SurvivingKillEvidenceIsNotDegradedByEviction) {
  // A tiny flight recorder drops most of the run, but the victim's death
  // is still visible in live node state: the diagnosis must keep naming
  // the kill while reporting how much of the ring was lost.
  util::Rng rng(1703);
  const fault::FaultSet faults = fault::random_faults(3, 1, rng);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.trace_capacity = 16;
  const core::FaultTolerantSorter sorter(3, faults, cfg);
  const core::SortOutcome out = sorter.sort(keys);
  ASSERT_FALSE(out.sorted.empty());
  EXPECT_GT(out.report.trace_dropped, 0u);
  const sim::Diagnosis& diag = out.report.diagnosis;
  ASSERT_TRUE(diag.triggered());
  EXPECT_EQ(diag.root_kind, sim::Diagnosis::RootKind::NodeKill);
  EXPECT_EQ(diag.root_node, 6u);
  EXPECT_EQ(diag.trace_dropped, out.report.trace_dropped);
}

}  // namespace
}  // namespace ftsort
