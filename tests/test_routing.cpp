// Unit tests for e-cube, BFS, and adaptive fault-avoiding routing.
#include <gtest/gtest.h>

#include "fault/scenario.hpp"
#include "hypercube/routing.hpp"
#include "util/rng.hpp"

namespace ftsort::cube {
namespace {

bool path_is_valid(Dim /*n*/, const std::vector<NodeId>& path, NodeId src,
                   NodeId dst) {
  if (path.empty() || path.front() != src || path.back() != dst)
    return false;
  for (std::size_t i = 1; i < path.size(); ++i)
    if (hamming(path[i - 1], path[i]) != 1) return false;
  return true;
}

std::vector<bool> no_faults(Dim n) {
  return std::vector<bool>(num_nodes(n), false);
}

TEST(EcubeRouting, PathLengthEqualsHamming) {
  for (Dim n = 1; n <= 5; ++n)
    for (NodeId a = 0; a < num_nodes(n); ++a)
      for (NodeId b = 0; b < num_nodes(n); ++b) {
        const auto path = ecube_path(n, a, b);
        EXPECT_TRUE(path_is_valid(n, path, a, b));
        EXPECT_EQ(static_cast<int>(path.size()) - 1, hamming(a, b));
      }
}

TEST(EcubeRouting, CorrectsLowestDimensionFirst) {
  const auto path = ecube_path(4, 0b0000, 0b1010);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 0b0010u);  // dimension 1 before dimension 3
}

TEST(EcubeRouting, SelfPathIsSingleton) {
  const auto path = ecube_path(3, 5, 5);
  EXPECT_EQ(path, std::vector<NodeId>{5});
}

TEST(BfsRouting, MatchesHammingWhenFaultFree) {
  for (NodeId a = 0; a < 16; ++a)
    for (NodeId b = 0; b < 16; ++b) {
      const auto path = bfs_path(4, a, b, no_faults(4));
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(static_cast<int>(path->size()) - 1, hamming(a, b));
    }
}

TEST(BfsRouting, AvoidsFaultyIntermediates) {
  // Q_2: route 00 -> 11 with 01 faulty must go through 10.
  std::vector<bool> faulty(4, false);
  faulty[0b01] = true;
  const auto path = bfs_path(2, 0b00, 0b11, faulty);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[1], 0b10u);
}

TEST(BfsRouting, ReturnsNulloptWhenCutOff) {
  // Q_2: isolate node 00 by failing both neighbours.
  std::vector<bool> faulty(4, false);
  faulty[0b01] = true;
  faulty[0b10] = true;
  EXPECT_FALSE(bfs_path(2, 0b00, 0b11, faulty).has_value());
}

TEST(BfsRouting, DestinationMayBeFaulty) {
  // Diagnosis-style probe: the endpoint itself is reachable even if faulty.
  std::vector<bool> faulty(4, false);
  faulty[0b11] = true;
  const auto path = bfs_path(2, 0b00, 0b11, faulty);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
}

TEST(AdaptiveRouting, EqualsEcubeWhenFaultFree) {
  for (NodeId a = 0; a < 32; ++a)
    for (NodeId b = 0; b < 32; ++b) {
      const auto path = adaptive_path(5, a, b, no_faults(5));
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(static_cast<int>(path->size()) - 1, hamming(a, b));
    }
}

TEST(AdaptiveRouting, DetoursAroundSingleFault) {
  // Q_3: 000 -> 011 with 001 faulty; still reachable, maybe longer.
  std::vector<bool> faulty(8, false);
  faulty[0b001] = true;
  const auto path = adaptive_path(3, 0b000, 0b011, faulty);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path_is_valid(3, *path, 0b000, 0b011));
  for (std::size_t i = 1; i + 1 < path->size(); ++i)
    EXPECT_FALSE(faulty[(*path)[i]]);
}

TEST(AdaptiveRouting, AlwaysReachesUnderPaperFaultBound) {
  // r <= n-1 keeps the healthy subgraph connected; adaptive routing must
  // always deliver between healthy nodes.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto& bitmap = faults.bitmap();
    for (NodeId a = 0; a < 32; ++a) {
      if (bitmap[a]) continue;
      for (NodeId b = 0; b < 32; ++b) {
        if (bitmap[b]) continue;
        const auto path = adaptive_path(5, a, b, bitmap);
        ASSERT_TRUE(path.has_value());
        EXPECT_TRUE(path_is_valid(5, *path, a, b));
        for (std::size_t i = 1; i + 1 < path->size(); ++i)
          EXPECT_FALSE(bitmap[(*path)[i]]);
      }
    }
  }
}

TEST(AdaptiveRouting, NeverShorterThanBfs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(4, 3, rng);
    const auto& bitmap = faults.bitmap();
    for (NodeId a = 0; a < 16; ++a) {
      if (bitmap[a]) continue;
      for (NodeId b = 0; b < 16; ++b) {
        if (bitmap[b]) continue;
        const auto adaptive = adaptive_path(4, a, b, bitmap);
        const auto shortest = bfs_path(4, a, b, bitmap);
        ASSERT_TRUE(adaptive.has_value());
        ASSERT_TRUE(shortest.has_value());
        EXPECT_GE(adaptive->size(), shortest->size());
      }
    }
  }
}

TEST(Router, PartialModelChargesHammingThroughFaults) {
  std::vector<bool> faulty(8, false);
  faulty[0b001] = true;
  const Router router(3, faulty, /*avoid_faulty=*/false);
  // e-cube passes straight through the faulty node.
  EXPECT_EQ(router.hops(0b000, 0b011), 2);
  EXPECT_EQ(router.path(0b000, 0b011)[1], 0b001u);
}

TEST(Router, TotalModelRoutesAround) {
  std::vector<bool> faulty(8, false);
  faulty[0b001] = true;
  const Router router(3, faulty, /*avoid_faulty=*/true);
  EXPECT_GE(router.hops(0b000, 0b011), 2);
  for (NodeId hop : router.path(0b000, 0b011)) {
    if (hop != 0b000 && hop != 0b011) {
      EXPECT_FALSE(faulty[hop]);
    }
  }
}

TEST(Router, HopsZeroForSelf) {
  const Router router(3, std::vector<bool>(8, false), false);
  EXPECT_EQ(router.hops(4, 4), 0);
}

}  // namespace
}  // namespace ftsort::cube
