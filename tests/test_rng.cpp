// Unit tests for the deterministic RNG stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace ftsort::util {
namespace {

TEST(SplitMix64, ProducesKnownFirstValueForZeroSeed) {
  SplitMix64 sm(0);
  // Reference value from the SplitMix64 reference implementation.
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(7);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng rng(6);
  std::array<int, 4> counts{};
  const int trials = 40'000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(4)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 4 - trials / 20);
    EXPECT_LT(c, trials / 4 + trials / 20);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingletonInterval) {
  Rng rng(9);
  EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto expected = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TEST(Rng, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(13);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(14);
  const auto sample = rng.sample_distinct(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleDistinctFullPopulationIsPermutation) {
  Rng rng(15);
  auto sample = rng.sample_distinct(16, 16);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleDistinctZeroIsEmpty) {
  Rng rng(16);
  EXPECT_TRUE(rng.sample_distinct(10, 0).empty());
}

TEST(Rng, SampleDistinctRejectsOverdraw) {
  Rng rng(17);
  EXPECT_THROW(rng.sample_distinct(4, 5), ContractViolation);
}

}  // namespace
}  // namespace ftsort::util
