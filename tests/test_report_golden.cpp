// Golden-report regression tests.
//
// The buffer-pooled message path and the scratch-buffer merge kernels are
// pure performance changes: every RunReport field and every output key must
// stay byte-identical to the pre-pool seed. The hexfloat constants below
// were captured from the seed revision (commit cac260b) with a one-off
// probe binary; hexfloat round-trips doubles exactly, so EXPECT_EQ on the
// parsed values is a bit-for-bit comparison. If an intentional cost-model
// or protocol change ever shifts these numbers, re-capture them with the
// same four scenarios and say so in the commit message.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

struct Golden {
  double makespan;
  std::uint64_t messages;
  std::uint64_t keys_sent;
  std::uint64_t key_hops;
  std::uint64_t comparisons;
  std::uint64_t dropped;
  std::uint64_t timeouts;
  std::uint64_t key_checksum;
  std::vector<double> node_clocks;
};

double hexf(const char* s) { return std::strtod(s, nullptr); }

std::vector<double> hexf_list(std::initializer_list<const char*> ss) {
  std::vector<double> out;
  for (const char* s : ss) out.push_back(hexf(s));
  return out;
}

void expect_matches(const core::SortOutcome& outcome, const Golden& g) {
  const sim::RunReport& r = outcome.report;
  EXPECT_EQ(r.makespan, g.makespan);
  EXPECT_EQ(r.messages, g.messages);
  EXPECT_EQ(r.keys_sent, g.keys_sent);
  EXPECT_EQ(r.key_hops, g.key_hops);
  EXPECT_EQ(r.comparisons, g.comparisons);
  EXPECT_EQ(r.messages_dropped, g.dropped);
  EXPECT_EQ(r.timeouts, g.timeouts);
  ASSERT_EQ(r.node_clocks.size(), g.node_clocks.size());
  for (std::size_t i = 0; i < g.node_clocks.size(); ++i)
    EXPECT_EQ(r.node_clocks[i], g.node_clocks[i]) << "node " << i;
  std::uint64_t csum = 0;
  for (sort::Key k : outcome.sorted) csum += static_cast<std::uint64_t>(k);
  EXPECT_EQ(csum, g.key_checksum);
  EXPECT_TRUE(std::is_sorted(outcome.sorted.begin(), outcome.sorted.end()));
}

void run_scenario_offline_q3(core::Executor executor) {
  util::Rng rng(42);
  const auto keys = sort::gen_uniform(150, rng);
  core::SortConfig cfg;
  cfg.executor = executor;
  core::FaultTolerantSorter sorter(3, fault::FaultSet(3, {2}), cfg);
  const Golden g{
      hexf("0x1.eap+10"), 72, 792, 792, 2743, 0, 0, 22023536548815715u,
      hexf_list({"0x1.e8p+10", "0x1.e8p+10", "0x0p+0", "0x1.a3p+10",
                 "0x1.eap+10", "0x1.e68p+10", "0x1.e88p+10", "0x1.e8p+10"})};
  expect_matches(sorter.sort(keys), g);
}

void run_scenario_half_q4(core::Executor executor) {
  util::Rng rng(7);
  const auto keys = sort::gen_uniform(340, rng);
  core::SortConfig cfg;
  cfg.executor = executor;
  cfg.protocol = sort::ExchangeProtocol::HalfExchange;
  core::FaultTolerantSorter sorter(4, fault::FaultSet(4, {3, 12}), cfg);
  const Golden g{
      hexf("0x1.1a2p+12"), 250, 3200, 4350, 8825, 0, 0, 47440601626800935u,
      hexf_list({"0x1.fdp+11", "0x1.1a2p+12", "0x1.fccp+11", "0x0p+0",
                 "0x1.ff4p+11", "0x1.19ep+12", "0x1.fd4p+11", "0x1.0d2p+12",
                 "0x1.fdp+11", "0x1.198p+12", "0x1.fc8p+11", "0x1.01p+12",
                 "0x0p+0", "0x1.0dap+12", "0x1.d6cp+11", "0x1.0d2p+12"})};
  expect_matches(sorter.sort(keys), g);
}

void run_scenario_recovery(core::Executor executor) {
  util::Rng rng(11);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.executor = executor;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  core::FaultTolerantSorter sorter(3, fault::FaultSet(3, {5}), cfg);
  const Golden g{
      hexf("0x1.dcd773ep+29"), 95, 2486, 2967, 6831, 2, 2,
      27766693709941424u,
      hexf_list({"0x1.dcd7736p+29", "0x1.dcd7726p+29", "0x1.dcd772ap+29",
                 "0x1.dcd7732p+29", "0x1.dcd7732p+29", "0x0p+0",
                 "0x1.fap+10", "0x1.dcd773ep+29"})};
  expect_matches(sorter.sort(keys), g);
}

void run_scenario_fault_free(core::Executor executor) {
  util::Rng rng(3);
  const auto keys = sort::gen_uniform(512, rng);
  core::SortConfig cfg;
  cfg.executor = executor;
  cfg.protocol = sort::ExchangeProtocol::HalfExchange;
  core::FaultTolerantSorter sorter(4, fault::FaultSet(4, {}), cfg);
  const Golden g{
      hexf("0x1.1acp+12"), 320, 5120, 5120, 14844, 0, 0, 74301754807861173u,
      hexf_list({"0x1.19ep+12", "0x1.196p+12", "0x1.1acp+12", "0x1.198p+12",
                 "0x1.1ap+12", "0x1.19ap+12", "0x1.17ep+12", "0x1.17cp+12",
                 "0x1.18p+12", "0x1.18p+12", "0x1.18ep+12", "0x1.19ap+12",
                 "0x1.18ep+12", "0x1.198p+12", "0x1.196p+12", "0x1.19p+12"})};
  expect_matches(sorter.sort(keys), g);
}

TEST(ReportGolden, OfflineQ3Sequential) {
  run_scenario_offline_q3(core::Executor::Sequential);
}
TEST(ReportGolden, OfflineQ3Threaded) {
  run_scenario_offline_q3(core::Executor::Threaded);
}
TEST(ReportGolden, HalfExchangeQ4Sequential) {
  run_scenario_half_q4(core::Executor::Sequential);
}
TEST(ReportGolden, HalfExchangeQ4Threaded) {
  run_scenario_half_q4(core::Executor::Threaded);
}
TEST(ReportGolden, OnlineRecoverySequential) {
  run_scenario_recovery(core::Executor::Sequential);
}
TEST(ReportGolden, FaultFreeQ4Sequential) {
  run_scenario_fault_free(core::Executor::Sequential);
}
TEST(ReportGolden, FaultFreeQ4Threaded) {
  run_scenario_fault_free(core::Executor::Threaded);
}

}  // namespace
}  // namespace ftsort
