// Standalone repro for the GCC 12.2 -O2 co_return miscompile that forced
// the [[gnu::noinline]] workaround on sim::detail::Promise<T>::return_value
// (sim/task.hpp): when the emplace into the coroutine frame's
// std::optional is inlined into the coroutine body, the stored value can
// read back as garbage after the continuation resumes (suppressed by
// -fno-tree-pre / -fno-tree-vectorize — an optimiser frame-layout bug,
// not UB).
//
// This file clones the repo's Task type *without* the workaround and
// drives the exact hand-off pattern: a value-returning co_return handed
// to a continuation via symmetric transfer, resumed from a scheduler
// loop. The guard is compile-time:
//
//   * On GCC <= 12 with optimisation, a corrupted read SKIPs (known
//     toolchain bug, documented, workaround stays); a clean read still
//     passes — the repro is inlining-heuristic dependent, and a pass
//     here does NOT license removing the workaround while the big
//     coroutine bodies in sim/ still tickle it.
//   * On GCC >= 13 (or any other compiler) the checks are hard: if this
//     test passes there, the toolchain has moved and the
//     [[gnu::noinline]] in sim/task.hpp is a candidate for retirement
//     (see ROADMAP "GCC coroutine bug tracking").
//
// The file is also the first consumer of the wall-clock watchdog
// (sim/watchdog.hpp): the second test wedges this same driver loop on
// purpose — a coroutine that suspends and schedules nobody, the exact
// symptom the miscompile family produces — and pins that the watchdog
// trips, names the silent driver slot, and that `ftdiag stuck` decodes
// the black-box dump to the same verdict with exit code 1.
#include <gtest/gtest.h>

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "sim/watchdog.hpp"
#include "tools/ftdiag.hpp"

namespace {

template <typename T>
class MiniTask;

struct MiniPromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct MiniPromise : MiniPromiseBase {
  std::optional<T> value;
  MiniTask<T> get_return_object();
  // Deliberately NO [[gnu::noinline]]: this is the configuration
  // sim/task.hpp works around.
  void return_value(T&& v) { value.emplace(std::move(v)); }
  void return_value(const T& v) { value.emplace(v); }
};

template <>
struct MiniPromise<void> : MiniPromiseBase {
  MiniTask<void> get_return_object();
  void return_void() {}
};

template <typename T = void>
class [[nodiscard]] MiniTask {
 public:
  using promise_type = MiniPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  MiniTask() = default;
  explicit MiniTask(Handle h) : handle_(h) {}
  MiniTask(MiniTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  MiniTask& operator=(MiniTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  MiniTask(const MiniTask&) = delete;
  MiniTask& operator=(const MiniTask&) = delete;
  ~MiniTask() { destroy(); }

  bool done() const { return !handle_ || handle_.done(); }
  void start() { handle_.resume(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> caller) noexcept {
        handle.promise().continuation = caller;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception)
          std::rethrow_exception(handle.promise().exception);
        if constexpr (!std::is_void_v<T>)
          return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

template <typename T>
MiniTask<T> MiniPromise<T>::get_return_object() {
  return MiniTask<T>(std::coroutine_handle<MiniPromise<T>>::from_promise(*this));
}

inline MiniTask<void> MiniPromise<void>::get_return_object() {
  return MiniTask<void>(
      std::coroutine_handle<MiniPromise<void>>::from_promise(*this));
}

// A cooperative yield point, resumed by the driver loop below — stands in
// for the simulator's recv suspension, so the continuation resume happens
// from scheduler context like in the real Machine.
struct YieldPoint {
  std::coroutine_handle<>* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept { *slot = h; }
  void await_resume() const noexcept {}
};

std::coroutine_handle<> pending;

// The victim pattern: build a non-trivial value across a suspension point
// and co_return it by value. Under the bug, the emplace into the frame's
// optional is reordered/inlined such that the caller's await_resume reads
// garbage.
MiniTask<std::vector<std::uint64_t>> produce(std::uint64_t base,
                                             std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(base * 1000003u + i * i);
    if (i % 3 == 1) co_await YieldPoint{&pending};
  }
  co_return out;
}

MiniTask<std::uint64_t> accumulate(std::size_t rounds) {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::uint64_t> chunk = co_await produce(r, 8 + r % 5);
    sum = std::accumulate(chunk.begin(), chunk.end(), sum);
    co_await YieldPoint{&pending};
  }
  co_return sum;
}

std::uint64_t expected(std::size_t rounds) {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < rounds; ++r)
    for (std::size_t i = 0; i < 8 + r % 5; ++i)
      sum += static_cast<std::uint64_t>(r) * 1000003u + i * i;
  return sum;
}

void drive_into(std::size_t rounds, std::uint64_t* out) {
  auto top = [](std::size_t n, std::uint64_t* sum) -> MiniTask<void> {
    *sum = co_await accumulate(n);
  };
  MiniTask<void> task = top(rounds, out);
  pending = nullptr;
  task.start();
  while (!task.done()) {
    const std::coroutine_handle<> next =
        std::exchange(pending, std::coroutine_handle<>{});
    ASSERT_TRUE(next) << "driver stalled";
    next.resume();
  }
}

#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12 && \
    defined(__OPTIMIZE__)
constexpr bool kKnownBuggyToolchain = true;
#else
constexpr bool kKnownBuggyToolchain = false;
#endif

TEST(CoroMiscompile, ValueCoReturnSurvivesContinuationResume) {
  for (const std::size_t rounds : {1u, 4u, 16u, 64u}) {
    std::uint64_t got = 0;
    drive_into(rounds, &got);
    const std::uint64_t want = expected(rounds);
    if (kKnownBuggyToolchain && got != want) {
      GTEST_SKIP() << "GCC " << __GNUC__ << "." << __GNUC_MINOR__
                   << " -O co_return miscompile still reproduces (got "
                   << got << ", want " << want
                   << "); the [[gnu::noinline]] workaround in sim/task.hpp "
                      "must stay";
    }
    EXPECT_EQ(got, want) << "rounds=" << rounds;
  }
  if (!kKnownBuggyToolchain) {
    // Clean pass on a toolchain outside the known-buggy range: the
    // workaround in sim/task.hpp is a retirement candidate — see the
    // ROADMAP item before touching it.
    SUCCEED();
  }
}

// A coroutine exhibiting the hang symptom: it suspends at a point that
// registers no continuation anywhere, so the driver loop's `pending`
// slot stays empty forever. (A destroyed-while-suspended frame is fine;
// MiniTask's destructor cleans it up.)
MiniTask<void> wedged() {
  co_await YieldPoint{&pending};   // resumable once...
  co_await std::suspend_always{};  // ...then wedged for good
}

TEST(CoroMiscompile, WatchdogCatchesTheInducedDriverHangAndNamesIt) {
  using namespace ftsort;

  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 150;  // floor; measured-progress scaling can only raise
  cfg.abort_on_trip = true;
  sim::Watchdog wd(cfg);
  const std::size_t slot = wd.add_slot("driver");
  wd.start();

  pending = nullptr;
  MiniTask<void> task = wedged();
  task.start();
  wd.beat(slot);
  // The guarded driver loop: each resume beats the heartbeat; when the
  // wedge hits, the loop has nothing to resume and the beats stop.
  while (!task.done() && !wd.tripped()) {
    const std::coroutine_handle<> next =
        std::exchange(pending, std::coroutine_handle<>{});
    if (next) {
      next.resume();
      wd.beat(slot);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_FALSE(task.done()) << "the wedge must not complete";
  EXPECT_TRUE(wd.tripped());
  wd.stop();

  const sim::WatchdogReport rep = wd.report();
  EXPECT_EQ(rep.trips, 1u);
  EXPECT_EQ(rep.near_misses, 0u);
  EXPECT_GE(rep.stall_ms, static_cast<std::uint64_t>(cfg.deadline_ms));
  ASSERT_EQ(rep.slots.size(), 1u);
  EXPECT_EQ(rep.slots[0].label, "driver");
  EXPECT_FALSE(rep.slots[0].terminal);
  EXPECT_GE(rep.slots[0].beats, 2u);  // start + the one good resume

  // Black-box dump -> ftdiag stuck: exit 1 (a trip is recorded) and the
  // decoded report blames the driver slot, not some retired thread.
  const std::string path = testing::TempDir() + "coro_wedge_dump.json";
  ASSERT_TRUE(sim::write_watchdog_dump(path, rep, sim::WatchdogDumpContext{}));
  const char* argv[] = {"ftdiag", "stuck", path.c_str()};
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(tools::run_cli(3, argv, out, err), 1) << err.str();
  EXPECT_NE(out.str().find("most silent: driver"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("STUCK"), std::string::npos);
}

}  // namespace
