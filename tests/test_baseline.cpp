// Unit tests for the maximum fault-free subcube baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/mfs_sorter.hpp"
#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort::baseline {
namespace {

TEST(MaxSubcube, FaultFreeUsesWholeCube) {
  const auto result = find_max_fault_free_subcube(fault::FaultSet(4));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->subcube.dim(), 4);
  EXPECT_EQ(result->dangling_count, 0u);
  EXPECT_DOUBLE_EQ(result->utilization_percent, 100.0);
}

TEST(MaxSubcube, SingleFaultHalvesTheCube) {
  // The paper's motivating waste: one fault in Q_6 -> only Q_5 is usable,
  // 31 of 63 healthy nodes dangle.
  const auto result =
      find_max_fault_free_subcube(fault::FaultSet(6, {0}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->subcube.dim(), 5);
  EXPECT_EQ(result->dangling_count, 31u);
  EXPECT_NEAR(result->utilization_percent, 100.0 * 32 / 63, 1e-9);
}

TEST(MaxSubcube, ResultContainsNoFault) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto result = find_max_fault_free_subcube(faults);
    ASSERT_TRUE(result.has_value());
    for (cube::NodeId u : result->subcube.members())
      EXPECT_FALSE(faults.is_faulty(u));
  }
}

TEST(MaxSubcube, IsActuallyMaximal) {
  // No fault-free subcube of higher dimension may exist.
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto faults = fault::random_faults(5, 3, rng);
    const auto result = find_max_fault_free_subcube(faults);
    ASSERT_TRUE(result.has_value());
    for (const auto& sc :
         cube::all_subcubes(5, result->subcube.dim() + 1))
      EXPECT_GT(faults.count_in(sc.mask, sc.value), 0u);
  }
}

TEST(MaxSubcube, AntipodalPairWastesHalfOfQ4) {
  // Antipodal faults hit both halves along every dimension: excluding both
  // needs two fixed bits, so only a Q_2 survives — while the proposed
  // partition keeps all 14 healthy nodes busy (mincut 1).
  const fault::FaultSet faults(4, {0b0000, 0b1111});
  const auto result = find_max_fault_free_subcube(faults);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->subcube.dim(), 2);
  EXPECT_EQ(result->dangling_count, 10u);
}

TEST(MaxSubcube, SpreadFaultsShrinkTheSubcube) {
  // Antipodal faults in Q_3: one fixed bit cannot exclude both, so the
  // best fault-free subcube is a single edge (Q_1).
  const fault::FaultSet faults(3, {0, 7});
  const auto result = find_max_fault_free_subcube(faults);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->subcube.dim(), 1);
}

TEST(MaxSubcube, AllNodesFaultyReturnsNullopt) {
  const fault::FaultSet faults(1, {0, 1});
  EXPECT_FALSE(find_max_fault_free_subcube(faults).has_value());
}

TEST(MaxSubcube, ProposedUtilizationAlwaysAtLeastBaseline) {
  // Table 2's claim, as an invariant over random scenarios.
  util::Rng rng(3);
  for (cube::Dim n = 3; n <= 6; ++n)
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t r =
          1 + rng.below(static_cast<std::uint64_t>(n - 1));
      const auto faults = fault::random_faults(n, r, rng);
      const auto mfs = find_max_fault_free_subcube(faults);
      ASSERT_TRUE(mfs.has_value());
      const auto plan = partition::Plan::build(faults);
      EXPECT_GE(plan.utilization_percent() + 1e-9,
                mfs->utilization_percent)
          << faults.to_string();
    }
}

TEST(MfsSorter, SortsCorrectly) {
  util::Rng rng(4);
  const auto keys = sort::gen_uniform(200, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto result =
      mfs_bitonic_sort(5, fault::FaultSet(5, {1, 30}), keys);
  EXPECT_EQ(result.sorted, expected);
  EXPECT_EQ(result.reconfiguration.subcube.dim(), 3);
}

TEST(MfsSorter, FaultFreeEqualsPlainBitonic) {
  util::Rng rng(5);
  const auto keys = sort::gen_uniform(160, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto result = mfs_bitonic_sort(4, fault::FaultSet(4), keys);
  EXPECT_EQ(result.sorted, expected);
  EXPECT_EQ(result.block_size, 10u);
}

TEST(MfsSorter, SmallerSubcubeMeansBiggerBlocks) {
  util::Rng rng(6);
  const auto keys = sort::gen_uniform(320, rng);
  const auto clean = mfs_bitonic_sort(5, fault::FaultSet(5), keys);
  const auto faulty = mfs_bitonic_sort(5, fault::FaultSet(5, {0, 31}), keys);
  EXPECT_EQ(clean.block_size, 10u);   // 320 / 32
  EXPECT_EQ(faulty.block_size, 40u);  // 320 / 8
  EXPECT_GT(faulty.report.makespan, clean.report.makespan);
}

TEST(MfsSorter, RandomScenariosStaySorted) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto keys = sort::gen_uniform(100, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(mfs_bitonic_sort(5, faults, keys).sorted, expected);
  }
}

}  // namespace
}  // namespace ftsort::baseline
