// Beyond the paper's r <= n-1 envelope: the remark at the end of §2.2 says
// the partition algorithm also handles r >= n faults as long as no healthy
// node is walled in. These tests exercise that regime, plus failure
// injection on the machine and the library's error paths.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

TEST(BeyondPaper, PartitionHandlesRGreaterThanN) {
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    // Q_5 with up to 8 faults (n-1 would be 4).
    const std::size_t r = 5 + rng.below(4);
    const auto faults = fault::random_faults_no_isolation(5, r, rng);
    const auto result = partition::find_cutting_set(faults);
    EXPECT_TRUE(partition::is_single_fault_structure(
        faults, result.cutting_set.front()));
    // Pigeonhole: 2^m subcubes must fit r single faults.
    EXPECT_GE(1u << result.mincut, r);
  }
}

TEST(BeyondPaper, SortWithRGreaterThanN) {
  util::Rng rng(2);
  const auto keys = sort::gen_uniform(300, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t r = 6 + rng.below(5);  // 6..10 faults on Q_6
    const auto faults = fault::random_faults_no_isolation(6, r, rng);
    const auto plan = partition::Plan::build(faults);
    if (plan.live_count() == 0) continue;  // degenerate; sorter rejects it
    core::FaultTolerantSorter sorter(6, faults);
    EXPECT_EQ(sorter.sort(keys).sorted, expected) << faults.to_string();
  }
}

TEST(BeyondPaper, QuarterOfTheMachineDead) {
  // 16 of 64 processors dead: a regime far outside the paper's analysis;
  // the algorithm must still sort (utilization degrades, correctness
  // must not).
  util::Rng rng(3);
  const auto keys = sort::gen_uniform(500, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int trial = 0; trial < 5; ++trial) {
    const auto faults = fault::random_faults_no_isolation(6, 16, rng);
    const auto plan = partition::Plan::build(faults);
    if (plan.live_count() == 0) continue;
    core::FaultTolerantSorter sorter(6, faults);
    EXPECT_EQ(sorter.sort(keys).sorted, expected);
  }
}

TEST(BeyondPaper, DanglingBoundCanExceedQuarterBeyondEnvelope) {
  // The N/4 dangling bound is only promised for r <= n-1; document (by
  // test) that beyond it the count can grow but never exceeds the healthy
  // population.
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults_no_isolation(5, 7, rng);
    const auto plan = partition::Plan::build(faults);
    EXPECT_LE(plan.dangling_count() + plan.live_count(),
              faults.healthy_count());
  }
}

TEST(FailureInjection, LostMessageDetectedAsDeadlock) {
  // Receiver waits for a tag the sender never uses: deadlock, reported
  // with the blocked node and channel.
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, /*tag=*/1, {42});
    } else {
      sim::Message m = co_await ctx.recv(0, /*tag=*/2);  // wrong tag
      (void)m;
    }
  };
  try {
    machine.run(program);
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 1"), std::string::npos);
    EXPECT_NE(what.find("tag=2"), std::string::npos);
  }
}

TEST(FailureInjection, UnconsumedMessageFailsTheRun) {
  // A protocol that finishes while mail is still queued violates the
  // machine's completeness postcondition.
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) ctx.send(1, 1, {1});
    co_return;  // node 1 never receives
  };
  EXPECT_THROW(machine.run(program), ContractViolation);
}

TEST(FailureInjection, WrongPayloadSizeCaughtByProtocolChecks) {
  // The half-exchange checks its phase sizes; a mismatched partner block
  // (protocol misuse) is rejected rather than silently mis-sorting.
  sim::Machine machine(1, fault::FaultSet(1));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    std::vector<sim::Key> block =
        ctx.id() == 0 ? std::vector<sim::Key>{1, 2, 3, 4}
                      : std::vector<sim::Key>{5, 6};  // wrong size
    block = co_await sort::exchange_merge_split(
        ctx, ctx.id() ^ 1u, 0, std::move(block),
        ctx.id() == 0 ? sort::SplitHalf::Lower : sort::SplitHalf::Upper,
        sort::ExchangeProtocol::HalfExchange);
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(ErrorPaths, SorterRejectsMismatchedDimension) {
  EXPECT_THROW(core::FaultTolerantSorter(4, fault::FaultSet(5, {1})),
               ContractViolation);
}

TEST(ErrorPaths, SorterRejectsDisconnectedLinkConfiguration) {
  // Cutting every link of healthy node 0 strands it.
  cube::LinkSet dead(2, {cube::Link{0, 0}, cube::Link{0, 1}});
  EXPECT_THROW(
      core::FaultTolerantSorter(2, fault::FaultSet(2), dead),
      ContractViolation);
}

TEST(ErrorPaths, MachineRejectsReentrantRun) {
  sim::Machine machine(0, fault::FaultSet(0));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    (void)ctx;
    co_return;
  };
  // A run inside a run is impossible via the public API (run is
  // synchronous), so just check the happy path leaves it reusable.
  machine.run(program);
  machine.run(program);
  SUCCEED();
}

TEST(BeyondPaper, VeryLargeKeyCountsStaySorted) {
  util::Rng rng(5);
  const auto faults = fault::random_faults(6, 3, rng);
  const auto keys = sort::gen_uniform(1'000'000, rng);
  core::FaultTolerantSorter sorter(6, faults);
  const auto outcome = sorter.sort(keys);
  EXPECT_EQ(outcome.sorted.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(outcome.sorted.begin(),
                             outcome.sorted.end()));
}

TEST(HostIo, SortsAndRaisesMakespan) {
  util::Rng rng(7);
  const auto faults = fault::random_faults(5, 2, rng);
  const auto keys = sort::gen_uniform(5'000, rng);
  core::SortConfig plain;
  core::SortConfig hosted;
  hosted.charge_host_io = true;
  const auto a = core::FaultTolerantSorter(5, faults, plain).sort(keys);
  const auto b = core::FaultTolerantSorter(5, faults, hosted).sort(keys);
  EXPECT_EQ(a.sorted, b.sorted);
  // The host link serialises all M keys twice (in and out).
  const double host_link_floor =
      2.0 * 5'000 * core::SortConfig{}.cost.t_transfer;
  EXPECT_GE(b.report.makespan, a.report.makespan + host_link_floor * 0.9);
}

TEST(HostIo, WorksWithFaultyLowAddresses) {
  // Entry selection must skip faulty/dangling low addresses.
  util::Rng rng(8);
  const auto keys = sort::gen_uniform(500, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  core::SortConfig hosted;
  hosted.charge_host_io = true;
  const fault::FaultSet faults(4, {0, 1});
  const auto outcome =
      core::FaultTolerantSorter(4, faults, hosted).sort(keys);
  EXPECT_EQ(outcome.sorted, expected);
}

TEST(HostIo, ThreadedExecutorAgrees) {
  util::Rng rng(9);
  const auto faults = fault::random_faults(4, 2, rng);
  const auto keys = sort::gen_uniform(800, rng);
  core::SortConfig hosted;
  hosted.charge_host_io = true;
  core::SortConfig hosted_threaded = hosted;
  hosted_threaded.executor = core::Executor::Threaded;
  const auto a = core::FaultTolerantSorter(4, faults, hosted).sort(keys);
  const auto b =
      core::FaultTolerantSorter(4, faults, hosted_threaded).sort(keys);
  EXPECT_EQ(a.sorted, b.sorted);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
}

TEST(BeyondPaper, SingleNodeCube) {
  // Q_0: one processor, no faults possible, pure local sort.
  util::Rng rng(6);
  const auto keys = sort::gen_uniform(100, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  core::FaultTolerantSorter sorter(0, fault::FaultSet(0));
  const auto outcome = sorter.sort(keys);
  EXPECT_EQ(outcome.sorted, expected);
  EXPECT_EQ(outcome.report.messages, 0u);
}

}  // namespace
}  // namespace ftsort
