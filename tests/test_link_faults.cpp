// Tests for faulty links: the LinkSet container, link-avoiding routing,
// the vertex-cover reduction, and end-to-end sorting with dead wires.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ft_sorter.hpp"
#include "fault/link_fault.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

TEST(LinkSet, CanonicalisationAndMembership) {
  const cube::Link link = cube::Link::between(0b101, 0b111);
  EXPECT_EQ(link.lo, 0b101u);
  EXPECT_EQ(link.dim, 1);
  EXPECT_EQ(link.hi(), 0b111u);

  cube::LinkSet set(3, {link});
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.contains(0b101, 1));
  EXPECT_TRUE(set.contains(0b111, 1));  // either endpoint
  EXPECT_FALSE(set.contains(0b101, 0));
}

TEST(LinkSet, BetweenRejectsNonNeighbors) {
  EXPECT_THROW(cube::Link::between(0, 3), ContractViolation);
}

TEST(LinkSet, AddIsIdempotent) {
  cube::LinkSet set(3);
  set.add(cube::Link{0, 0});
  set.add(cube::Link{0, 0});
  EXPECT_EQ(set.count(), 1u);
}

TEST(LinkSet, LinksRoundTrip) {
  util::Rng rng(1);
  const auto set = fault::random_link_faults(4, 7, rng);
  EXPECT_EQ(set.count(), 7u);
  cube::LinkSet rebuilt(4, set.links());
  EXPECT_EQ(rebuilt.count(), 7u);
  for (const auto& link : set.links()) EXPECT_TRUE(rebuilt.contains(link));
}

TEST(LinkRouting, BfsAvoidsDeadLinks) {
  // Q_2: kill link 00-01; path 00 -> 01 must go the long way (3 hops).
  cube::LinkSet dead(2, {cube::Link::between(0b00, 0b01)});
  const std::vector<bool> healthy(4, false);
  const auto path = cube::bfs_path(2, 0b00, 0b01, healthy, &dead);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);  // 00 -> 10 -> 11 -> 01
}

TEST(LinkRouting, AdaptiveAvoidsDeadLinks) {
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto dead =
        fault::random_link_faults_connected(4, 4, fault::FaultSet(4), rng);
    const std::vector<bool> healthy(16, false);
    for (cube::NodeId a = 0; a < 16; ++a)
      for (cube::NodeId b = 0; b < 16; ++b) {
        const auto path = cube::adaptive_path(4, a, b, healthy, &dead);
        ASSERT_TRUE(path.has_value());
        for (std::size_t i = 1; i < path->size(); ++i) {
          const auto link =
              cube::Link::between((*path)[i - 1], (*path)[i]);
          EXPECT_FALSE(dead.contains(link));
        }
      }
  }
}

TEST(LinkRouting, RouterChargesDetourUnderBothModels) {
  cube::LinkSet dead(3, {cube::Link::between(0b000, 0b001)});
  for (bool avoid_nodes : {false, true}) {
    const cube::Router router(3, std::vector<bool>(8, false), avoid_nodes,
                              dead);
    EXPECT_GE(router.hops(0b000, 0b001), 3);
  }
}

TEST(LinkCover, CoversEveryLink) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto dead = fault::random_link_faults(5, 6, rng);
    const auto cover = fault::link_cover(dead, fault::FaultSet(5));
    for (const auto& link : dead.links()) {
      const bool covered =
          std::find(cover.begin(), cover.end(), link.lo) != cover.end() ||
          std::find(cover.begin(), cover.end(), link.hi()) != cover.end();
      EXPECT_TRUE(covered);
    }
    // Greedy cover of k links never needs more than k nodes.
    EXPECT_LE(cover.size(), dead.count());
  }
}

TEST(LinkCover, StarOfLinksNeedsOneNode) {
  // All faulty links share endpoint 0: cover = {0}.
  cube::LinkSet dead(4, {cube::Link{0, 0}, cube::Link{0, 1},
                         cube::Link{0, 2}, cube::Link{0, 3}});
  const auto cover = fault::link_cover(dead, fault::FaultSet(4));
  EXPECT_EQ(cover, (std::vector<cube::NodeId>{0}));
}

TEST(LinkCover, FaultyEndpointsCoverForFree) {
  cube::LinkSet dead(3, {cube::Link{0, 0}});
  const auto cover = fault::link_cover(dead, fault::FaultSet(3, {1}));
  EXPECT_TRUE(cover.empty());  // endpoint 1 is already faulty
  const auto effective =
      fault::effective_node_faults(fault::FaultSet(3, {1}), dead);
  EXPECT_EQ(effective.addresses(), (std::vector<cube::NodeId>{1}));
}

TEST(LinkConnectivity, DetectsDisconnection) {
  // Cut all 2 links of node 0 in Q_2.
  cube::LinkSet dead(2, {cube::Link{0, 0}, cube::Link{0, 1}});
  EXPECT_FALSE(fault::healthy_subgraph_connected(fault::FaultSet(2), dead));
  // But if node 0 is itself faulty, the rest stays connected.
  EXPECT_TRUE(
      fault::healthy_subgraph_connected(fault::FaultSet(2, {0}), dead));
}

TEST(LinkFaultSort, SortsWithDeadLinksOnly) {
  util::Rng rng(4);
  const auto keys = sort::gen_uniform(200, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int trial = 0; trial < 10; ++trial) {
    const auto dead =
        fault::random_link_faults_connected(5, 3, fault::FaultSet(5), rng);
    core::FaultTolerantSorter sorter(5, fault::FaultSet(5), dead);
    const auto outcome = sorter.sort(keys);
    EXPECT_EQ(outcome.sorted, expected);
    // The cover sacrifices at most one healthy node per dead link.
    EXPECT_GE(sorter.plan().live_count(), 32u - 2 * 3 - 1);
  }
}

TEST(LinkFaultSort, SortsWithMixedNodeAndLinkFaults) {
  util::Rng rng(5);
  const auto keys = sort::gen_uniform(300, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int trial = 0; trial < 10; ++trial) {
    const auto faults = fault::random_faults(6, 2, rng);
    const auto dead = fault::random_link_faults_connected(6, 2, faults, rng);
    core::FaultTolerantSorter sorter(6, faults, dead);
    EXPECT_EQ(sorter.sort(keys).sorted, expected);
  }
}

TEST(LinkFaultSort, TotalModelWithLinksStillSorts) {
  util::Rng rng(6);
  const auto keys = sort::gen_uniform(150, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto faults = fault::random_faults(5, 2, rng);
  const auto dead = fault::random_link_faults_connected(5, 2, faults, rng);
  core::SortConfig config;
  config.model = fault::FaultModel::Total;
  core::FaultTolerantSorter sorter(5, faults, dead, config);
  EXPECT_EQ(sorter.sort(keys).sorted, expected);
}

TEST(LinkFaultSort, DeadLinkRaisesCostWhenOnRoute) {
  // Fault-free Q_4, one dead link: same plan as clean only if the cover
  // node idles; time must be >= the fully clean run.
  util::Rng rng(7);
  const auto keys = sort::gen_uniform(2'000, rng);
  const auto clean =
      core::FaultTolerantSorter(4, fault::FaultSet(4)).sort(keys);
  cube::LinkSet dead(4, {cube::Link{0, 0}});
  const auto degraded =
      core::FaultTolerantSorter(4, fault::FaultSet(4), dead).sort(keys);
  EXPECT_EQ(degraded.sorted, clean.sorted);
  EXPECT_GT(degraded.report.makespan, clean.report.makespan);
}

}  // namespace
}  // namespace ftsort
