// Tests for the SPMD block bitonic sort on the simulated machine:
// fault-free and dead-node cubes, both directions, both protocols.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sort/distribution.hpp"
#include "sort/single_fault.hpp"
#include "sort/spmd_bitonic.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

struct RunResult {
  std::vector<std::vector<Key>> blocks;  // by logical address
  sim::RunReport report;
};

/// Drive block_bitonic_sort over an identity or reindexed cube.
RunResult run_sort(cube::Dim s, bool dead0, std::size_t block_size,
                   bool ascending, ExchangeProtocol protocol,
                   std::uint64_t seed) {
  LogicalCube lc = LogicalCube::identity(s);
  lc.dead0 = dead0;
  util::Rng rng(seed);

  std::vector<std::vector<Key>> blocks(lc.size());
  for (cube::NodeId u = 0; u < lc.size(); ++u) {
    if (lc.is_dead(u)) continue;
    blocks[u] = gen_uniform(block_size, rng);
    std::sort(blocks[u].begin(), blocks[u].end());
  }

  fault::FaultSet faults =
      dead0 ? fault::FaultSet(s, {0}) : fault::FaultSet(s);
  sim::Machine machine(s, faults);
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    co_await block_bitonic_sort(ctx, lc, ctx.id(), blocks[ctx.id()],
                                ascending, protocol, 0);
  };
  RunResult result;
  result.report = machine.run(program);
  result.blocks = std::move(blocks);
  return result;
}

std::vector<Key> flatten(const std::vector<std::vector<Key>>& blocks,
                         bool reverse_blocks) {
  std::vector<Key> out;
  if (!reverse_blocks) {
    for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
  } else {
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it)
      out.insert(out.end(), it->begin(), it->end());
  }
  return out;
}

TEST(BlockBitonic, SortsAscendingFaultFree) {
  for (cube::Dim s = 0; s <= 5; ++s) {
    const auto result =
        run_sort(s, false, 4, true, ExchangeProtocol::HalfExchange, static_cast<std::uint64_t>(s) + 1);
    EXPECT_TRUE(is_globally_ascending(result.blocks)) << "s=" << s;
  }
}

TEST(BlockBitonic, SortsDescendingFaultFree) {
  for (cube::Dim s = 1; s <= 5; ++s) {
    const auto result =
        run_sort(s, false, 4, false, ExchangeProtocol::HalfExchange,
                 static_cast<std::uint64_t>(s) + 10);
    // Descending by blocks: reversing the block order gives an ascending
    // sequence (blocks themselves stay internally ascending).
    EXPECT_TRUE(is_ascending(flatten(result.blocks, true))) << "s=" << s;
  }
}

TEST(BlockBitonic, SortsWithDeadNodeAscending) {
  for (cube::Dim s = 1; s <= 5; ++s) {
    const auto result =
        run_sort(s, true, 3, true, ExchangeProtocol::HalfExchange, static_cast<std::uint64_t>(s) + 20);
    EXPECT_TRUE(result.blocks[0].empty());
    EXPECT_TRUE(is_globally_ascending(result.blocks)) << "s=" << s;
  }
}

TEST(BlockBitonic, SortsWithDeadNodeDescending) {
  // The §2.1 skip rule must also hold for mirrored (descending) sorts —
  // the intra-subcube re-sorts of Step 8 depend on it.
  for (cube::Dim s = 1; s <= 5; ++s) {
    const auto result =
        run_sort(s, true, 3, false, ExchangeProtocol::HalfExchange,
                 static_cast<std::uint64_t>(s) + 30);
    EXPECT_TRUE(result.blocks[0].empty());
    EXPECT_TRUE(is_ascending(flatten(result.blocks, true))) << "s=" << s;
  }
}

TEST(BlockBitonic, ProtocolsProduceIdenticalBlocks) {
  for (bool dead0 : {false, true}) {
    for (bool ascending : {true, false}) {
      const auto half = run_sort(4, dead0, 5, ascending,
                                 ExchangeProtocol::HalfExchange, 77);
      const auto full = run_sort(4, dead0, 5, ascending,
                                 ExchangeProtocol::FullExchange, 77);
      EXPECT_EQ(half.blocks, full.blocks)
          << "dead0=" << dead0 << " asc=" << ascending;
    }
  }
}

TEST(BlockBitonic, ProtocolTrafficAndMessageAccounting) {
  // Both protocols move 2b keys per node pair per step (each key crosses
  // the wire exactly once in half-exchange: half out, losers back); the
  // half-exchange pays twice the message count (two phases), which only
  // matters under a per-message start-up cost.
  const auto half =
      run_sort(4, false, 64, true, ExchangeProtocol::HalfExchange, 5);
  const auto full =
      run_sort(4, false, 64, true, ExchangeProtocol::FullExchange, 5);
  EXPECT_EQ(half.report.keys_sent, full.report.keys_sent);
  EXPECT_EQ(half.report.messages, 2 * full.report.messages);
}

TEST(BlockBitonic, PreservesKeyMultiset) {
  util::Rng rng(6);
  LogicalCube lc = LogicalCube::identity(3);
  std::vector<std::vector<Key>> blocks(8);
  std::vector<Key> all;
  for (auto& b : blocks) {
    b = gen_few_distinct(4, 3, rng);
    std::sort(b.begin(), b.end());
    all.insert(all.end(), b.begin(), b.end());
  }
  sim::Machine machine(3, fault::FaultSet(3));
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    co_await block_bitonic_sort(ctx, lc, ctx.id(), blocks[ctx.id()], true,
                                ExchangeProtocol::HalfExchange, 0);
  };
  machine.run(program);
  std::vector<Key> after;
  for (const auto& b : blocks)
    after.insert(after.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(after, all);  // already sorted ascending == sorted multiset
}

TEST(BlockBitonic, SingleBlockCubeIsNoop) {
  // s = 0: one node, nothing to exchange.
  const auto result =
      run_sort(0, false, 4, true, ExchangeProtocol::HalfExchange, 9);
  EXPECT_EQ(result.report.messages, 0u);
  EXPECT_TRUE(is_ascending(result.blocks[0]));
}

TEST(BlockBitonic, DeterministicAcrossRuns) {
  const auto a = run_sort(4, true, 6, true,
                          ExchangeProtocol::HalfExchange, 123);
  const auto b = run_sort(4, true, 6, true,
                          ExchangeProtocol::HalfExchange, 123);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.messages, b.report.messages);
}

TEST(BlockBitonic, TagSpanFormula) {
  EXPECT_EQ(bitonic_tag_span(0), 0u);
  EXPECT_EQ(bitonic_tag_span(1), 2u);
  EXPECT_EQ(bitonic_tag_span(3), 12u);
  EXPECT_EQ(bitonic_tag_span(6), 42u);
  // Merge: two tags per substep plus the reversal swap.
  EXPECT_EQ(bitonic_merge_tag_span(0), 1u);
  EXPECT_EQ(bitonic_merge_tag_span(3), 7u);
}

TEST(SingleFaultSort, EveryFaultLocationQ4) {
  util::Rng rng(11);
  const auto keys = gen_uniform(93, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (cube::NodeId f = 0; f < 16; ++f) {
    const auto result =
        single_fault_bitonic_sort(4, fault::FaultSet(4, {f}), keys);
    EXPECT_EQ(result.sorted, expected) << "fault at " << f;
  }
}

TEST(SingleFaultSort, FaultFreeMatches) {
  util::Rng rng(12);
  const auto keys = gen_uniform(128, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto result = single_fault_bitonic_sort(4, fault::FaultSet(4), keys);
  EXPECT_EQ(result.sorted, expected);
  EXPECT_EQ(result.block_size, 8u);
}

TEST(SingleFaultSort, FaultyCubeUsesLargerBlocks) {
  util::Rng rng(13);
  const auto keys = gen_uniform(128, rng);
  const auto faulty =
      single_fault_bitonic_sort(4, fault::FaultSet(4, {3}), keys);
  EXPECT_EQ(faulty.block_size, 9u);  // ceil(128 / 15)
}

TEST(SingleFaultSort, TotalFaultModelCostsAtLeastPartial) {
  util::Rng rng(14);
  const auto keys = gen_uniform(200, rng);
  const fault::FaultSet faults(4, {5});
  const auto partial = single_fault_bitonic_sort(
      4, faults, keys, fault::FaultModel::Partial);
  const auto total = single_fault_bitonic_sort(
      4, faults, keys, fault::FaultModel::Total);
  EXPECT_EQ(partial.sorted, total.sorted);
  EXPECT_GE(total.report.makespan, partial.report.makespan);
}

TEST(SingleFaultSort, RejectsTwoFaults) {
  util::Rng rng(15);
  const auto keys = gen_uniform(16, rng);
  EXPECT_THROW(
      single_fault_bitonic_sort(3, fault::FaultSet(3, {1, 2}), keys),
      ContractViolation);
}

TEST(SingleFaultSort, EmptyInput) {
  const std::vector<Key> none;
  const auto result =
      single_fault_bitonic_sort(3, fault::FaultSet(3, {0}), none);
  EXPECT_TRUE(result.sorted.empty());
}

TEST(SingleFaultSort, FewerKeysThanNodes) {
  util::Rng rng(16);
  const auto keys = gen_uniform(5, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto result =
      single_fault_bitonic_sort(4, fault::FaultSet(4, {7}), keys);
  EXPECT_EQ(result.sorted, expected);
  EXPECT_EQ(result.block_size, 1u);
}

}  // namespace
}  // namespace ftsort::sort
