// Unit tests for the sequential bitonic sorting network.
#include <gtest/gtest.h>

#include <algorithm>

#include "sort/bitonic_network.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

TEST(BitonicSchedule, SizeMatchesFormula) {
  // n/2 * k(k+1)/2 comparators for 2^k keys.
  for (int k = 0; k <= 6; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const std::size_t expected =
        n / 2 * static_cast<std::size_t>(k * (k + 1) / 2);
    EXPECT_EQ(bitonic_schedule(k).size(), expected) << "k=" << k;
  }
}

TEST(BitonicSchedule, PairsDifferInOneBit) {
  for (const auto& ce : bitonic_schedule(4)) {
    EXPECT_LT(ce.lo, ce.hi);
    EXPECT_EQ(std::popcount(ce.lo ^ ce.hi), 1);
  }
}

TEST(BitonicSchedule, ZeroOnePrinciple) {
  // A comparator network sorts all inputs iff it sorts all 0/1 inputs;
  // verify exhaustively for 8 and 16 keys.
  for (int k : {3, 4}) {
    const auto schedule = bitonic_schedule(k);
    const std::size_t n = std::size_t{1} << k;
    for (std::uint32_t pattern = 0; pattern < (1u << n); ++pattern) {
      std::vector<Key> data(n);
      for (std::size_t i = 0; i < n; ++i)
        data[i] = (pattern >> i) & 1u;
      std::uint64_t comparisons = 0;
      apply_schedule(data, schedule, comparisons);
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end()))
          << "k=" << k << " pattern=" << pattern;
    }
  }
}

TEST(BitonicSortSequential, SortsRandomInputs) {
  util::Rng rng(1);
  for (int k = 0; k <= 8; ++k) {
    auto keys = gen_uniform(std::size_t{1} << k, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    std::uint64_t comparisons = 0;
    bitonic_sort_sequential(keys, comparisons);
    EXPECT_EQ(keys, expected);
  }
}

TEST(BitonicSortSequential, ComparisonCountIsExact) {
  // Oblivious network: comparison count is data-independent.
  util::Rng rng(2);
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
  auto a = gen_uniform(64, rng);
  auto b = gen_reverse(64);
  bitonic_sort_sequential(a, c1);
  bitonic_sort_sequential(b, c2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1, 64u / 2 * (6u * 7u / 2));
}

TEST(BitonicSortSequential, RejectsNonPowerOfTwo) {
  std::vector<Key> bad{1, 2, 3};
  std::uint64_t comparisons = 0;
  EXPECT_THROW(bitonic_sort_sequential(bad, comparisons),
               ContractViolation);
}

TEST(ApplySchedule, RejectsOutOfRangeComparator) {
  std::vector<Key> data{1, 2};
  const std::vector<CompareExchange> bogus{{0, 5, true}};
  std::uint64_t comparisons = 0;
  EXPECT_THROW(apply_schedule(data, bogus, comparisons),
               ContractViolation);
}

TEST(ApplySchedule, DescendingComparatorSwapsCorrectly) {
  std::vector<Key> data{1, 9};
  const std::vector<CompareExchange> one{{0, 1, false}};
  std::uint64_t comparisons = 0;
  apply_schedule(data, one, comparisons);
  EXPECT_EQ(data, (std::vector<Key>{9, 1}));
  EXPECT_EQ(comparisons, 1u);
}

}  // namespace
}  // namespace ftsort::sort
