// Tests for the payload buffer pool, including a cross-thread stress test
// that mirrors the MIMD executor's usage: the owning node checks buffers
// out, receivers running on other threads return them. Run under
// ThreadSanitizer via the `tsan` preset (the test filter matches on the
// suite name).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/buffer_pool.hpp"

namespace ftsort::sim {
namespace {

TEST(BufferPool, RecyclesStorageAndCountsAllocations) {
  BufferPool pool;
  std::vector<Key> a = pool.checkout(64);
  EXPECT_GE(a.capacity(), 64u);
  const Key* storage = a.data();
  a.assign(64, 7);
  pool.give_back(std::move(a));
  // The next checkout of no greater size must reuse the same storage.
  std::vector<Key> b = pool.checkout(32);
  EXPECT_EQ(b.data(), storage);
  EXPECT_TRUE(b.empty());  // contents are discarded on return
  pool.give_back(std::move(b));

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.checkouts, 2u);
  EXPECT_EQ(s.fresh, 1u);  // only the first checkout touched the heap
  EXPECT_EQ(s.grows, 0u);
  EXPECT_EQ(s.returns, 2u);
  EXPECT_EQ(s.heap_allocations(), 1u);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BufferPool, GrowingARecycledBufferIsCounted) {
  BufferPool pool;
  pool.give_back(pool.checkout(8));
  std::vector<Key> big = pool.checkout(4096);
  EXPECT_GE(big.capacity(), 4096u);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.fresh, 1u);
  EXPECT_EQ(s.grows, 1u);
}

TEST(BufferPool, PooledBufferReturnsOnDestructionAndReleaseInto) {
  BufferPool pool;
  {
    PooledBuffer handle(&pool, pool.checkout(16));
    handle.vec().assign({1, 2, 3});
    EXPECT_EQ(handle.size(), 3u);
  }  // destruction returns the storage
  EXPECT_EQ(pool.free_count(), 1u);

  PooledBuffer handle(&pool, pool.checkout(16));
  handle.vec().assign({4, 5});
  std::vector<Key> mine{9, 9, 9};
  handle.release_into(mine);
  EXPECT_EQ(mine, (std::vector<Key>{4, 5}));
  // My old storage went back in the payload's place.
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.stats().returns, 2u);
}

TEST(BufferPool, MoveTransfersOwnershipExactlyOnce) {
  BufferPool pool;
  PooledBuffer a(&pool, pool.checkout(8));
  PooledBuffer b(std::move(a));
  a.reset();  // moved-from handle must be inert
  EXPECT_EQ(pool.free_count(), 0u);
  b.reset();
  EXPECT_EQ(pool.free_count(), 1u);
  b.reset();  // double reset is a no-op
  EXPECT_EQ(pool.stats().returns, 1u);
}

// Cross-thread stress: producer threads check buffers out of per-producer
// pools and hand them to consumers through a shared mailbox; consumers
// return them from a different thread, exactly like the MIMD executor's
// receive path. TSan must see no races; the ledger must balance.
TEST(BufferPoolStress, ConcurrentCheckoutAndCrossThreadReturn) {
  constexpr int kProducers = 3;
  constexpr int kMessagesPerProducer = 800;
  std::vector<BufferPool> pools(kProducers);

  std::mutex mailbox_mutex;
  std::deque<PooledBuffer> mailbox;
  std::atomic<int> produced{0};

  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};

  const auto producer = [&](int id) {
    for (int i = 0; i < kMessagesPerProducer; ++i) {
      const std::size_t len = 1 + static_cast<std::size_t>(i % 13);
      std::vector<Key> storage = pools[static_cast<std::size_t>(id)].checkout(len);
      storage.assign(len, static_cast<Key>(id + 1));
      PooledBuffer handle(&pools[static_cast<std::size_t>(id)],
                          std::move(storage));
      {
        const std::lock_guard<std::mutex> guard(mailbox_mutex);
        mailbox.push_back(std::move(handle));
      }
      produced.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto consumer = [&] {
    std::vector<Key> local;  // exercises release_into's swap path
    for (;;) {
      PooledBuffer handle;
      bool got = false;
      {
        const std::lock_guard<std::mutex> guard(mailbox_mutex);
        if (!mailbox.empty()) {
          handle = std::move(mailbox.front());
          mailbox.pop_front();
          got = true;
        }
      }
      if (!got) {
        if (produced.load(std::memory_order_relaxed) ==
            kProducers * kMessagesPerProducer) {
          const std::lock_guard<std::mutex> guard(mailbox_mutex);
          if (mailbox.empty()) return;
        }
        std::this_thread::yield();
        continue;
      }
      handle.release_into(local);
      consumed_sum.fetch_add(
          std::accumulate(local.begin(), local.end(), std::int64_t{0}),
          std::memory_order_relaxed);
      consumed_count.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int id = 0; id < kProducers; ++id) threads.emplace_back(producer, id);
  threads.emplace_back(consumer);
  threads.emplace_back(consumer);
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed_count.load(),
            static_cast<std::uint64_t>(kProducers * kMessagesPerProducer));
  // Every key carries its producer's id + 1; check the total survived.
  std::int64_t expected = 0;
  for (int id = 0; id < kProducers; ++id)
    for (int i = 0; i < kMessagesPerProducer; ++i)
      expected += (1 + i % 13) * (id + 1);
  EXPECT_EQ(consumed_sum.load(), expected);

  // The ledger balances: every checkout was returned (consumers' local
  // scratch vectors went back through release_into in a payload's place).
  PoolStats total;
  std::size_t free_total = 0;
  for (const BufferPool& pool : pools) {
    total += pool.stats();
    free_total += pool.free_count();
  }
  EXPECT_EQ(total.checkouts,
            static_cast<std::uint64_t>(kProducers * kMessagesPerProducer));
  EXPECT_EQ(total.returns, total.checkouts);
  // Free-list size = returns minus recycled checkouts = fresh allocations.
  EXPECT_EQ(free_total, total.fresh);
}

}  // namespace
}  // namespace ftsort::sim
