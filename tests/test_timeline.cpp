// Sim-time sampler (sim::Timeline) and the recovery-latency
// decomposition (RunReport::recovery_latency).
//
// Both are logical-clock artifacts: every series is bucketed by
// deterministic event timestamps, never host scheduling, so snapshots
// must be identical across executors, and enabling either must charge
// zero simulated time. The suites all start with "Timeline" so the tsan
// preset's name filter picks them up.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/ft_sorter.hpp"
#include "core/outcome.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sim/phase.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// The pinned fig7 flagship (fault-free path) and the pinned recovery
// scenario (node 6 dies mid-sort), as used across the observability
// suites — same seeds, so golden values stay comparable.

core::SortOutcome run_fig7(core::Executor exec, bool timeline,
                           double tick = 1000.0,
                           std::size_t trace_capacity = 0) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_link_stats = true;
  cfg.trace_capacity = trace_capacity;
  cfg.record_timeline = timeline;
  cfg.timeline_tick = tick;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

core::SortOutcome run_recovery(core::Executor exec, bool timeline = true) {
  util::Rng rng(1703);
  const fault::FaultSet faults = fault::random_faults(3, 1, rng);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.executor = exec;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_timeline = timeline;
  const core::FaultTolerantSorter sorter(3, faults, cfg);
  return sorter.sort(keys);
}

// ---------------------------------------------------------------------------
// Sampler basics: off by default, free when on, deterministic across
// executors.

TEST(TimelineSampler, DisabledByDefaultAndChargesNoSimTime) {
  const core::SortOutcome off = run_fig7(core::Executor::Sequential, false);
  EXPECT_FALSE(off.report.timeline.enabled);
  EXPECT_TRUE(off.report.timeline.empty());

  const core::SortOutcome on = run_fig7(core::Executor::Sequential, true);
  EXPECT_TRUE(on.report.timeline.enabled);
  EXPECT_FALSE(on.report.timeline.empty());
  // Sampling is observation only: every logical outcome is untouched.
  EXPECT_DOUBLE_EQ(off.report.makespan, on.report.makespan);
  EXPECT_EQ(off.report.comparisons, on.report.comparisons);
  EXPECT_EQ(off.report.messages, on.report.messages);
  EXPECT_EQ(off.report.key_hops, on.report.key_hops);
  EXPECT_TRUE(off.report.metrics == on.report.metrics);
  EXPECT_EQ(off.sorted, on.sorted);
}

TEST(TimelineSampler, ExecutorsProduceIdenticalSnapshots) {
  const core::SortOutcome seq = run_fig7(core::Executor::Sequential, true);
  const core::SortOutcome thr = run_fig7(core::Executor::Threaded, true);
  ASSERT_TRUE(seq.report.timeline.enabled);
  EXPECT_TRUE(seq.report.timeline == thr.report.timeline);
  EXPECT_GT(seq.report.timeline.ticks, 0u);
  EXPECT_EQ(seq.report.timeline.num_nodes, 64u);
  EXPECT_EQ(seq.report.timeline.dim, 6);
}

TEST(TimelineSampler, SeriesConserveAndPhaseRowsAreWellFormed) {
  const core::SortOutcome out = run_fig7(core::Executor::Sequential, true);
  const sim::TimelineSnapshot& tl = out.report.timeline;
  ASSERT_GT(tl.ticks, 0u);
  EXPECT_EQ(tl.dropped, 0u);

  // Nothing is in flight after the run: every enqueue was dequeued,
  // every checked-out payload buffer returned, every key landed.
  const std::size_t last = tl.ticks - 1;
  EXPECT_EQ(tl.total_queue_depth(last), 0);
  EXPECT_EQ(tl.total_pool_in_use(last), 0);
  for (const auto& dim_row : tl.keys_in_flight) {
    ASSERT_EQ(dim_row.size(), tl.ticks);
    EXPECT_EQ(dim_row.back(), 0);
  }
  // Depths are counts: never negative at any tick on any node.
  std::int64_t peak = 0;
  for (std::size_t t = 0; t < tl.ticks; ++t) {
    const std::int64_t q = tl.total_queue_depth(t);
    EXPECT_GE(q, 0) << "tick " << t;
    EXPECT_GE(tl.total_pool_in_use(t), 0) << "tick " << t;
    peak = std::max(peak, q);
  }
  EXPECT_GT(peak, 0);  // the sort did communicate

  // Phase rows carry either a real phase or the idle filler.
  ASSERT_EQ(tl.phase.size(), tl.num_nodes);
  for (const auto& row : tl.phase) {
    ASSERT_EQ(row.size(), tl.ticks);
    for (const std::uint8_t p : row)
      EXPECT_TRUE(p == sim::TimelineSnapshot::kIdle ||
                  p < sim::kPhaseCount);
  }
}

TEST(TimelineSampler, TickCapCountsDropsInsteadOfGrowing) {
  // A pathologically fine tick overflows the 4096-tick budget; the
  // sampler must saturate and count, never allocate unboundedly or
  // perturb the run.
  const core::SortOutcome out =
      run_fig7(core::Executor::Sequential, true, /*tick=*/0.25);
  const sim::TimelineSnapshot& tl = out.report.timeline;
  EXPECT_GT(tl.dropped, 0u);
  EXPECT_LE(tl.ticks, sim::kTimelineMaxTicks);
  const core::SortOutcome plain = run_fig7(core::Executor::Sequential, false);
  EXPECT_DOUBLE_EQ(out.report.makespan, plain.report.makespan);
}

// ---------------------------------------------------------------------------
// Exports: the metrics-JSON timeline block and the Perfetto counter
// tracks, including how the sampler interacts with ring eviction.

TEST(TimelineExport, MetricsJsonCarriesTimelineBlock) {
  const core::SortOutcome out = run_fig7(core::Executor::Sequential, true);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"timeline\": {\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": ["), std::string::npos);
  EXPECT_NE(json.find("\"phase_mix\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"keys_in_flight\""), std::string::npos);
  // No recovery in this run: the decomposition stays a stub.
  EXPECT_NE(json.find("\"recovery_latency\": {\"enabled\": false}"),
            std::string::npos);
}

TEST(TimelineExport, ValidatorAcceptsTimelineCounterTracks) {
  const core::SortOutcome out = run_fig7(core::Executor::Sequential, true);
  sim::ChromeTraceOptions opts;
  opts.cost = &out.report.cost;
  opts.timeline = &out.report.timeline;
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 64, opts);
  const std::string json = os.str();
  std::string error;
  EXPECT_TRUE(sim::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("timeline_queue_depth"), std::string::npos);
  EXPECT_NE(json.find("timeline_pool_in_use"), std::string::npos);
  EXPECT_NE(json.find("timeline_keys_in_flight"), std::string::npos);
}

TEST(TimelineExport, SamplerSurvivesFlightRecorderEviction) {
  // A tiny ring evicts most trace events; the sampler keeps its own
  // storage, so the timeline must come out identical to the
  // full-capacity run's, alongside a nonzero trace_dropped count.
  const core::SortOutcome full = run_fig7(core::Executor::Sequential, true);
  const core::SortOutcome ring =
      run_fig7(core::Executor::Sequential, true, 1000.0,
               /*trace_capacity=*/64);
  EXPECT_EQ(full.report.trace_dropped, 0u);
  EXPECT_GT(ring.report.trace_dropped, 0u);
  EXPECT_TRUE(full.report.timeline == ring.report.timeline);

  // The timeline counter tracks stand alone: with every span evicted,
  // an export of just the sampler series still validates.
  sim::ChromeTraceOptions opts;
  opts.trace_dropped = ring.report.trace_dropped;
  opts.timeline = &ring.report.timeline;
  std::ostringstream os;
  sim::write_chrome_trace(os, {}, 64, opts);
  std::string error;
  EXPECT_TRUE(sim::validate_chrome_trace(os.str(), &error)) << error;
}

// ---------------------------------------------------------------------------
// Recovery-latency decomposition: the stages telescope exactly, agree
// with the detect watermark, and are executor-identical.

TEST(TimelineRecoveryLatency, StagesTelescopeExactlyToTheMakespan) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    const core::SortOutcome out = run_recovery(exec);
    const sim::RecoveryLatency& rl = out.report.recovery_latency;
    ASSERT_TRUE(rl.enabled);
    ASSERT_FALSE(rl.episodes.empty());

    // Episode 0 is the injected kill of node 6 at t=2000.
    EXPECT_EQ(rl.episodes.front().attempt, 0u);
    ASSERT_FALSE(rl.episodes.front().dead.empty());
    EXPECT_EQ(rl.episodes.front().dead.front(), 6u);
    EXPECT_DOUBLE_EQ(rl.episodes.front().inject, 2000.0);

    // Stages are non-negative and contiguous within each episode...
    double total = 0.0;
    for (const sim::RecoveryEpisode& ep : rl.episodes) {
      EXPECT_GE(ep.detection(), 0.0);
      EXPECT_GE(ep.roll_call(), 0.0);
      EXPECT_GE(ep.salvage(), 0.0);
      EXPECT_GE(ep.restart(), 0.0);
      EXPECT_LE(ep.detect_first, ep.detect_confirm);
      total += ep.total();
    }
    // ...and telescope exactly: episode k's restart ends where episode
    // k+1's fault injects, so the stage sums cover injection-to-finish
    // with no gap and no overlap.
    EXPECT_DOUBLE_EQ(total,
                     out.report.makespan - rl.episodes.front().inject);
  }
}

TEST(TimelineRecoveryLatency, AgreesWithTheDetectWatermark) {
  const core::SortOutcome out = run_recovery(core::Executor::Sequential);
  const sim::RecoveryLatency& rl = out.report.recovery_latency;
  ASSERT_TRUE(rl.enabled);
  const double detect = core::detect_time(out.report);

  // The coordinator's final roll-call timeout fires exactly at the
  // diagnosis detect watermark (finish_recv_or_timeout pins the clock
  // to the deadline), so confirmation and watermark match bit for bit —
  // and everything after the watermark is salvage + restart.
  EXPECT_DOUBLE_EQ(rl.episodes.back().detect_confirm, detect);
  EXPECT_DOUBLE_EQ(rl.episodes.back().rollcall_end, detect);
  EXPECT_DOUBLE_EQ(rl.salvage_total() + rl.restart_total(),
                   out.report.makespan - detect);
}

TEST(TimelineRecoveryLatency, ExecutorsProduceIdenticalDecompositions) {
  const core::SortOutcome seq = run_recovery(core::Executor::Sequential);
  const core::SortOutcome thr = run_recovery(core::Executor::Threaded);
  EXPECT_TRUE(seq.report.recovery_latency == thr.report.recovery_latency);
  EXPECT_TRUE(seq.report.timeline == thr.report.timeline);
}

TEST(TimelineRecoveryLatency, MetricsJsonCarriesEpisodes) {
  const core::SortOutcome out = run_recovery(core::Executor::Sequential);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"recovery_latency\": {\"enabled\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"episodes\": ["), std::string::npos);
  for (const char* key :
       {"detection_total", "roll_call_total", "salvage_total",
        "restart_total", "inject", "detect_first", "detect_confirm",
        "rollcall_end", "salvage_end", "restart_end", "dead"})
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
}

}  // namespace
}  // namespace ftsort
