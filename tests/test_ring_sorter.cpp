// Tests for the odd-even transposition ring baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/ring_sorter.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort::baseline {
namespace {

TEST(HealthyRing, FaultFreeIsGrayCycle) {
  const auto ring = healthy_ring(fault::FaultSet(4));
  ASSERT_EQ(ring.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(ring[i], cube::gray(static_cast<cube::NodeId>(i)));
    EXPECT_EQ(cube::hamming(ring[i], ring[(i + 1) % 16]), 1);
  }
}

TEST(HealthyRing, SkipsFaultyNodes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto ring = healthy_ring(faults);
    EXPECT_EQ(ring.size(), faults.healthy_count());
    const std::set<cube::NodeId> unique(ring.begin(), ring.end());
    EXPECT_EQ(unique.size(), ring.size());
    for (cube::NodeId u : ring) EXPECT_FALSE(faults.is_faulty(u));
  }
}

TEST(HealthyRing, GapsStaySmall) {
  // Skipping r faulty nodes along the Gray cycle leaves successive live
  // nodes at Hamming distance at most r + 1.
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(5, 4, rng);
    const auto ring = healthy_ring(faults);
    for (std::size_t i = 0; i + 1 < ring.size(); ++i)
      EXPECT_LE(cube::hamming(ring[i], ring[i + 1]), 5);
  }
}

TEST(RingSort, SortsFaultFree) {
  util::Rng rng(3);
  for (cube::Dim n = 0; n <= 4; ++n) {
    const auto keys = sort::gen_uniform(100, rng);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    const auto result = ring_odd_even_sort(n, fault::FaultSet(n), keys);
    EXPECT_EQ(result.sorted, expected) << "n=" << n;
  }
}

TEST(RingSort, SortsEveryPairOfFaultsOnQ3) {
  util::Rng rng(4);
  const auto keys = sort::gen_uniform(60, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (cube::NodeId a = 0; a < 8; ++a)
    for (cube::NodeId b = a + 1; b < 8; ++b) {
      const auto result =
          ring_odd_even_sort(3, fault::FaultSet(3, {a, b}), keys);
      EXPECT_EQ(result.sorted, expected)
          << "faults " << a << "," << b;
    }
}

TEST(RingSort, SortsManyFaultsBeyondPaperEnvelope) {
  // The ring only needs connectivity of nothing at all — any healthy
  // subset works, even ones the partition cannot use well.
  util::Rng rng(5);
  const auto keys = sort::gen_uniform(200, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int trial = 0; trial < 5; ++trial) {
    const auto faults = fault::random_faults(5, 12, rng);
    const auto result = ring_odd_even_sort(5, faults, keys);
    EXPECT_EQ(result.sorted, expected);
  }
}

TEST(RingSort, AdversarialPatterns) {
  util::Rng rng(6);
  const auto faults = fault::random_faults(4, 3, rng);
  for (auto keys : {sort::gen_reverse(90), sort::gen_organ_pipe(91),
                    sort::gen_few_distinct(90, 2, rng)}) {
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ring_odd_even_sort(4, faults, keys).sorted, expected);
  }
}

TEST(RingSort, LinearPhasesMakeItSlowerThanBitonicOnBigCubes) {
  util::Rng rng(7);
  const auto keys = sort::gen_uniform(32'000, rng);
  const auto faults = fault::random_faults(6, 2, rng);
  const auto ring = ring_odd_even_sort(6, faults, keys);
  // 62 phases of block exchanges vs ~21 bitonic steps: the ring must be
  // markedly slower than the partitioned bitonic sort despite equal
  // utilization.
  core::FaultTolerantSorter sorter(6, faults);
  const auto bitonic = sorter.sort(keys);
  EXPECT_GT(ring.report.makespan, 2.0 * bitonic.report.makespan);
}

TEST(RingSort, SingleHealthyNodeDegeneratesToLocalSort) {
  const fault::FaultSet faults(1, {1});
  util::Rng rng(8);
  const auto keys = sort::gen_uniform(50, rng);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto result = ring_odd_even_sort(1, faults, keys);
  EXPECT_EQ(result.sorted, expected);
  EXPECT_EQ(result.report.messages, 0u);
}

}  // namespace
}  // namespace ftsort::baseline
