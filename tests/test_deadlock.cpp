// DeadlockError diagnostics: a stalled program must fail fast with a
// message naming every blocked node and the (src, tag) channel it awaits,
// identically on both executors.
#include <gtest/gtest.h>

#include <string>

#include "core/ft_sorter.hpp"
#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// Node 0 awaits (1, 9); node 1 awaits (2, 8); nodes 2 and 3 exit at once.
// Nothing is ever sent: a genuine deadlock with two distinct blocked waits.
sim::Machine::Program stalled_program() {
  return [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.recv(1, 9);
    } else if (ctx.id() == 1) {
      co_await ctx.recv(2, 8);
    }
    co_return;
  };
}

TEST(Deadlock, MessageNamesEveryBlockedNodeAndChannel) {
  sim::Machine machine(2, fault::FaultSet(2));
  try {
    machine.run(stalled_program());
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 0 waits for src=1 tag=9"), std::string::npos)
        << what;
    EXPECT_NE(what.find("node 1 waits for src=2 tag=8"), std::string::npos)
        << what;
    // Finished nodes are not blamed.
    EXPECT_EQ(what.find("node 2"), std::string::npos) << what;
    EXPECT_EQ(what.find("node 3"), std::string::npos) << what;
  }
}

TEST(Deadlock, ThreadedExecutorReportsTheSameBlockedSet) {
  std::string seq_what;
  std::string thr_what;
  {
    sim::Machine machine(2, fault::FaultSet(2));
    try {
      machine.run(stalled_program());
    } catch (const sim::DeadlockError& e) {
      seq_what = e.what();
    }
  }
  {
    sim::Machine machine(2, fault::FaultSet(2));
    try {
      machine.run_threaded(stalled_program());
    } catch (const sim::DeadlockError& e) {
      thr_what = e.what();
    }
  }
  ASSERT_FALSE(seq_what.empty());
  EXPECT_EQ(seq_what, thr_what);
}

TEST(Deadlock, PartialWaitChainIsFullyListed) {
  // A chain: 0 waits on 1, 1 waits on 2, 2 waits on 3, 3 exits. All three
  // blocked nodes must appear.
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() < 3) co_await ctx.recv(ctx.id() + 1, 4);
    co_return;
  };
  sim::Machine machine(2, fault::FaultSet(2));
  try {
    machine.run(program);
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    for (int u = 0; u < 3; ++u) {
      EXPECT_NE(what.find("node " + std::to_string(u) + " waits for src=" +
                          std::to_string(u + 1) + " tag=4"),
                std::string::npos)
          << what;
    }
  }
}

// Without online recovery, a mid-sort death leaves the victim's partners
// blocked forever — the run must end in DeadlockError (never a hang), with
// the same diagnostic on both executors. This is the offline-diagnosis
// model's failure mode that the recovery engine exists to fix.
TEST(Deadlock, InjectedDeathWithoutRecoveryDeadlocksDeterministically) {
  util::Rng rng(5);
  const auto keys = sort::gen_uniform(160, rng);

  // Baseline makespan to aim the kill mid-run.
  core::SortConfig probe;
  core::FaultTolerantSorter probe_sorter(3, fault::FaultSet(3), probe);
  const sim::SimTime t0 = probe_sorter.sort(keys).report.makespan;

  const auto run = [&](core::Executor exec) -> std::string {
    core::SortConfig cfg;
    cfg.executor = exec;
    cfg.injector.kill_node_at(6, 0.5 * t0);
    core::FaultTolerantSorter sorter(3, fault::FaultSet(3), cfg);
    try {
      sorter.sort(keys);
    } catch (const sim::DeadlockError& e) {
      return e.what();
    }
    return {};
  };

  const std::string seq_what = run(core::Executor::Sequential);
  const std::string thr_what = run(core::Executor::Threaded);
  ASSERT_FALSE(seq_what.empty()) << "sequential run did not deadlock";
  EXPECT_EQ(seq_what, thr_what);
  EXPECT_NE(seq_what.find("waits for src="), std::string::npos);
}

// Pinned failure-explainer scenario: node 0 is inside the paper's Step 5
// merge-exchange when its partner is killed by the injector, so the
// deadlock message must carry (a) the blocked set with its wait-for
// channel, (b) the ambient-phase tag of each blocked node, and (c) the
// diagnosis naming the injected kill as root cause with the transitively
// stalled set — byte-identical on both executors.
TEST(Deadlock, PhaseTagAndRootCauseAreIdenticalAcrossExecutors) {
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      const sim::PhaseSpan span = ctx.span(sim::Phase::MergeExchange);
      co_await ctx.recv(1, 7);
    } else if (ctx.id() == 1) {
      // Blocks on a channel nobody serves; the injector reaps it at t=1.
      co_await ctx.recv(0, 99);
    }
    co_return;
  };
  const auto run = [&](bool threaded) -> std::string {
    sim::Machine machine(2, fault::FaultSet(2));
    sim::FaultInjector injector;
    injector.kill_node_at(1, 1.0);
    machine.set_injector(std::move(injector));
    machine.trace().enable();
    try {
      if (threaded)
        machine.run_threaded(program);
      else
        machine.run(program);
    } catch (const sim::DeadlockError& e) {
      return e.what();
    }
    return {};
  };

  const std::string seq_what = run(false);
  const std::string thr_what = run(true);
  ASSERT_FALSE(seq_what.empty()) << "expected DeadlockError";
  // Blocked set + channel + phase tag.
  EXPECT_NE(seq_what.find("node 0 waits for src=1 tag=7 "
                          "[step5_merge_exchange]"),
            std::string::npos)
      << seq_what;
  // Root cause and blast radius from the attached diagnosis.
  EXPECT_NE(seq_what.find("injected kill of node 1"), std::string::npos)
      << seq_what;
  EXPECT_NE(seq_what.find("stalled (transitively): [0]"), std::string::npos)
      << seq_what;
  // The victim is dead, not blocked: it must not be blamed as a waiter.
  EXPECT_EQ(seq_what.find("node 1 waits for"), std::string::npos)
      << seq_what;
  EXPECT_EQ(seq_what, thr_what);
}

}  // namespace
}  // namespace ftsort
