// Unit tests for the sequential sorting kernels.
#include <gtest/gtest.h>

#include <algorithm>

#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

std::vector<Key> sorted_copy(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Heapsort, SortsRandomInputs) {
  util::Rng rng(1);
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1000u}) {
    auto keys = gen_uniform(n, rng);
    const auto expected = sorted_copy(keys);
    heapsort(keys);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST(Heapsort, SortsAdversarialPatterns) {
  util::Rng rng(2);
  for (auto keys : {gen_sorted(100), gen_reverse(100), gen_organ_pipe(101),
                    gen_few_distinct(100, 3, rng)}) {
    const auto expected = sorted_copy(keys);
    heapsort(keys);
    EXPECT_EQ(keys, expected);
  }
}

TEST(Heapsort, ComparisonCountIsNLogNish) {
  util::Rng rng(3);
  auto keys = gen_uniform(1024, rng);
  std::uint64_t comparisons = 0;
  heapsort(keys, comparisons);
  // Heapsort worst case ~ 2 n log n; must be well below n^2 and above n.
  EXPECT_GT(comparisons, 1024u);
  EXPECT_LT(comparisons, 2u * 1024u * 11u);
}

TEST(Heapsort, NoComparisonsForTinyInputs) {
  std::uint64_t comparisons = 0;
  std::vector<Key> empty;
  heapsort(empty, comparisons);
  std::vector<Key> one{5};
  heapsort(one, comparisons);
  EXPECT_EQ(comparisons, 0u);
}

TEST(Mergesort, SortsAllPatterns) {
  util::Rng rng(21);
  for (auto keys : {gen_uniform(777, rng), gen_sorted(100),
                    gen_reverse(100), gen_organ_pipe(99),
                    gen_few_distinct(200, 2, rng), std::vector<Key>{},
                    std::vector<Key>{5}}) {
    const auto expected = sorted_copy(keys);
    std::uint64_t comparisons = 0;
    mergesort(keys, comparisons);
    EXPECT_EQ(keys, expected);
  }
}

TEST(Mergesort, ComparisonCountNearNLogN) {
  util::Rng rng(22);
  auto keys = gen_uniform(4096, rng);
  std::uint64_t comparisons = 0;
  mergesort(keys, comparisons);
  // n log n = 49152; merge sort does at most n log n and at least half.
  EXPECT_LE(comparisons, 4096u * 12u);
  EXPECT_GE(comparisons, 4096u * 6u);
}

TEST(Quicksort, SortsAllPatterns) {
  util::Rng rng(23);
  for (auto keys : {gen_uniform(777, rng), gen_sorted(500),
                    gen_reverse(500), gen_organ_pipe(501),
                    gen_few_distinct(400, 3, rng), std::vector<Key>{},
                    std::vector<Key>{5}}) {
    const auto expected = sorted_copy(keys);
    std::uint64_t comparisons = 0;
    quicksort(keys, comparisons);
    EXPECT_EQ(keys, expected);
  }
}

TEST(Quicksort, MedianOfThreeHandlesSortedInputWithoutBlowup) {
  // Sorted and reverse-sorted inputs must stay O(n log n), not O(n^2).
  std::uint64_t sorted_comparisons = 0;
  auto asc = gen_sorted(8192);
  quicksort(asc, sorted_comparisons);
  EXPECT_LT(sorted_comparisons, 8192u * 26u);
  std::uint64_t reverse_comparisons = 0;
  auto desc = gen_reverse(8192);
  quicksort(desc, reverse_comparisons);
  EXPECT_LT(reverse_comparisons, 8192u * 26u);
}

TEST(LocalSortDispatch, AllKernelsAgree) {
  util::Rng rng(24);
  const auto base = gen_uniform(501, rng);
  const auto expected = sorted_copy(base);
  for (const auto algorithm : {LocalSort::Heapsort, LocalSort::Mergesort,
                               LocalSort::Quicksort}) {
    auto keys = base;
    std::uint64_t comparisons = 0;
    local_sort(algorithm, keys, comparisons);
    EXPECT_EQ(keys, expected);
    EXPECT_GT(comparisons, 0u);
  }
}

TEST(MergeSorted, MergesAndCounts) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{1, 3, 5};
  const std::vector<Key> b{2, 4, 6};
  EXPECT_EQ(merge_sorted(a, b, comparisons),
            (std::vector<Key>{1, 2, 3, 4, 5, 6}));
  EXPECT_LE(comparisons, 5u);
}

TEST(MergeSorted, HandlesEmptySides) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{1, 2};
  const std::vector<Key> empty;
  EXPECT_EQ(merge_sorted(a, empty, comparisons), a);
  EXPECT_EQ(merge_sorted(empty, a, comparisons), a);
  EXPECT_EQ(comparisons, 0u);
}

TEST(MergeSorted, StableForTies) {
  std::uint64_t comparisons = 0;
  const std::vector<Key> a{2, 2};
  const std::vector<Key> b{2};
  EXPECT_EQ(merge_sorted(a, b, comparisons), (std::vector<Key>{2, 2, 2}));
}

TEST(SortUnimodal, PeakShapes) {
  std::uint64_t comparisons = 0;
  std::vector<Key> v{1, 4, 9, 7, 2};
  sort_unimodal(v, comparisons);
  EXPECT_EQ(v, (std::vector<Key>{1, 2, 4, 7, 9}));
}

TEST(SortUnimodal, ValleyShapes) {
  std::uint64_t comparisons = 0;
  std::vector<Key> v{9, 5, 1, 3, 8};
  sort_unimodal(v, comparisons);
  EXPECT_EQ(v, (std::vector<Key>{1, 3, 5, 8, 9}));
}

TEST(SortUnimodal, MonotoneInputsPassThrough) {
  std::uint64_t comparisons = 0;
  std::vector<Key> asc{1, 2, 3};
  sort_unimodal(asc, comparisons);
  EXPECT_EQ(asc, (std::vector<Key>{1, 2, 3}));
  std::vector<Key> desc{3, 2, 1};
  sort_unimodal(desc, comparisons);
  EXPECT_EQ(desc, (std::vector<Key>{1, 2, 3}));
}

TEST(SortUnimodal, PlateausAndTies) {
  std::uint64_t comparisons = 0;
  std::vector<Key> v{1, 3, 3, 3, 2, 2};
  sort_unimodal(v, comparisons);
  EXPECT_EQ(v, (std::vector<Key>{1, 2, 2, 3, 3, 3}));
  std::vector<Key> equal{5, 5, 5};
  sort_unimodal(equal, comparisons);
  EXPECT_EQ(equal, (std::vector<Key>{5, 5, 5}));
}

TEST(SortUnimodal, TinyInputs) {
  std::uint64_t comparisons = 0;
  std::vector<Key> empty;
  sort_unimodal(empty, comparisons);
  EXPECT_TRUE(empty.empty());
  std::vector<Key> one{7};
  sort_unimodal(one, comparisons);
  EXPECT_EQ(one, std::vector<Key>{7});
  std::vector<Key> two{9, 1};
  sort_unimodal(two, comparisons);
  EXPECT_EQ(two, (std::vector<Key>{1, 9}));
}

TEST(SortUnimodal, RandomMinMaxPairSequences) {
  // The exact shapes the half-exchange protocol produces: min (or max) of
  // (ascending a[k], descending b[k]) over k.
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = gen_uniform(33, rng);
    auto b = gen_uniform(33, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.rbegin(), b.rend());
    std::vector<Key> mins(33);
    std::vector<Key> maxs(33);
    for (int i = 0; i < 33; ++i) {
      mins[static_cast<std::size_t>(i)] =
          std::min(a[static_cast<std::size_t>(i)],
                   b[static_cast<std::size_t>(i)]);
      maxs[static_cast<std::size_t>(i)] =
          std::max(a[static_cast<std::size_t>(i)],
                   b[static_cast<std::size_t>(i)]);
    }
    std::uint64_t comparisons = 0;
    auto mins_expected = sorted_copy(mins);
    sort_unimodal(mins, comparisons);
    EXPECT_EQ(mins, mins_expected);
    auto maxs_expected = sorted_copy(maxs);
    sort_unimodal(maxs, comparisons);
    EXPECT_EQ(maxs, maxs_expected);
    // Linear cost: at most ~2n comparisons per call.
    EXPECT_LE(comparisons, 4u * 33u + 8u);
  }
}

TEST(IsAscending, DetectsOrderAndTies) {
  EXPECT_TRUE(is_ascending(std::vector<Key>{}));
  EXPECT_TRUE(is_ascending(std::vector<Key>{1}));
  EXPECT_TRUE(is_ascending(std::vector<Key>{1, 1, 2}));
  EXPECT_FALSE(is_ascending(std::vector<Key>{2, 1}));
}

TEST(IsGloballyAscending, SpansBlockBoundaries) {
  const std::vector<std::vector<Key>> good{{1, 2}, {2, 3}, {}, {4}};
  EXPECT_TRUE(is_globally_ascending(good));
  const std::vector<std::vector<Key>> bad{{1, 5}, {4, 6}};
  EXPECT_FALSE(is_globally_ascending(bad));
}

}  // namespace
}  // namespace ftsort::sort
