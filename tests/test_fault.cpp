// Unit tests for fault sets, scenario generators, and diagnosis.
#include <gtest/gtest.h>

#include <set>

#include "fault/diagnosis.hpp"
#include "fault/scenario.hpp"
#include "util/rng.hpp"

namespace ftsort::fault {
namespace {

TEST(FaultSet, EmptySet) {
  const FaultSet fs(4);
  EXPECT_EQ(fs.count(), 0u);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(fs.healthy_count(), 16u);
  for (cube::NodeId u = 0; u < 16; ++u) EXPECT_FALSE(fs.is_faulty(u));
}

TEST(FaultSet, AddressesSortedAndBitmapConsistent) {
  const FaultSet fs(4, {9, 3, 12});
  EXPECT_EQ(fs.count(), 3u);
  EXPECT_EQ(fs.addresses(), (std::vector<cube::NodeId>{3, 9, 12}));
  for (cube::NodeId u = 0; u < 16; ++u)
    EXPECT_EQ(fs.is_faulty(u), u == 3 || u == 9 || u == 12);
}

TEST(FaultSet, RejectsDuplicates) {
  EXPECT_THROW(FaultSet(3, {1, 1}), ContractViolation);
}

TEST(FaultSet, RejectsOutOfRangeAddress) {
  EXPECT_THROW(FaultSet(3, {8}), ContractViolation);
}

TEST(FaultSet, CountInSubcube) {
  const FaultSet fs(4, {0b0000, 0b0001, 0b1000});
  // Subcube with bit3 = 0 holds faults 0 and 1.
  EXPECT_EQ(fs.count_in(0b1000, 0b0000), 2u);
  EXPECT_EQ(fs.count_in(0b1000, 0b1000), 1u);
  EXPECT_EQ(fs.count_in(0b0011, 0b0010), 0u);
}

TEST(FaultSet, IsolationDetection) {
  // Q_2: node 0's neighbours are 1 and 2; failing both isolates it.
  EXPECT_TRUE(FaultSet(2, {1, 2}).isolates_healthy_node());
  EXPECT_FALSE(FaultSet(2, {1}).isolates_healthy_node());
  // r = n faults that do NOT isolate anyone.
  EXPECT_FALSE(FaultSet(3, {0, 7, 1}).isolates_healthy_node());
}

TEST(FaultSet, PaperBoundNeverIsolates) {
  // r <= n-1 can never isolate a healthy node (Q_n is n-connected).
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto fs = random_faults(5, 4, rng);
    EXPECT_FALSE(fs.isolates_healthy_node());
  }
}

TEST(FaultSet, ToStringListsAddresses) {
  EXPECT_EQ(FaultSet(3, {5, 2}).to_string(), "FaultSet(Q_3, {2, 5})");
}

TEST(Scenario, RandomFaultsHasExactCount) {
  util::Rng rng(2);
  for (std::size_t r = 0; r <= 5; ++r) {
    const auto fs = random_faults(6, r, rng);
    EXPECT_EQ(fs.count(), r);
    EXPECT_EQ(fs.dim(), 6);
  }
}

TEST(Scenario, RandomFaultsCoversAllAddressesEventually) {
  util::Rng rng(3);
  std::set<cube::NodeId> seen;
  for (int trial = 0; trial < 300; ++trial) {
    const auto fs = random_faults(3, 2, rng);
    for (cube::NodeId f : fs.addresses()) seen.insert(f);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Scenario, NoIsolationGeneratorHonoursConstraint) {
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    // r = n faults can isolate; the generator must filter those cases.
    const auto fs = random_faults_no_isolation(3, 3, rng);
    EXPECT_FALSE(fs.isolates_healthy_node());
  }
}

TEST(Scenario, ClusteredFaultsStayInOneSubcube) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto fs = clustered_faults(6, 4, 2, rng);
    ASSERT_EQ(fs.count(), 4u);
    // All faults agree outside some 2-dimensional subcube: pairwise
    // Hamming distance is at most 2.
    for (cube::NodeId a : fs.addresses())
      for (cube::NodeId b : fs.addresses())
        EXPECT_LE(cube::hamming(a, b), 2);
  }
}

TEST(Scenario, ClusteredRejectsOversizedCluster) {
  util::Rng rng(6);
  EXPECT_THROW(clustered_faults(6, 5, 2, rng), ContractViolation);
}

TEST(Scenario, SpreadFaultsAreFarApart) {
  util::Rng rng(7);
  const auto fs = spread_faults(6, 2, rng);
  ASSERT_EQ(fs.count(), 2u);
  // Greedy farthest-point with r=2 must reach the antipode: distance n.
  EXPECT_EQ(cube::hamming(fs.addresses()[0], fs.addresses()[1]), 6);
}

TEST(Scenario, ChainFaultsFormConnectedSet) {
  util::Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const auto fs = chain_faults(5, 4, rng);
    ASSERT_EQ(fs.count(), 4u);
    // Each fault has at least one faulty neighbour (connected chain).
    for (cube::NodeId f : fs.addresses()) {
      bool has_faulty_neighbor = false;
      for (cube::Dim d = 0; d < 5; ++d)
        has_faulty_neighbor |= fs.is_faulty(cube::neighbor(f, d));
      EXPECT_TRUE(has_faulty_neighbor);
    }
  }
}

TEST(Scenario, GeneratorsAreDeterministicPerSeed) {
  util::Rng a(9);
  util::Rng b(9);
  EXPECT_EQ(random_faults(6, 3, a), random_faults(6, 3, b));
}

TEST(Diagnosis, RecoversGroundTruthUnderPaperBound) {
  util::Rng rng(10);
  for (cube::Dim n = 2; n <= 5; ++n)
    for (std::size_t r = 0; r + 1 <= static_cast<std::size_t>(n); ++r) {
      const auto truth = random_faults(n, r, rng);
      const auto result = diagnose_fail_stop(truth);
      EXPECT_TRUE(result.complete) << truth.to_string();
      EXPECT_EQ(result.identified, truth);
    }
}

TEST(Diagnosis, FaultFreeCubeConvergesInOneRound) {
  const auto result = diagnose_fail_stop(FaultSet(3));
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.identified.empty());
  // Pings already establish full neighbour knowledge; flooding needs the
  // rounds to spread it across diameter-many hops.
  EXPECT_GE(result.rounds, 1);
}

TEST(Diagnosis, MessageCountGrowsWithCubeSize) {
  const auto small = diagnose_fail_stop(FaultSet(3));
  const auto big = diagnose_fail_stop(FaultSet(5));
  EXPECT_GT(big.messages, small.messages);
}

TEST(Diagnosis, RoundsBoundedByDiameterPlusOne) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto truth = random_faults(4, 3, rng);
    const auto result = diagnose_fail_stop(truth);
    // Healthy subgraph diameter can stretch past n when detours are
    // needed, but quiescence must come within |healthy| rounds.
    EXPECT_LE(result.rounds,
              static_cast<int>(truth.healthy_count()) + 1);
  }
}

TEST(FaultModel, Names) {
  EXPECT_EQ(to_string(FaultModel::Partial), "partial");
  EXPECT_EQ(to_string(FaultModel::Total), "total");
}

}  // namespace
}  // namespace ftsort::fault
